//! # distllm-rs
//!
//! A production-quality Rust reproduction of *"Automated MCQA Benchmarking
//! at Scale: Evaluating Reasoning Traces as Retrieval Sources for Domain
//! Adaptation of Small Language Models"* (Gokdemir et al., SC '25).
//!
//! This facade crate re-exports the whole workspace and offers a
//! one-call convenience API. The subsystems:
//!
//! | Crate | Paper role |
//! |---|---|
//! | [`ontology`] | the domain's ground-truth knowledge (replaces the 22k-document literature) |
//! | [`corpus`] | synthetic papers/abstracts, the SPDF container, Semantic-Scholar-style acquisition |
//! | [`parse`] | AdaParse-style adaptive parallel parsing |
//! | [`text`] | tokenisation, sentence splitting, semantic chunking |
//! | [`embed`] | the PubMedBERT stand-in encoder + FP16 storage |
//! | [`index`] | FAISS-style vector stores (Flat / IVF / HNSW) |
//! | [`lexical`] | the BM25 keyword channel + dense/lexical fusion (RRF, weighted) |
//! | [`runtime`] | Parsl-style work-stealing workflow runtime |
//! | [`llm`] | every model role behind one `ModelEndpoint` trait (batched completions, response cache, call ledger); the sim backend plays GPT-4.1, the judge, GPT-5, and the 8 SLM behaviour cards |
//! | [`serve`] | the in-process query service (admission control, dynamic micro-batching) |
//! | [`core`] | the end-to-end benchmark-generation pipeline (the paper's contribution) |
//! | [`eval`] | the three-condition evaluation protocol, Astro exam, tables & figures |
//!
//! ## Quickstart
//!
//! ```no_run
//! use distllm::prelude::*;
//!
//! // Build the benchmark at 2% of paper scale and evaluate all 8 models.
//! let output = Pipeline::run(&PipelineConfig::at_scale(0.02, 42));
//! let evaluator = Evaluator::new(&output, EvalConfig::default());
//! let run = evaluator.run();
//! println!("{}", distllm::eval::results::render_table2(&run));
//! ```

pub use mcqa_core as core;
pub use mcqa_corpus as corpus;
pub use mcqa_embed as embed;
pub use mcqa_eval as eval;
pub use mcqa_index as index;
pub use mcqa_lexical as lexical;
pub use mcqa_llm as llm;
pub use mcqa_ontology as ontology;
pub use mcqa_parse as parse;
pub use mcqa_runtime as runtime;
pub use mcqa_serve as serve;
pub use mcqa_text as text;
pub use mcqa_util as util;

/// The most common imports in one place.
pub mod prelude {
    pub use mcqa_core::{Pipeline, PipelineConfig, PipelineOutput};
    pub use mcqa_eval::{AstroConfig, AstroExam, EvalConfig, EvalRun, Evaluator};
    pub use mcqa_index::{IndexRegistry, IndexSpec, VectorStore};
    pub use mcqa_lexical::{Fusion, LexicalIndex};
    pub use mcqa_llm::{
        answer::Condition, McqItem, ModelCard, ModelEndpoint, ModelSpec, TraceMode, MODEL_CARDS,
    };
    pub use mcqa_ontology::{Ontology, OntologyConfig};
    pub use mcqa_runtime::{run_stage, run_stage_batched, Executor};
    pub use mcqa_serve::{QueryMode, QueryRequest, QueryService, ServeConfig};
}

/// Run the full pipeline and evaluation at a given corpus scale, returning
/// the pipeline artifacts and the evaluation results (the data behind the
/// paper's Tables 2–4 and Figures 4–6).
pub fn reproduce(scale: f64, seed: u64) -> (mcqa_core::PipelineOutput, mcqa_eval::EvalRun) {
    let output = mcqa_core::Pipeline::run(&mcqa_core::PipelineConfig::at_scale(scale, seed));
    let run = {
        let evaluator = mcqa_eval::Evaluator::new(&output, mcqa_eval::EvalConfig::default());
        evaluator.run()
    };
    (output, run)
}
