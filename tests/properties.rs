//! Property-based tests on core data structures and invariants.

use proptest::prelude::*;

use distllm::corpus::compress::{compress, decompress};
use distllm::index::{FlatIndex, HnswConfig, HnswIndex, IvfConfig, IvfIndex, Metric, VectorStore};
use distllm::text::{split_sentences, token_count, tokenize};
use distllm::util::f16::{decode_f16_bytes, encode_f16_bytes};
use distllm::util::F16;

proptest! {
    // ---- SPZ codec ------------------------------------------------------

    #[test]
    fn spz_roundtrips_arbitrary_bytes(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let c = compress(&data);
        let back = decompress(&c, data.len().max(1) * 2 + 64).unwrap();
        prop_assert_eq!(back, data);
    }

    #[test]
    fn spz_roundtrips_repetitive_bytes(
        unit in proptest::collection::vec(any::<u8>(), 1..24),
        reps in 1usize..200,
    ) {
        let data: Vec<u8> = unit.iter().cycle().take(unit.len() * reps).copied().collect();
        let c = compress(&data);
        let back = decompress(&c, data.len() + 64).unwrap();
        prop_assert_eq!(back, data);
    }

    #[test]
    fn spz_never_panics_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        // Decoding arbitrary bytes must either succeed or return an error —
        // never panic, never allocate past the cap.
        if let Ok(out) = decompress(&data, 1 << 16) {
            prop_assert!(out.len() <= 1 << 16);
        }
    }

    // ---- f16 codec ------------------------------------------------------

    #[test]
    fn f16_roundtrip_is_idempotent(x in -1.0e5f32..1.0e5f32) {
        // One quantisation step, then fixed-point: f16(f32(f16(x))) == f16(x).
        let once = F16::from_f32(x);
        let twice = F16::from_f32(once.to_f32());
        prop_assert_eq!(once.0, twice.0);
    }

    #[test]
    fn f16_relative_error_bounded(x in 1.0e-3f32..6.0e4f32) {
        let rt = F16::from_f32(x).to_f32();
        let rel = ((x - rt) / x).abs();
        prop_assert!(rel <= 4.9e-4, "x={} rt={} rel={}", x, rt, rel);
    }

    #[test]
    fn f16_bytes_roundtrip(values in proptest::collection::vec(-1.0e4f32..1.0e4f32, 0..256)) {
        let bytes = encode_f16_bytes(&values);
        let back = decode_f16_bytes(&bytes).unwrap();
        prop_assert_eq!(back.len(), values.len());
        for (a, b) in values.iter().zip(&back) {
            prop_assert!((a - b).abs() <= a.abs() * 5e-4 + 1e-5);
        }
    }

    // ---- tokenisation ---------------------------------------------------

    #[test]
    fn token_count_matches_tokenize(text in ".{0,400}") {
        prop_assert_eq!(token_count(&text), tokenize(&text).len());
    }

    #[test]
    fn truncate_is_prefix_and_respects_budget(text in ".{0,400}", k in 0usize..60) {
        let t = distllm::text::token::truncate_tokens(&text, k);
        prop_assert!(text.starts_with(t));
        prop_assert!(token_count(t) <= k);
    }

    #[test]
    fn sentences_are_substrings_in_order(text in "[A-Za-z0-9,;. ]{0,400}") {
        let parts = split_sentences(&text);
        let mut cursor = 0usize;
        for s in parts {
            let found = text[cursor..].find(s);
            prop_assert!(found.is_some(), "sentence {:?} not found in order", s);
            cursor += found.unwrap() + s.len();
        }
    }

    // ---- chunker invariants ---------------------------------------------

    #[test]
    fn chunker_partitions_sentences(
        n_sentences in 1usize..40,
        max_tokens in 16usize..128,
        word_seed in any::<u64>(),
    ) {
        let words = ["radiation", "dose", "repair", "tumour", "cell", "damage",
                     "response", "pathway", "fraction", "survival"];
        let mut text = String::new();
        let mut x = word_seed;
        for _ in 0..n_sentences {
            let len = 3 + (x % 9) as usize;
            let mut sentence: Vec<&str> = Vec::new();
            for _ in 0..len {
                x = distllm::util::splitmix64(x);
                sentence.push(words[(x % words.len() as u64) as usize]);
            }
            // Capitalise so the splitter sees a boundary.
            text.push_str("The ");
            text.push_str(&sentence.join(" "));
            text.push_str(". ");
        }
        let enc = distllm::text::TfEncoder::new(32);
        let chunker = distllm::text::Chunker::new(
            &enc,
            distllm::text::ChunkerConfig {
                max_tokens,
                min_tokens: (max_tokens / 4).max(1),
                drift_threshold: 0.1,
                window_sentences: 2,
            },
        );
        let n = split_sentences(&text).len();
        let chunks = chunker.chunk(&text);
        // Contiguous, complete coverage.
        let mut next = 0usize;
        for c in &chunks {
            prop_assert_eq!(c.first_sentence, next);
            next = c.last_sentence + 1;
            prop_assert_eq!(c.tokens, token_count(&c.text));
        }
        prop_assert_eq!(next, n);
    }
}

// ---- index recall properties (statistical, so plain tests with fixed
//      generators rather than proptest shrink targets) ----------------------

fn random_unit_vec(dim: usize, seed: u64) -> Vec<f32> {
    let ks = distllm::util::KeyedStochastic::new(seed);
    let mut v: Vec<f32> = (0..dim).map(|j| ks.gaussian(&["v", &j.to_string()]) as f32).collect();
    let n: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    v.iter_mut().for_each(|x| *x /= n);
    v
}

#[test]
fn ivf_and_hnsw_recall_against_flat() {
    let dim = 24;
    let n = 500u64;
    let mut flat = FlatIndex::new(dim, Metric::Cosine, distllm::embed::Precision::F32);
    let data: Vec<Vec<f32>> = (0..n).map(|i| random_unit_vec(dim, 40_000 + i)).collect();
    let mut ivf = IvfIndex::new(
        dim,
        Metric::Cosine,
        IvfConfig { nlist: 16, nprobe: 6, train_iters: 6, seed: 5 },
    );
    ivf.train(distllm::runtime::Executor::global(), &data);
    let mut hnsw = HnswIndex::new(dim, Metric::Cosine, HnswConfig::default());
    for (i, v) in data.iter().enumerate() {
        flat.add(i as u64, v);
        ivf.add(i as u64, v);
        hnsw.add(i as u64, v);
    }
    let mut ivf_hits = 0;
    let mut hnsw_hits = 0;
    let mut total = 0;
    for q in 0..40u64 {
        let query = random_unit_vec(dim, 90_000 + q);
        let truth: std::collections::HashSet<u64> =
            flat.search(&query, 10).into_iter().map(|h| h.id).collect();
        ivf_hits += ivf.search(&query, 10).iter().filter(|h| truth.contains(&h.id)).count();
        hnsw_hits += hnsw.search(&query, 10).iter().filter(|h| truth.contains(&h.id)).count();
        total += truth.len();
    }
    let ivf_recall = ivf_hits as f64 / total as f64;
    let hnsw_recall = hnsw_hits as f64 / total as f64;
    assert!(ivf_recall >= 0.6, "IVF recall {ivf_recall}");
    assert!(hnsw_recall >= 0.85, "HNSW recall {hnsw_recall}");
}

#[test]
fn approximate_results_are_subset_of_corpus() {
    // Every id an ANN index returns must be one it was given.
    let dim = 8;
    let data: Vec<Vec<f32>> = (0..100).map(|i| random_unit_vec(dim, i)).collect();
    let mut hnsw = HnswIndex::new(dim, Metric::Cosine, HnswConfig::default());
    for (i, v) in data.iter().enumerate() {
        hnsw.add(1000 + i as u64, v);
    }
    for q in 0..10u64 {
        for hit in hnsw.search(&random_unit_vec(dim, 777 + q), 7) {
            assert!((1000..1100).contains(&hit.id));
        }
    }
}
