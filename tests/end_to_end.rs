//! Cross-crate integration tests: the full pipeline → evaluation path.

use distllm::eval::results::{figure_series, FigureSeries};
use distllm::prelude::*;

fn fixture() -> &'static (PipelineOutput, EvalRun) {
    static OUT: std::sync::OnceLock<(PipelineOutput, EvalRun)> = std::sync::OnceLock::new();
    OUT.get_or_init(|| {
        let output = Pipeline::run(&PipelineConfig::tiny(42));
        let run = {
            let evaluator = Evaluator::new(&output, EvalConfig::default());
            evaluator.run()
        };
        (output, run)
    })
}

#[test]
fn pipeline_stage_census_matches_figure1() {
    let (output, _) = fixture();
    let stages: Vec<&str> = output.report.stages().iter().map(|s| s.name.as_str()).collect();
    assert_eq!(
        stages,
        vec![
            "acquire",
            "ingest-scan",
            "parse",
            "chunk",
            "ingest-chunks",
            "embed-chunks",
            "index-chunks",
            "index-lex-chunks",
            "generate+judge",
            "traces",
            "embed-traces",
            "index-traces-detailed",
            "index-lex-traces-detailed",
            "index-traces-focused",
            "index-lex-traces-focused",
            "index-traces-efficient",
            "index-lex-traces-efficient",
            "model-teacher",
            "model-judge",
        ],
        "workflow stages must match the paper's Figure 1 (plus the ingest planner's scan and \
         merge rows, a build row per vector DB, its lexical sibling, and a model-layer cost \
         row per role the pipeline called)"
    );
    // Parsing is allowed (and expected) to lose a few corrupt documents,
    // but must recover the overwhelming majority.
    let parse = &output.report.stages()[2];
    assert!(parse.success_rate() > 0.95, "parse success {}", parse.success_rate());
}

#[test]
fn provenance_chain_is_closed_end_to_end() {
    // question → chunk → document → fact: every link must resolve, and the
    // fact must really be stated in the chunk text.
    let (output, _) = fixture();
    for (record, item) in output.questions.iter().zip(&output.items) {
        let chunk = output
            .chunks
            .iter()
            .find(|c| c.chunk_id == record.provenance.chunk_id)
            .expect("chunk resolves");
        let doc = output.library.document(chunk.doc).expect("document resolves");
        assert_eq!(doc.id.0, record.provenance.doc_id);

        if record.relevance_check {
            let fact = output.ontology.fact(item.fact).expect("fact resolves");
            // The chunk's oracle already guarantees sentence containment;
            // additionally the chunk text must mention the subject entity.
            let subject = &output.ontology.registry().get(fact.subject).name;
            assert!(
                chunk.text.contains(subject.as_str()),
                "chunk {} lacks subject {subject}",
                chunk.chunk_id
            );
        }
    }
}

#[test]
fn no_trace_leaks_its_answer() {
    let (output, _) = fixture();
    for trace in &output.traces {
        let item = &output.items[trace.question_id as usize];
        assert!(!trace.trace.contains(item.correct_text()));
        assert!(trace.answer_excluded);
    }
}

#[test]
fn headline_result_emerges() {
    // RT ≥ chunks ≥ baseline on the synthetic benchmark for every model,
    // and relative gains anticorrelate with model strength.
    let (_, run) = fixture();
    assert_eq!(run.models.len(), 8);
    for m in &run.models {
        let base = m.synth_accuracy(Condition::Baseline);
        let chunks = m.synth_accuracy(Condition::RagChunks);
        let rt = m.synth_best_rt();
        assert!(chunks > base - 0.03, "{}: {chunks:.3} vs {base:.3}", m.name);
        assert!(rt > chunks - 0.03, "{}: {rt:.3} vs {chunks:.3}", m.name);
        assert!(rt > base, "{}", m.name);
    }
    let fig4 = figure_series(run, FigureSeries::Fig4Synthetic);
    let tiny = fig4.iter().find(|p| p.model.contains("TinyLlama")).unwrap();
    assert!(
        tiny.rt_vs_baseline_pct > 150.0,
        "TinyLlama must gain dramatically: {:.0}%",
        tiny.rt_vs_baseline_pct
    );
}

#[test]
fn astro_exam_accounting_matches_paper() {
    let (_, run) = fixture();
    assert_eq!(run.astro_questions, 335, "337 − 2 multimodal");
    assert!(
        (180..=200).contains(&run.astro_nomath_questions),
        "no-math subset {} should be near the paper's 189",
        run.astro_nomath_questions
    );
}

#[test]
fn astro_chunk_rag_hurts_olmo() {
    // The paper's most counter-intuitive cell: OLMo-7B drops from 0.446 to
    // 0.269 when given chunk RAG on the exam.
    let (_, run) = fixture();
    let olmo = run.models.iter().find(|m| m.name == "OLMo-7B").unwrap();
    let base = olmo.astro_all_accuracy(Condition::Baseline);
    let chunks = olmo.astro_all_accuracy(Condition::RagChunks);
    assert!(
        chunks < base - 0.05,
        "OLMo chunk-RAG regression must reproduce: {chunks:.3} vs {base:.3}"
    );
}

#[test]
fn several_models_beat_gpt4_reference_with_traces() {
    let (_, run) = fixture();
    let above = run
        .models
        .iter()
        .filter(|m| m.astro_best_rt().0 > distllm::llm::GPT4_ASTRO_REFERENCE)
        .count();
    assert!(above >= 2, "paper: several SLMs surpass GPT-4 with RT ({above})");
}

#[test]
fn determinism_pipeline_and_eval() {
    let a = Pipeline::run(&PipelineConfig::tiny(7));
    let b = Pipeline::run(&PipelineConfig::tiny(7));
    assert_eq!(a.questions, b.questions);
    let run_a = Evaluator::new(&a, EvalConfig::default()).run_cards(&MODEL_CARDS[..2]);
    let run_b = Evaluator::new(&b, EvalConfig::default()).run_cards(&MODEL_CARDS[..2]);
    for (ma, mb) in run_a.models.iter().zip(&run_b.models) {
        for ((ca, aa), (cb, ab)) in ma.synth.iter().zip(&mb.synth) {
            assert_eq!(ca.label(), cb.label());
            assert_eq!(aa, ab, "{}: {}", ma.name, ca.label());
        }
    }
}

#[test]
fn index_registry_roundtrips_to_bytes() {
    // The four vector DBs persist as one self-describing blob and decode
    // to stores with identical search behaviour — the FAISS-on-disk shape
    // of the paper's deployment.
    let (output, _) = fixture();
    let bytes = output.indexes.to_bytes();
    let back = distllm::index::IndexRegistry::from_bytes(&bytes).expect("registry decodes");
    assert_eq!(back.names(), output.indexes.names());
    let q = output.encoder.encode(&output.items[0].stem);
    for (name, store) in back.iter() {
        assert_eq!(store.search(&q, 5), output.indexes.expect_store(name).search(&q, 5), "{name}");
    }
}

#[test]
fn jsonl_artifacts_roundtrip() {
    let (output, _) = fixture();
    for q in output.questions.iter().take(25) {
        let line = q.to_jsonl();
        let back = distllm::core::QuestionRecord::from_jsonl(&line).unwrap();
        assert_eq!(&back, q);
    }
    for t in output.traces.iter().take(25) {
        let line = t.to_jsonl();
        let back = distllm::core::TraceRecord::from_jsonl(&line).unwrap();
        assert_eq!(&back, t);
    }
}
