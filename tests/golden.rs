//! Golden determinism: the generation artifacts at a pinned (config, seed)
//! are byte-identical across refactors.
//!
//! The constants below were captured from the pre-`ModelEndpoint` pipeline
//! (PR 3 state) and re-verified after the model-layer redesign and the
//! chunker memoisation: the question census and the full serialised
//! question/trace artifacts hash to the same values. Any PR that moves a
//! chunk boundary, reorders an id, or changes a simulator's output trips
//! this test — the same bar the vector-store redesign cleared.
//!
//! (The release-build census at scale 0.02 — 451 docs → 3760 chunks →
//! 3760 candidates → 430 accepted, q_hash 0xb5f207d6fa4a7c92, t_hash
//! 0xfa0e82468acfb54c — is pinned in `scripts/repro-smoke.sh`, where the
//! optimized binary makes it cheap.)

use distllm::prelude::*;

#[test]
fn tiny_seed42_artifacts_are_byte_identical_to_the_pre_redesign_pipeline() {
    let out = Pipeline::run(&PipelineConfig::tiny(42));
    assert_eq!(out.chunks.len(), 1863, "chunk census moved");
    assert_eq!(out.questions.len(), 202, "question census moved");
    assert_eq!(out.traces.len(), 606, "trace census moved");

    let q_json = serde_json::to_string(&out.questions).expect("serialises");
    let t_json = serde_json::to_string(&out.traces).expect("serialises");
    assert_eq!(
        distllm::util::fnv1a(q_json.as_bytes()),
        0x7466_4a87_a29b_1388,
        "question artifacts are no longer byte-identical to the golden run"
    );
    assert_eq!(
        distllm::util::fnv1a(t_json.as_bytes()),
        0xe2a1_2236_fb88_ef06,
        "trace artifacts are no longer byte-identical to the golden run"
    );
}
