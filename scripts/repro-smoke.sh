#!/usr/bin/env bash
# Smoke-test the end-to-end paper pipeline: run the `repro` binary over every
# table/figure at ~1% of paper scale with a fixed seed. Any panic, stage
# failure, or non-zero exit fails the script (and therefore CI).
#
# Usage: scripts/repro-smoke.sh [scale] [seed]
set -euo pipefail

SCALE="${1:-0.01}"
SEED="${2:-42}"

cd "$(dirname "$0")/.."

echo "== repro smoke: no second scheduler =="
# One scheduler everywhere: a rayon dependency or import reappearing would
# split stages off the runtime metrics surface.
if grep -rn --include='Cargo.toml' --exclude-dir=target 'rayon' . ||
    grep -rn --exclude-dir=target 'use rayon' crates src tests examples; then
    echo "repro smoke FAILED: rayon reappeared in the workspace" >&2
    exit 1
fi

echo "== repro smoke: scale=${SCALE} seed=${SEED} =="
ALL_OUT="$(cargo run --release -q -p mcqa-bench --bin repro -- all --scale "${SCALE}" --seed "${SEED}")"
echo "${ALL_OUT}"

echo "== repro smoke: stage census (fig1) =="
OUT="$(cargo run --release -q -p mcqa-bench --bin repro -- fig1 --scale "${SCALE}" --seed "${SEED}")"
echo "${OUT}"

# The workflow must report the paper's Figure-1 stage census, with the
# throughput columns recorded by the runtime metrics.
for stage in acquire parse chunk embed-chunks generate+judge traces embed-traces out/s; do
    if ! grep -qF "${stage}" <<<"${OUT}"; then
        echo "repro smoke FAILED: stage report is missing '${stage}'" >&2
        exit 1
    fi
done

# The evaluation runs on the same scheduler: `repro all` must surface both
# the pipeline stages (generate+judge included) and the eval stages via
# runtime StageMetrics.
for stage in generate+judge eval-retrieve eval-assemble eval-answer out/s; do
    if ! grep -qF "${stage}" <<<"${ALL_OUT}"; then
        echo "repro smoke FAILED: 'repro all' stage report is missing '${stage}'" >&2
        exit 1
    fi
done

echo "== repro smoke: OK =="
