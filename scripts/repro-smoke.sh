#!/usr/bin/env bash
# Smoke-test the end-to-end paper pipeline: run the `repro` binary over every
# table/figure at ~1% of paper scale with a fixed seed, then re-run the fig1
# smoke under every vector-store backend (flat / hnsw / ivf) and assert the
# generation artifacts are identical and ANN recall stays above the floor.
# Any panic, stage failure, or non-zero exit fails the script (and CI).
#
# Usage: scripts/repro-smoke.sh [scale] [seed]
set -euo pipefail

SCALE="${1:-0.01}"
SEED="${2:-42}"

cd "$(dirname "$0")/.."

echo "== repro smoke: no second scheduler =="
# One scheduler everywhere: a rayon dependency or import reappearing would
# split stages off the runtime metrics surface.
if grep -rn --include='Cargo.toml' --exclude-dir=target 'rayon' . ||
    grep -rn --exclude-dir=target 'use rayon' crates src tests examples; then
    echo "repro smoke FAILED: rayon reappeared in the workspace" >&2
    exit 1
fi

echo "== repro smoke: consumers stay backend-agnostic =="
# The registry redesign's invariant: core and eval program against the
# VectorStore trait + IndexSpec only. A concrete FlatIndex import coming
# back would re-pin the hot path to one backend.
if grep -rn 'FlatIndex' crates/core/src crates/eval/src; then
    echo "repro smoke FAILED: FlatIndex leaked back into core/eval" >&2
    exit 1
fi

echo "== repro smoke: scale=${SCALE} seed=${SEED} =="
ALL_OUT="$(cargo run --release -q -p mcqa-bench --bin repro -- all --scale "${SCALE}" --seed "${SEED}")"
echo "${ALL_OUT}"

echo "== repro smoke: stage census (fig1) per index backend =="
# `repro fig1` under each backend: the generation artifacts (docs, chunks,
# candidates, accepted questions) must not depend on the store backend.
declare -A CENSUS
for backend in flat hnsw ivf; do
    OUT="$(cargo run --release -q -p mcqa-bench --bin repro -- fig1 --scale "${SCALE}" --seed "${SEED}" --index "${backend}" 2>&1)"
    echo "${OUT}"
    # `|| true`: a format drift must reach the diagnostic below, not kill
    # the script via set -e inside the command substitution.
    CENSUS[$backend]="$(grep -oE '[0-9]+ docs → [0-9]+ chunks → [0-9]+ candidates → [0-9]+ accepted' <<<"${OUT}" || true)"
    if [[ -z "${CENSUS[$backend]}" ]]; then
        echo "repro smoke FAILED: no artifact census under --index ${backend}" >&2
        exit 1
    fi
    # The workflow must report the paper's Figure-1 stage census — now
    # including one index-build row per store — with the throughput
    # columns recorded by the runtime metrics.
    for stage in acquire parse chunk embed-chunks index-chunks generate+judge traces \
        embed-traces index-traces-detailed index-traces-focused index-traces-efficient out/s; do
        if ! grep -qF "${stage}" <<<"${OUT}"; then
            echo "repro smoke FAILED: --index ${backend} stage report is missing '${stage}'" >&2
            exit 1
        fi
    done
done
for backend in hnsw ivf; do
    if [[ "${CENSUS[$backend]}" != "${CENSUS[flat]}" ]]; then
        echo "repro smoke FAILED: --index ${backend} artifacts (${CENSUS[$backend]}) differ from flat (${CENSUS[flat]})" >&2
        exit 1
    fi
done

echo "== repro smoke: ANN recall floor =="
RECALL_OUT="$(cargo run --release -q -p mcqa-bench --bin repro -- recall --scale "${SCALE}" --seed "${SEED}")"
echo "${RECALL_OUT}"
for backend in flat hnsw ivf; do
    LINE="$(grep -F "[recall] backend=${backend} " <<<"${RECALL_OUT}" || true)"
    RECALL="$(grep -oE 'recall_at_5=[0-9.]+' <<<"${LINE}" | cut -d= -f2 || true)"
    if [[ -z "${RECALL}" ]]; then
        echo "repro smoke FAILED: no recall line for ${backend}" >&2
        exit 1
    fi
    if ! awk -v r="${RECALL}" 'BEGIN { exit !(r >= 0.9) }'; then
        echo "repro smoke FAILED: ${backend} recall@5 ${RECALL} < 0.9 vs flat baseline" >&2
        exit 1
    fi
done

# The evaluation runs on the same scheduler: `repro all` must surface both
# the pipeline stages (generate+judge included) and the eval stages via
# runtime StageMetrics.
for stage in generate+judge eval-retrieve eval-assemble eval-answer out/s; do
    if ! grep -qF "${stage}" <<<"${ALL_OUT}"; then
        echo "repro smoke FAILED: 'repro all' stage report is missing '${stage}'" >&2
        exit 1
    fi
done

echo "== repro smoke: OK =="
