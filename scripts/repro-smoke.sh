#!/usr/bin/env bash
# Smoke-test the end-to-end paper pipeline: run the `repro` binary over every
# table/figure at ~1% of paper scale with a fixed seed, then re-run the fig1
# smoke under every vector-store backend (flat / hnsw / ivf / pq) and assert
# the generation artifacts are identical and ANN recall stays above the floor.
# Any panic, stage failure, or non-zero exit fails the script (and CI).
#
# Usage: scripts/repro-smoke.sh [scale] [seed]
set -euo pipefail

SCALE="${1:-0.01}"
SEED="${2:-42}"

cd "$(dirname "$0")/.."

echo "== repro smoke: no second scheduler =="
# One scheduler everywhere: a rayon dependency or import reappearing would
# split stages off the runtime metrics surface.
if grep -rn --include='Cargo.toml' --exclude-dir=target 'rayon' . ||
    grep -rn --exclude-dir=target 'use rayon' crates src tests examples; then
    echo "repro smoke FAILED: rayon reappeared in the workspace" >&2
    exit 1
fi

echo "== repro smoke: consumers stay backend-agnostic =="
# The registry redesign's invariant: core and eval program against the
# VectorStore trait + IndexSpec only. A concrete FlatIndex import coming
# back would re-pin the hot path to one backend.
if grep -rn 'FlatIndex' crates/core/src crates/eval/src; then
    echo "repro smoke FAILED: FlatIndex leaked back into core/eval" >&2
    exit 1
fi
# Same invariant for the model layer: core and eval see only the
# ModelEndpoint trait and its role adapters. A concrete simulator type
# reappearing would re-pin the whole call choreography to one backend.
if grep -rn 'TeacherModel\|JudgeModel\|MathClassifier\|ResolvedModel' crates/core/src crates/eval/src; then
    echo "repro smoke FAILED: a concrete model type leaked back into core/eval" >&2
    exit 1
fi
# The serving redesign's invariant: eval retrieval goes through the
# QueryService envelope, never straight into a store's search_batch. A
# direct store search reappearing in eval would fork the query path the
# serving layer unified.
if grep -rnE '(expect_store|\.store)\([^)]*\)[[:space:]]*\.[[:space:]]*search_batch' crates/eval/src; then
    echo "repro smoke FAILED: eval bypasses the query service with a direct search_batch" >&2
    exit 1
fi
# Same invariant for the lexical channel: eval reaches BM25 only through
# QueryMode on the request envelope, never by touching the registry's
# lexical siblings directly.
if grep -rn 'LexicalIndex\|expect_lexical\|lexical_sibling\|\.lexical(' crates/eval/src; then
    echo "repro smoke FAILED: eval reaches the lexical index outside the query service" >&2
    exit 1
fi

echo "== repro smoke: one k-means trainer =="
# Coarse-quantiser training lives in crates/index/src/kmeans.rs (k-means++
# seeding shared by IVF and PQ). The old ad-hoc permutation seeding
# reappearing in ivf.rs would fork the trainers again.
if grep -n 'permutation' crates/index/src/ivf.rs; then
    echo "repro smoke FAILED: ivf.rs regained an ad-hoc seeding path (permutation)" >&2
    exit 1
fi

echo "== repro smoke: scale=${SCALE} seed=${SEED} =="
ALL_OUT="$(cargo run --release -q -p mcqa-bench --bin repro -- all --scale "${SCALE}" --seed "${SEED}")"
echo "${ALL_OUT}"

echo "== repro smoke: stage census (fig1) per index backend =="
# `repro fig1` under each backend: the generation artifacts (docs, chunks,
# candidates, accepted questions) must not depend on the store backend.
declare -A CENSUS
for backend in flat hnsw ivf pq; do
    OUT="$(cargo run --release -q -p mcqa-bench --bin repro -- fig1 --scale "${SCALE}" --seed "${SEED}" --index "${backend}" 2>&1)"
    echo "${OUT}"
    # `|| true`: a format drift must reach the diagnostic below, not kill
    # the script via set -e inside the command substitution.
    CENSUS[$backend]="$(grep -oE '[0-9]+ docs → [0-9]+ chunks → [0-9]+ candidates → [0-9]+ accepted' <<<"${OUT}" || true)"
    if [[ -z "${CENSUS[$backend]}" ]]; then
        echo "repro smoke FAILED: no artifact census under --index ${backend}" >&2
        exit 1
    fi
    # The workflow must report the paper's Figure-1 stage census — one
    # index-build row per store and one model-layer cost row per role the
    # pipeline called — with the throughput columns recorded by the
    # runtime metrics.
    for stage in acquire parse chunk embed-chunks index-chunks generate+judge traces \
        embed-traces index-traces-detailed index-traces-focused index-traces-efficient \
        model-teacher model-judge out/s; do
        if ! grep -qF "${stage}" <<<"${OUT}"; then
            echo "repro smoke FAILED: --index ${backend} stage report is missing '${stage}'" >&2
            exit 1
        fi
    done
done
for backend in hnsw ivf pq; do
    if [[ "${CENSUS[$backend]}" != "${CENSUS[flat]}" ]]; then
        echo "repro smoke FAILED: --index ${backend} artifacts (${CENSUS[$backend]}) differ from flat (${CENSUS[flat]})" >&2
        exit 1
    fi
done

echo "== repro smoke: ANN recall floor =="
RECALL_OUT="$(cargo run --release -q -p mcqa-bench --bin repro -- recall --scale "${SCALE}" --seed "${SEED}")"
echo "${RECALL_OUT}"
for backend in flat hnsw ivf pq; do
    LINE="$(grep -F "[recall] backend=${backend} " <<<"${RECALL_OUT}" || true)"
    RECALL="$(grep -oE 'recall_at_5=[0-9.]+' <<<"${LINE}" | cut -d= -f2 || true)"
    if [[ -z "${RECALL}" ]]; then
        echo "repro smoke FAILED: no recall line for ${backend}" >&2
        exit 1
    fi
    if ! awk -v r="${RECALL}" 'BEGIN { exit !(r >= 0.9) }'; then
        echo "repro smoke FAILED: ${backend} recall@5 ${RECALL} < 0.9 vs flat baseline" >&2
        exit 1
    fi
    # Every [recall] line must also report exact-search throughput and the
    # serialised footprint, so the blocked-kernel win and the compression
    # claim stay greppable regression surfaces.
    if ! grep -qE 'search_qps=[0-9]+' <<<"${LINE}"; then
        echo "repro smoke FAILED: ${backend} recall line reports no search_qps" >&2
        exit 1
    fi
    if ! grep -qE 'mem_bytes=[0-9]+' <<<"${LINE}"; then
        echo "repro smoke FAILED: ${backend} recall line reports no mem_bytes" >&2
        exit 1
    fi
done
# The quantized backend must actually compress: its serialised store must be
# at most 55% of the flat store's, even at smoke scale. The bar is loose here
# because the fixed centroid table (nlist x dim f32s) amortises over only
# ~2k vectors at scale 0.01; at scale 0.1 the ratio is already 2.3x and the
# clustered crossover bench enforces >= 4x at 10^5 vectors.
FLAT_MEM="$(grep -F '[recall] backend=flat ' <<<"${RECALL_OUT}" | grep -oE 'mem_bytes=[0-9]+' | cut -d= -f2)"
PQ_MEM="$(grep -F '[recall] backend=pq ' <<<"${RECALL_OUT}" | grep -oE 'mem_bytes=[0-9]+' | cut -d= -f2)"
if ! awk -v f="${FLAT_MEM}" -v p="${PQ_MEM}" 'BEGIN { exit !(p * 100 <= f * 55) }'; then
    echo "repro smoke FAILED: pq store (${PQ_MEM}B) is not ≤ 55% of the flat store (${FLAT_MEM}B)" >&2
    exit 1
fi
# Flat is the exact baseline: its recall is 1.0 by definition, and anything
# else means the blocked/batched kernel diverged from ground truth.
FLAT_RECALL="$(grep -F '[recall] backend=flat ' <<<"${RECALL_OUT}" | grep -oE 'recall_at_5=[0-9.]+' | cut -d= -f2)"
if ! awk -v r="${FLAT_RECALL}" 'BEGIN { exit !(r == 1.0) }'; then
    echo "repro smoke FAILED: flat recall@5 ${FLAT_RECALL} != 1.0 (exact search is no longer exact)" >&2
    exit 1
fi

echo "== repro smoke: retrieval modes (dense / lexical / hybrid) =="
# Every retrieval mode must report a greppable per-source recall line plus
# the source=all aggregate — the surface the README's hybrid table and the
# ROADMAP memory table read from.
for mode in dense lexical hybrid; do
    for source in chunks traces-detailed traces-focused traces-efficient all; do
        if ! grep -qF "[recall] mode=${mode} source=${source} " <<<"${RECALL_OUT}"; then
            echo "repro smoke FAILED: no [recall] mode=${mode} line for source=${source}" >&2
            exit 1
        fi
    done
done
# The lexical channel reports its resident footprint like every dense
# backend, so the memory table stays uniform across channels.
if ! grep -F '[recall] mode=lexical source=chunks ' <<<"${RECALL_OUT}" |
    grep -qE 'mem_bytes=[0-9]+ bytes_per_vec=[0-9.]+'; then
    echo "repro smoke FAILED: lexical recall line reports no mem_bytes/bytes_per_vec" >&2
    exit 1
fi
# Fusing the lexical channel in must not lose recall vs dense-only, even
# at smoke scale.
DENSE_R="$(grep -F '[recall] mode=dense source=all ' <<<"${RECALL_OUT}" | grep -oE 'recall_at_5=[0-9.]+' | cut -d= -f2)"
HYBRID_R="$(grep -F '[recall] mode=hybrid source=all ' <<<"${RECALL_OUT}" | grep -oE 'recall_at_5=[0-9.]+' | cut -d= -f2)"
if ! awk -v d="${DENSE_R}" -v h="${HYBRID_R}" 'BEGIN { exit !(h >= d) }'; then
    echo "repro smoke FAILED: hybrid recall@5 ${HYBRID_R} < dense-only ${DENSE_R}" >&2
    exit 1
fi

# The evaluation runs on the same scheduler: `repro all` must surface both
# the pipeline stages (generate+judge included) and the eval stages via
# runtime StageMetrics.
for stage in generate+judge eval-retrieve eval-embed-cache eval-assemble eval-answer out/s; do
    if ! grep -qF "${stage}" <<<"${ALL_OUT}"; then
        echo "repro smoke FAILED: 'repro all' stage report is missing '${stage}'" >&2
        exit 1
    fi
done
# The eval-retrieve row must report a measured throughput (questions/s in
# the items/s column): retrieval goes through the timed multi-query path,
# not an unmeasured inline loop.
RETRIEVE_QPS="$(grep -E '^eval-retrieve ' <<<"${ALL_OUT}" | head -1 | awk '{print $7}')"
if [[ -z "${RETRIEVE_QPS}" ]] || ! awk -v q="${RETRIEVE_QPS}" 'BEGIN { exit !(q > 0) }'; then
    echo "repro smoke FAILED: eval-retrieve row reports no q/s (got '${RETRIEVE_QPS}')" >&2
    exit 1
fi

echo "== repro smoke: serving layer =="
# `repro serve-bench` drives the query service end to end: the served
# results must verify bit-identical against direct search, and every mode
# must report a full percentile line with sane ordering and no lost work.
SERVE_OUT="$(cargo run --release -q -p mcqa-bench --bin repro -- serve-bench --scale "${SCALE}" --seed "${SEED}" --serve-requests 128 --serve-concurrency 1,8 2>&1)"
echo "${SERVE_OUT}" | grep '\[serve\]'
if ! grep -qF '[serve] verify=ok' <<<"${SERVE_OUT}"; then
    echo "repro smoke FAILED: serve-bench verification pass did not report verify=ok" >&2
    exit 1
fi
if ! grep -qE '\[serve\] startup .*lazy_ms=[0-9.]+' <<<"${SERVE_OUT}"; then
    echo "repro smoke FAILED: serve-bench reports no lazy-open startup timing" >&2
    exit 1
fi
for mode in baseline batched; do
    while IFS= read -r LINE; do
        for key in requests= submitted= served= rejected= qps= p50_ms= p95_ms= p99_ms= saturation=; do
            if ! grep -qF "${key}" <<<"${LINE}"; then
                echo "repro smoke FAILED: serve-bench ${mode} line is missing '${key}'" >&2
                exit 1
            fi
        done
        SUBMITTED="$(grep -oE 'submitted=[0-9]+' <<<"${LINE}" | cut -d= -f2)"
        SERVED="$(grep -oE ' served=[0-9]+' <<<"${LINE}" | grep -oE '[0-9]+')"
        P50="$(grep -oE 'p50_ms=[0-9.]+' <<<"${LINE}" | cut -d= -f2)"
        P99="$(grep -oE 'p99_ms=[0-9.]+' <<<"${LINE}" | cut -d= -f2)"
        if [[ "${SERVED}" != "${SUBMITTED}" ]]; then
            echo "repro smoke FAILED: serve-bench ${mode} lost work (served=${SERVED} != submitted=${SUBMITTED})" >&2
            exit 1
        fi
        if ! awk -v p50="${P50}" -v p99="${P99}" 'BEGIN { exit !(p99 >= p50 && p50 >= 0) }'; then
            echo "repro smoke FAILED: serve-bench ${mode} percentiles disordered (p50=${P50} p99=${P99})" >&2
            exit 1
        fi
    done < <(grep -F "[serve] mode=${mode} " <<<"${SERVE_OUT}")
    if ! grep -qF "[serve] mode=${mode} " <<<"${SERVE_OUT}"; then
        echo "repro smoke FAILED: serve-bench reports no ${mode} percentile line" >&2
        exit 1
    fi
done

echo "== repro smoke: panel cache + single-request fast path =="
# The batch-of-1 invariant: every index backend scans through the
# cache-aware accessor (EmbeddingMatrix::for_each_panel). The raw
# streaming iterator reappearing under crates/index would fork the scan
# path the resident panel cache unified.
if grep -rn 'for_each_block(' crates/index/src; then
    echo "repro smoke FAILED: crates/index bypasses the panel cache (for_each_block)" >&2
    exit 1
fi
# Every percentile line reports the fast-path observable, and the run
# reports the cache's resident footprint against its budget.
if ! grep -F '[serve] mode=' <<<"${SERVE_OUT}" | grep -qE 'fast_path_hits=[0-9]+'; then
    echo "repro smoke FAILED: serve-bench percentile lines report no fast_path_hits" >&2
    exit 1
fi
if ! grep -qE '\[serve\] panel_cache resident_bytes=[0-9]+ budget=' <<<"${SERVE_OUT}"; then
    echo "repro smoke FAILED: serve-bench reports no panel_cache footprint line" >&2
    exit 1
fi
# Batch-of-1 p50: the resident cache must not be slower than the
# decode-per-query floor it replaced. Compare the default (auto budget)
# against --cache-budget 0 (cache disabled) at concurrency 1, with 5%
# slack for timer noise. At scale 0.1 the gap is ~10x, not 5%.
P50_CACHED="$(grep -F '[serve] mode=baseline concurrency=1 ' <<<"${SERVE_OUT}" | grep -oE 'p50_ms=[0-9.]+' | cut -d= -f2)"
NOCACHE_OUT="$(cargo run --release -q -p mcqa-bench --bin repro -- serve-bench --scale "${SCALE}" --seed "${SEED}" --serve-requests 128 --serve-concurrency 1 --cache-budget 0 2>&1)"
echo "${NOCACHE_OUT}" | grep -E '\[serve\] (mode=|panel_cache)'
P50_UNCACHED="$(grep -F '[serve] mode=baseline concurrency=1 ' <<<"${NOCACHE_OUT}" | grep -oE 'p50_ms=[0-9.]+' | cut -d= -f2)"
if [[ -z "${P50_CACHED}" || -z "${P50_UNCACHED}" ]]; then
    echo "repro smoke FAILED: missing concurrency-1 p50 (cached='${P50_CACHED}' uncached='${P50_UNCACHED}')" >&2
    exit 1
fi
if ! awk -v c="${P50_CACHED}" -v u="${P50_UNCACHED}" 'BEGIN { exit !(c <= u * 1.05) }'; then
    echo "repro smoke FAILED: cached batch-of-1 p50 ${P50_CACHED}ms > uncached ${P50_UNCACHED}ms" >&2
    exit 1
fi
# A zero budget must actually disable residency.
if ! grep -qF '[serve] panel_cache resident_bytes=0 budget=0' <<<"${NOCACHE_OUT}"; then
    echo "repro smoke FAILED: --cache-budget 0 left panels resident" >&2
    exit 1
fi

echo "== repro smoke: saturation-knee sweep =="
# `--sweep` walks the offered open-loop rate to the saturation knee and
# must report the max sustainable rate for the dense and hybrid modes,
# with the seed and arrival discipline on every line.
SWEEP_OUT="$(cargo run --release -q -p mcqa-bench --bin repro -- serve-bench --scale "${SCALE}" --seed "${SEED}" --serve-requests 128 --serve-concurrency 2 --sweep 2>&1)"
echo "${SWEEP_OUT}" | grep '\[serve\] sweep'
for mode in dense hybrid; do
    KNEE="$(grep -E "\[serve\] sweep mode=${mode} .*max_sustainable_qps=[0-9]+" <<<"${SWEEP_OUT}" || true)"
    if [[ -z "${KNEE}" ]]; then
        echo "repro smoke FAILED: sweep reports no max_sustainable_qps for mode=${mode}" >&2
        exit 1
    fi
    for key in "seed=${SEED}" "arrivals=open"; do
        if ! grep -qF "${key}" <<<"${KNEE}"; then
            echo "repro smoke FAILED: sweep knee line for mode=${mode} is missing '${key}'" >&2
            exit 1
        fi
    done
done

echo "== repro smoke: one ingest planner =="
# The incremental-ingest invariant: the cold build and the incremental
# re-run flow through the same planner (`run_planned`), so there is
# exactly one generation call site for the single bookkeeping path to
# guard. A second call site reappearing means a fork of the plan logic.
if [[ "$(grep -c 'generate_question_batch' crates/core/src/pipeline.rs)" != "1" ]]; then
    echo "repro smoke FAILED: pipeline.rs must call generate_question_batch exactly once (cold and incremental share the planner)" >&2
    exit 1
fi
if ! grep -q 'fn run_planned' crates/core/src/pipeline.rs; then
    echo "repro smoke FAILED: pipeline.rs lost the shared ingest planner (run_planned)" >&2
    exit 1
fi

echo "== repro smoke: incremental ingest (no-op edit batch) =="
# An unchanged corpus must re-run nothing: every document skipped, zero
# tombstones, zero compactions, and the post-edit indexes verify
# identical against the cold rebuild.
INGEST0_OUT="$(cargo run --release -q -p mcqa-bench --bin repro -- ingest --scale "${SCALE}" --seed "${SEED}" --edits 0 2>&1)"
echo "${INGEST0_OUT}" | grep '\[ingest\]'
for want in "edits=0" "docs_added=0" "docs_modified=0" "docs_removed=0" "chunks_rerun=0" \
    "tombstones_dense=0" "tombstones_lexical=0" "compactions=0" "verify=identical"; do
    if ! grep -qF "${want}" <<<"${INGEST0_OUT}"; then
        echo "repro smoke FAILED: no-op ingest census is missing '${want}'" >&2
        exit 1
    fi
done
SCANNED="$(grep -F '[ingest] docs_scanned=' <<<"${INGEST0_OUT}" | cut -d= -f2)"
SKIPPED="$(grep -F '[ingest] docs_skipped=' <<<"${INGEST0_OUT}" | cut -d= -f2)"
if [[ -z "${SCANNED}" || "${SCANNED}" != "${SKIPPED}" ]]; then
    echo "repro smoke FAILED: no-op ingest must skip 100% of documents (scanned=${SCANNED} skipped=${SKIPPED})" >&2
    exit 1
fi

echo "== repro smoke: incremental ingest (single-document edit) =="
# One edited document must re-run only its own slices: exactly one
# document changed, the rest of the chunk set reused, and the re-run
# indexes still verify against the cold rebuild.
INGEST1_OUT="$(cargo run --release -q -p mcqa-bench --bin repro -- ingest --scale "${SCALE}" --seed "${SEED}" --edits 1 2>&1)"
echo "${INGEST1_OUT}" | grep '\[ingest\]'
if ! grep -qF 'verify=identical' <<<"${INGEST1_OUT}"; then
    echo "repro smoke FAILED: single-edit ingest did not verify against the cold rebuild" >&2
    exit 1
fi
ADDED="$(grep -F '[ingest] docs_added=' <<<"${INGEST1_OUT}" | cut -d= -f2)"
MODIFIED="$(grep -F '[ingest] docs_modified=' <<<"${INGEST1_OUT}" | cut -d= -f2)"
REMOVED="$(grep -F '[ingest] docs_removed=' <<<"${INGEST1_OUT}" | cut -d= -f2)"
if [[ "$((ADDED + MODIFIED + REMOVED))" != "1" ]]; then
    echo "repro smoke FAILED: a 1-op edit batch must change exactly one document (add=${ADDED} mod=${MODIFIED} rm=${REMOVED})" >&2
    exit 1
fi
TOTAL="$(grep -F '[ingest] chunks_total=' <<<"${INGEST1_OUT}" | cut -d= -f2)"
RERUN="$(grep -F '[ingest] chunks_rerun=' <<<"${INGEST1_OUT}" | cut -d= -f2)"
REUSED="$(grep -F '[ingest] chunks_reused=' <<<"${INGEST1_OUT}" | cut -d= -f2)"
if ! awk -v t="${TOTAL}" -v r="${RERUN}" -v u="${REUSED}" \
    'BEGIN { exit !(u > 0 && t > 0 && r * 10 < t) }'; then
    echo "repro smoke FAILED: a single edit re-ran too much (rerun=${RERUN} of ${TOTAL}, reused=${REUSED})" >&2
    exit 1
fi
if ! grep -qE '\[ingest\] full_secs=[0-9.]+ incremental_secs=[0-9.]+ verify_secs=[0-9.]+ speedup=[0-9.]+' <<<"${INGEST1_OUT}"; then
    echo "repro smoke FAILED: ingest reports no wall-clock comparison line" >&2
    exit 1
fi

echo "== repro smoke: golden artifact census (scale 0.02, seed 42) =="
# The golden determinism bar: the sim-backend generation artifacts at the
# pinned (scale, seed) must stay byte-identical across refactors. Captured
# from the pre-ModelEndpoint pipeline; the full-artifact hashes behind the
# same run are pinned in tests/golden.rs at the tiny config.
GOLDEN_OUT="$(cargo run --release -q -p mcqa-bench --bin repro -- fig1 --scale 0.02 --seed 42 2>&1)"
GOLDEN_CENSUS="451 docs → 3760 chunks → 3760 candidates → 430 accepted"
if ! grep -qF "${GOLDEN_CENSUS}" <<<"${GOLDEN_OUT}"; then
    echo "repro smoke FAILED: scale-0.02 census drifted from the golden run (${GOLDEN_CENSUS})" >&2
    grep -oE '[0-9]+ docs → [0-9]+ chunks → [0-9]+ candidates → [0-9]+ accepted' <<<"${GOLDEN_OUT}" >&2 || true
    exit 1
fi

echo "== repro smoke: model-layer call-ledger census =="
# `repro models` is the cost-accounting surface: every role must report
# greppable calls / token-estimate / cache-hit-rate key=value lines, and
# the evaluation must actually exercise the response cache (the no-math
# re-answer pass is served from it).
MODELS_OUT="$(cargo run --release -q -p mcqa-bench --bin repro -- models --scale "${SCALE}" --seed "${SEED}" 2>&1)"
echo "${MODELS_OUT}" | grep '\[models\]'
# `reranker` rides the same census: `repro models` replays a short
# hybrid+rerank retrieval bundle so the cross-encoder's traffic is priced
# by the shared ledger alongside every other role.
for role in teacher judge classifier answerer reranker total; do
    LINE="$(grep -F "[models] backend=sim role=${role} " <<<"${MODELS_OUT}" || true)"
    if [[ -z "${LINE}" ]]; then
        echo "repro smoke FAILED: no ledger line for role=${role}" >&2
        exit 1
    fi
    for key in calls= batches= cache_hits= hit_rate= tokens_in= tokens_out=; do
        if ! grep -qF "${key}" <<<"${LINE}"; then
            echo "repro smoke FAILED: role=${role} ledger line is missing '${key}'" >&2
            exit 1
        fi
    done
done
ANSWER_HITS="$(grep -F '[models] backend=sim role=answerer ' <<<"${MODELS_OUT}" | grep -oE 'cache_hits=[0-9]+' | cut -d= -f2)"
if [[ "${ANSWER_HITS}" -le 0 ]]; then
    echo "repro smoke FAILED: the response cache never served an answer (hits=${ANSWER_HITS})" >&2
    exit 1
fi

echo "== repro smoke: OK =="
