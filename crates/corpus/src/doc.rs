//! The logical document model and its provenance oracle.

use mcqa_ontology::FactId;
use mcqa_ontology::Topic;
use serde::{Deserialize, Serialize};

/// Stable document identifier within one corpus library.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DocId(pub u32);

/// Whether a document is a full paper or only an abstract.
///
/// The paper's corpus mixes 14,115 open-access full texts with 8,433
/// abstract-only records from Semantic Scholar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DocKind {
    /// Full text with all sections.
    FullPaper,
    /// Title + abstract only.
    Abstract,
}

/// One section of a document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Section {
    /// Section heading ("Abstract", "Introduction", ...).
    pub title: String,
    /// Paragraphs; each paragraph is a list of sentences.
    pub paragraphs: Vec<Vec<String>>,
}

impl Section {
    /// The section's text: sentences joined by spaces, paragraphs by
    /// blank lines.
    pub fn text(&self) -> String {
        self.paragraphs.iter().map(|p| p.join(" ")).collect::<Vec<_>>().join("\n\n")
    }
}

/// A ground-truth record: fact `fact` is stated verbatim as `sentence`
/// inside section `section` of the document.
///
/// This is the oracle that makes end-to-end provenance *testable*: a chunk
/// supports a fact iff it contains one of the fact's mention sentences.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FactMention {
    /// The mentioned fact.
    pub fact: FactId,
    /// Index of the containing section.
    pub section: usize,
    /// The exact realised sentence.
    pub sentence: String,
}

/// A complete logical document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Document {
    /// Library-local id.
    pub id: DocId,
    /// Full paper or abstract.
    pub kind: DocKind,
    /// Title.
    pub title: String,
    /// Author surnames.
    pub authors: Vec<String>,
    /// Publication year.
    pub year: u16,
    /// Venue name.
    pub venue: String,
    /// Primary topic.
    pub topic: Topic,
    /// Search keywords (topic keywords + salient entity names).
    pub keywords: Vec<String>,
    /// Ordered sections.
    pub sections: Vec<Section>,
    /// Provenance oracle: which facts are stated where.
    pub mentions: Vec<FactMention>,
}

impl Document {
    /// The document's full text: sections separated by headings.
    pub fn full_text(&self) -> String {
        let mut out = String::new();
        for s in &self.sections {
            out.push_str(&s.title);
            out.push_str("\n\n");
            out.push_str(&s.text());
            out.push_str("\n\n");
        }
        out
    }

    /// Total sentence count across sections.
    pub fn sentence_count(&self) -> usize {
        self.sections.iter().map(|s| s.paragraphs.iter().map(Vec::len).sum::<usize>()).sum()
    }

    /// Verify the oracle: every mention's sentence must appear verbatim in
    /// its claimed section. Returns the ids of violated mentions.
    pub fn verify_mentions(&self) -> Vec<FactId> {
        let mut bad = Vec::new();
        for m in &self.mentions {
            let ok = self
                .sections
                .get(m.section)
                .map(|s| s.paragraphs.iter().any(|p| p.iter().any(|sent| sent == &m.sentence)))
                .unwrap_or(false);
            if !ok {
                bad.push(m.fact);
            }
        }
        bad
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_doc() -> Document {
        Document {
            id: DocId(7),
            kind: DocKind::FullPaper,
            title: "A study".into(),
            authors: vec!["Verlan".into()],
            year: 2024,
            venue: "J Synth Radiobiol".into(),
            topic: Topic::DnaRepair,
            keywords: vec!["repair".into()],
            sections: vec![
                Section {
                    title: "Abstract".into(),
                    paragraphs: vec![vec!["First sentence.".into(), "KEY fact sentence.".into()]],
                },
                Section {
                    title: "Results".into(),
                    paragraphs: vec![vec!["Another sentence.".into()]],
                },
            ],
            mentions: vec![FactMention {
                fact: FactId(3),
                section: 0,
                sentence: "KEY fact sentence.".into(),
            }],
        }
    }

    #[test]
    fn full_text_contains_sections_in_order() {
        let d = tiny_doc();
        let t = d.full_text();
        let ia = t.find("Abstract").unwrap();
        let ir = t.find("Results").unwrap();
        assert!(ia < ir);
        assert!(t.contains("KEY fact sentence."));
    }

    #[test]
    fn sentence_count() {
        assert_eq!(tiny_doc().sentence_count(), 3);
    }

    #[test]
    fn verify_mentions_ok_and_violated() {
        let mut d = tiny_doc();
        assert!(d.verify_mentions().is_empty());
        d.mentions.push(FactMention {
            fact: FactId(9),
            section: 1,
            sentence: "Not actually present.".into(),
        });
        assert_eq!(d.verify_mentions(), vec![FactId(9)]);
        // Out-of-range section is a violation too, not a panic.
        d.mentions.push(FactMention { fact: FactId(10), section: 5, sentence: "x".into() });
        assert_eq!(d.verify_mentions(), vec![FactId(9), FactId(10)]);
    }

    #[test]
    fn section_text_joins_paragraphs() {
        let s = Section {
            title: "T".into(),
            paragraphs: vec![vec!["A.".into(), "B.".into()], vec!["C.".into()]],
        };
        assert_eq!(s.text(), "A. B.\n\nC.");
    }

    #[test]
    fn serde_roundtrip() {
        let d = tiny_doc();
        let s = serde_json::to_string(&d).unwrap();
        let back: Document = serde_json::from_str(&s).unwrap();
        assert_eq!(back, d);
    }
}
