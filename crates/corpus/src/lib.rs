//! Synthetic scientific corpus: document model, paper synthesis, the SPDF
//! binary container, and a Semantic-Scholar-style acquisition simulator.
//!
//! The paper ingests 14,115 full-text papers and 8,433 abstracts fetched
//! from the Semantic Scholar API, parses the PDFs with AdaParse, and chunks
//! the text. Offline, we replace that pile with a *generative* corpus whose
//! ground truth is known:
//!
//! * [`doc`] — the logical document model (sections, paragraphs, fact
//!   mentions with exact realised sentences — the provenance oracle).
//! * [`synth`] — deterministic synthesis of full papers and abstracts from
//!   an [`mcqa_ontology::Ontology`]: topic-coherent fact mentions woven
//!   into keyword filler prose, with per-document paraphrase variation.
//! * [`compress`] — `SPZ`, a small LZ77-family codec used for SPDF text
//!   streams (real decompression failures for the parser to recover from).
//! * [`spdf`] — the SPDF binary container: magic, versioned header, typed
//!   object table (JSON metadata + compressed text streams), checksummed
//!   trailer. A writer, a strict reader, and a salvage reader.
//! * [`acquire`] — the corpus library + keyword-search/download API
//!   simulating Semantic Scholar (some documents are open-access full
//!   texts, some only expose abstracts), plus corruption injection to give
//!   the parser realistic failure modes.

pub mod acquire;
pub mod compress;
pub mod doc;
pub mod edit;
pub mod spdf;
pub mod synth;

pub use acquire::{AcquisitionConfig, CorpusLibrary, SearchHit};
pub use doc::{DocId, DocKind, Document, FactMention, Section};
pub use edit::{EditBatch, EditOp};
pub use spdf::{SpdfError, SpdfObject, SpdfReader, SpdfWriter};
pub use synth::SynthConfig;
