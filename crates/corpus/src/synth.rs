//! Deterministic synthesis of papers and abstracts from the ontology.
//!
//! Each document gets a primary topic, a salience-weighted draw of facts
//! from that topic, and prose that weaves exact fact statements (the
//! provenance oracle) into keyword filler. Paraphrase variants differ per
//! document, so the same fact is worded differently across the corpus —
//! that is precisely what makes chunk retrieval imperfect, as in real
//! literature.

use mcqa_ontology::{realize, Fact, Ontology, Topic};
use mcqa_util::KeyedStochastic;
use serde::{Deserialize, Serialize};

use crate::doc::{DocId, DocKind, Document, FactMention, Section};

/// Configuration for document synthesis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SynthConfig {
    /// Seed (independent of the ontology seed).
    pub seed: u64,
    /// Facts mentioned per full paper (upper bound; availability-limited).
    pub facts_per_paper: usize,
    /// Facts mentioned per abstract.
    pub facts_per_abstract: usize,
    /// Filler sentences interleaved per fact sentence (approx.).
    pub filler_per_fact: usize,
}

impl Default for SynthConfig {
    fn default() -> Self {
        Self { seed: 42, facts_per_paper: 12, facts_per_abstract: 3, filler_per_fact: 4 }
    }
}

const SURNAMES: &[&str] = &[
    "Hartwell",
    "Okafor",
    "Lindqvist",
    "Marchetti",
    "Stolz",
    "Ferreira",
    "Nakata",
    "Osei",
    "Bergstrom",
    "Callahan",
    "Deveraux",
    "Iwashita",
    "Kovacs",
    "Leclerc",
    "Moravec",
    "Ngata",
];

const VENUES: &[&str] = &[
    "Journal of Synthetic Radiobiology",
    "Radiation Research Letters",
    "Annals of Tumour Biology",
    "International Journal of Radiation Modelling",
    "Clinical Radiobiology Reports",
];

const SECTION_PLAN: &[&str] = &["Abstract", "Introduction", "Methods", "Results", "Discussion"];

/// Synthesise document `doc_id` of `kind` from `ontology`.
///
/// Deterministic in `(config.seed, doc_id)` and independent of generation
/// order, so corpora can be built in parallel.
pub fn synthesize(
    ontology: &Ontology,
    config: &SynthConfig,
    doc_id: DocId,
    kind: DocKind,
) -> Document {
    let rng = KeyedStochastic::new(config.seed ^ 0xD0C5_EED5);
    let d = doc_id.0.to_string();

    let topic = Topic::from_index(rng.below(Topic::ALL.len(), &["topic", &d]));
    let fact_budget = match kind {
        DocKind::FullPaper => config.facts_per_paper,
        DocKind::Abstract => config.facts_per_abstract,
    };

    // Salience-weighted fact draw from the topic (falls back to any topic
    // when the topical pool is thin).
    let pool: Vec<&Fact> = {
        let idxs = ontology.facts_in_topic(topic);
        if idxs.len() >= fact_budget {
            idxs.iter().map(|&i| &ontology.facts()[i]).collect()
        } else {
            ontology.facts().iter().collect()
        }
    };
    let weights: Vec<f64> = pool.iter().map(|f| 0.15 + f.salience).collect();
    let mut chosen: Vec<&Fact> = Vec::new();
    let mut used = std::collections::HashSet::new();
    let mut draw = 0u64;
    while chosen.len() < fact_budget && used.len() < pool.len() {
        let key = format!("{d}:{draw}");
        draw += 1;
        if draw > (fact_budget as u64 + pool.len() as u64) * 4 {
            break;
        }
        if let Some(i) = rng.weighted_choice(&weights, &["fact", &key]) {
            if used.insert(i) {
                chosen.push(pool[i]);
            }
        }
    }

    // Title references the first fact's subject.
    let reg = ontology.registry();
    let title = if let Some(f0) = chosen.first() {
        let subj = &reg.get(f0.subject).name;
        let kw = topic.keywords()[rng.below(topic.keywords().len(), &["titlekw", &d])];
        match rng.below(3, &["titleform", &d]) {
            0 => format!("The role of {subj} in {}: implications for {kw}", topic.name()),
            1 => format!("{subj} and {kw} in {}", topic.name()),
            _ => format!("Revisiting {kw}: a study of {subj} in {}", topic.name()),
        }
    } else {
        format!("Advances in {}", topic.name())
    };

    let n_authors = 2 + rng.below(5, &["nauth", &d]);
    let authors: Vec<String> = (0..n_authors)
        .map(|i| SURNAMES[rng.below(SURNAMES.len(), &["auth", &d, &i.to_string()])].to_string())
        .collect();
    let year = 2015 + rng.below(10, &["year", &d]) as u16;
    let venue = VENUES[rng.below(VENUES.len(), &["venue", &d])].to_string();

    // Distribute facts across sections.
    let section_titles: &[&str] = match kind {
        DocKind::FullPaper => SECTION_PLAN,
        DocKind::Abstract => &SECTION_PLAN[..1],
    };
    let mut sections: Vec<Section> = Vec::with_capacity(section_titles.len());
    let mut mentions: Vec<FactMention> = Vec::new();

    // Round-robin facts over content sections (all but Methods get facts;
    // Methods is pure filler, as in real papers).
    let content_sections: Vec<usize> = section_titles
        .iter()
        .enumerate()
        .filter(|(_, t)| **t != "Methods")
        .map(|(i, _)| i)
        .collect();

    let mut fact_iter = chosen.iter().enumerate().peekable();
    for (si, title) in section_titles.iter().enumerate() {
        let n_paragraphs = match kind {
            DocKind::Abstract => 1,
            DocKind::FullPaper => 1 + rng.below(3, &["npara", &d, title]),
        };
        let mut paragraphs = Vec::with_capacity(n_paragraphs);
        for pi in 0..n_paragraphs {
            let mut sentences: Vec<String> = Vec::new();
            let pkey = format!("{d}:{si}:{pi}");
            // Opening filler.
            sentences.push(filler_sentence(&rng, ontology, topic, &pkey, 0));
            // Facts assigned to this (section, paragraph).
            let facts_here = if content_sections.contains(&si) {
                let per_para = (chosen.len() / content_sections.len().max(1)).max(1);
                let mut taken = Vec::new();
                for _ in 0..per_para {
                    if let Some((fi, f)) = fact_iter.peek().copied() {
                        // Only consume if this is a content paragraph.
                        fact_iter.next();
                        taken.push((fi, f));
                    }
                }
                taken
            } else {
                Vec::new()
            };
            for (fi, fact) in facts_here {
                // Paraphrase variant unique to (doc, fact).
                let variant = rng.raw(&["variant", &d, &fi.to_string()]);
                let sentence = realize::statement(fact, reg, variant);
                mentions.push(FactMention {
                    fact: fact.id,
                    section: si,
                    sentence: sentence.clone(),
                });
                sentences.push(sentence);
                for k in 0..config.filler_per_fact {
                    sentences.push(filler_sentence(
                        &rng,
                        ontology,
                        topic,
                        &pkey,
                        (fi * 16 + k + 1) as u64,
                    ));
                }
            }
            // Closing filler.
            sentences.push(filler_sentence(&rng, ontology, topic, &pkey, 9999));
            paragraphs.push(sentences);
        }
        sections.push(Section { title: title.to_string(), paragraphs });
    }

    // Keywords: topic keywords + mentioned subjects.
    let mut keywords: Vec<String> =
        topic.keywords().iter().take(4).map(|s| s.to_string()).collect();
    for f in chosen.iter().take(4) {
        keywords.push(reg.get(f.subject).name.clone());
    }

    Document { id: doc_id, kind, title, authors, year, venue, topic, keywords, sections, mentions }
}

/// A filler sentence: topically plausible prose that states no ontology
/// fact (it never mentions an entity *pair*, only single entities or
/// keywords, so it can never collide with a fact statement).
fn filler_sentence(
    rng: &KeyedStochastic,
    ontology: &Ontology,
    topic: Topic,
    pkey: &str,
    slot: u64,
) -> String {
    let kws = topic.keywords();
    let s = slot.to_string();
    let kw1 = kws[rng.below(kws.len(), &["kw1", pkey, &s])];
    let kw2 = kws[rng.below(kws.len(), &["kw2", pkey, &s])];
    let quant = 5 + rng.below(90, &["q", pkey, &s]);
    match rng.below(8, &["form", pkey, &s]) {
        0 => format!("Recent work has highlighted the contribution of {kw1} to {kw2}."),
        1 => format!("We observed a {quant}% change in markers associated with {kw1}."),
        2 => format!("These findings are consistent with prior reports on {kw2}."),
        3 => format!("The interplay between {kw1} and {kw2} remains incompletely understood."),
        4 => format!("Quantitative assays confirmed substantial heterogeneity in {kw1}."),
        5 => format!("Further studies are required to delineate the kinetics of {kw2}."),
        6 => format!("Samples were analysed for {kw1} at {quant} hours post-irradiation."),
        _ => {
            let n = ontology.facts().len();
            if n == 0 {
                format!("Control conditions showed no change in {kw1}.")
            } else {
                let f = &ontology.facts()[rng.below(n, &["fx", pkey, &s])];
                let ent = &ontology.registry().get(f.subject).name;
                format!("Expression of {ent} varied markedly across samples.")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcqa_ontology::OntologyConfig;

    fn small_ontology() -> Ontology {
        Ontology::generate(&OntologyConfig {
            seed: 42,
            entities_per_kind: 30,
            qualitative_facts: 350,
            quantitative_facts: 20,
        })
    }

    #[test]
    fn deterministic_and_order_independent() {
        let ont = small_ontology();
        let cfg = SynthConfig::default();
        let a = synthesize(&ont, &cfg, DocId(5), DocKind::FullPaper);
        let b = synthesize(&ont, &cfg, DocId(5), DocKind::FullPaper);
        assert_eq!(a, b);
        // Generating doc 4 first must not change doc 5.
        let _ = synthesize(&ont, &cfg, DocId(4), DocKind::FullPaper);
        let c = synthesize(&ont, &cfg, DocId(5), DocKind::FullPaper);
        assert_eq!(a, c);
    }

    #[test]
    fn oracle_is_sound() {
        let ont = small_ontology();
        let cfg = SynthConfig::default();
        for i in 0..20 {
            let kind = if i % 3 == 0 { DocKind::Abstract } else { DocKind::FullPaper };
            let doc = synthesize(&ont, &cfg, DocId(i), kind);
            assert!(doc.verify_mentions().is_empty(), "doc {i}: oracle violated");
            assert!(!doc.mentions.is_empty(), "doc {i}: no facts mentioned");
        }
    }

    #[test]
    fn full_papers_have_all_sections_abstracts_one() {
        let ont = small_ontology();
        let cfg = SynthConfig::default();
        let paper = synthesize(&ont, &cfg, DocId(1), DocKind::FullPaper);
        assert_eq!(paper.sections.len(), 5);
        assert_eq!(paper.sections[0].title, "Abstract");
        let abs = synthesize(&ont, &cfg, DocId(2), DocKind::Abstract);
        assert_eq!(abs.sections.len(), 1);
    }

    #[test]
    fn papers_mention_more_facts_than_abstracts() {
        let ont = small_ontology();
        let cfg = SynthConfig::default();
        let mut paper_facts = 0usize;
        let mut abs_facts = 0usize;
        for i in 0..10 {
            paper_facts += synthesize(&ont, &cfg, DocId(i), DocKind::FullPaper).mentions.len();
            abs_facts += synthesize(&ont, &cfg, DocId(100 + i), DocKind::Abstract).mentions.len();
        }
        assert!(paper_facts > abs_facts * 2, "{paper_facts} vs {abs_facts}");
    }

    #[test]
    fn different_docs_paraphrase_same_fact_differently() {
        let ont = small_ontology();
        let cfg = SynthConfig { facts_per_paper: 40, ..Default::default() };
        // Find a fact mentioned by two different documents.
        let mut seen: std::collections::HashMap<mcqa_ontology::FactId, (u32, String)> =
            std::collections::HashMap::new();
        let mut found_pair = false;
        'outer: for i in 0..60 {
            let doc = synthesize(&ont, &cfg, DocId(i), DocKind::FullPaper);
            for m in &doc.mentions {
                if let Some((other_doc, other_sentence)) = seen.get(&m.fact) {
                    if *other_doc != i {
                        found_pair = true;
                        // Different docs usually phrase the fact differently
                        // (4 templates, so collisions are possible; just
                        // assert we found a cross-doc mention).
                        let _ = other_sentence;
                        break 'outer;
                    }
                }
                seen.insert(m.fact, (i, m.sentence.clone()));
            }
        }
        assert!(found_pair, "no fact restated across documents — salience model broken");
    }

    #[test]
    fn metadata_plausible() {
        let ont = small_ontology();
        let doc = synthesize(&ont, &SynthConfig::default(), DocId(3), DocKind::FullPaper);
        assert!(!doc.title.is_empty());
        assert!(doc.authors.len() >= 2);
        assert!((2015..2030).contains(&doc.year));
        assert!(!doc.keywords.is_empty());
        assert!(doc.sentence_count() > 20);
    }

    #[test]
    fn filler_never_states_facts() {
        // Filler sentences must not accidentally contain a subject+object
        // pair of any fact (that would corrupt the oracle).
        let ont = small_ontology();
        let doc = synthesize(&ont, &SynthConfig::default(), DocId(11), DocKind::FullPaper);
        let oracle: std::collections::HashSet<&String> =
            doc.mentions.iter().map(|m| &m.sentence).collect();
        let reg = ont.registry();
        for sec in &doc.sections {
            for para in &sec.paragraphs {
                for sent in para {
                    if oracle.contains(sent) {
                        continue; // a genuine fact statement
                    }
                    for f in ont.facts() {
                        let s = &reg.get(f.subject).name;
                        let o = &reg.get(f.object).name;
                        assert!(
                            !(sent.contains(s.as_str()) && sent.contains(o.as_str())),
                            "filler sentence states fact pair: {sent}"
                        );
                    }
                }
            }
        }
    }
}
