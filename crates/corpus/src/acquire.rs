//! Corpus acquisition: a Semantic-Scholar-style library simulator.
//!
//! The paper downloads 14,115 full texts and 8,433 abstracts by keyword
//! search. [`CorpusLibrary`] plays that role: it synthesises the whole
//! document population up front (batched over the caller's
//! [`Executor`]), renders each document to SPDF bytes, optionally corrupts
//! a configurable fraction (real PDF piles are never clean — this feeds
//! the parser's fallback path), and exposes keyword search + download.

use mcqa_ontology::Ontology;
use mcqa_runtime::{run_stage_batched, Executor};
use mcqa_util::KeyedStochastic;
use serde::{Deserialize, Serialize};

use crate::doc::{DocId, DocKind, Document};
use crate::spdf::SpdfWriter;
use crate::synth::{synthesize, SynthConfig};

/// How a blob was damaged (if at all).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Corruption {
    /// Intact file.
    None,
    /// Tail truncated (interrupted download).
    Truncated,
    /// Random byte flipped in the body.
    BitFlip,
    /// Checksum trailer zeroed (damaged metadata).
    BadChecksum,
}

/// Acquisition configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AcquisitionConfig {
    /// Seed for corruption and library assembly.
    pub seed: u64,
    /// Number of full papers.
    pub full_papers: usize,
    /// Number of abstract-only records.
    pub abstracts: usize,
    /// Fraction of blobs damaged in transit (0..1).
    pub corruption_rate: f64,
    /// Document synthesis settings.
    pub synth: SynthConfig,
}

impl Default for AcquisitionConfig {
    fn default() -> Self {
        Self {
            seed: 42,
            // Paper scale × 0.1 by default (14,115 / 8,433 at 1.0).
            full_papers: 1_412,
            abstracts: 843,
            corruption_rate: 0.02,
            synth: SynthConfig::default(),
        }
    }
}

impl AcquisitionConfig {
    /// The paper's corpus size (14,115 papers + 8,433 abstracts) scaled by
    /// `scale`, with the default corruption rate.
    pub fn paper_scale(scale: f64, seed: u64) -> Self {
        Self {
            seed,
            full_papers: (14_115_f64 * scale).round().max(1.0) as usize,
            abstracts: (8_433_f64 * scale).round().max(1.0) as usize,
            corruption_rate: 0.02,
            synth: SynthConfig { seed, ..SynthConfig::default() },
        }
    }
}

/// One search result.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchHit {
    /// Matching document.
    pub id: DocId,
    /// Keyword-overlap score (higher is better).
    pub score: f64,
}

/// The assembled corpus library.
///
/// Slots are append-only: removals tombstone the slot (so `DocId`s stay
/// stable and a later upsert of the same id is unambiguous) and edits via
/// [`crate::edit::EditBatch`] mutate documents in place or append new
/// ones. `len()` counts every slot ever allocated; `live_len()` counts
/// documents that still exist.
pub struct CorpusLibrary {
    docs: Vec<Document>,
    blobs: Vec<Vec<u8>>,
    corruption: Vec<Corruption>,
    deleted: Vec<bool>,
    config: AcquisitionConfig,
    exec: Executor,
}

impl Clone for CorpusLibrary {
    fn clone(&self) -> Self {
        Self {
            docs: self.docs.clone(),
            blobs: self.blobs.clone(),
            corruption: self.corruption.clone(),
            deleted: self.deleted.clone(),
            config: self.config.clone(),
            exec: self.exec.clone(),
        }
    }
}

impl CorpusLibrary {
    /// Build the library on `exec`'s pool: synthesise every document
    /// (batched), render to SPDF, and apply transit corruption
    /// deterministically. The executor is retained for later
    /// [`CorpusLibrary::search`] calls.
    pub fn build(ontology: &Ontology, config: &AcquisitionConfig, exec: &Executor) -> Self {
        let total = config.full_papers + config.abstracts;
        let (doc_results, _) =
            run_stage_batched(exec, "synthesize", (0..total as u32).collect(), 0, |i| {
                let kind = if (i as usize) < config.full_papers {
                    DocKind::FullPaper
                } else {
                    DocKind::Abstract
                };
                Ok::<_, String>(synthesize(ontology, &config.synth, DocId(i), kind))
            });
        let docs: Vec<Document> =
            doc_results.into_iter().map(|r| r.expect("synthesis cannot fail")).collect();

        let rng = KeyedStochastic::new(config.seed ^ 0xC0_22_06_10);
        let (blob_results, _) =
            run_stage_batched(exec, "render", (0..docs.len()).collect(), 0, |i| {
                let doc = &docs[i];
                let mut bytes = SpdfWriter::write_document(doc);
                let key = doc.id.0.to_string();
                let corruption = if rng.bernoulli(config.corruption_rate, &["corrupt?", &key]) {
                    match rng.below(3, &["mode", &key]) {
                        0 => {
                            let keep = bytes.len() / 2 + rng.below(bytes.len() / 3, &["cut", &key]);
                            bytes.truncate(keep);
                            Corruption::Truncated
                        }
                        1 => {
                            let at = 10 + rng.below(bytes.len().saturating_sub(20), &["pos", &key]);
                            bytes[at] ^= 0x40;
                            Corruption::BitFlip
                        }
                        _ => {
                            let n = bytes.len();
                            for b in &mut bytes[n - 8..] {
                                *b = 0;
                            }
                            Corruption::BadChecksum
                        }
                    }
                } else {
                    Corruption::None
                };
                Ok::<_, String>((bytes, corruption))
            });

        let (blobs, corruption): (Vec<_>, Vec<_>) =
            blob_results.into_iter().map(|r| r.expect("rendering cannot fail")).unzip();
        let deleted = vec![false; docs.len()];
        Self { docs, blobs, corruption, deleted, config: config.clone(), exec: exec.clone() }
    }

    /// Number of document slots ever allocated (including deleted ones —
    /// `DocId`s index into this range).
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// True when the library holds no document slots.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Number of live (non-deleted) documents.
    pub fn live_len(&self) -> usize {
        self.deleted.iter().filter(|d| !**d).count()
    }

    /// Ids of all live documents, ascending.
    pub fn live_ids(&self) -> Vec<DocId> {
        (0..self.docs.len() as u32).map(DocId).filter(|id| !self.is_deleted(*id)).collect()
    }

    /// True when the slot exists but the document was removed by an edit.
    pub fn is_deleted(&self, id: DocId) -> bool {
        self.deleted.get(id.0 as usize).copied().unwrap_or(false)
    }

    /// Ground-truth logical document (the oracle side; the pipeline should
    /// use [`CorpusLibrary::download`] + parsing for the data side). `None`
    /// for out-of-range or deleted ids.
    pub fn document(&self, id: DocId) -> Option<&Document> {
        if self.is_deleted(id) {
            return None;
        }
        self.docs.get(id.0 as usize)
    }

    /// All document slots, including deleted ones (filter with
    /// [`CorpusLibrary::is_deleted`] when liveness matters).
    pub fn documents(&self) -> &[Document] {
        &self.docs
    }

    /// Download a document's SPDF bytes (possibly damaged in transit).
    /// `None` for out-of-range or deleted ids.
    pub fn download(&self, id: DocId) -> Option<&[u8]> {
        if self.is_deleted(id) {
            return None;
        }
        self.blobs.get(id.0 as usize).map(Vec::as_slice)
    }

    /// The corruption applied to a blob (ground truth for parser tests).
    pub fn corruption(&self, id: DocId) -> Option<Corruption> {
        self.corruption.get(id.0 as usize).copied()
    }

    /// Number of corrupted blobs.
    pub fn corrupted_count(&self) -> usize {
        self.corruption.iter().filter(|c| **c != Corruption::None).count()
    }

    /// The build configuration.
    pub fn config(&self) -> &AcquisitionConfig {
        &self.config
    }

    /// Replace a live slot's document and blob in place (edit support).
    pub(crate) fn slot_replace(&mut self, id: DocId, doc: Document, blob: Vec<u8>) {
        let i = id.0 as usize;
        assert!(i < self.docs.len() && !self.deleted[i], "slot_replace on missing doc {id:?}");
        self.docs[i] = doc;
        self.blobs[i] = blob;
        self.corruption[i] = Corruption::None;
    }

    /// Append a new document slot (edit support). The document's id must
    /// equal the next slot index.
    pub(crate) fn slot_append(&mut self, doc: Document, blob: Vec<u8>) -> DocId {
        let id = DocId(self.docs.len() as u32);
        assert_eq!(doc.id, id, "appended document must carry the next DocId");
        self.docs.push(doc);
        self.blobs.push(blob);
        self.corruption.push(Corruption::None);
        self.deleted.push(false);
        id
    }

    /// Tombstone a slot (edit support). Returns false when already gone.
    pub(crate) fn slot_remove(&mut self, id: DocId) -> bool {
        let i = id.0 as usize;
        if i >= self.docs.len() || self.deleted[i] {
            return false;
        }
        self.deleted[i] = true;
        true
    }

    /// Keyword search over titles and keyword lists, Semantic-Scholar
    /// style. Case-insensitive token overlap; results sorted by score then
    /// id (deterministic). Scoring fans out on the executor the library
    /// was built with.
    pub fn search(&self, query: &str) -> Vec<SearchHit> {
        let q_tokens: std::collections::HashSet<String> =
            mcqa_text::tokenize(query).into_iter().collect();
        if q_tokens.is_empty() {
            return Vec::new();
        }
        let (score_results, _) =
            run_stage_batched(&self.exec, "search", (0..self.docs.len()).collect(), 0, |i| {
                if self.deleted[i] {
                    return Ok::<_, String>(None);
                }
                let doc = &self.docs[i];
                let mut hay: Vec<String> = mcqa_text::tokenize(&doc.title);
                for k in &doc.keywords {
                    hay.extend(mcqa_text::tokenize(k));
                }
                hay.extend(mcqa_text::tokenize(doc.topic.name()));
                let hay: std::collections::HashSet<String> = hay.into_iter().collect();
                let overlap = q_tokens.intersection(&hay).count();
                Ok::<_, String>((overlap > 0).then(|| SearchHit {
                    id: doc.id,
                    score: overlap as f64 / q_tokens.len() as f64,
                }))
            });
        let mut hits: Vec<SearchHit> =
            score_results.into_iter().filter_map(|r| r.expect("scoring cannot fail")).collect();
        hits.sort_by(|a, b| {
            b.score.partial_cmp(&a.score).unwrap_or(std::cmp::Ordering::Equal).then(a.id.cmp(&b.id))
        });
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcqa_ontology::OntologyConfig;

    fn small_library() -> (Ontology, CorpusLibrary) {
        let ont = Ontology::generate(&OntologyConfig {
            seed: 42,
            entities_per_kind: 30,
            qualitative_facts: 350,
            quantitative_facts: 20,
        });
        let cfg = AcquisitionConfig {
            seed: 42,
            full_papers: 30,
            abstracts: 15,
            corruption_rate: 0.15,
            synth: SynthConfig::default(),
        };
        let lib = CorpusLibrary::build(&ont, &cfg, Executor::global());
        (ont, lib)
    }

    #[test]
    fn build_counts_and_kinds() {
        let (_, lib) = small_library();
        assert_eq!(lib.len(), 45);
        let papers = lib.documents().iter().filter(|d| d.kind == DocKind::FullPaper).count();
        assert_eq!(papers, 30);
    }

    #[test]
    fn deterministic_across_builds() {
        let (ont, lib) = small_library();
        let lib2 = CorpusLibrary::build(&ont, lib.config(), Executor::global());
        for i in 0..lib.len() as u32 {
            assert_eq!(lib.download(DocId(i)), lib2.download(DocId(i)), "blob {i}");
            assert_eq!(lib.corruption(DocId(i)), lib2.corruption(DocId(i)));
        }
    }

    #[test]
    fn corruption_rate_applied() {
        let (_, lib) = small_library();
        let n = lib.corrupted_count();
        // 15% of 45 ≈ 7; tolerate binomial noise.
        assert!((2..=15).contains(&n), "corrupted {n} of {}", lib.len());
        // Intact blobs read strictly; corrupted ones must fail or salvage.
        for i in 0..lib.len() as u32 {
            let id = DocId(i);
            let blob = lib.download(id).unwrap();
            match lib.corruption(id).unwrap() {
                Corruption::None => {
                    assert!(
                        crate::spdf::SpdfReader::read(blob).is_ok(),
                        "doc {i} intact but unreadable"
                    );
                }
                _ => {
                    assert!(
                        crate::spdf::SpdfReader::read(blob).is_err(),
                        "doc {i} corrupted but passed strict read"
                    );
                }
            }
        }
    }

    #[test]
    fn search_finds_topical_documents() {
        let (_, lib) = small_library();
        // Query with a topic name guaranteed to exist in the corpus.
        let some_topic = lib.documents()[0].topic;
        let hits = lib.search(some_topic.name());
        assert!(!hits.is_empty());
        // Scores sorted descending.
        for w in hits.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
        // Top hit really matches.
        let top = lib.document(hits[0].id).unwrap();
        let hay = format!("{} {} {:?}", top.title, top.keywords.join(" "), top.topic.name());
        assert!(
            mcqa_text::tokenize(some_topic.name())
                .iter()
                .any(|t| mcqa_text::tokenize(&hay).contains(t)),
            "top hit shares no query token"
        );
    }

    #[test]
    fn search_empty_query() {
        let (_, lib) = small_library();
        assert!(lib.search("").is_empty());
        assert!(lib.search("??!!..").is_empty());
    }

    #[test]
    fn download_out_of_range() {
        let (_, lib) = small_library();
        assert!(lib.download(DocId(9999)).is_none());
        assert!(lib.document(DocId(9999)).is_none());
        assert!(lib.corruption(DocId(9999)).is_none());
    }

    #[test]
    fn paper_scale_config() {
        let c = AcquisitionConfig::paper_scale(1.0, 7);
        assert_eq!(c.full_papers, 14_115);
        assert_eq!(c.abstracts, 8_433);
        let c01 = AcquisitionConfig::paper_scale(0.01, 7);
        assert_eq!(c01.full_papers, 141);
        assert_eq!(c01.abstracts, 84);
    }
}
