//! `SPZ`: a compact LZ77-family codec for SPDF text streams.
//!
//! Real PDF parsers spend their lives undoing stream encodings; giving the
//! SPDF container a genuine codec means the parse substrate exercises real
//! decode logic with real failure modes (truncated streams, corrupt match
//! offsets) rather than `String::from_utf8` over plain bytes.
//!
//! Format: a stream of ops.
//!
//! ```text
//! 0x00  varint(len)  bytes...      literal run (len >= 1)
//! 0x01  varint(dist) varint(len)   match: copy `len` bytes from `dist` back
//! ```
//!
//! Greedy matcher with a 3-byte hash-chain over a sliding window. Window
//! 8 KiB, min match 4, max match 1 KiB.

/// Maximum look-back distance.
const WINDOW: usize = 8 * 1024;
/// Minimum match length worth encoding.
const MIN_MATCH: usize = 4;
/// Maximum match length per op.
const MAX_MATCH: usize = 1024;

/// Errors produced when decoding a corrupt SPZ stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpzError {
    /// Stream ended inside an op.
    Truncated,
    /// Unknown op tag byte.
    BadTag(u8),
    /// A match referenced data before the start of output.
    BadDistance { distance: usize, available: usize },
    /// A varint ran past 10 bytes.
    BadVarint,
    /// Decoded output exceeded the declared cap.
    TooLong { cap: usize },
}

impl std::fmt::Display for SpzError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpzError::Truncated => write!(f, "stream truncated inside an op"),
            SpzError::BadTag(t) => write!(f, "unknown op tag {t:#04x}"),
            SpzError::BadDistance { distance, available } => {
                write!(f, "match distance {distance} exceeds available {available}")
            }
            SpzError::BadVarint => write!(f, "malformed varint"),
            SpzError::TooLong { cap } => write!(f, "output exceeds cap {cap}"),
        }
    }
}

impl std::error::Error for SpzError {}

/// Append a LEB128 varint.
fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

/// Read a LEB128 varint.
fn get_varint(data: &[u8], pos: &mut usize) -> Result<u64, SpzError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let Some(&b) = data.get(*pos) else {
            return Err(SpzError::Truncated);
        };
        *pos += 1;
        if shift >= 63 && (b & 0x7f) > 1 {
            return Err(SpzError::BadVarint);
        }
        v |= ((b & 0x7f) as u64) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(SpzError::BadVarint);
        }
    }
}

/// Compress `input` into a fresh buffer.
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    if input.is_empty() {
        return out;
    }

    // Hash chains: head[h] = most recent position with 3-byte hash h;
    // prev[i % WINDOW] = previous position with the same hash.
    const HASH_BITS: usize = 14;
    let mut head = vec![usize::MAX; 1 << HASH_BITS];
    let mut prev = vec![usize::MAX; WINDOW];
    let hash3 = |d: &[u8]| -> usize {
        let h = (d[0] as u32)
            .wrapping_mul(506832829)
            .wrapping_add((d[1] as u32).wrapping_mul(2654435761))
            .wrapping_add((d[2] as u32).wrapping_mul(2246822519));
        (h >> (32 - HASH_BITS as u32)) as usize
    };

    let mut literal_start = 0usize;
    let mut i = 0usize;

    let flush_literals = |out: &mut Vec<u8>, from: usize, to: usize, input: &[u8]| {
        let mut s = from;
        while s < to {
            let len = (to - s).min(u32::MAX as usize);
            out.push(0x00);
            put_varint(out, len as u64);
            out.extend_from_slice(&input[s..s + len]);
            s += len;
        }
    };

    while i < input.len() {
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        if i + MIN_MATCH <= input.len() {
            let h = hash3(&input[i..]);
            let mut cand = head[h];
            let mut chain = 0;
            while cand != usize::MAX && i - cand <= WINDOW && chain < 32 {
                // Candidate match length.
                let max_len = (input.len() - i).min(MAX_MATCH);
                let mut l = 0usize;
                while l < max_len && input[cand + l] == input[i + l] {
                    l += 1;
                }
                if l > best_len {
                    best_len = l;
                    best_dist = i - cand;
                    if l == max_len {
                        break;
                    }
                }
                cand = prev[cand % WINDOW];
                chain += 1;
            }
        }

        if best_len >= MIN_MATCH {
            flush_literals(&mut out, literal_start, i, input);
            out.push(0x01);
            put_varint(&mut out, best_dist as u64);
            put_varint(&mut out, best_len as u64);
            // Insert hash entries for the matched region.
            let end = i + best_len;
            while i < end && i + 3 <= input.len() {
                let h = hash3(&input[i..]);
                prev[i % WINDOW] = head[h];
                head[h] = i;
                i += 1;
            }
            i = end;
            literal_start = i;
        } else {
            if i + 3 <= input.len() {
                let h = hash3(&input[i..]);
                prev[i % WINDOW] = head[h];
                head[h] = i;
            }
            i += 1;
        }
    }
    flush_literals(&mut out, literal_start, input.len(), input);
    out
}

/// Decompress an SPZ stream, refusing to produce more than `cap` bytes
/// (guards against decompression bombs from corrupt inputs).
pub fn decompress(data: &[u8], cap: usize) -> Result<Vec<u8>, SpzError> {
    let mut out: Vec<u8> = Vec::new();
    let mut pos = 0usize;
    while pos < data.len() {
        let tag = data[pos];
        pos += 1;
        match tag {
            0x00 => {
                let len = get_varint(data, &mut pos)? as usize;
                if pos + len > data.len() {
                    return Err(SpzError::Truncated);
                }
                if out.len() + len > cap {
                    return Err(SpzError::TooLong { cap });
                }
                out.extend_from_slice(&data[pos..pos + len]);
                pos += len;
            }
            0x01 => {
                let dist = get_varint(data, &mut pos)? as usize;
                let len = get_varint(data, &mut pos)? as usize;
                if dist == 0 || dist > out.len() {
                    return Err(SpzError::BadDistance { distance: dist, available: out.len() });
                }
                if out.len() + len > cap {
                    return Err(SpzError::TooLong { cap });
                }
                // Byte-at-a-time copy: overlapping matches are legal.
                let start = out.len() - dist;
                for k in 0..len {
                    let b = out[start + k];
                    out.push(b);
                }
            }
            t => return Err(SpzError::BadTag(t)),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_roundtrip() {
        let c = compress(b"");
        assert!(c.is_empty());
        assert_eq!(decompress(&c, 1024).unwrap(), b"");
    }

    #[test]
    fn short_roundtrip() {
        for s in [&b"a"[..], b"ab", b"abc", b"abcd", b"hello world"] {
            let c = compress(s);
            assert_eq!(decompress(&c, 1 << 20).unwrap(), s, "{s:?}");
        }
    }

    #[test]
    fn repetitive_text_compresses() {
        let text = "the dose response curve shows the dose response of the dose. ".repeat(64);
        let c = compress(text.as_bytes());
        assert!(c.len() < text.len() / 3, "{} vs {}", c.len(), text.len());
        assert_eq!(decompress(&c, 1 << 22).unwrap(), text.as_bytes());
    }

    #[test]
    fn overlapping_match_roundtrip() {
        // "aaaa..." forces dist=1 overlapping copies.
        let text = vec![b'a'; 5000];
        let c = compress(&text);
        assert!(c.len() < 100, "run-length-like input should shrink: {}", c.len());
        assert_eq!(decompress(&c, 1 << 20).unwrap(), text);
    }

    #[test]
    fn pseudo_random_roundtrip() {
        // Incompressible data must still roundtrip (as literals).
        let mut data = Vec::with_capacity(10_000);
        let mut x = 0x12345678u64;
        for _ in 0..10_000 {
            x = mcqa_util::splitmix64(x);
            data.push((x & 0xff) as u8);
        }
        let c = compress(&data);
        assert_eq!(decompress(&c, 1 << 20).unwrap(), data);
    }

    #[test]
    fn long_match_chains_roundtrip() {
        let mut text = String::new();
        for i in 0..200 {
            text.push_str("irradiated cells accumulate double-strand breaks ");
            text.push_str(&i.to_string());
            text.push(' ');
        }
        let c = compress(text.as_bytes());
        assert_eq!(decompress(&c, 1 << 22).unwrap(), text.as_bytes());
        assert!(c.len() < text.len() / 2);
    }

    #[test]
    fn truncated_stream_errors() {
        let text = b"some compressible text some compressible text some compressible text";
        let c = compress(text);
        for cut in [1, c.len() / 2, c.len() - 1] {
            let r = decompress(&c[..cut], 1 << 20);
            // Either an explicit error or a short (prefix) output; never a panic.
            if let Ok(out) = r {
                assert!(out.len() <= text.len());
            }
        }
    }

    #[test]
    fn bad_tag_rejected() {
        assert_eq!(decompress(&[0xFF], 10), Err(SpzError::BadTag(0xFF)));
    }

    #[test]
    fn bad_distance_rejected() {
        // match dist=5 with empty output
        let mut s = vec![0x01];
        put_varint(&mut s, 5);
        put_varint(&mut s, 3);
        assert!(matches!(decompress(&s, 10), Err(SpzError::BadDistance { .. })));
    }

    #[test]
    fn bomb_capped() {
        // A legal stream that would expand beyond the cap must error.
        let payload = vec![b'x'; 100];
        let c = compress(&payload);
        assert!(matches!(decompress(&c, 10), Err(SpzError::TooLong { cap: 10 })));
    }

    #[test]
    fn varint_edge_cases() {
        let mut buf = Vec::new();
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX] {
            buf.clear();
            put_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_varint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
        // Unterminated varint
        let mut pos = 0;
        assert_eq!(get_varint(&[0x80, 0x80], &mut pos), Err(SpzError::Truncated));
    }
}
