//! Corpus edits: the seeded add/modify/delete batches that drive
//! incremental ingest.
//!
//! A live corpus drifts: papers get revised, new ones arrive, retractions
//! disappear. [`EditBatch`] models one drift step as a deterministic
//! sequence of [`EditOp`]s, and [`CorpusLibrary::apply_edits`] replays it
//! against the library — re-synthesising modified documents with a salted
//! seed (so their content genuinely changes), appending additions at fresh
//! `DocId`s, and tombstoning removals. `repro ingest` builds a synthetic
//! batch, applies it, and measures incremental-vs-full rebuild cost.

use mcqa_ontology::Ontology;
use mcqa_util::KeyedStochastic;

use crate::acquire::CorpusLibrary;
use crate::doc::{DocId, DocKind};
use crate::spdf::SpdfWriter;
use crate::synth::{synthesize, SynthConfig};

/// One corpus mutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EditOp {
    /// Synthesise and append a brand-new document of `kind`.
    Add {
        /// Full paper or abstract-only record.
        kind: DocKind,
    },
    /// Re-synthesise an existing document under a salted seed (a revision:
    /// same id, new content).
    Modify {
        /// The document to revise.
        id: DocId,
    },
    /// Tombstone a document (a retraction).
    Remove {
        /// The document to retract.
        id: DocId,
    },
}

/// A deterministic batch of corpus edits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EditBatch {
    /// Ordered operations; later ops see earlier ops' effects.
    pub ops: Vec<EditOp>,
    /// Seed salting the re-synthesis of modified/added documents.
    pub seed: u64,
}

impl EditBatch {
    /// Draw a synthetic batch of `n` edits against the library's current
    /// live set: roughly half modifications, a quarter additions, a
    /// quarter removals (the paper's drift profile — revisions dominate).
    /// Ids are drawn without replacement so one batch never edits the
    /// same document twice.
    pub fn synthetic(library: &CorpusLibrary, seed: u64, n: usize) -> Self {
        let rng = KeyedStochastic::new(seed ^ 0xED17_BA7C);
        let mut live = library.live_ids();
        // Shuffle the live ids once, then consume from the tail — cheap
        // draw-without-replacement.
        let perm = rng.permutation(live.len(), &["perm"]);
        live = perm.into_iter().map(|i| live[i]).collect();
        let mut ops = Vec::with_capacity(n);
        for i in 0..n {
            let key = i.to_string();
            let roll = rng.below(4, &["op", &key]);
            let op = match roll {
                0 => EditOp::Add {
                    kind: if rng.bernoulli(0.6, &["kind", &key]) {
                        DocKind::FullPaper
                    } else {
                        DocKind::Abstract
                    },
                },
                1 => match live.pop() {
                    Some(id) => EditOp::Remove { id },
                    None => EditOp::Add { kind: DocKind::Abstract },
                },
                _ => match live.pop() {
                    Some(id) => EditOp::Modify { id },
                    None => EditOp::Add { kind: DocKind::FullPaper },
                },
            };
            ops.push(op);
        }
        Self { ops, seed }
    }

    /// Counts of (added, modified, removed) ops in the batch.
    pub fn profile(&self) -> (usize, usize, usize) {
        let mut counts = (0, 0, 0);
        for op in &self.ops {
            match op {
                EditOp::Add { .. } => counts.0 += 1,
                EditOp::Modify { .. } => counts.1 += 1,
                EditOp::Remove { .. } => counts.2 += 1,
            }
        }
        counts
    }
}

impl CorpusLibrary {
    /// Apply an edit batch in order. Deterministic: the same library,
    /// ontology, and batch always produce the same post-edit corpus.
    /// Panics if an op targets a missing or already-deleted document —
    /// batches are planned against the current live set.
    pub fn apply_edits(&mut self, ontology: &Ontology, batch: &EditBatch) {
        for (i, op) in batch.ops.iter().enumerate() {
            // Salt per op so two Modifys of different docs (or a Modify
            // replayed in a later batch) synthesise different content.
            let salt = batch.seed ^ 0x5EED_ED17 ^ ((i as u64) << 32);
            match *op {
                EditOp::Add { kind } => {
                    let id = DocId(self.len() as u32);
                    let doc = synthesize(ontology, &self.salted_synth(salt), id, kind);
                    let blob = SpdfWriter::write_document(&doc);
                    self.slot_append(doc, blob);
                }
                EditOp::Modify { id } => {
                    let kind = self
                        .document(id)
                        .unwrap_or_else(|| panic!("modify of missing {id:?}"))
                        .kind;
                    let doc = synthesize(ontology, &self.salted_synth(salt), id, kind);
                    let blob = SpdfWriter::write_document(&doc);
                    self.slot_replace(id, doc, blob);
                }
                EditOp::Remove { id } => {
                    assert!(self.slot_remove(id), "remove of missing {id:?}");
                }
            }
        }
    }

    fn salted_synth(&self, salt: u64) -> SynthConfig {
        SynthConfig { seed: self.config().synth.seed ^ salt, ..self.config().synth }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acquire::AcquisitionConfig;
    use mcqa_ontology::{Ontology, OntologyConfig};
    use mcqa_runtime::Executor;

    fn library() -> (Ontology, CorpusLibrary) {
        let ont = Ontology::generate(&OntologyConfig {
            seed: 7,
            entities_per_kind: 30,
            qualitative_facts: 350,
            quantitative_facts: 20,
        });
        let cfg = AcquisitionConfig {
            seed: 7,
            full_papers: 20,
            abstracts: 10,
            corruption_rate: 0.0,
            synth: SynthConfig::default(),
        };
        let lib = CorpusLibrary::build(&ont, &cfg, Executor::global());
        (ont, lib)
    }

    #[test]
    fn synthetic_batch_is_deterministic_and_disjoint() {
        let (_, lib) = library();
        let a = EditBatch::synthetic(&lib, 11, 12);
        let b = EditBatch::synthetic(&lib, 11, 12);
        assert_eq!(a, b);
        assert_ne!(a, EditBatch::synthetic(&lib, 12, 12));
        assert_eq!(a.ops.len(), 12);
        // No id is edited twice in one batch.
        let mut targets: Vec<u32> = a
            .ops
            .iter()
            .filter_map(|op| match op {
                EditOp::Modify { id } | EditOp::Remove { id } => Some(id.0),
                EditOp::Add { .. } => None,
            })
            .collect();
        let before = targets.len();
        targets.sort_unstable();
        targets.dedup();
        assert_eq!(targets.len(), before, "duplicate edit target");
        let (add, modify, remove) = a.profile();
        assert_eq!(add + modify + remove, 12);
        assert!(modify >= 1, "drift profile should lean on revisions");
    }

    #[test]
    fn apply_edits_mutates_the_live_set() {
        let (ont, mut lib) = library();
        let before_blob = lib.download(DocId(0)).map(<[u8]>::to_vec);
        let batch = EditBatch {
            ops: vec![
                EditOp::Modify { id: DocId(0) },
                EditOp::Remove { id: DocId(3) },
                EditOp::Add { kind: DocKind::Abstract },
                EditOp::Add { kind: DocKind::FullPaper },
            ],
            seed: 99,
        };
        lib.apply_edits(&ont, &batch);
        assert_eq!(lib.len(), 32, "two appends");
        assert_eq!(lib.live_len(), 31, "one tombstone");
        assert!(lib.is_deleted(DocId(3)));
        assert!(lib.document(DocId(3)).is_none());
        assert!(lib.download(DocId(3)).is_none());
        assert_ne!(
            lib.download(DocId(0)).map(<[u8]>::to_vec),
            before_blob,
            "modify re-synthesised content"
        );
        assert_eq!(lib.document(DocId(30)).unwrap().kind, DocKind::Abstract);
        assert_eq!(lib.document(DocId(31)).unwrap().kind, DocKind::FullPaper);
        assert_eq!(lib.live_ids().len(), 31);
        assert!(!lib.live_ids().contains(&DocId(3)));

        // Replay on a fresh clone of the original library is identical.
        let (ont2, mut lib2) = library();
        lib2.apply_edits(&ont2, &batch);
        assert_eq!(lib2.download(DocId(0)), lib.download(DocId(0)));
        assert_eq!(lib2.download(DocId(31)), lib.download(DocId(31)));
    }

    #[test]
    #[should_panic(expected = "remove of missing")]
    fn double_remove_panics() {
        let (ont, mut lib) = library();
        let batch = EditBatch {
            ops: vec![EditOp::Remove { id: DocId(1) }, EditOp::Remove { id: DocId(1) }],
            seed: 1,
        };
        lib.apply_edits(&ont, &batch);
    }

    #[test]
    fn search_skips_deleted_documents() {
        let (ont, mut lib) = library();
        let topic = lib.documents()[2].topic;
        let hits_before = lib.search(topic.name());
        assert!(hits_before.iter().any(|h| h.id == DocId(2)));
        lib.apply_edits(&ont, &EditBatch { ops: vec![EditOp::Remove { id: DocId(2) }], seed: 5 });
        assert!(!lib.search(topic.name()).iter().any(|h| h.id == DocId(2)));
    }
}
