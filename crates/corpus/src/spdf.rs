//! SPDF — the *Synthetic Portable Document Format* binary container.
//!
//! A deliberately PDF-shaped format so the parsing substrate does real
//! structured binary work: magic + versioned header, a typed object table
//! (JSON metadata, SPZ-compressed text streams), and a checksummed trailer.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! +--------+---------+-------------+
//! | "SPDF" | version | object_count|      header (4 + 2 + 4 bytes)
//! +--------+---------+-------------+
//! | type u8 | flags u8 | raw_len u32 | stored_len u32 | payload... |  × N
//! +--------+-----------+
//! | "TRLR" | fnv64 checksum of everything before the trailer |
//! +--------+-----------+
//! ```
//!
//! `flags & 1` marks an SPZ-compressed payload (`raw_len` = decompressed
//! size). The strict reader validates everything; [`SpdfReader::salvage`]
//! recovers what it can from damaged files, which is what gives the
//! AdaParse-style engine in `mcqa-parse` a genuine fallback path.

use mcqa_ontology::Topic;
use serde::{Deserialize, Serialize};

use crate::compress::{compress, decompress, SpzError};
use crate::doc::{DocId, DocKind, Document};

/// Container magic.
pub const MAGIC: &[u8; 4] = b"SPDF";
/// Trailer magic.
pub const TRAILER_MAGIC: &[u8; 4] = b"TRLR";
/// Current format version.
pub const VERSION: u16 = 1;
/// Decompression cap per object (guards corrupt streams).
const MAX_OBJECT_BYTES: usize = 16 << 20;

/// The type of an SPDF object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ObjectKind {
    /// JSON document metadata.
    Meta,
    /// A text stream (one per section).
    Text,
}

impl ObjectKind {
    fn to_byte(self) -> u8 {
        match self {
            ObjectKind::Meta => 0,
            ObjectKind::Text => 1,
        }
    }

    fn from_byte(b: u8) -> Option<Self> {
        match b {
            0 => Some(ObjectKind::Meta),
            1 => Some(ObjectKind::Text),
            _ => None,
        }
    }
}

/// A decoded SPDF object.
#[derive(Debug, Clone, PartialEq)]
pub struct SpdfObject {
    /// Object type.
    pub kind: ObjectKind,
    /// Decompressed payload.
    pub data: Vec<u8>,
}

/// Errors from strict SPDF reading.
#[derive(Debug, Clone, PartialEq)]
pub enum SpdfError {
    /// Leading magic missing.
    BadMagic,
    /// Unknown version.
    UnsupportedVersion(u16),
    /// File ended early.
    Truncated { at: &'static str },
    /// Unknown object type byte.
    BadObjectType(u8),
    /// Declared size exceeds sanity cap.
    ObjectTooLarge { raw_len: usize },
    /// Trailer magic missing.
    BadTrailer,
    /// Trailer checksum mismatch.
    ChecksumMismatch { expected: u64, actual: u64 },
    /// An SPZ stream failed to decode.
    Stream { object: usize, source: SpzError },
    /// Decompressed size differed from the declared `raw_len`.
    RawLenMismatch { object: usize, declared: usize, actual: usize },
    /// Metadata JSON failed to parse.
    BadMetadata(String),
}

impl std::fmt::Display for SpdfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpdfError::BadMagic => write!(f, "not an SPDF file (bad magic)"),
            SpdfError::UnsupportedVersion(v) => write!(f, "unsupported SPDF version {v}"),
            SpdfError::Truncated { at } => write!(f, "file truncated at {at}"),
            SpdfError::BadObjectType(b) => write!(f, "unknown object type {b:#04x}"),
            SpdfError::ObjectTooLarge { raw_len } => {
                write!(f, "object too large ({raw_len} bytes)")
            }
            SpdfError::BadTrailer => write!(f, "missing trailer"),
            SpdfError::ChecksumMismatch { expected, actual } => {
                write!(f, "checksum mismatch: expected {expected:#018x}, got {actual:#018x}")
            }
            SpdfError::Stream { object, source } => write!(f, "object {object}: {source}"),
            SpdfError::RawLenMismatch { object, declared, actual } => {
                write!(f, "object {object}: declared {declared} bytes, decoded {actual}")
            }
            SpdfError::BadMetadata(e) => write!(f, "bad metadata JSON: {e}"),
        }
    }
}

impl std::error::Error for SpdfError {}

/// Serialisable document metadata stored in the Meta object.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DocMeta {
    /// Document id.
    pub id: u32,
    /// `"paper"` or `"abstract"`.
    pub kind: String,
    /// Title.
    pub title: String,
    /// Author surnames.
    pub authors: Vec<String>,
    /// Publication year.
    pub year: u16,
    /// Venue.
    pub venue: String,
    /// Primary topic.
    pub topic: Topic,
    /// Search keywords.
    pub keywords: Vec<String>,
}

impl DocMeta {
    /// Build from a logical document.
    pub fn from_document(doc: &Document) -> Self {
        Self {
            id: doc.id.0,
            kind: match doc.kind {
                DocKind::FullPaper => "paper".to_string(),
                DocKind::Abstract => "abstract".to_string(),
            },
            title: doc.title.clone(),
            authors: doc.authors.clone(),
            year: doc.year,
            venue: doc.venue.clone(),
            topic: doc.topic,
            keywords: doc.keywords.clone(),
        }
    }

    /// The [`DocKind`] this metadata declares (`None` for unknown strings).
    pub fn doc_kind(&self) -> Option<DocKind> {
        match self.kind.as_str() {
            "paper" => Some(DocKind::FullPaper),
            "abstract" => Some(DocKind::Abstract),
            _ => None,
        }
    }

    /// The document id.
    pub fn doc_id(&self) -> DocId {
        DocId(self.id)
    }
}

/// SPDF writer.
pub struct SpdfWriter;

impl SpdfWriter {
    /// Encode raw objects into an SPDF byte blob.
    pub fn write_objects(objects: &[(ObjectKind, &[u8])]) -> Vec<u8> {
        let mut out = Vec::with_capacity(1024);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(objects.len() as u32).to_le_bytes());
        for (kind, data) in objects {
            let compressed = compress(data);
            // Only keep compression when it wins.
            let (flags, stored): (u8, &[u8]) =
                if compressed.len() < data.len() { (1, &compressed) } else { (0, data) };
            out.push(kind.to_byte());
            out.push(flags);
            out.extend_from_slice(&(data.len() as u32).to_le_bytes());
            out.extend_from_slice(&(stored.len() as u32).to_le_bytes());
            out.extend_from_slice(stored);
        }
        let checksum = mcqa_util::fnv1a(&out);
        out.extend_from_slice(TRAILER_MAGIC);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }

    /// Render a logical document into SPDF: one Meta object followed by one
    /// Text object per section (`"<title>\n\n<section text>"`).
    pub fn write_document(doc: &Document) -> Vec<u8> {
        let meta = DocMeta::from_document(doc);
        let meta_json = serde_json::to_vec(&meta).expect("metadata serialises");
        let section_texts: Vec<String> =
            doc.sections.iter().map(|s| format!("{}\n\n{}", s.title, s.text())).collect();
        let mut objects: Vec<(ObjectKind, &[u8])> = Vec::with_capacity(1 + section_texts.len());
        objects.push((ObjectKind::Meta, meta_json.as_slice()));
        for t in &section_texts {
            objects.push((ObjectKind::Text, t.as_bytes()));
        }
        Self::write_objects(&objects)
    }
}

/// Outcome of a salvage read.
#[derive(Debug, Clone, PartialEq)]
pub struct SalvageResult {
    /// Objects recovered (possibly fewer than declared).
    pub objects: Vec<SpdfObject>,
    /// Human-readable descriptions of the problems encountered.
    pub issues: Vec<String>,
}

/// SPDF reader: strict and salvage modes.
pub struct SpdfReader;

impl SpdfReader {
    /// Strict read: every structural invariant is validated.
    pub fn read(bytes: &[u8]) -> Result<Vec<SpdfObject>, SpdfError> {
        let (objects, body_end, declared) = Self::read_objects_inner(bytes, true)?;
        // Trailer.
        let trailer = &bytes[body_end..];
        if trailer.len() < 12 || &trailer[..4] != TRAILER_MAGIC {
            return Err(SpdfError::BadTrailer);
        }
        let expected = u64::from_le_bytes(trailer[4..12].try_into().expect("8 bytes"));
        let actual = mcqa_util::fnv1a(&bytes[..body_end]);
        if expected != actual {
            return Err(SpdfError::ChecksumMismatch { expected, actual });
        }
        debug_assert_eq!(objects.len(), declared);
        Ok(objects)
    }

    /// Salvage read: tolerate truncation, checksum damage, and per-object
    /// stream corruption; recover every object that still decodes.
    pub fn salvage(bytes: &[u8]) -> SalvageResult {
        let mut issues = Vec::new();
        match Self::read_objects_inner(bytes, false) {
            Ok((objects, body_end, declared)) => {
                if objects.len() < declared {
                    issues.push(format!(
                        "recovered {}/{} declared objects",
                        objects.len(),
                        declared
                    ));
                }
                let trailer = &bytes[body_end.min(bytes.len())..];
                if trailer.len() < 12 || &trailer[..4] != TRAILER_MAGIC {
                    issues.push("trailer missing or truncated".to_string());
                } else {
                    let expected = u64::from_le_bytes(trailer[4..12].try_into().expect("8 bytes"));
                    let actual = mcqa_util::fnv1a(&bytes[..body_end]);
                    if expected != actual {
                        issues.push("checksum mismatch (content may be damaged)".to_string());
                    }
                }
                SalvageResult { objects, issues }
            }
            Err(e) => SalvageResult { objects: Vec::new(), issues: vec![e.to_string()] },
        }
    }

    /// Shared object-table walk. In strict mode any defect is fatal; in
    /// salvage mode defects stop the walk but keep prior objects.
    #[allow(clippy::type_complexity)]
    fn read_objects_inner(
        bytes: &[u8],
        strict: bool,
    ) -> Result<(Vec<SpdfObject>, usize, usize), SpdfError> {
        if bytes.len() < 10 {
            return Err(SpdfError::Truncated { at: "header" });
        }
        if &bytes[..4] != MAGIC {
            return Err(SpdfError::BadMagic);
        }
        let version = u16::from_le_bytes([bytes[4], bytes[5]]);
        if version != VERSION {
            return Err(SpdfError::UnsupportedVersion(version));
        }
        let declared = u32::from_le_bytes(bytes[6..10].try_into().expect("4 bytes")) as usize;

        let mut objects = Vec::with_capacity(declared.min(64));
        let mut pos = 10usize;
        for obj_idx in 0..declared {
            let fail =
                |e: SpdfError| -> Result<(Vec<SpdfObject>, usize, usize), SpdfError> { Err(e) };
            if pos + 10 > bytes.len() {
                if strict {
                    return fail(SpdfError::Truncated { at: "object header" });
                }
                return Ok((objects, pos, declared));
            }
            let type_byte = bytes[pos];
            let flags = bytes[pos + 1];
            let raw_len =
                u32::from_le_bytes(bytes[pos + 2..pos + 6].try_into().expect("4 bytes")) as usize;
            let stored_len =
                u32::from_le_bytes(bytes[pos + 6..pos + 10].try_into().expect("4 bytes")) as usize;
            pos += 10;

            let Some(kind) = ObjectKind::from_byte(type_byte) else {
                if strict {
                    return fail(SpdfError::BadObjectType(type_byte));
                }
                return Ok((objects, pos - 10, declared));
            };
            if raw_len > MAX_OBJECT_BYTES {
                if strict {
                    return fail(SpdfError::ObjectTooLarge { raw_len });
                }
                return Ok((objects, pos - 10, declared));
            }
            if pos + stored_len > bytes.len() {
                if strict {
                    return fail(SpdfError::Truncated { at: "object payload" });
                }
                return Ok((objects, pos - 10, declared));
            }
            let stored = &bytes[pos..pos + stored_len];
            pos += stored_len;

            let data = if flags & 1 != 0 {
                match decompress(stored, raw_len.max(1)) {
                    Ok(d) => d,
                    Err(source) => {
                        if strict {
                            return fail(SpdfError::Stream { object: obj_idx, source });
                        }
                        continue; // skip the damaged object, keep walking
                    }
                }
            } else {
                stored.to_vec()
            };
            if data.len() != raw_len {
                if strict {
                    return fail(SpdfError::RawLenMismatch {
                        object: obj_idx,
                        declared: raw_len,
                        actual: data.len(),
                    });
                }
                continue;
            }
            objects.push(SpdfObject { kind, data });
        }
        Ok((objects, pos, declared))
    }

    /// Decode the Meta object of a strict-read object list.
    pub fn metadata(objects: &[SpdfObject]) -> Result<DocMeta, SpdfError> {
        let meta = objects
            .iter()
            .find(|o| o.kind == ObjectKind::Meta)
            .ok_or(SpdfError::BadMetadata("no Meta object".to_string()))?;
        serde_json::from_slice(&meta.data).map_err(|e| SpdfError::BadMetadata(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{synthesize, SynthConfig};
    use mcqa_ontology::{Ontology, OntologyConfig};

    fn sample_doc() -> Document {
        let ont = Ontology::generate(&OntologyConfig {
            seed: 7,
            entities_per_kind: 25,
            qualitative_facts: 200,
            quantitative_facts: 10,
        });
        synthesize(&ont, &SynthConfig::default(), DocId(3), DocKind::FullPaper)
    }

    #[test]
    fn document_roundtrip() {
        let doc = sample_doc();
        let bytes = SpdfWriter::write_document(&doc);
        let objects = SpdfReader::read(&bytes).expect("strict read");
        assert_eq!(objects.len(), 1 + doc.sections.len());
        let meta = SpdfReader::metadata(&objects).unwrap();
        assert_eq!(meta.doc_id(), doc.id);
        assert_eq!(meta.doc_kind(), Some(DocKind::FullPaper));
        assert_eq!(meta.title, doc.title);
        // Text objects carry the sections in order.
        let texts: Vec<String> = objects
            .iter()
            .filter(|o| o.kind == ObjectKind::Text)
            .map(|o| String::from_utf8(o.data.clone()).unwrap())
            .collect();
        for (t, s) in texts.iter().zip(&doc.sections) {
            assert!(t.starts_with(&s.title));
            assert!(t.contains(&s.text()));
        }
    }

    #[test]
    fn compression_engages_on_prose() {
        let doc = sample_doc();
        let bytes = SpdfWriter::write_document(&doc);
        let plain_size: usize =
            doc.sections.iter().map(|s| s.text().len()).sum::<usize>() + doc.title.len();
        assert!(bytes.len() < plain_size + 4096, "container should compress prose");
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = SpdfWriter::write_document(&sample_doc());
        bytes[0] = b'X';
        assert_eq!(SpdfReader::read(&bytes), Err(SpdfError::BadMagic));
        let s = SpdfReader::salvage(&bytes);
        assert!(s.objects.is_empty());
        assert!(!s.issues.is_empty());
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = SpdfWriter::write_document(&sample_doc());
        bytes[4] = 0xEE;
        assert!(matches!(SpdfReader::read(&bytes), Err(SpdfError::UnsupportedVersion(_))));
    }

    #[test]
    fn checksum_flip_detected_and_salvageable() {
        let mut bytes = SpdfWriter::write_document(&sample_doc());
        let n = bytes.len();
        bytes[n - 1] ^= 0xFF; // damage the checksum itself
        assert!(matches!(SpdfReader::read(&bytes), Err(SpdfError::ChecksumMismatch { .. })));
        let s = SpdfReader::salvage(&bytes);
        assert!(!s.objects.is_empty(), "salvage keeps objects");
        assert!(s.issues.iter().any(|i| i.contains("checksum")));
    }

    #[test]
    fn truncation_detected_and_prefix_salvaged() {
        let doc = sample_doc();
        let bytes = SpdfWriter::write_document(&doc);
        let cut = bytes.len() * 2 / 3;
        let truncated = &bytes[..cut];
        assert!(SpdfReader::read(truncated).is_err());
        let s = SpdfReader::salvage(truncated);
        assert!(s.objects.len() < 1 + doc.sections.len(), "some objects must be lost");
        assert!(!s.issues.is_empty());
        // Whatever was recovered must be internally valid.
        if let Some(first) = s.objects.first() {
            assert_eq!(first.kind, ObjectKind::Meta);
            assert!(SpdfReader::metadata(&s.objects).is_ok());
        }
    }

    #[test]
    fn payload_bitflip_detected() {
        let doc = sample_doc();
        let mut bytes = SpdfWriter::write_document(&doc);
        // Flip a byte in the middle of the object region (past the header).
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x55;
        let r = SpdfReader::read(&bytes);
        assert!(r.is_err(), "bitflip must not pass strict validation");
    }

    #[test]
    fn empty_and_garbage_inputs() {
        assert!(matches!(SpdfReader::read(&[]), Err(SpdfError::Truncated { .. })));
        assert!(matches!(SpdfReader::read(b"%PDF-1.7 garbage"), Err(SpdfError::BadMagic)));
        let garbage: Vec<u8> = (0..200u8).collect();
        assert!(SpdfReader::read(&garbage).is_err());
    }

    #[test]
    fn write_objects_raw_api() {
        let objs: Vec<(ObjectKind, &[u8])> =
            vec![(ObjectKind::Meta, b"{}".as_slice()), (ObjectKind::Text, b"hello".as_slice())];
        let bytes = SpdfWriter::write_objects(&objs);
        let back = SpdfReader::read(&bytes).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].data, b"{}");
        assert_eq!(back[1].data, b"hello");
    }

    #[test]
    fn object_count_zero() {
        let bytes = SpdfWriter::write_objects(&[]);
        let back = SpdfReader::read(&bytes).unwrap();
        assert!(back.is_empty());
    }
}
