//! Property tests for the lexical and hybrid serving paths:
//!
//! * **Bit-identity** — a served `QueryMode::Lexical` response equals a
//!   direct `LexicalIndex::search`, and a served `QueryMode::Hybrid`
//!   response equals `fusion.fuse(dense@depth, lexical@depth)` computed
//!   offline — at any worker count, arrival order, or batch watermark.
//! * **Rerank determinism** — rescoring through the cross-encoder is a
//!   pure function of (query, fused hits, passages): served rerank output
//!   equals the offline emulation exactly.
//! * **Error taxonomy** — vector-only inputs on text-hungry modes fail
//!   with `NeedsText`; rerank without a reranker fails with `NoReranker`;
//!   a missing `lex-` sibling names itself in `UnknownStore`.

use std::sync::{Arc, OnceLock};

use mcqa_embed::{BioEncoder, EmbedConfig, Precision};
use mcqa_index::{FlatIndex, IndexRegistry, Metric, VectorStore};
use mcqa_lexical::{fuse_depth, Fusion, LexicalIndex};
use mcqa_llm::{ModelEndpoint, Reranker, SimEndpoint};
use mcqa_ontology::{Ontology, OntologyConfig};
use mcqa_runtime::Executor;
use mcqa_serve::{PassageStore, QueryMode, QueryRequest, QueryService, ServeConfig, ServeError};
use proptest::prelude::*;

const DIM: usize = 32;
const NDOCS: usize = 48;

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

const WORDS: [&str; 24] = [
    "dose",
    "rate",
    "fractionation",
    "proton",
    "carbon",
    "ion",
    "radiation",
    "shielding",
    "cosmic",
    "galactic",
    "nebula",
    "spectral",
    "flux",
    "redshift",
    "luminosity",
    "accretion",
    "plasma",
    "magnetosphere",
    "dosimetry",
    "linear",
    "energy",
    "transfer",
    "orbit",
    "telescope",
];

/// A deterministic pseudo-sentence: 5-9 vocabulary words drawn by seed.
fn passage(seed: u64) -> String {
    let n = 5 + (splitmix(seed) % 5) as usize;
    (0..n)
        .map(|j| WORDS[(splitmix(seed ^ ((j as u64 + 1) * 7919)) % WORDS.len() as u64) as usize])
        .collect::<Vec<_>>()
        .join(" ")
}

fn query_text(seed: u64) -> String {
    passage(seed ^ 0xdead_beef)
}

fn encoder() -> &'static BioEncoder {
    static ENC: OnceLock<BioEncoder> = OnceLock::new();
    ENC.get_or_init(|| BioEncoder::new(EmbedConfig { dim: DIM, ..EmbedConfig::default() }))
}

struct Fixture {
    registry: Arc<IndexRegistry>,
    passages: PassageStore,
    endpoint: Arc<dyn ModelEndpoint>,
}

/// One corpus indexed both ways, shared by every test: a flat dense store
/// under `chunks` and its BM25 sibling under `lex-chunks`, plus the
/// passage texts the reranker reads.
fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let enc = encoder();
        let mut store = FlatIndex::new(DIM, Metric::Cosine, Precision::F32);
        let mut lex = LexicalIndex::new(Default::default());
        let mut passages = PassageStore::new();
        for i in 0..NDOCS as u64 {
            let text = passage(100 + i);
            store.add(i, &enc.encode(&text));
            lex.add(i, &text);
            passages.insert("chunks", i, &text);
        }
        let mut reg = IndexRegistry::new();
        reg.insert("chunks", Box::new(store));
        reg.insert_lexical(&IndexRegistry::lexical_sibling("chunks"), lex);
        let ontology = Arc::new(Ontology::generate(&OntologyConfig {
            seed: 42,
            entities_per_kind: 10,
            qualitative_facts: 50,
            quantitative_facts: 5,
        }));
        Fixture {
            registry: Arc::new(reg),
            passages,
            endpoint: Arc::new(SimEndpoint::new(42, ontology)),
        }
    })
}

fn start_service(workers: usize, max_batch: usize) -> QueryService {
    let fix = fixture();
    QueryService::start_full(
        fix.registry.clone(),
        Some(encoder().clone()),
        Some(fix.passages.clone()),
        Some(Reranker::new(fix.endpoint.clone(), 42)),
        Executor::new(workers),
        ServeConfig {
            queue_capacity: 64,
            max_batch,
            flush_deadline: std::time::Duration::from_micros(200),
            ..ServeConfig::default()
        },
    )
}

/// The offline reference: fuse direct dense + lexical searches, then
/// (optionally) rescore through the same reranker adapter.
fn offline_hybrid(
    text: &str,
    fusion: Fusion,
    rerank: bool,
    k: usize,
) -> Vec<mcqa_index::SearchResult> {
    let fix = fixture();
    let depth = fuse_depth(k, 0);
    let dense = fix.registry.expect_store("chunks").search(&encoder().encode(text), depth);
    let lexical = fix.registry.expect_lexical("lex-chunks").search(text, depth);
    let mut fused = fusion.fuse(&dense, &lexical, k);
    if rerank {
        let rr = Reranker::new(fix.endpoint.clone(), 42);
        let ps: Vec<String> = fused
            .iter()
            .map(|h| fix.passages.get("chunks", h.id).unwrap_or("").to_string())
            .collect();
        let scores = rr.score(text, &ps);
        for (h, s) in fused.iter_mut().zip(scores) {
            h.score = s as f32;
        }
        mcqa_util::sort_hits(&mut fused);
    }
    fused
}

proptest! {
    /// The served hybrid (and lexical) paths are bit-identical to the
    /// offline reference at any worker count, batch watermark, arrival
    /// order, fusion config, and input form (text vs text+vector).
    #[test]
    fn served_hybrid_equals_offline_fusion(
        n in 1usize..16,
        seed in 0u64..500,
        k in 1usize..8,
        workers_pick in 0usize..2,
        batch_pick in 0usize..3,
        fusion_pick in 0usize..3,
        rerank_pick in 0usize..2,
        carry_pick in 0usize..2,
        shuffle in 0u64..1000,
    ) {
        let rerank = rerank_pick == 1;
        let carry_vector = carry_pick == 1;
        let workers = [1usize, 4][workers_pick];
        let max_batch = [1usize, 4, 64][batch_pick];
        let fusion = [
            Fusion::Rrf { k0: 60 },
            Fusion::Rrf { k0: 10 },
            Fusion::Weighted { dense: 0.7 },
        ][fusion_pick];
        let mode = QueryMode::Hybrid { fusion, rerank, depth: 0 };

        let texts: Vec<String> = (0..n).map(|i| query_text(seed + i as u64)).collect();
        let reqs: Vec<QueryRequest> = texts
            .iter()
            .map(|t| {
                let r = if carry_vector {
                    QueryRequest::text_and_vector("chunks", t, encoder().encode(t), k)
                } else {
                    QueryRequest::text("chunks", t, k)
                };
                r.with_mode(mode)
            })
            .collect();

        let mut order: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            order.swap(i, (splitmix(shuffle.wrapping_add(i as u64)) as usize) % (i + 1));
        }

        let service = start_service(workers, max_batch);
        let mut tickets: Vec<Option<mcqa_serve::QueryTicket>> =
            std::iter::repeat_with(|| None).take(n).collect();
        for &i in &order {
            tickets[i] = Some(service.submit(reqs[i].clone()).expect("admitted"));
        }
        for (i, t) in tickets.into_iter().enumerate() {
            let resp = t.expect("ticket").wait().expect("served");
            let want = offline_hybrid(&texts[i], fusion, rerank, k);
            prop_assert_eq!(&resp.hits, &want, "hybrid request {}", i);
        }
        service.shutdown();
    }

    /// Served lexical responses equal direct BM25 searches.
    #[test]
    fn served_lexical_equals_direct_bm25(
        n in 1usize..12,
        seed in 0u64..500,
        k in 1usize..8,
        batch_pick in 0usize..2,
    ) {
        let max_batch = [1usize, 8][batch_pick];
        let service = start_service(2, max_batch);
        let lex = fixture().registry.expect_lexical("lex-chunks");
        for i in 0..n {
            let t = query_text(seed + i as u64);
            let resp = service
                .submit(QueryRequest::text("chunks", &t, k).with_mode(QueryMode::Lexical))
                .expect("admitted")
                .wait()
                .expect("served");
            prop_assert_eq!(&resp.hits, &lex.search(&t, k), "lexical query {}", i);
        }
        service.shutdown();
    }
}

/// Vector-only inputs cannot feed BM25: lexical and hybrid requests fail
/// with `NeedsText` while the same vector serves fine under dense mode.
#[test]
fn vector_only_inputs_need_text_for_lexical_modes() {
    let service = start_service(1, 4);
    let vec = encoder().encode("dose rate");
    for mode in [
        QueryMode::Lexical,
        QueryMode::Hybrid { fusion: Fusion::default(), rerank: false, depth: 0 },
    ] {
        match service
            .submit(QueryRequest::vector("chunks", vec.clone(), 3).with_mode(mode))
            .unwrap()
            .wait()
        {
            Err(ServeError::NeedsText { source }) => assert_eq!(source, "chunks"),
            other => panic!("expected NeedsText, got {other:?}"),
        }
    }
    assert!(service.submit(QueryRequest::vector("chunks", vec, 3)).unwrap().wait().is_ok());
    service.shutdown();
}

/// Rerank against a service started without the reranker (or passages)
/// fails with `NoReranker`; the plain hybrid path still works there.
#[test]
fn rerank_requires_start_full() {
    let fix = fixture();
    let service = QueryService::start(
        fix.registry.clone(),
        Some(encoder().clone()),
        Executor::new(1),
        ServeConfig::default(),
    );
    let rerank = QueryMode::Hybrid { fusion: Fusion::default(), rerank: true, depth: 0 };
    match service
        .submit(QueryRequest::text("chunks", "proton dose", 3).with_mode(rerank))
        .unwrap()
        .wait()
    {
        Err(ServeError::NoReranker { source }) => assert_eq!(source, "chunks"),
        other => panic!("expected NoReranker, got {other:?}"),
    }
    let plain = QueryMode::Hybrid { fusion: Fusion::default(), rerank: false, depth: 0 };
    assert!(service
        .submit(QueryRequest::text("chunks", "proton dose", 3).with_mode(plain))
        .unwrap()
        .wait()
        .is_ok());
    service.shutdown();
}

/// A source without a lexical sibling reports the sibling's name, so the
/// caller sees exactly which registry entry is missing.
#[test]
fn missing_lexical_sibling_is_named() {
    let mut reg = IndexRegistry::new();
    let mut store = FlatIndex::new(DIM, Metric::Cosine, Precision::F32);
    store.add(0, &encoder().encode("lone document"));
    reg.insert("bare", Box::new(store));
    let service = QueryService::start(
        Arc::new(reg),
        Some(encoder().clone()),
        Executor::new(1),
        ServeConfig::default(),
    );
    match service
        .submit(QueryRequest::text("bare", "anything", 2).with_mode(QueryMode::Lexical))
        .unwrap()
        .wait()
    {
        Err(ServeError::UnknownStore { name, .. }) => assert_eq!(name, "lex-bare"),
        other => panic!("expected UnknownStore, got {other:?}"),
    }
    service.shutdown();
}
