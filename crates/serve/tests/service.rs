//! Property tests for the query service's core contracts:
//!
//! * **Bit-identity** — served hits equal direct `VectorStore::search`
//!   results regardless of arrival order, executor width, or batch
//!   watermark. Micro-batching changes the schedule, never the answer.
//! * **Bounded admission** — with a tiny queue, every submission is either
//!   admitted or rejected with `Saturated`; admitted + rejected equals
//!   submitted; every admitted request resolves (no hangs, no losses).
//! * **Graceful drain** — shutdown answers every already-admitted request
//!   exactly once, then refuses new work with `ShuttingDown`.

use std::sync::{Arc, OnceLock};

use mcqa_embed::Precision;
use mcqa_index::{FlatIndex, IndexRegistry, Metric, VectorStore};
use mcqa_runtime::Executor;
use mcqa_serve::{QueryRequest, QueryService, ServeConfig, ServeError};
use proptest::prelude::*;

const DIM: usize = 8;
const SOURCES: [&str; 2] = ["chunks", "traces-focused"];

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn vector(seed: u64) -> Vec<f32> {
    (0..DIM).map(|j| (splitmix(seed ^ (j as u64) << 17) % 1000) as f32 / 500.0 - 1.0).collect()
}

/// One registry shared by every test: two flat stores with distinct
/// contents, built once (the tests never mutate it).
fn registry() -> &'static Arc<IndexRegistry> {
    static REG: OnceLock<Arc<IndexRegistry>> = OnceLock::new();
    REG.get_or_init(|| {
        let mut reg = IndexRegistry::new();
        for (s, name) in SOURCES.iter().enumerate() {
            let mut store = FlatIndex::new(DIM, Metric::Cosine, Precision::F32);
            for i in 0..60u64 {
                store.add(i, &vector(splitmix(1000 * (s as u64 + 1) + i)));
            }
            reg.insert(name, Box::new(store));
        }
        Arc::new(reg)
    })
}

/// A deterministic request stream: query vectors, sources, and depths all
/// derived from `seed`.
fn requests(n: usize, seed: u64, k: usize) -> Vec<QueryRequest> {
    (0..n)
        .map(|i| {
            let s = splitmix(seed.wrapping_add(i as u64));
            let source = SOURCES[(s % 2) as usize];
            QueryRequest::vector(source, vector(s), k)
        })
        .collect()
}

/// What a direct, unbatched call on the store itself returns.
fn direct_hits(req: &QueryRequest) -> Vec<mcqa_index::SearchResult> {
    let q = match &req.input {
        mcqa_serve::QueryInput::Vector(v) => v.clone(),
        _ => unreachable!("fixture uses vector inputs"),
    };
    registry().expect_store(&req.source).search(&q, req.k)
}

proptest! {
    /// Served hits are bit-identical to direct `search` no matter the
    /// arrival order, worker count, or batch watermark — and regardless of
    /// how requests were coalesced (the reported batch size varies; the
    /// answer must not).
    #[test]
    fn served_hits_are_bit_identical_to_direct_search(
        n in 1usize..32,
        seed in 0u64..1000,
        k in 1usize..9,
        workers_pick in 0usize..2,
        batch_pick in 0usize..3,
        fast_pick in 0usize..2,
        shuffle in 0u64..1000,
    ) {
        let fast_path = fast_pick == 1;
        let workers = [1usize, 4][workers_pick];
        let max_batch = [1usize, 4, 64][batch_pick];
        let reqs = requests(n, seed, k);

        // A seed-derived permutation of submission order.
        let mut order: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            order.swap(i, (splitmix(shuffle.wrapping_add(i as u64)) as usize) % (i + 1));
        }

        let service = QueryService::start(
            registry().clone(),
            None,
            Executor::new(workers),
            ServeConfig {
                queue_capacity: 64,
                max_batch,
                flush_deadline: std::time::Duration::from_micros(200),
                fast_path,
            },
        );
        let mut tickets: Vec<Option<mcqa_serve::QueryTicket>> =
            std::iter::repeat_with(|| None).take(n).collect();
        for &i in &order {
            // Queue capacity exceeds n: admission cannot saturate here.
            tickets[i] = Some(service.submit(reqs[i].clone()).expect("admitted"));
        }
        for (i, t) in tickets.into_iter().enumerate() {
            let resp = t.expect("ticket").wait().expect("served");
            prop_assert_eq!(&resp.hits, &direct_hits(&reqs[i]), "request {}", i);
            prop_assert!(resp.batch >= 1 && resp.batch <= max_batch.max(1));
            prop_assert!(resp.timing.queue_secs >= 0.0);
        }
        let snap = service.shutdown();
        prop_assert_eq!(snap.admitted, n as u64);
        prop_assert_eq!(snap.served_ok, n as u64);
        prop_assert_eq!(snap.rejected, 0);
        prop_assert_eq!(snap.batch_hist.iter().copied().sum::<u64>(), snap.batches);
        // A fast-path dispatch is still a dispatch: the counter can never
        // outrun the batch ledger, and with the path disabled it stays 0.
        prop_assert!(snap.fast_path_hits <= snap.batches);
        if !fast_path {
            prop_assert_eq!(snap.fast_path_hits, 0);
        }
    }

    /// `query_batch` returns index-aligned results with per-request errors
    /// in place: unknown stores and dim mismatches fail exactly where they
    /// were submitted, valid requests around them still serve bit-identically.
    #[test]
    fn query_batch_is_index_aligned_with_inline_errors(
        n in 1usize..24,
        seed in 0u64..1000,
        k in 1usize..6,
    ) {
        let mut reqs = requests(n, seed, k);
        // Corrupt a deterministic subset: every 3rd an unknown store,
        // every 7th a wrong-dimensional vector.
        for (i, r) in reqs.iter_mut().enumerate() {
            if i % 3 == 1 {
                r.source = "no-such-store".into();
            } else if i % 7 == 2 {
                r.input = mcqa_serve::QueryInput::Vector(vec![0.5; DIM + 3]);
            }
        }
        let service = QueryService::start(
            registry().clone(),
            None,
            Executor::new(2),
            // Capacity below n: exercises the flow-controlled retry path.
            ServeConfig {
                queue_capacity: 4,
                max_batch: 4,
                flush_deadline: std::time::Duration::from_micros(100),
                ..ServeConfig::default()
            },
        );
        let results = service.query_batch(reqs.clone());
        prop_assert_eq!(results.len(), n);
        for (i, (req, res)) in reqs.iter().zip(&results).enumerate() {
            if i % 3 == 1 {
                match res {
                    Err(ServeError::UnknownStore { name, known }) => {
                        prop_assert_eq!(name.as_str(), "no-such-store");
                        prop_assert_eq!(known.len(), SOURCES.len());
                    }
                    other => panic!("request {i}: expected UnknownStore, got {other:?}"),
                }
            } else if i % 7 == 2 {
                match res {
                    Err(ServeError::DimMismatch { expected, got, .. }) => {
                        prop_assert_eq!(*expected, DIM);
                        prop_assert_eq!(*got, DIM + 3);
                    }
                    other => panic!("request {i}: expected DimMismatch, got {other:?}"),
                }
            } else {
                let resp = res.as_ref().expect("valid request serves");
                prop_assert_eq!(&resp.hits, &direct_hits(req), "request {}", i);
            }
        }
        let snap = service.stats();
        prop_assert_eq!(snap.served(), snap.admitted, "flow control loses nothing");
    }

    /// Shutdown drains: every admitted request resolves exactly once even
    /// when shutdown races the dispatcher, and post-shutdown submissions
    /// are refused.
    #[test]
    fn shutdown_drains_every_admitted_request(
        n in 1usize..32,
        seed in 0u64..1000,
        batch_pick in 0usize..3,
    ) {
        let max_batch = [1usize, 4, 64][batch_pick];
        let reqs = requests(n, seed, 4);
        let service = QueryService::start(
            registry().clone(),
            None,
            Executor::new(2),
            ServeConfig {
                queue_capacity: 64,
                max_batch,
                flush_deadline: std::time::Duration::from_micros(200),
                ..ServeConfig::default()
            },
        );
        let tickets: Vec<_> =
            reqs.iter().map(|r| service.submit(r.clone()).expect("admitted")).collect();
        // Immediately drain — many requests are still queued.
        let snap = service.shutdown();
        prop_assert_eq!(snap.admitted, n as u64);
        prop_assert_eq!(snap.served(), n as u64, "drain answers everything");
        for (t, req) in tickets.into_iter().zip(&reqs) {
            let resp = t.wait().expect("drained requests still serve");
            prop_assert_eq!(&resp.hits, &direct_hits(req));
        }
        match service.submit(reqs[0].clone()) {
            Err(ServeError::ShuttingDown) => {}
            other => panic!("expected ShuttingDown, got {other:?}"),
        }
        // Idempotent.
        let again = service.shutdown();
        prop_assert_eq!(again.served(), n as u64);
    }

    /// The single-request fast path is an optimisation of the schedule,
    /// never the answer: a sequential (queue-always-empty) workload takes
    /// the fast path on every dispatch, returns hits bit-identical to the
    /// batched dispatcher serving the same requests, and the admission
    /// ledger still conserves (admitted + rejected == submitted).
    #[test]
    fn fast_path_is_bit_identical_to_batched_dispatch(
        n in 1usize..16,
        seed in 0u64..1000,
        k in 1usize..9,
    ) {
        let reqs = requests(n, seed, k);
        let fast = QueryService::start(
            registry().clone(),
            None,
            Executor::new(2),
            ServeConfig::default(),
        );
        // Wait out each ticket before the next submit: the queue is empty
        // at every arrival, so every dispatch must be a fast-path hit.
        let fast_hits: Vec<_> = reqs
            .iter()
            .map(|r| fast.submit(r.clone()).expect("admitted").wait().expect("served").hits)
            .collect();
        let snap = fast.shutdown();
        prop_assert_eq!(snap.admitted + snap.rejected, n as u64, "conservation");
        prop_assert_eq!(snap.served_ok, n as u64);
        prop_assert_eq!(snap.fast_path_hits, n as u64, "every dispatch was a singleton");
        prop_assert_eq!(snap.batches, n as u64);

        let batched = QueryService::start(
            registry().clone(),
            None,
            Executor::new(2),
            ServeConfig { fast_path: false, ..ServeConfig::default() },
        );
        let batched_hits: Vec<_> = reqs
            .iter()
            .map(|r| batched.submit(r.clone()).expect("admitted").wait().expect("served").hits)
            .collect();
        prop_assert_eq!(batched.shutdown().fast_path_hits, 0);
        for (i, (f, b)) in fast_hits.iter().zip(&batched_hits).enumerate() {
            prop_assert_eq!(f, b, "request {}", i);
            prop_assert_eq!(f, &direct_hits(&reqs[i]), "request {}", i);
        }
    }
}

/// With a capacity-1 queue and a busy dispatcher, a rapid burst must see
/// `Saturated` rejections, the admitted/rejected split must account for
/// every submission, and every admitted request must still resolve.
#[test]
fn bounded_queue_rejects_without_losing_admitted_work() {
    // A store big enough that one search takes much longer than a burst of
    // try_sends, keeping the dispatcher busy while the queue fills.
    let mut reg = IndexRegistry::new();
    let mut store = FlatIndex::new(64, Metric::Cosine, Precision::F32);
    for i in 0..20_000u64 {
        let v: Vec<f32> = (0..64).map(|j| (splitmix(i * 64 + j) % 1000) as f32 / 500.0).collect();
        store.add(i, &v);
    }
    reg.insert("big", Box::new(store));
    let reg = Arc::new(reg);

    let service = QueryService::start(
        reg.clone(),
        None,
        Executor::new(2),
        ServeConfig {
            queue_capacity: 1,
            max_batch: 1,
            flush_deadline: std::time::Duration::from_micros(50),
            ..ServeConfig::default()
        },
    );
    let total = 64;
    let mut tickets = Vec::new();
    let mut rejected = 0u64;
    for i in 0..total {
        let q: Vec<f32> = (0..64).map(|j| (splitmix(9_000 + i * 64 + j) % 1000) as f32).collect();
        match service.submit(QueryRequest::vector("big", q, 5)) {
            Ok(t) => tickets.push(t),
            Err(ServeError::Saturated { capacity }) => {
                assert_eq!(capacity, 1);
                rejected += 1;
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert!(rejected > 0, "a capacity-1 queue under burst load must shed");
    assert_eq!(tickets.len() as u64 + rejected, total, "every submission accounted for");
    let admitted = tickets.len() as u64;
    for t in tickets {
        let resp = t.wait().expect("admitted requests serve");
        assert_eq!(resp.hits.len(), 5);
    }
    let snap = service.shutdown();
    assert_eq!(snap.admitted, admitted);
    assert_eq!(snap.rejected, rejected);
    assert_eq!(snap.served(), admitted, "no admitted request is lost");
    assert!(snap.saturation() > 0.0);
}

/// Text queries encode through the service-side cache and match
/// encode-then-search done by hand; a service without an encoder refuses
/// them with `NoEncoder`.
#[test]
fn text_queries_encode_service_side() {
    use mcqa_embed::{BioEncoder, EmbedConfig};

    let encoder = BioEncoder::new(EmbedConfig { dim: 32, ..EmbedConfig::default() });
    let texts = ["dose rate effects", "fractionation schedule", "proton therapy"];
    let mut reg = IndexRegistry::new();
    let mut store = FlatIndex::new(32, Metric::Cosine, Precision::F32);
    for (i, t) in texts.iter().enumerate() {
        store.add(i as u64, &encoder.encode(t));
    }
    reg.insert("chunks", Box::new(store));
    let reg = Arc::new(reg);

    let service = QueryService::start(
        reg.clone(),
        Some(encoder.clone()),
        Executor::new(2),
        ServeConfig::default(),
    );
    for t in texts {
        let resp = service
            .submit(QueryRequest::text("chunks", t, 2))
            .unwrap()
            .wait()
            .expect("text request serves");
        let direct = reg.expect_store("chunks").search(&encoder.encode(t), 2);
        assert_eq!(resp.hits, direct, "text query '{t}'");
        assert_eq!(resp.hits[0].id, texts.iter().position(|x| *x == t).unwrap() as u64);
    }
    service.shutdown();

    let vector_only = QueryService::start(reg, None, Executor::new(1), ServeConfig::default());
    match vector_only.submit(QueryRequest::text("chunks", "anything", 2)).unwrap().wait() {
        Err(ServeError::NoEncoder { source }) => assert_eq!(source, "chunks"),
        other => panic!("expected NoEncoder, got {other:?}"),
    }
}

/// A pinned metric that disagrees with the store fails per-request.
#[test]
fn metric_pins_are_validated() {
    let service =
        QueryService::start(registry().clone(), None, Executor::new(1), ServeConfig::default());
    let ok = QueryRequest::vector("chunks", vector(7), 3).with_metric(Metric::Cosine);
    assert!(service.submit(ok).unwrap().wait().is_ok());
    let bad = QueryRequest::vector("chunks", vector(7), 3).with_metric(Metric::L2);
    match service.submit(bad).unwrap().wait() {
        Err(ServeError::MetricMismatch { expected, got, .. }) => {
            assert_eq!(expected, Metric::Cosine);
            assert_eq!(got, Metric::L2);
        }
        other => panic!("expected MetricMismatch, got {other:?}"),
    }
    let snap = service.shutdown();
    assert_eq!(snap.served_ok, 1);
    assert_eq!(snap.served_err, 1);
}
