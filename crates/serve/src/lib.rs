//! `mcqa-serve` — the in-process serving layer.
//!
//! The batch pipeline builds the retrieval databases; this crate is the
//! query-time front door over them. No network, no serialisation — just a
//! bounded admission queue in front of a dispatcher thread that coalesces
//! concurrent requests into dynamic micro-batches and drives them through
//! the same [`VectorStore::search_batch`] kernels the evaluator uses, so
//! serving amortises panel decodes exactly like batch eval does while
//! every response stays **bit-identical** to a direct per-query search.
//!
//! Three pieces:
//!
//! * [`envelope`] — the one API surface: [`QueryRequest`] /
//!   [`QueryResponse`] (with per-stage [`QueryTiming`]) and the
//!   [`ServeError`] taxonomy, mirroring the model layer's
//!   `ModelRequest`/`ModelResponse` redesign.
//! * [`service`] — [`QueryService`]: non-blocking admission with defined
//!   backpressure ([`ServeError::Saturated`]), watermark-or-deadline
//!   micro-batch flushing ([`ServeConfig`]), per-request oneshot replies
//!   ([`QueryTicket`]), and graceful shutdown that drains every admitted
//!   request exactly once.
//! * [`stats`] — the [`ServiceStats`] ledger: admitted/rejected/served
//!   counters, a batch-size histogram, per-stage (queue/encode/search)
//!   time accounting, and greppable `[serve] key=value` report lines.
//!
//! [`VectorStore::search_batch`]: mcqa_index::VectorStore::search_batch

pub mod envelope;
pub mod service;
pub mod stats;

pub use envelope::{QueryInput, QueryMode, QueryRequest, QueryResponse, QueryTiming, ServeError};
pub use service::{PassageStore, QueryService, QueryTicket, ServeConfig};
pub use stats::{ServiceSnapshot, ServiceStats, BATCH_BUCKETS, BATCH_BUCKET_LABELS};
