//! The query service: bounded admission → micro-batching dispatcher →
//! per-request oneshot replies.
//!
//! ```text
//!  callers ──try_send──▶ [bounded queue] ──▶ dispatcher thread
//!     ▲                     (reject when        │  coalesce ≤ max_batch
//!     │                      full: defined      │  (flush on watermark or
//!     │                      backpressure)      │   flush_deadline)
//!     └───── oneshot ◀── reply per request ◀────┘  group by (source, k)
//!                                                  encode → search_batch
//! ```
//!
//! The dispatcher is one thread; parallelism comes from the [`Executor`]
//! it drives [`VectorStore::search_batch`] on, exactly like the batch
//! pipeline. Coalescing exists to feed that kernel: the flat backend
//! decodes each row panel once per *query block*, so a micro-batch of 64
//! amortises the decode the way `index_bench` measured (~4× at batch 64).
//! Results are bit-identical to direct per-query searches — batching
//! changes the schedule, never the answer.
//!
//! [`VectorStore::search_batch`]: mcqa_index::VectorStore::search_batch

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam_channel::{bounded, Receiver, Sender, TrySendError};
use mcqa_embed::{BioEncoder, EmbeddingCache};
use mcqa_index::IndexRegistry;
use mcqa_lexical::{fuse_depth, Fusion};
use mcqa_llm::Reranker;
use mcqa_runtime::Executor;
use mcqa_util::sort_hits;
use parking_lot::{Mutex, RwLock};

use crate::envelope::{
    QueryInput, QueryMode, QueryRequest, QueryResponse, QueryTiming, ServeError,
};
use crate::stats::{ServiceSnapshot, ServiceStats};

/// Passage texts keyed by (source, doc id): what the reranker reads when
/// rescoring fused hits. The pipeline fills one from the same chunk/trace
/// texts it indexed, so rerank scores see exactly the retrieved passages.
#[derive(Debug, Clone, Default)]
pub struct PassageStore {
    map: BTreeMap<String, HashMap<u64, String>>,
}

impl PassageStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `text` as the passage behind `id` in `source`.
    pub fn insert(&mut self, source: &str, id: u64, text: impl Into<String>) {
        self.map.entry(source.to_string()).or_default().insert(id, text.into());
    }

    /// The passage behind `id` in `source`, if registered.
    pub fn get(&self, source: &str, id: u64) -> Option<&str> {
        self.map.get(source).and_then(|m| m.get(&id)).map(String::as_str)
    }

    /// Total registered passages across all sources.
    pub fn len(&self) -> usize {
        self.map.values().map(HashMap::len).sum()
    }

    /// True when no passages are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Service tuning knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Admission queue capacity; submissions beyond it fail with
    /// [`ServeError::Saturated`] instead of blocking.
    pub queue_capacity: usize,
    /// Micro-batch watermark: the dispatcher flushes as soon as this many
    /// requests are in hand. `1` disables coalescing (the one-request-at-
    /// a-time baseline `repro serve-bench` compares against).
    pub max_batch: usize,
    /// How long the dispatcher waits for the batch to fill before
    /// flushing what it has. Bounds the latency cost of coalescing.
    pub flush_deadline: Duration,
    /// Single-request fast path: when a request arrives on an otherwise
    /// empty queue, dispatch it immediately instead of waiting out the
    /// flush deadline. Coalescing only pays when there is something to
    /// coalesce *with*, so at low load this removes the deadline from the
    /// latency floor without changing any answer — the dispatched
    /// singleton runs the same grouped search path as a batch of one.
    pub fast_path: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 256,
            max_batch: 64,
            flush_deadline: Duration::from_micros(500),
            fast_path: true,
        }
    }
}

/// One queued request: the envelope plus its admission timestamp and the
/// oneshot reply channel.
struct Pending {
    req: QueryRequest,
    admitted: Instant,
    reply: Sender<Result<QueryResponse, ServeError>>,
}

/// A claim on a submitted request's eventual response.
pub struct QueryTicket {
    rx: Receiver<Result<QueryResponse, ServeError>>,
}

impl std::fmt::Debug for QueryTicket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("QueryTicket")
    }
}

impl QueryTicket {
    /// Block until the dispatcher answers. If the service dies without
    /// replying (dispatcher panic), this resolves to
    /// [`ServeError::ShuttingDown`] rather than hanging.
    pub fn wait(self) -> Result<QueryResponse, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::ShuttingDown))
    }
}

/// The in-process serving front door over an [`IndexRegistry`].
///
/// Construction spawns the dispatcher thread; [`QueryService::shutdown`]
/// (or drop) stops admitting, drains every already-admitted request, and
/// joins the thread — in-flight work is never abandoned.
pub struct QueryService {
    tx: RwLock<Option<Sender<Pending>>>,
    worker: Mutex<Option<std::thread::JoinHandle<()>>>,
    stats: Arc<ServiceStats>,
    config: ServeConfig,
}

impl QueryService {
    /// Start a service over `registry`, encoding text queries through
    /// `encoder` (pass `None` for a vector-only service), searching on
    /// `exec`'s pool. Dense and lexical modes work; hybrid rerank needs
    /// [`QueryService::start_full`].
    pub fn start(
        registry: Arc<IndexRegistry>,
        encoder: Option<BioEncoder>,
        exec: Executor,
        config: ServeConfig,
    ) -> Self {
        Self::start_full(registry, encoder, None, None, exec, config)
    }

    /// [`QueryService::start`] plus the rerank dependencies: the passage
    /// texts behind each source's doc ids and the cross-encoder adapter.
    /// Requests asking for `rerank` on a service missing either fail with
    /// [`ServeError::NoReranker`].
    pub fn start_full(
        registry: Arc<IndexRegistry>,
        encoder: Option<BioEncoder>,
        passages: Option<PassageStore>,
        reranker: Option<Reranker>,
        exec: Executor,
        config: ServeConfig,
    ) -> Self {
        assert!(config.queue_capacity > 0, "queue capacity must be nonzero");
        assert!(config.max_batch > 0, "batch watermark must be nonzero");
        let (tx, rx) = bounded::<Pending>(config.queue_capacity);
        let stats = Arc::new(ServiceStats::new());
        let dispatcher = Dispatcher {
            registry,
            encoder,
            passages,
            reranker,
            exec,
            config: config.clone(),
            stats: stats.clone(),
        };
        let worker = std::thread::Builder::new()
            .name("mcqa-serve".into())
            .spawn(move || dispatcher.run(rx))
            .expect("spawn serve dispatcher");
        Self { tx: RwLock::new(Some(tx)), worker: Mutex::new(Some(worker)), stats, config }
    }

    /// The configuration this service runs with.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Submit one request. Non-blocking: a full queue returns
    /// [`ServeError::Saturated`] immediately (the backpressure contract),
    /// a draining service returns [`ServeError::ShuttingDown`].
    pub fn submit(&self, req: QueryRequest) -> Result<QueryTicket, ServeError> {
        self.try_submit(req).map_err(|(e, _)| e)
    }

    /// [`QueryService::submit`], returning the request on failure so
    /// flow-controlled callers can retry without cloning.
    #[allow(clippy::result_large_err)] // the Err *is* the returned request
    fn try_submit(&self, req: QueryRequest) -> Result<QueryTicket, (ServeError, QueryRequest)> {
        let guard = self.tx.read();
        let Some(tx) = guard.as_ref() else {
            return Err((ServeError::ShuttingDown, req));
        };
        let (reply, rx) = bounded(1);
        match tx.try_send(Pending { req, admitted: Instant::now(), reply }) {
            Ok(()) => {
                self.stats.admit();
                Ok(QueryTicket { rx })
            }
            Err(TrySendError::Full(p)) => {
                self.stats.reject();
                Err((ServeError::Saturated { capacity: self.config.queue_capacity }, p.req))
            }
            Err(TrySendError::Disconnected(p)) => Err((ServeError::ShuttingDown, p.req)),
        }
    }

    /// Replay a whole request list through the service with flow control,
    /// returning responses index-aligned with `reqs`.
    ///
    /// This is the batch-eval path: when admission saturates, the caller
    /// waits for its own oldest in-flight ticket instead of dropping the
    /// request, so a replay larger than the queue completes without load
    /// shedding — while still exercising the same admission queue and
    /// micro-batching as online traffic.
    pub fn query_batch(&self, reqs: Vec<QueryRequest>) -> Vec<Result<QueryResponse, ServeError>> {
        let n = reqs.len();
        let mut results: Vec<Option<Result<QueryResponse, ServeError>>> =
            std::iter::repeat_with(|| None).take(n).collect();
        let mut pending: VecDeque<(usize, QueryTicket)> = VecDeque::new();
        for (i, mut req) in reqs.into_iter().enumerate() {
            loop {
                match self.try_submit(req) {
                    Ok(ticket) => {
                        pending.push_back((i, ticket));
                        break;
                    }
                    Err((ServeError::Saturated { .. }, r)) => {
                        req = r;
                        match pending.pop_front() {
                            // Drain our own oldest in-flight request; by the
                            // time it answered, queue space has turned over.
                            Some((j, ticket)) => results[j] = Some(ticket.wait()),
                            // Saturated by other clients: back off and retry.
                            None => std::thread::yield_now(),
                        }
                    }
                    Err((e, _)) => {
                        results[i] = Some(Err(e));
                        break;
                    }
                }
            }
        }
        for (j, ticket) in pending {
            results[j] = Some(ticket.wait());
        }
        results.into_iter().map(|r| r.expect("every request resolved")).collect()
    }

    /// A point-in-time ledger snapshot.
    pub fn stats(&self) -> ServiceSnapshot {
        self.stats.snapshot()
    }

    /// Stop admitting, drain every admitted request, join the dispatcher,
    /// and return the final ledger. Idempotent; also runs on drop.
    ///
    /// The drain guarantee comes from the channel: dropping the sender
    /// disconnects it, but the dispatcher still receives every message
    /// that was queued before the disconnect, so each admitted request is
    /// answered exactly once before the thread exits.
    pub fn shutdown(&self) -> ServiceSnapshot {
        *self.tx.write() = None;
        if let Some(handle) = self.worker.lock().take() {
            let _ = handle.join();
        }
        self.stats.snapshot()
    }
}

impl Drop for QueryService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The dispatcher side: everything the service thread owns.
struct Dispatcher {
    registry: Arc<IndexRegistry>,
    encoder: Option<BioEncoder>,
    passages: Option<PassageStore>,
    reranker: Option<Reranker>,
    exec: Executor,
    config: ServeConfig,
    stats: Arc<ServiceStats>,
}

/// A totally ordered stand-in for [`QueryMode`] in the group map: the
/// variant tag plus the fusion knobs (f32 weight via its bit pattern —
/// grouping only needs a stable key, not numeric order) and the hybrid
/// over-fetch depth.
type ModeKey = (u8, u32, u32, u8);

/// The micro-batch group key: one store search per (source, k, mode).
type GroupKey = (String, usize, ModeKey);

fn mode_key(mode: &QueryMode) -> ModeKey {
    match *mode {
        QueryMode::Dense => (0, 0, 0, 0),
        QueryMode::Lexical => (1, 0, 0, 0),
        QueryMode::Hybrid { fusion: Fusion::Rrf { k0 }, rerank, depth } => {
            (2, k0, depth as u32, u8::from(rerank))
        }
        QueryMode::Hybrid { fusion: Fusion::Weighted { dense }, rerank, depth } => {
            (3, dense.to_bits(), depth as u32, u8::from(rerank))
        }
    }
}

impl Dispatcher {
    fn run(self, rx: Receiver<Pending>) {
        // The dispatcher's own query-encode cache: repeated text queries
        // (hot questions, replayed benchmarks) skip the encoder entirely.
        let cache = self.encoder.as_ref().map(EmbeddingCache::new);
        loop {
            // Block for the batch's first request; a disconnected, empty
            // queue is the drain-complete signal.
            let first = match rx.recv() {
                Ok(p) => p,
                Err(_) => break,
            };
            let mut batch = vec![first];
            // Single-request fast path: drain whatever is already queued
            // without waiting. If the first request arrived alone, there
            // is nothing to coalesce with — dispatch it now rather than
            // paying the flush deadline for a batch that will stay at 1.
            if self.config.fast_path {
                while batch.len() < self.config.max_batch {
                    match rx.try_recv() {
                        Ok(p) => batch.push(p),
                        // Empty or disconnected; disconnect is settled by
                        // the outer recv after this batch drains.
                        Err(_) => break,
                    }
                }
                if batch.len() == 1 {
                    self.stats.fast_path_hit();
                    self.process(batch, cache.as_ref());
                    continue;
                }
            }
            // Dynamic micro-batching: keep pulling until the watermark or
            // the flush deadline, whichever comes first. The deadline is
            // measured from the first dequeue, so a lone request is never
            // delayed by more than `flush_deadline`.
            let deadline = Instant::now() + self.config.flush_deadline;
            while batch.len() < self.config.max_batch {
                let left = deadline.saturating_duration_since(Instant::now());
                if left.is_zero() {
                    break;
                }
                match rx.recv_timeout(left) {
                    Ok(p) => batch.push(p),
                    // Timeout flushes the partial batch; disconnect is
                    // settled by the outer recv after this batch drains.
                    Err(_) => break,
                }
            }
            self.process(batch, cache.as_ref());
        }
    }

    /// Serve one micro-batch: group by (source store, k, mode), run each
    /// group through its channel(s), and answer every envelope exactly
    /// once.
    fn process(&self, batch: Vec<Pending>, cache: Option<&EmbeddingCache<'_>>) {
        let dequeued = Instant::now();
        let size = batch.len();
        self.stats.record_batch(size);

        let queue_waits: Vec<f64> = batch
            .iter()
            .map(|p| dequeued.saturating_duration_since(p.admitted).as_secs_f64())
            .collect();
        for w in &queue_waits {
            self.stats.add_queue_secs(*w);
        }

        // Group member slots by (source, k, mode): one store search per
        // group keeps results bit-identical to per-query search (the
        // batched kernels guarantee it) while amortising panel decodes.
        let mut groups: BTreeMap<GroupKey, Vec<usize>> = BTreeMap::new();
        for (i, p) in batch.iter().enumerate() {
            groups
                .entry((p.req.source.clone(), p.req.k, mode_key(&p.req.mode)))
                .or_default()
                .push(i);
        }
        let mut slots: Vec<Option<Pending>> = batch.into_iter().map(Some).collect();

        let mut ctx = GroupCtx { slots: &mut slots, queue_waits: &queue_waits, size };
        for ((source, k, _), members) in groups {
            // The key fully encodes the mode, so any member's copy works.
            let mode = ctx.slots[members[0]].as_ref().expect("slot unanswered").req.mode;
            match mode {
                QueryMode::Dense => self.serve_dense(&source, k, &members, cache, &mut ctx),
                QueryMode::Lexical => self.serve_lexical(&source, k, &members, &mut ctx),
                QueryMode::Hybrid { fusion, rerank, depth } => {
                    self.serve_hybrid(&source, k, fusion, rerank, depth, &members, cache, &mut ctx)
                }
            }
        }

        debug_assert!(slots.iter().all(Option::is_none), "every request answered");
    }

    /// Reply to one member slot (exactly once).
    fn answer(&self, slot: &mut Option<Pending>, result: Result<QueryResponse, ServeError>) {
        let p = slot.take().expect("each slot answered exactly once");
        self.stats.record_served(result.is_ok());
        // A dropped ticket is the caller's choice, not an error here.
        let _ = p.reply.send(result);
    }

    /// Fail every member of a group with (a clone of) `err`.
    fn fail_group(&self, members: &[usize], err: ServeError, ctx: &mut GroupCtx<'_>) {
        for &i in members {
            self.answer(&mut ctx.slots[i], Err(err.clone()));
        }
    }

    /// The dense channel: encode text queries, validate, one batched
    /// vector search per group — the pre-PR-8 path, byte for byte.
    fn serve_dense(
        &self,
        source: &str,
        k: usize,
        members: &[usize],
        cache: Option<&EmbeddingCache<'_>>,
        ctx: &mut GroupCtx<'_>,
    ) {
        let Some(store) = self.registry.get(source) else {
            let known: Vec<String> = self.registry.names().iter().map(|s| s.to_string()).collect();
            self.fail_group(members, ServeError::UnknownStore { name: source.into(), known }, ctx);
            return;
        };

        // Encode + validate stage (timed per group).
        let t_encode = Instant::now();
        let mut ready: Vec<(usize, Vec<f32>)> = Vec::with_capacity(members.len());
        let mut failed: Vec<(usize, ServeError)> = Vec::new();
        for &i in members {
            let req = &ctx.slots[i].as_ref().expect("slot unanswered").req;
            if let Some(want) = req.metric {
                if want != store.metric() {
                    let err = ServeError::MetricMismatch {
                        store: source.to_string(),
                        expected: store.metric(),
                        got: want,
                    };
                    failed.push((i, err));
                    continue;
                }
            }
            let query = match &req.input {
                QueryInput::Vector(v) | QueryInput::TextAndVector { vector: v, .. } => v.clone(),
                QueryInput::Text(text) => match cache {
                    Some(c) => c.encode(text),
                    None => {
                        failed.push((i, ServeError::NoEncoder { source: source.to_string() }));
                        continue;
                    }
                },
            };
            if query.len() != store.dim() {
                let err = ServeError::DimMismatch {
                    store: source.to_string(),
                    expected: store.dim(),
                    got: query.len(),
                };
                failed.push((i, err));
                continue;
            }
            ready.push((i, query));
        }
        let encode_secs = t_encode.elapsed().as_secs_f64();
        self.stats.add_encode_secs(encode_secs);

        for (i, err) in failed {
            self.answer(&mut ctx.slots[i], Err(err));
        }
        if ready.is_empty() {
            return;
        }

        // Search stage: one batched call per group, fanned out on the
        // executor — the same kernel path as direct `search_batch`.
        let (idxs, queries): (Vec<usize>, Vec<Vec<f32>>) = ready.into_iter().unzip();
        let t_search = Instant::now();
        let hits = store.search_batch(&self.exec, &queries, k);
        let search_secs = t_search.elapsed().as_secs_f64();
        self.stats.add_search_secs(search_secs);

        for (i, h) in idxs.into_iter().zip(hits) {
            let timing = QueryTiming { queue_secs: ctx.queue_waits[i], encode_secs, search_secs };
            self.answer(&mut ctx.slots[i], Ok(QueryResponse { hits: h, batch: ctx.size, timing }));
        }
    }

    /// The lexical channel: BM25 against the source's `lex-` sibling. No
    /// encode stage — the query text *is* the query.
    fn serve_lexical(&self, source: &str, k: usize, members: &[usize], ctx: &mut GroupCtx<'_>) {
        let lex_name = IndexRegistry::lexical_sibling(source);
        let Some(lex) = self.registry.lexical(&lex_name) else {
            let known: Vec<String> =
                self.registry.lexical_names().iter().map(|s| s.to_string()).collect();
            self.fail_group(members, ServeError::UnknownStore { name: lex_name, known }, ctx);
            return;
        };

        let mut ready: Vec<(usize, String)> = Vec::with_capacity(members.len());
        for &i in members {
            let req = &ctx.slots[i].as_ref().expect("slot unanswered").req;
            match req.input.text() {
                Some(t) => ready.push((i, t.to_string())),
                None => self.answer(
                    &mut ctx.slots[i],
                    Err(ServeError::NeedsText { source: source.to_string() }),
                ),
            }
        }
        if ready.is_empty() {
            return;
        }

        let (idxs, texts): (Vec<usize>, Vec<String>) = ready.into_iter().unzip();
        let t_search = Instant::now();
        let hits = lex.search_batch(&self.exec, &texts, k);
        let search_secs = t_search.elapsed().as_secs_f64();
        self.stats.add_search_secs(search_secs);

        for (i, h) in idxs.into_iter().zip(hits) {
            let timing =
                QueryTiming { queue_secs: ctx.queue_waits[i], encode_secs: 0.0, search_secs };
            self.answer(&mut ctx.slots[i], Ok(QueryResponse { hits: h, batch: ctx.size, timing }));
        }
    }

    /// The hybrid channel: both stores over-fetched to
    /// [`fuse_depth`]`(k, depth)`, fused per query, optionally rescored by
    /// the reranker. Bit-identical to fusing two direct searches offline.
    #[allow(clippy::too_many_arguments)]
    fn serve_hybrid(
        &self,
        source: &str,
        k: usize,
        fusion: Fusion,
        rerank: bool,
        fetch_depth: usize,
        members: &[usize],
        cache: Option<&EmbeddingCache<'_>>,
        ctx: &mut GroupCtx<'_>,
    ) {
        let Some(store) = self.registry.get(source) else {
            let known: Vec<String> = self.registry.names().iter().map(|s| s.to_string()).collect();
            self.fail_group(members, ServeError::UnknownStore { name: source.into(), known }, ctx);
            return;
        };
        let lex_name = IndexRegistry::lexical_sibling(source);
        let Some(lex) = self.registry.lexical(&lex_name) else {
            let known: Vec<String> =
                self.registry.lexical_names().iter().map(|s| s.to_string()).collect();
            self.fail_group(members, ServeError::UnknownStore { name: lex_name, known }, ctx);
            return;
        };
        if rerank && (self.reranker.is_none() || self.passages.is_none()) {
            self.fail_group(members, ServeError::NoReranker { source: source.into() }, ctx);
            return;
        }

        // Encode + validate stage: every member needs text (lexical side)
        // and a vector (dense side — carried or encoded here).
        let t_encode = Instant::now();
        let mut ready: Vec<(usize, String, Vec<f32>)> = Vec::with_capacity(members.len());
        let mut failed: Vec<(usize, ServeError)> = Vec::new();
        for &i in members {
            let req = &ctx.slots[i].as_ref().expect("slot unanswered").req;
            if let Some(want) = req.metric {
                if want != store.metric() {
                    let err = ServeError::MetricMismatch {
                        store: source.to_string(),
                        expected: store.metric(),
                        got: want,
                    };
                    failed.push((i, err));
                    continue;
                }
            }
            let Some(text) = req.input.text() else {
                failed.push((i, ServeError::NeedsText { source: source.to_string() }));
                continue;
            };
            let vector = match &req.input {
                QueryInput::TextAndVector { vector, .. } => vector.clone(),
                _ => match cache {
                    Some(c) => c.encode(text),
                    None => {
                        failed.push((i, ServeError::NoEncoder { source: source.to_string() }));
                        continue;
                    }
                },
            };
            if vector.len() != store.dim() {
                let err = ServeError::DimMismatch {
                    store: source.to_string(),
                    expected: store.dim(),
                    got: vector.len(),
                };
                failed.push((i, err));
                continue;
            }
            ready.push((i, text.to_string(), vector));
        }
        let encode_secs = t_encode.elapsed().as_secs_f64();
        self.stats.add_encode_secs(encode_secs);

        for (i, err) in failed {
            self.answer(&mut ctx.slots[i], Err(err));
        }
        if ready.is_empty() {
            return;
        }

        let mut idxs = Vec::with_capacity(ready.len());
        let mut texts = Vec::with_capacity(ready.len());
        let mut vectors = Vec::with_capacity(ready.len());
        for (i, t, v) in ready {
            idxs.push(i);
            texts.push(t);
            vectors.push(v);
        }

        // Search stage: both channels batched, then fuse per query.
        let depth = fuse_depth(k, fetch_depth);
        let t_search = Instant::now();
        let dense_hits = store.search_batch(&self.exec, &vectors, depth);
        let lex_hits = lex.search_batch(&self.exec, &texts, depth);
        let mut fused: Vec<Vec<mcqa_index::SearchResult>> =
            dense_hits.iter().zip(&lex_hits).map(|(d, l)| fusion.fuse(d, l, k)).collect();

        if rerank {
            let rr = self.reranker.as_ref().expect("checked above");
            let ps = self.passages.as_ref().expect("checked above");
            // Missing passages score as empty text (relevance 0) rather
            // than failing the whole request: ordering stays total.
            let prompts: Vec<(&str, Vec<String>)> = texts
                .iter()
                .zip(&fused)
                .map(|(t, hits)| {
                    let passages: Vec<String> = hits
                        .iter()
                        .map(|h| ps.get(source, h.id).unwrap_or("").to_string())
                        .collect();
                    (t.as_str(), passages)
                })
                .collect();
            let scores = rr.score_batch(&self.exec, &prompts);
            for (hits, ss) in fused.iter_mut().zip(scores) {
                for (h, s) in hits.iter_mut().zip(ss) {
                    h.score = s as f32;
                }
                sort_hits(hits);
            }
        }
        let search_secs = t_search.elapsed().as_secs_f64();
        self.stats.add_search_secs(search_secs);

        for (i, h) in idxs.into_iter().zip(fused) {
            let timing = QueryTiming { queue_secs: ctx.queue_waits[i], encode_secs, search_secs };
            self.answer(&mut ctx.slots[i], Ok(QueryResponse { hits: h, batch: ctx.size, timing }));
        }
    }
}

/// Per-micro-batch state shared by the serve paths.
struct GroupCtx<'a> {
    slots: &'a mut Vec<Option<Pending>>,
    queue_waits: &'a [f64],
    size: usize,
}
