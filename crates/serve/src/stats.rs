//! The service's observability ledger.
//!
//! Lock-free atomic counters updated on the submit and dispatch paths,
//! snapshotted into [`ServiceSnapshot`] for reporting — the same
//! ledger-then-snapshot shape as the model layer's call ledger, so the
//! serving surface reads like the rest of the repo's cost accounting.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Batch-size histogram buckets: `1, 2, 3–4, 5–8, 9–16, 17–32, 33–64, 65+`.
pub const BATCH_BUCKETS: usize = 8;

/// Human labels for the histogram buckets, index-aligned with
/// [`ServiceSnapshot::batch_hist`].
pub const BATCH_BUCKET_LABELS: [&str; BATCH_BUCKETS] =
    ["1", "2", "3-4", "5-8", "9-16", "17-32", "33-64", "65+"];

fn bucket_of(batch: usize) -> usize {
    match batch {
        0 | 1 => 0,
        2 => 1,
        3..=4 => 2,
        5..=8 => 3,
        9..=16 => 4,
        17..=32 => 5,
        33..=64 => 6,
        _ => 7,
    }
}

/// Live counters, shared between the submit path and the dispatcher.
#[derive(Default)]
pub struct ServiceStats {
    admitted: AtomicU64,
    rejected: AtomicU64,
    served_ok: AtomicU64,
    served_err: AtomicU64,
    batches: AtomicU64,
    fast_path_hits: AtomicU64,
    batch_hist: [AtomicU64; BATCH_BUCKETS],
    queue_nanos: AtomicU64,
    encode_nanos: AtomicU64,
    search_nanos: AtomicU64,
}

impl ServiceStats {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    pub(crate) fn admit(&self) {
        self.admitted.fetch_add(1, Relaxed);
    }

    pub(crate) fn reject(&self) {
        self.rejected.fetch_add(1, Relaxed);
    }

    pub(crate) fn record_batch(&self, size: usize) {
        self.batches.fetch_add(1, Relaxed);
        self.batch_hist[bucket_of(size)].fetch_add(1, Relaxed);
    }

    pub(crate) fn fast_path_hit(&self) {
        self.fast_path_hits.fetch_add(1, Relaxed);
    }

    pub(crate) fn record_served(&self, ok: bool) {
        if ok {
            self.served_ok.fetch_add(1, Relaxed);
        } else {
            self.served_err.fetch_add(1, Relaxed);
        }
    }

    pub(crate) fn add_queue_secs(&self, secs: f64) {
        self.queue_nanos.fetch_add((secs * 1e9) as u64, Relaxed);
    }

    pub(crate) fn add_encode_secs(&self, secs: f64) {
        self.encode_nanos.fetch_add((secs * 1e9) as u64, Relaxed);
    }

    pub(crate) fn add_search_secs(&self, secs: f64) {
        self.search_nanos.fetch_add((secs * 1e9) as u64, Relaxed);
    }

    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> ServiceSnapshot {
        ServiceSnapshot {
            admitted: self.admitted.load(Relaxed),
            rejected: self.rejected.load(Relaxed),
            served_ok: self.served_ok.load(Relaxed),
            served_err: self.served_err.load(Relaxed),
            batches: self.batches.load(Relaxed),
            fast_path_hits: self.fast_path_hits.load(Relaxed),
            batch_hist: std::array::from_fn(|i| self.batch_hist[i].load(Relaxed)),
            queue_secs: self.queue_nanos.load(Relaxed) as f64 / 1e9,
            encode_secs: self.encode_nanos.load(Relaxed) as f64 / 1e9,
            search_secs: self.search_nanos.load(Relaxed) as f64 / 1e9,
        }
    }
}

/// A point-in-time view of the service ledger.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceSnapshot {
    /// Requests accepted into the queue.
    pub admitted: u64,
    /// Requests rejected at admission ([`crate::ServeError::Saturated`]).
    pub rejected: u64,
    /// Requests answered with hits.
    pub served_ok: u64,
    /// Requests answered with a per-request error (unknown store, dim or
    /// metric mismatch, missing encoder).
    pub served_err: u64,
    /// Micro-batches dispatched.
    pub batches: u64,
    /// Dispatches that took the single-request fast path: the request
    /// arrived on an empty queue, so the dispatcher skipped the
    /// flush-deadline wait entirely (see [`crate::ServeConfig::fast_path`]).
    pub fast_path_hits: u64,
    /// Batch-size histogram (see [`BATCH_BUCKET_LABELS`]).
    pub batch_hist: [u64; BATCH_BUCKETS],
    /// Summed per-request queue wait.
    pub queue_secs: f64,
    /// Summed batch-group encode wall time.
    pub encode_secs: f64,
    /// Summed batch-group search wall time.
    pub search_secs: f64,
}

impl ServiceSnapshot {
    /// Total requests answered (ok + error).
    pub fn served(&self) -> u64 {
        self.served_ok + self.served_err
    }

    /// Mean requests per dispatched micro-batch.
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.served() as f64 / self.batches as f64
        }
    }

    /// Fraction of submissions shed at admission (`rejected / offered`).
    pub fn saturation(&self) -> f64 {
        let offered = self.admitted + self.rejected;
        if offered == 0 {
            0.0
        } else {
            self.rejected as f64 / offered as f64
        }
    }

    /// Greppable `[serve] key=value` ledger lines, mirroring the model
    /// ledger's `[models]` surface.
    pub fn lines(&self) -> Vec<String> {
        let hist: Vec<String> = BATCH_BUCKET_LABELS
            .iter()
            .zip(&self.batch_hist)
            .map(|(label, n)| format!("b{label}={n}"))
            .collect();
        vec![
            format!(
                "[serve] ledger admitted={} rejected={} served_ok={} served_err={} \
                 batches={} fast_path_hits={} mean_batch={:.1} saturation={:.3}",
                self.admitted,
                self.rejected,
                self.served_ok,
                self.served_err,
                self.batches,
                self.fast_path_hits,
                self.mean_batch(),
                self.saturation()
            ),
            format!(
                "[serve] stages queue_secs={:.3} encode_secs={:.3} search_secs={:.3}",
                self.queue_secs, self.encode_secs, self.search_secs
            ),
            format!("[serve] batch_hist {}", hist.join(" ")),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_all_sizes() {
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(8), 3);
        assert_eq!(bucket_of(16), 4);
        assert_eq!(bucket_of(32), 5);
        assert_eq!(bucket_of(64), 6);
        assert_eq!(bucket_of(65), 7);
        assert_eq!(bucket_of(10_000), 7);
    }

    #[test]
    fn snapshot_derives() {
        let s = ServiceStats::new();
        for _ in 0..10 {
            s.admit();
        }
        s.reject();
        s.record_batch(4);
        s.record_batch(6);
        s.fast_path_hit();
        for i in 0..10 {
            s.record_served(i > 0); // one error, nine ok
        }
        s.add_queue_secs(0.5);
        let snap = s.snapshot();
        assert_eq!(snap.admitted, 10);
        assert_eq!(snap.rejected, 1);
        assert_eq!(snap.served(), 10);
        assert_eq!(snap.served_err, 1);
        assert_eq!(snap.batches, 2);
        assert_eq!(snap.fast_path_hits, 1);
        assert_eq!(snap.batch_hist[2], 1, "4 lands in 3-4");
        assert_eq!(snap.batch_hist[3], 1, "6 lands in 5-8");
        assert!((snap.mean_batch() - 5.0).abs() < 1e-12);
        assert!((snap.saturation() - 1.0 / 11.0).abs() < 1e-12);
        assert!((snap.queue_secs - 0.5).abs() < 1e-6);
        let lines = snap.lines();
        assert_eq!(lines.len(), 3);
        assert!(lines.iter().all(|l| l.starts_with("[serve] ")));
        assert!(lines[0].contains("admitted=10"));
        assert!(lines[0].contains("fast_path_hits=1"));
        assert!(lines[2].contains("b3-4=1"));
    }

    #[test]
    fn empty_snapshot_is_zero_not_nan() {
        let snap = ServiceStats::new().snapshot();
        assert_eq!(snap.mean_batch(), 0.0);
        assert_eq!(snap.saturation(), 0.0);
    }
}
