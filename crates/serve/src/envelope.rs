//! The one serving API surface: a typed request/response envelope.
//!
//! Mirrors the model layer's `ModelRequest`/`ModelResponse` redesign: one
//! envelope type carries every retrieval call — batch eval replay and
//! online serving alike — so there is exactly one code path into the
//! vector stores. A request names its source database, carries the query
//! as text (encoded service-side through the shared embedding cache) or a
//! pre-encoded vector, the retrieval depth `k`, and an optional expected
//! metric the service validates against the store.

use mcqa_index::{Metric, SearchResult};
use mcqa_lexical::Fusion;
use serde::{Deserialize, Serialize};

/// The query payload: raw text (the service encodes it) or a pre-encoded
/// embedding (the eval replay path, which owns its own encode cache).
#[derive(Debug, Clone, PartialEq)]
pub enum QueryInput {
    /// Encode server-side through the service's embedding cache.
    Text(String),
    /// Already encoded; must match the store's dimensionality. Dense-only:
    /// the lexical channel needs the query *text*, so [`QueryMode::Lexical`]
    /// and [`QueryMode::Hybrid`] requests fail with
    /// [`ServeError::NeedsText`] on this variant.
    Vector(Vec<f32>),
    /// Both the raw text and its pre-encoded embedding — the eval replay
    /// path under hybrid retrieval, where the caller owns the encode cache
    /// but the lexical channel still needs the words.
    TextAndVector {
        /// The raw query text (feeds the lexical channel / reranker).
        text: String,
        /// The pre-encoded embedding (feeds the dense channel).
        vector: Vec<f32>,
    },
}

impl QueryInput {
    /// The query text, when this input carries one.
    pub fn text(&self) -> Option<&str> {
        match self {
            QueryInput::Text(t) | QueryInput::TextAndVector { text: t, .. } => Some(t),
            QueryInput::Vector(_) => None,
        }
    }
}

/// Which retrieval channel(s) a request runs through.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum QueryMode {
    /// Vector search against the dense store (the default; the pre-PR-8
    /// behaviour, byte for byte).
    Dense,
    /// BM25 search against the source's lexical sibling
    /// (`lex-<source>` in the registry).
    Lexical,
    /// Both channels over-fetched to [`mcqa_lexical::fuse_depth`], fused
    /// to top-k, optionally rescored by the service's reranker.
    Hybrid {
        /// How the two candidate lists merge.
        fusion: Fusion,
        /// Rescore the fused top-k through the cross-encoder reranker.
        rerank: bool,
        /// Per-channel over-fetch multiplier before fusion; `0` selects
        /// [`mcqa_lexical::DEFAULT_FUSE_DEPTH`].
        depth: usize,
    },
}

// Not derived: the serde shim's derive can't parse a `#[default]` variant
// attribute (same situation as IndexSpec / ModelSpec).
#[allow(clippy::derivable_impls)]
impl Default for QueryMode {
    fn default() -> Self {
        QueryMode::Dense
    }
}

impl QueryMode {
    /// A stable label for logs and bench output.
    pub fn label(&self) -> String {
        match self {
            QueryMode::Dense => "dense".into(),
            QueryMode::Lexical => "lexical".into(),
            QueryMode::Hybrid { fusion, rerank, .. } => {
                format!("hybrid-{}{}", fusion.label(), if *rerank { "+rr" } else { "" })
            }
        }
    }
}

/// One retrieval request against a named source database.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRequest {
    /// Registry name of the source database (`chunks`, `traces-<mode>`).
    /// Lexical and hybrid requests still name the *dense* source; the
    /// service routes to its `lex-` sibling itself — there is no separate
    /// lexical address space on the wire.
    pub source: String,
    /// The query itself.
    pub input: QueryInput,
    /// Retrieval depth: number of hits to return.
    pub k: usize,
    /// When set, the dense store's metric must match or the request fails
    /// with [`ServeError::MetricMismatch`] — a cheap guard against routing
    /// a cosine-space query into an L2 store. Ignored by
    /// [`QueryMode::Lexical`] (BM25 has no vector metric).
    pub metric: Option<Metric>,
    /// Which retrieval channel(s) to run.
    pub mode: QueryMode,
}

impl QueryRequest {
    /// A text query against `source`.
    pub fn text(source: impl Into<String>, text: impl Into<String>, k: usize) -> Self {
        Self {
            source: source.into(),
            input: QueryInput::Text(text.into()),
            k,
            metric: None,
            mode: QueryMode::Dense,
        }
    }

    /// A pre-encoded query against `source`.
    pub fn vector(source: impl Into<String>, vector: Vec<f32>, k: usize) -> Self {
        Self {
            source: source.into(),
            input: QueryInput::Vector(vector),
            k,
            metric: None,
            mode: QueryMode::Dense,
        }
    }

    /// A query carrying both text and its pre-encoded embedding (the eval
    /// replay path for lexical/hybrid modes).
    pub fn text_and_vector(
        source: impl Into<String>,
        text: impl Into<String>,
        vector: Vec<f32>,
        k: usize,
    ) -> Self {
        Self {
            source: source.into(),
            input: QueryInput::TextAndVector { text: text.into(), vector },
            k,
            metric: None,
            mode: QueryMode::Dense,
        }
    }

    /// Set the expected metric (validated by the service).
    pub fn with_metric(mut self, metric: Metric) -> Self {
        self.metric = Some(metric);
        self
    }

    /// Set the retrieval mode (default [`QueryMode::Dense`]).
    pub fn with_mode(mut self, mode: QueryMode) -> Self {
        self.mode = mode;
        self
    }
}

/// Per-stage latency accounting for one served request.
///
/// `queue_secs` is this request's own wait between admission and the
/// dispatcher picking it up; `encode_secs` and `search_secs` are the wall
/// time of the micro-batch stages the request rode in (shared by every
/// request in its batch group — the amortisation is the point).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct QueryTiming {
    /// Admission → dequeue wait (this request's own).
    pub queue_secs: f64,
    /// Text-encoding wall time of the request's batch group.
    pub encode_secs: f64,
    /// Store-search wall time of the request's batch group.
    pub search_secs: f64,
}

/// One served retrieval response.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResponse {
    /// Top-k hits, best first — bit-identical to a direct
    /// [`mcqa_index::VectorStore::search`] on the same store.
    pub hits: Vec<SearchResult>,
    /// Size of the micro-batch this request was coalesced into.
    pub batch: usize,
    /// Per-stage latency accounting.
    pub timing: QueryTiming,
}

/// Everything that can go wrong between submission and response.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The bounded admission queue is full: the defined backpressure
    /// signal. Callers shed load or retry; the service never blocks them.
    Saturated {
        /// The queue capacity that was exceeded.
        capacity: usize,
    },
    /// The service is draining and no longer admits requests.
    ShuttingDown,
    /// The named source database is not in the registry.
    UnknownStore {
        /// The requested name.
        name: String,
        /// The names that are registered.
        known: Vec<String>,
    },
    /// A pre-encoded vector's length does not match the store.
    DimMismatch {
        /// The store that rejected the query.
        store: String,
        /// The store's dimensionality.
        expected: usize,
        /// The query vector's length.
        got: usize,
    },
    /// The request pinned a metric the store does not use.
    MetricMismatch {
        /// The store that rejected the query.
        store: String,
        /// The store's metric.
        expected: Metric,
        /// The metric the request pinned.
        got: Metric,
    },
    /// A text query reached a service started without an encoder.
    NoEncoder {
        /// The source the query named.
        source: String,
    },
    /// A lexical or hybrid request arrived with a vector-only input: BM25
    /// scores words, so those modes need the query text on the envelope.
    NeedsText {
        /// The source the query named.
        source: String,
    },
    /// A rerank request reached a service started without a reranker (or
    /// without the passage texts rescoring needs).
    NoReranker {
        /// The source the query named.
        source: String,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Saturated { capacity } => {
                write!(f, "admission queue saturated (capacity {capacity})")
            }
            ServeError::ShuttingDown => write!(f, "service is shutting down"),
            ServeError::UnknownStore { name, known } => {
                write!(f, "unknown source store '{name}' (have: {known:?})")
            }
            ServeError::DimMismatch { store, expected, got } => {
                write!(f, "query dim {got} != store '{store}' dim {expected}")
            }
            ServeError::MetricMismatch { store, expected, got } => {
                write!(f, "requested metric {got:?} != store '{store}' metric {expected:?}")
            }
            ServeError::NoEncoder { source } => {
                write!(f, "text query for '{source}' but the service has no encoder")
            }
            ServeError::NeedsText { source } => {
                write!(f, "lexical/hybrid query for '{source}' needs text, got a vector-only input")
            }
            ServeError::NoReranker { source } => {
                write!(f, "rerank requested for '{source}' but the service has no reranker")
            }
        }
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_constructors() {
        let r = QueryRequest::text("chunks", "dose rate", 5);
        assert_eq!(r.source, "chunks");
        assert_eq!(r.input, QueryInput::Text("dose rate".into()));
        assert_eq!(r.k, 5);
        assert_eq!(r.metric, None);

        let r =
            QueryRequest::vector("traces-focused", vec![1.0, 0.0], 3).with_metric(Metric::Cosine);
        assert_eq!(r.metric, Some(Metric::Cosine));
        assert!(matches!(r.input, QueryInput::Vector(_)));
        assert_eq!(r.mode, QueryMode::Dense);
        assert_eq!(r.input.text(), None);

        let r = QueryRequest::text_and_vector("chunks", "dose rate", vec![0.5], 4)
            .with_mode(QueryMode::Hybrid { fusion: Fusion::default(), rerank: true, depth: 0 });
        assert_eq!(r.input.text(), Some("dose rate"));
        assert_eq!(r.mode.label(), "hybrid-rrf60+rr");
        assert_eq!(QueryMode::Lexical.label(), "lexical");
        assert_eq!(QueryMode::default().label(), "dense");
    }

    #[test]
    fn errors_render_actionably() {
        let e = ServeError::Saturated { capacity: 8 };
        assert!(e.to_string().contains("capacity 8"));
        let e = ServeError::UnknownStore { name: "x".into(), known: vec!["chunks".into()] };
        assert!(e.to_string().contains("chunks"));
        let e = ServeError::DimMismatch { store: "chunks".into(), expected: 384, got: 4 };
        assert!(e.to_string().contains("384"));
    }
}
