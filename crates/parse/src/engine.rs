//! The adaptive parsing engine: per-document strategy escalation plus a
//! pool-parallel batch driver with aggregate statistics.

use mcqa_runtime::{run_stage_batched, Executor};
use serde::{Deserialize, Serialize};

use crate::quality::{self, QualityScore};
use crate::record::ParsedDocument;
use crate::strategy::{parse_with, ParseError, ParseStrategy};

/// Engine configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParserConfig {
    /// Quality threshold a fast-path parse must clear to be accepted.
    pub fast_quality_bar: f64,
    /// Accept salvage output whose quality clears this (lower) bar.
    pub salvage_quality_bar: f64,
}

impl Default for ParserConfig {
    fn default() -> Self {
        Self { fast_quality_bar: QualityScore::ACCEPT, salvage_quality_bar: 0.4 }
    }
}

/// The outcome for one document.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseOutcome {
    /// Successfully parsed.
    Parsed {
        /// The recovered document.
        doc: ParsedDocument,
        /// Which strategy finally succeeded.
        strategy: ParseStrategy,
        /// Quality score of the accepted output.
        quality: f64,
    },
    /// All strategies failed.
    Failed {
        /// The terminal error (from the last strategy tried).
        error: ParseError,
    },
}

impl ParseOutcome {
    /// The parsed document, if any.
    pub fn document(&self) -> Option<&ParsedDocument> {
        match self {
            ParseOutcome::Parsed { doc, .. } => Some(doc),
            ParseOutcome::Failed { .. } => None,
        }
    }

    /// True when parsing succeeded.
    pub fn is_parsed(&self) -> bool {
        matches!(self, ParseOutcome::Parsed { .. })
    }
}

/// Aggregate statistics over a batch parse.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct BatchStats {
    /// Total documents submitted.
    pub total: usize,
    /// Parsed on the fast path.
    pub fast: usize,
    /// Escalated to the thorough parser.
    pub thorough: usize,
    /// Recovered by salvage.
    pub salvage: usize,
    /// Unrecoverable documents.
    pub failed: usize,
    /// Wall-clock seconds for the batch.
    pub elapsed_secs: f64,
}

impl BatchStats {
    /// Documents per second (0 when elapsed time is unknown).
    pub fn throughput(&self) -> f64 {
        if self.elapsed_secs > 0.0 {
            self.total as f64 / self.elapsed_secs
        } else {
            0.0
        }
    }

    /// Fraction of documents that needed escalation beyond the fast path.
    pub fn escalation_rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            (self.thorough + self.salvage + self.failed) as f64 / self.total as f64
        }
    }
}

/// The adaptive parser.
#[derive(Debug, Clone, Default)]
pub struct AdaptiveParser {
    config: ParserConfig,
}

impl AdaptiveParser {
    /// Create with `config`.
    pub fn new(config: ParserConfig) -> Self {
        Self { config }
    }

    /// Parse one blob with strategy escalation:
    ///
    /// 1. `Fast` — accepted only if its quality clears `fast_quality_bar`;
    /// 2. `Thorough` — accepted if it parses at all (full validation);
    /// 3. `Salvage` — accepted if quality clears `salvage_quality_bar`.
    pub fn parse(&self, bytes: &[u8]) -> ParseOutcome {
        // Fast path.
        if let Ok(doc) = parse_with(ParseStrategy::Fast, bytes) {
            let q = quality::score(&doc);
            if q.0 >= self.config.fast_quality_bar {
                return ParseOutcome::Parsed { doc, strategy: ParseStrategy::Fast, quality: q.0 };
            }
        }
        // Thorough path.
        let thorough_err = match parse_with(ParseStrategy::Thorough, bytes) {
            Ok(doc) => {
                let q = quality::score(&doc);
                return ParseOutcome::Parsed {
                    doc,
                    strategy: ParseStrategy::Thorough,
                    quality: q.0,
                };
            }
            Err(e) => e,
        };
        // Salvage path.
        match parse_with(ParseStrategy::Salvage, bytes) {
            Ok(doc) => {
                let q = quality::score(&doc);
                if q.0 >= self.config.salvage_quality_bar {
                    ParseOutcome::Parsed { doc, strategy: ParseStrategy::Salvage, quality: q.0 }
                } else {
                    ParseOutcome::Failed { error: ParseError::LowQuality { score: q.0 } }
                }
            }
            Err(_) => ParseOutcome::Failed { error: thorough_err },
        }
    }

    /// Parse a batch on `exec`'s pool; outcomes are index-aligned with
    /// `blobs`. Statistics are tallied from the ordered outcomes after the
    /// fan-out, so no lock is shared between workers.
    pub fn parse_batch<B: AsRef<[u8]> + Sync>(
        &self,
        exec: &Executor,
        blobs: &[B],
    ) -> (Vec<ParseOutcome>, BatchStats) {
        let timer = mcqa_util::ScopeTimer::start("parse_batch");
        let (results, _) =
            run_stage_batched(exec, "parse-batch", (0..blobs.len()).collect(), 0, |i| {
                Ok::<_, String>(self.parse(blobs[i].as_ref()))
            });
        let outcomes: Vec<ParseOutcome> =
            results.into_iter().map(|r| r.expect("parse cannot fail the task")).collect();
        let mut s = BatchStats { total: outcomes.len(), ..Default::default() };
        for o in &outcomes {
            match o {
                ParseOutcome::Parsed { strategy, .. } => match strategy {
                    ParseStrategy::Fast => s.fast += 1,
                    ParseStrategy::Thorough => s.thorough += 1,
                    ParseStrategy::Salvage => s.salvage += 1,
                },
                ParseOutcome::Failed { .. } => s.failed += 1,
            }
        }
        s.elapsed_secs = timer.elapsed_secs();
        (outcomes, s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcqa_corpus::{AcquisitionConfig, CorpusLibrary, DocId, SynthConfig};
    use mcqa_ontology::{Ontology, OntologyConfig};

    fn library(corruption_rate: f64) -> CorpusLibrary {
        let ont = Ontology::generate(&OntologyConfig {
            seed: 11,
            entities_per_kind: 25,
            qualitative_facts: 200,
            quantitative_facts: 5,
        });
        CorpusLibrary::build(
            &ont,
            &AcquisitionConfig {
                seed: 11,
                full_papers: 24,
                abstracts: 12,
                corruption_rate,
                synth: SynthConfig::default(),
            },
            Executor::global(),
        )
    }

    #[test]
    fn clean_corpus_goes_fast_path() {
        let lib = library(0.0);
        let parser = AdaptiveParser::default();
        let blobs: Vec<&[u8]> =
            (0..lib.len() as u32).map(|i| lib.download(DocId(i)).unwrap()).collect();
        let (outcomes, stats) = parser.parse_batch(Executor::global(), &blobs);
        assert_eq!(stats.total, 36);
        assert_eq!(stats.fast, 36, "clean blobs all take the fast path: {stats:?}");
        assert_eq!(stats.failed, 0);
        assert!(outcomes.iter().all(ParseOutcome::is_parsed));
        assert!((stats.escalation_rate() - 0.0).abs() < 1e-12);
    }

    #[test]
    fn corrupted_corpus_escalates_but_mostly_recovers() {
        let lib = library(0.5);
        let parser = AdaptiveParser::default();
        let blobs: Vec<&[u8]> =
            (0..lib.len() as u32).map(|i| lib.download(DocId(i)).unwrap()).collect();
        let (outcomes, stats) = parser.parse_batch(Executor::global(), &blobs);
        assert!(stats.fast < stats.total, "{stats:?}");
        assert!(stats.salvage > 0, "some docs must need salvage: {stats:?}");
        // Recovery: a majority of documents still produce text.
        let parsed = outcomes.iter().filter(|o| o.is_parsed()).count();
        assert!(parsed * 10 >= stats.total * 8, "parsed {parsed}/{}", stats.total);
        assert_eq!(stats.fast + stats.thorough + stats.salvage + stats.failed, stats.total);
    }

    #[test]
    fn parsed_text_matches_ground_truth() {
        let lib = library(0.0);
        let parser = AdaptiveParser::default();
        for i in 0..lib.len() as u32 {
            let id = DocId(i);
            let outcome = parser.parse(lib.download(id).unwrap());
            let doc = outcome.document().unwrap_or_else(|| panic!("doc {i} failed"));
            let truth = lib.document(id).unwrap();
            assert_eq!(doc.sections.len(), truth.sections.len());
            for (p, t) in doc.sections.iter().zip(&truth.sections) {
                assert_eq!(p.title, t.title);
                assert_eq!(p.text, t.text());
            }
            let meta = doc.meta.as_ref().expect("meta present");
            assert_eq!(meta.doc_id(), id);
        }
    }

    #[test]
    fn hopeless_blob_fails_cleanly() {
        let parser = AdaptiveParser::default();
        let outcome = parser.parse(&[0u8; 32]);
        assert!(!outcome.is_parsed());
        assert!(outcome.document().is_none());
    }

    #[test]
    fn empty_batch() {
        let parser = AdaptiveParser::default();
        let (outcomes, stats) = parser.parse_batch::<Vec<u8>>(Executor::global(), &[]);
        assert!(outcomes.is_empty());
        assert_eq!(stats.total, 0);
        assert_eq!(stats.throughput(), stats.throughput()); // finite, no panic
        assert_eq!(stats.escalation_rate(), 0.0);
    }

    #[test]
    fn batch_outcomes_are_index_aligned() {
        let lib = library(0.0);
        let parser = AdaptiveParser::default();
        let blobs: Vec<&[u8]> = (0..4u32).map(|i| lib.download(DocId(i)).unwrap()).collect();
        let (outcomes, _) = parser.parse_batch(Executor::global(), &blobs);
        for (i, o) in outcomes.iter().enumerate() {
            let meta = o.document().unwrap().meta.as_ref().unwrap();
            assert_eq!(meta.id, i as u32, "outcome order must match input order");
        }
    }
}
