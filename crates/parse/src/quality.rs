//! Output-quality scoring: AdaParse's quality predictor, reproduced.
//!
//! The adaptive engine needs a cheap judgement of "does this parse look
//! like clean scientific text?" to decide whether the fast path's output
//! is acceptable. Score components:
//!
//! * printable ratio — binary garbage drags this down;
//! * mean sentence length in tokens — shredded text has absurd values;
//! * lexical validity — fraction of tokens that are alphabetic-ish;
//! * structure — documents should have at least one non-empty section.

use crate::record::ParsedDocument;

/// A quality verdict in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityScore(pub f64);

impl QualityScore {
    /// The acceptance threshold used by the adaptive engine's fast path.
    pub const ACCEPT: f64 = 0.7;

    /// True when the score clears the fast-path acceptance bar.
    pub fn acceptable(self) -> bool {
        self.0 >= Self::ACCEPT
    }
}

/// Score a parsed document.
pub fn score(doc: &ParsedDocument) -> QualityScore {
    if doc.sections.is_empty() || doc.text_len() == 0 {
        return QualityScore(0.0);
    }
    let text: String = doc.sections.iter().map(|s| s.text.as_str()).collect::<Vec<_>>().join(" ");

    // Printable ratio.
    let total_chars = text.chars().count().max(1);
    let printable = text.chars().filter(|c| !c.is_control() || *c == '\n' || *c == '\t').count();
    let printable_ratio = printable as f64 / total_chars as f64;

    // Sentence shape.
    let sentences = mcqa_text::split_sentences(&text);
    let sentence_score = if sentences.is_empty() {
        0.0
    } else {
        let mean_len = sentences.iter().map(|s| mcqa_text::token_count(s) as f64).sum::<f64>()
            / sentences.len() as f64;
        // Clean scientific prose averages ~8–40 tokens/sentence.
        if (4.0..=60.0).contains(&mean_len) {
            1.0
        } else if mean_len > 0.0 {
            0.4
        } else {
            0.0
        }
    };

    // Lexical validity.
    let tokens = mcqa_text::tokenize(&text);
    let lexical = if tokens.is_empty() {
        0.0
    } else {
        let wordy = tokens
            .iter()
            .filter(|t| t.chars().filter(|c| c.is_alphabetic()).count() * 2 >= t.len())
            .count();
        wordy as f64 / tokens.len() as f64
    };

    // Weighted blend.
    let s = 0.35 * printable_ratio + 0.3 * sentence_score + 0.35 * lexical;
    QualityScore(s.clamp(0.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::ParsedSection;

    fn doc_with_text(text: &str) -> ParsedDocument {
        ParsedDocument {
            meta: None,
            sections: vec![ParsedSection { title: "Body".into(), text: text.into() }],
            issues: vec![],
        }
    }

    #[test]
    fn clean_prose_scores_high() {
        let doc = doc_with_text(
            "Radiation induces double-strand breaks in DNA. Repair pathways \
             respond within minutes of exposure. Survival depends on dose and \
             fractionation schedule. These findings inform clinical practice.",
        );
        let s = score(&doc);
        assert!(s.acceptable(), "score {}", s.0);
    }

    #[test]
    fn binary_garbage_scores_low() {
        // Control characters, punctuation, and digits — what a mis-decoded
        // binary stream looks like after lossy UTF-8 conversion.
        let garbage: String = (0u8..48).cycle().take(600).map(|b| b as char).collect();
        let s = score(&doc_with_text(&garbage));
        assert!(!s.acceptable(), "score {}", s.0);
    }

    #[test]
    fn numeric_shred_scores_low() {
        let shred = "0x3f 9 1 4 7 2 2 8 1 9 0 3 3 7 1 ".repeat(40);
        let s = score(&doc_with_text(&shred));
        assert!(s.0 < 0.7, "score {}", s.0);
    }

    #[test]
    fn empty_document_scores_zero() {
        let empty = ParsedDocument { meta: None, sections: vec![], issues: vec![] };
        assert_eq!(score(&empty).0, 0.0);
        assert_eq!(score(&doc_with_text("")).0, 0.0);
    }

    #[test]
    fn score_bounded() {
        for text in ["a", "Word.", "Many many many words go here today."] {
            let s = score(&doc_with_text(text)).0;
            assert!((0.0..=1.0).contains(&s));
        }
    }
}
