//! Parse strategies: Fast, Thorough, Salvage.

use mcqa_corpus::spdf::{ObjectKind, SpdfError, SpdfObject, SpdfReader};
use serde::{Deserialize, Serialize};

use crate::record::ParsedDocument;

/// Which parser processed a document.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ParseStrategy {
    /// Object walk without checksum validation — cheapest, used first.
    Fast,
    /// Full structural validation with precise error reporting.
    Thorough,
    /// Best-effort recovery from damaged blobs.
    Salvage,
}

impl ParseStrategy {
    /// All strategies in escalation order.
    pub const ESCALATION: [ParseStrategy; 3] =
        [ParseStrategy::Fast, ParseStrategy::Thorough, ParseStrategy::Salvage];
}

/// A parse failure.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    /// The container was structurally invalid.
    Container(SpdfError),
    /// Objects decoded but no usable text came out.
    NoText,
    /// Output failed the quality bar even after escalation.
    LowQuality { score: f64 },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Container(e) => write!(f, "container error: {e}"),
            ParseError::NoText => write!(f, "no recoverable text"),
            ParseError::LowQuality { score } => write!(f, "quality {score:.2} below bar"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Assemble a [`ParsedDocument`] from decoded SPDF objects.
fn assemble(objects: &[SpdfObject], issues: Vec<String>) -> Result<ParsedDocument, ParseError> {
    let meta = SpdfReader::metadata(objects).ok();
    let mut sections = Vec::new();
    let mut all_issues = issues;
    for (i, o) in objects.iter().enumerate() {
        if o.kind != ObjectKind::Text {
            continue;
        }
        match std::str::from_utf8(&o.data) {
            Ok(s) => sections.push(ParsedDocument::section_from_payload(s)),
            Err(_) => all_issues.push(format!("object {i}: invalid UTF-8, skipped")),
        }
    }
    if sections.is_empty() {
        return Err(ParseError::NoText);
    }
    let _ = &sections; // sections checked non-empty above
    Ok(ParsedDocument { meta, sections, issues: all_issues })
}

/// Run one strategy over a blob.
pub fn parse_with(strategy: ParseStrategy, bytes: &[u8]) -> Result<ParsedDocument, ParseError> {
    match strategy {
        ParseStrategy::Fast => {
            // Salvage machinery without checksum enforcement, but *any*
            // issue disqualifies the fast path — escalation will decide.
            let r = SpdfReader::salvage(bytes);
            let only_checksum_skip = r.issues.iter().all(|i| i.contains("checksum")); // fast path ignores checksums
            if !r.issues.is_empty() && !only_checksum_skip {
                return Err(ParseError::Container(SpdfError::BadTrailer));
            }
            // Note: issues about checksums are *dropped* here — the fast
            // path never computed one (that is what makes it fast).
            assemble(&r.objects, Vec::new())
        }
        ParseStrategy::Thorough => {
            let objects = SpdfReader::read(bytes).map_err(ParseError::Container)?;
            assemble(&objects, Vec::new())
        }
        ParseStrategy::Salvage => {
            let r = SpdfReader::salvage(bytes);
            assemble(&r.objects, r.issues)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcqa_corpus::{DocId, DocKind, SpdfWriter};
    use mcqa_ontology::{Ontology, OntologyConfig};

    fn blob() -> Vec<u8> {
        let ont = Ontology::generate(&OntologyConfig {
            seed: 3,
            entities_per_kind: 25,
            qualitative_facts: 150,
            quantitative_facts: 5,
        });
        let doc = mcqa_corpus::synth::synthesize(
            &ont,
            &mcqa_corpus::SynthConfig::default(),
            DocId(0),
            DocKind::FullPaper,
        );
        SpdfWriter::write_document(&doc)
    }

    #[test]
    fn all_strategies_parse_clean_blob() {
        let b = blob();
        for s in ParseStrategy::ESCALATION {
            let doc = parse_with(s, &b).unwrap_or_else(|e| panic!("{s:?}: {e}"));
            assert!(doc.meta.is_some());
            assert_eq!(doc.sections.len(), 5);
            assert!(doc.issues.is_empty(), "{s:?}: {:?}", doc.issues);
        }
    }

    #[test]
    fn fast_ignores_checksum_damage() {
        let mut b = blob();
        let n = b.len();
        b[n - 1] ^= 0xFF; // break only the checksum
        let fast = parse_with(ParseStrategy::Fast, &b).expect("fast skips checksums");
        assert_eq!(fast.sections.len(), 5);
        // Thorough must reject the same blob.
        assert!(matches!(
            parse_with(ParseStrategy::Thorough, &b),
            Err(ParseError::Container(SpdfError::ChecksumMismatch { .. }))
        ));
    }

    #[test]
    fn salvage_recovers_truncated_blob() {
        let b = blob();
        let cut = &b[..b.len() * 3 / 5];
        assert!(parse_with(ParseStrategy::Fast, cut).is_err());
        assert!(parse_with(ParseStrategy::Thorough, cut).is_err());
        let doc = parse_with(ParseStrategy::Salvage, cut).expect("salvage succeeds");
        assert!(!doc.sections.is_empty());
        assert!(!doc.issues.is_empty(), "salvage must report what went wrong");
    }

    #[test]
    fn hopeless_input_fails_everywhere() {
        let junk = vec![0u8; 64];
        for s in ParseStrategy::ESCALATION {
            assert!(parse_with(s, &junk).is_err(), "{s:?} should fail");
        }
    }

    #[test]
    fn meta_only_blob_yields_no_text() {
        let meta_only = SpdfWriter::write_objects(&[(
            mcqa_corpus::spdf::ObjectKind::Meta,
            br#"{"id":1,"kind":"paper","title":"t","authors":[],"year":2020,"venue":"v","topic":"DnaRepair","keywords":[]}"#,
        )]);
        assert!(matches!(parse_with(ParseStrategy::Thorough, &meta_only), Err(ParseError::NoText)));
    }
}
