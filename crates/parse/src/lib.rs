//! `mcqa-parse` — an AdaParse-style adaptive, parallel document parsing
//! engine for SPDF blobs.
//!
//! The paper parses 22,548 PDFs with AdaParse, an engine that picks a
//! parser per document (cheap fast path, expensive thorough path) based on
//! predicted output quality, and recovers what it can from damaged files.
//! This crate reproduces that architecture over the SPDF container:
//!
//! * [`strategy`] — three parse strategies: `Fast` (no checksum
//!   validation), `Thorough` (full structural validation with precise
//!   errors), and `Salvage` (best-effort recovery of readable objects).
//! * [`quality`] — a text-quality scorer that decides whether a fast-path
//!   result is acceptable or the document must be re-parsed thoroughly
//!   (AdaParse's quality predictor).
//! * [`engine`] — the adaptive driver: per-document strategy escalation,
//!   batch parsing fanned out on the caller's `mcqa_runtime::Executor`, an
//!   error taxonomy, and aggregate statistics (documents/second, strategy
//!   mix, failure census).
//! * [`record`] — the parsed-output record (metadata + section texts),
//!   serialisable to JSONL exactly like AdaParse's JSON output.

pub mod engine;
pub mod quality;
pub mod record;
pub mod strategy;

pub use engine::{AdaptiveParser, BatchStats, ParseOutcome, ParserConfig};
pub use record::{ParsedDocument, ParsedSection};
pub use strategy::{ParseError, ParseStrategy};
