//! Parsed-document records, serialisable to JSONL (AdaParse emits JSON).

use mcqa_corpus::spdf::DocMeta;
use serde::{Deserialize, Serialize};

/// One parsed section.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParsedSection {
    /// Section heading (first line of the text object).
    pub title: String,
    /// Body text.
    pub text: String,
}

/// The parsed form of one document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParsedDocument {
    /// Metadata recovered from the Meta object (`None` when salvage could
    /// not decode it).
    pub meta: Option<DocMeta>,
    /// Sections in order.
    pub sections: Vec<ParsedSection>,
    /// Non-fatal issues encountered while parsing.
    pub issues: Vec<String>,
}

impl ParsedDocument {
    /// The full text: headings + bodies, in section order. This is the
    /// string the chunker consumes.
    pub fn full_text(&self) -> String {
        let mut out = String::new();
        for s in &self.sections {
            out.push_str(&s.title);
            out.push_str("\n\n");
            out.push_str(&s.text);
            out.push_str("\n\n");
        }
        out
    }

    /// Total body character count (used by the quality scorer).
    pub fn text_len(&self) -> usize {
        self.sections.iter().map(|s| s.text.len()).sum()
    }

    /// Serialise as one JSONL line.
    pub fn to_jsonl(&self) -> String {
        serde_json::to_string(self).expect("record serialises")
    }

    /// Parse one JSONL line.
    pub fn from_jsonl(line: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(line)
    }

    /// Split a raw text-object payload (`"Title\n\nbody"`) into a section.
    pub fn section_from_payload(payload: &str) -> ParsedSection {
        match payload.split_once("\n\n") {
            Some((title, body)) => {
                ParsedSection { title: title.trim().to_string(), text: body.trim().to_string() }
            }
            None => ParsedSection { title: String::new(), text: payload.trim().to_string() },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ParsedDocument {
        ParsedDocument {
            meta: None,
            sections: vec![
                ParsedSection { title: "Abstract".into(), text: "Radiation matters.".into() },
                ParsedSection { title: "Results".into(), text: "It did.".into() },
            ],
            issues: vec!["checksum mismatch".into()],
        }
    }

    #[test]
    fn full_text_order() {
        let t = sample().full_text();
        assert!(t.find("Abstract").unwrap() < t.find("Results").unwrap());
        assert!(t.contains("Radiation matters."));
    }

    #[test]
    fn jsonl_roundtrip() {
        let r = sample();
        let line = r.to_jsonl();
        assert!(!line.contains('\n'), "JSONL lines are single-line");
        let back = ParsedDocument::from_jsonl(&line).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn jsonl_bad_input() {
        assert!(ParsedDocument::from_jsonl("not json").is_err());
        assert!(ParsedDocument::from_jsonl("{}").is_err(), "missing fields rejected");
    }

    #[test]
    fn section_payload_split() {
        let s = ParsedDocument::section_from_payload("Intro\n\nBody text here.");
        assert_eq!(s.title, "Intro");
        assert_eq!(s.text, "Body text here.");
        let no_title = ParsedDocument::section_from_payload("just text");
        assert_eq!(no_title.title, "");
        assert_eq!(no_title.text, "just text");
    }

    #[test]
    fn text_len_sums_bodies() {
        assert_eq!(sample().text_len(), "Radiation matters.".len() + "It did.".len());
    }
}
