//! `repro` — regenerate every table and figure of the paper.
//!
//! ```sh
//! repro all                         # everything, default scale 0.1
//! repro table2 --scale 0.2 --seed 7
//! repro fig1 | fig2 | fig3 | fig4 | fig5 | fig6
//! repro table1 | table3 | table4
//! repro rates                       # measured retrieval rates per model
//! repro residuals                   # calibration residual census
//! repro recall                      # ANN recall@k + throughput vs flat
//! repro models                      # per-role call ledger + cache hit rate
//! repro ablate-topk                 # accuracy vs retrieval depth
//! repro ablate-context              # accuracy vs context window
//! repro ablate-filter               # quality threshold sweep
//! ```
//!
//! Every pipeline-backed command takes `--index flat|hnsw|ivf` to select
//! the vector-store backend (default `flat`, the exact baseline) and
//! `--models sim` to select the model backend behind the `ModelEndpoint`
//! trait (only the behavioural simulator exists offline).

use mcqa_core::{Pipeline, PipelineConfig};
use mcqa_eval::results::{render_fig, render_table2, render_table3, render_table4, FigureSeries};
use mcqa_eval::{EvalConfig, Evaluator};
use mcqa_index::IndexSpec;
use mcqa_llm::answer::Condition;
use mcqa_llm::{cards, ModelSpec, TraceMode, MODEL_CARDS};

struct Args {
    command: String,
    scale: f64,
    seed: u64,
    index: IndexSpec,
    models: ModelSpec,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let command = argv.first().cloned().unwrap_or_else(|| "all".to_string());
    let mut scale = 0.1;
    let mut seed = 42;
    let mut index = IndexSpec::Flat;
    let mut models = ModelSpec::Sim;
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--scale" => {
                scale = argv.get(i + 1).and_then(|s| s.parse().ok()).unwrap_or(scale);
                i += 2;
            }
            "--seed" => {
                seed = argv.get(i + 1).and_then(|s| s.parse().ok()).unwrap_or(seed);
                i += 2;
            }
            "--index" => {
                let label = argv.get(i + 1).map(String::as_str).unwrap_or("");
                index = IndexSpec::parse(label).unwrap_or_else(|| {
                    eprintln!("unknown index backend '{label}' (expected flat|hnsw|ivf)");
                    std::process::exit(2);
                });
                i += 2;
            }
            "--models" => {
                let label = argv.get(i + 1).map(String::as_str).unwrap_or("");
                models = ModelSpec::parse(label).unwrap_or_else(|| {
                    eprintln!("unknown model backend '{label}' (expected sim)");
                    std::process::exit(2);
                });
                i += 2;
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
    }
    Args { command, scale, seed, index, models }
}

fn main() {
    let args = parse_args();

    // Schema-only commands need no pipeline run.
    if args.command.as_str() == "table1" {
        println!("{}", cards::render_table1());
        return;
    }

    let mut config = PipelineConfig::at_scale(args.scale, args.seed);
    // `recall` rebuilds all three backends itself over the pipeline's
    // embeddings and never consults the pipeline's own stores, so pin the
    // cheap exact backend there regardless of --index.
    config.index = if args.command == "recall" { IndexSpec::Flat } else { args.index.clone() };
    config.models = args.models;
    eprintln!(
        "[repro] building pipeline at scale {} (seed {}, index {}, models {}) ...",
        args.scale,
        args.seed,
        config.index.label(),
        config.models.label()
    );
    let output = Pipeline::run(&config);
    eprintln!(
        "[repro] {} docs → {} chunks → {} candidates → {} accepted ({:.1}%)",
        output.library.len(),
        output.chunks.len(),
        output.candidates,
        output.items.len(),
        100.0 * output.acceptance_rate()
    );

    match args.command.as_str() {
        "fig1" => {
            println!("Figure 1 — workflow overview (stage census)\n");
            print!("{}", output.report.render());
            println!(
                "\n{} store: chunk DB {} vectors ({} KiB); trace DBs: 3 × {} vectors",
                output.config.index.label(),
                output.chunk_store().len(),
                output.chunk_store().payload_bytes() / 1024,
                output.items.len()
            );
            return;
        }
        "recall" => {
            print_recall(&output, 5);
            return;
        }
        "fig2" => {
            println!("Figure 2 — question record JSON schema (one generated record)\n");
            let q = output.questions.first().expect("at least one question");
            println!("{}", serde_json::to_string_pretty(q).expect("serialises"));
            return;
        }
        "fig3" => {
            println!("Figure 3 — reasoning-trace JSON schema (all three modes)\n");
            for mode in TraceMode::ALL {
                let t = output.traces.iter().find(|t| t.mode == mode).expect("trace exists");
                println!("{}\n", serde_json::to_string_pretty(t).expect("serialises"));
            }
            return;
        }
        _ => {}
    }

    eprintln!("[repro] evaluating 8 models × 5 conditions × 2 benchmarks ...");
    let evaluator = Evaluator::new(&output, EvalConfig { seed: args.seed, ..Default::default() });
    let run = evaluator.run();

    match args.command.as_str() {
        "all" => {
            println!("{}", cards::render_table1());
            println!("{}", render_table2(&run));
            println!("{}", render_table3(&run));
            println!("{}", render_table4(&run));
            println!("{}", render_fig(&run, FigureSeries::Fig4Synthetic));
            println!("{}", render_fig(&run, FigureSeries::Fig5AstroAll));
            println!("{}", render_fig(&run, FigureSeries::Fig6AstroNoMath));
            print_rates(&run);
            // Pipeline and evaluation run on one scheduler, so both stage
            // reports come from the same runtime metrics surface.
            println!("\nWorkflow stage report (pipeline):\n");
            print!("{}", output.report.render());
            println!("\nWorkflow stage report (evaluation, all cards):\n");
            print!("{}", run.report.render());
        }
        "models" => print_models(&output),
        "table2" => println!("{}", render_table2(&run)),
        "table3" => println!("{}", render_table3(&run)),
        "table4" => println!("{}", render_table4(&run)),
        "fig4" => println!("{}", render_fig(&run, FigureSeries::Fig4Synthetic)),
        "fig5" => println!("{}", render_fig(&run, FigureSeries::Fig5AstroAll)),
        "fig6" => println!("{}", render_fig(&run, FigureSeries::Fig6AstroNoMath)),
        "rates" => print_rates(&run),
        "residuals" => print_residuals(&run),
        "ablate-topk" => ablate_topk(&output, args.seed),
        "ablate-context" => ablate_context(&output, args.seed),
        "ablate-filter" => ablate_filter(args.scale, args.seed),
        other => {
            eprintln!("unknown command {other}");
            std::process::exit(2);
        }
    }
}

/// `repro recall` — build all three backends over the *same* chunk
/// embeddings and report build/search throughput plus recall@k against
/// the flat exact baseline (the speed/recall trade the ROADMAP perf
/// table tracks). Lines are `[recall] key=value ...` so CI can assert
/// recall floors mechanically.
fn print_recall(output: &mcqa_core::PipelineOutput, k: usize) {
    use mcqa_util::ScopeTimer;

    let exec = &output.executor;
    let dim = output.config.embed.dim;
    let texts: Vec<&str> = output.chunks.iter().map(|c| c.text.as_str()).collect();
    let vectors = output.encoder.encode_batch(exec, &texts);
    let items: Vec<(u64, Vec<f32>)> =
        output.chunks.iter().map(|c| c.chunk_id).zip(vectors).collect();
    let stems: Vec<&str> = output.items.iter().map(|i| i.stem.as_str()).collect();
    let queries = output.encoder.encode_batch(exec, &stems);
    println!(
        "Recall vs flat baseline: {} vectors (dim {}), {} queries, k={k}\n",
        items.len(),
        dim,
        queries.len()
    );
    println!(
        "{:<8} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "backend", "build-secs", "vec/s", "search-secs", "query/s", "recall@k"
    );

    if queries.is_empty() {
        // With no stem queries, recall would be 1.0 for every backend by
        // definition — a vacuously passing floor check. Fail loudly.
        eprintln!("[repro] recall needs at least one accepted question (got 0 stem queries)");
        std::process::exit(1);
    }

    let mut truth: Option<Vec<Vec<u64>>> = None;
    for spec in IndexSpec::all_defaults() {
        let t = ScopeTimer::start("build");
        let store = mcqa_index::build_store_from_vectors(
            &spec,
            dim,
            mcqa_index::Metric::Cosine,
            mcqa_embed::Precision::F16,
            exec,
            &items,
        );
        let build_secs = t.elapsed_secs();

        let t = ScopeTimer::start("search");
        let results = store.search_batch(exec, &queries, k);
        let search_secs = t.elapsed_secs();

        let ids: Vec<Vec<u64>> =
            results.iter().map(|hits| hits.iter().map(|h| h.id).collect()).collect();
        // The first backend in `all_defaults` is flat: it becomes the
        // exact baseline, the ANN backends score against it.
        let recall = match &truth {
            None => {
                truth = Some(ids);
                1.0
            }
            Some(exact_all) => {
                let (mut hit, mut total) = (0usize, 0usize);
                for (approx, exact) in ids.iter().zip(exact_all) {
                    hit += approx.iter().filter(|id| exact.contains(id)).count();
                    total += exact.len();
                }
                if total == 0 {
                    1.0
                } else {
                    hit as f64 / total as f64
                }
            }
        };
        println!(
            "{:<8} {:>12.3} {:>12.0} {:>12.3} {:>12.0} {:>10.3}",
            spec.label(),
            build_secs,
            items.len() as f64 / build_secs.max(1e-9),
            search_secs,
            queries.len() as f64 / search_secs.max(1e-9),
            recall
        );
        println!(
            "[recall] backend={} build_secs={:.3} search_secs={:.3} search_qps={:.0} recall_at_{k}={:.4}",
            spec.label(),
            build_secs,
            search_secs,
            queries.len() as f64 / search_secs.max(1e-9),
            recall
        );
    }
}

/// `repro models` — the per-role call ledger after a full pipeline + 8-model
/// evaluation: calls, batch sizes, token in/out estimates, and the response
/// cache's hit rate. Lines are `[models] key=value ...` so CI can assert the
/// cost-accounting census mechanically.
fn print_models(output: &mcqa_core::PipelineOutput) {
    use mcqa_llm::ModelEndpoint;

    println!(
        "Model-layer call ledger (backend {}, {} distinct completions cached):\n",
        output.models.backend(),
        output.models.cache().len()
    );
    println!(
        "{:<12} {:>10} {:>8} {:>11} {:>11} {:>9} {:>12} {:>12} {:>10}",
        "role",
        "calls",
        "batches",
        "mean-batch",
        "cache-hits",
        "hit-rate",
        "tokens-in",
        "tokens-out",
        "busy-secs"
    );
    let mut rows = output.models.ledger().snapshot();
    rows.retain(|(_, s)| s.calls > 0);
    let total = output.models.ledger().total();
    for (role, s) in rows.iter().map(|(r, s)| (r.label(), s)).chain([("total", &total)]) {
        println!(
            "{:<12} {:>10} {:>8} {:>11.1} {:>11} {:>9.3} {:>12} {:>12} {:>10.3}",
            role,
            s.calls,
            s.batches,
            s.mean_batch_size(),
            s.cache_hits,
            s.hit_rate(),
            s.tokens_in,
            s.tokens_out,
            s.busy_secs
        );
    }
    println!();
    for line in output.models.ledger().summary_lines(output.models.backend()) {
        println!("{line}");
    }
}

fn print_rates(run: &mcqa_eval::EvalRun) {
    println!("Measured usable-hit rates (post truncation):");
    println!(
        "{:<26} {:>8} {:>8} {:>8} {:>8} | {:>8} {:>8}",
        "model", "syn-chk", "syn-det", "syn-foc", "syn-eff", "ast-chk", "ast-rt"
    );
    for m in &run.models {
        println!(
            "{:<26} {:>8.3} {:>8.3} {:>8.3} {:>8.3} | {:>8.3} {:>8.3}",
            m.name,
            m.rates.synth_chunk,
            m.rates.synth_trace[0],
            m.rates.synth_trace[1],
            m.rates.synth_trace[2],
            m.rates.astro_chunk,
            m.rates.astro_trace[1],
        );
    }
}

fn print_residuals(run: &mcqa_eval::EvalRun) {
    println!("Calibration residuals (achieved − paper target at the clamped solve):");
    for m in &run.models {
        let worst: Vec<_> =
            m.calibration.solved.iter().filter(|s| s.residual.abs() > 0.005).collect();
        if worst.is_empty() {
            println!("{:<26} all targets reachable", m.name);
        } else {
            println!("{}:", m.name);
            for s in worst {
                println!("    {:<22} value {:.3}  residual {:+.3}", s.name, s.value, s.residual);
            }
        }
    }
}

/// Ablation: accuracy vs retrieval depth k (beyond the paper).
fn ablate_topk(output: &mcqa_core::PipelineOutput, seed: u64) {
    println!("Ablation — synthetic accuracy vs retrieval depth (SmolLM3-3B):");
    println!("{:>4} {:>12} {:>12}", "k", "rag-chunks", "rt-focused");
    let card = MODEL_CARDS.iter().find(|c| c.name == "SmolLM3-3B").unwrap();
    for k in [1usize, 2, 3, 5, 8, 10] {
        let evaluator =
            Evaluator::new(output, EvalConfig { seed, retrieval_k: k, ..Default::default() });
        let run = evaluator.run_cards(std::slice::from_ref(card));
        let m = &run.models[0];
        println!(
            "{:>4} {:>12.3} {:>12.3}",
            k,
            m.synth_accuracy(Condition::RagChunks),
            m.synth_accuracy(Condition::RagTraces(TraceMode::Focused)),
        );
    }
}

/// Ablation: accuracy vs context window — shows the truncation mechanism.
fn ablate_context(output: &mcqa_core::PipelineOutput, seed: u64) {
    println!("Ablation — synthetic accuracy vs context window (OLMo-7B behaviour card):");
    println!(
        "{:>8} {:>9} {:>9} {:>12} {:>12}",
        "window", "hit-chk", "hit-rt", "rag-chunks", "rt-focused"
    );
    let base = MODEL_CARDS.iter().find(|c| c.name == "OLMo-7B").unwrap();
    for window in [512usize, 1024, 2048, 4096, 8192, 32_768] {
        let mut card = base.clone();
        card.context_window = window;
        let evaluator = Evaluator::new(output, EvalConfig { seed, ..Default::default() });
        let run = evaluator.run_cards(std::slice::from_ref(&card));
        let m = &run.models[0];
        println!(
            "{:>8} {:>9.3} {:>9.3} {:>12.3} {:>12.3}",
            window,
            m.rates.synth_chunk,
            m.rates.synth_trace[1],
            m.synth_accuracy(Condition::RagChunks),
            m.synth_accuracy(Condition::RagTraces(TraceMode::Focused)),
        );
    }
}

/// Ablation: quality threshold sweep — benchmark size vs acceptance bar.
fn ablate_filter(scale: f64, seed: u64) {
    println!("Ablation — quality threshold vs benchmark size (paper uses 7):");
    println!("{:>10} {:>12} {:>12} {:>14}", "threshold", "candidates", "accepted", "acceptance");
    for threshold in [5u8, 6, 7, 8, 9] {
        let mut config = PipelineConfig::at_scale(scale, seed);
        config.quality_threshold = threshold;
        let output = Pipeline::run(&config);
        println!(
            "{:>10} {:>12} {:>12} {:>13.1}%",
            threshold,
            output.candidates,
            output.items.len(),
            100.0 * output.acceptance_rate()
        );
    }
}
