//! `repro` — regenerate every table and figure of the paper.
//!
//! ```sh
//! repro all                         # everything, default scale 0.1
//! repro table2 --scale 0.2 --seed 7
//! repro fig1 | fig2 | fig3 | fig4 | fig5 | fig6
//! repro table1 | table3 | table4
//! repro rates                       # measured retrieval rates per model
//! repro residuals                   # calibration residual census
//! repro recall                      # ANN recall@k + throughput vs flat
//! repro models                      # per-role call ledger + cache hit rate
//! repro serve-bench                 # query-service load harness (p50/p95/p99)
//! repro ingest --edits 20           # incremental re-ingest vs cold rebuild
//! repro ablate-topk                 # accuracy vs retrieval depth
//! repro ablate-context              # accuracy vs context window
//! repro ablate-filter               # quality threshold sweep
//! ```
//!
//! Every subcommand shares **one** flag parser ([`RunArgs`]): `--scale`,
//! `--seed`, `--index flat|hnsw|ivf|pq` (vector-store backend; default
//! `flat`, the exact baseline), `--models sim` (model backend behind the
//! `ModelEndpoint` trait; only the behavioural simulator exists offline),
//! plus the `--serve-*` knobs `serve-bench` reads. An unknown flag or a
//! malformed value exits 2 with the full flag list.

use mcqa_core::{Pipeline, PipelineConfig};
use mcqa_eval::results::{render_fig, render_table2, render_table3, render_table4, FigureSeries};
use mcqa_eval::{EvalConfig, Evaluator, RetrievalBundle, Source};
use mcqa_index::{IndexRegistry, IndexSpec};
use mcqa_llm::answer::Condition;
use mcqa_llm::{cards, ModelSpec, TraceMode, MODEL_CARDS};
use mcqa_serve::{QueryMode, QueryRequest, QueryService, ServeConfig};
use serde::{Deserialize, Serialize};

/// Every flag every subcommand accepts, parsed by one parser. Commands
/// read the subset they care about; there is no per-command flag dialect.
struct RunArgs {
    command: String,
    scale: f64,
    seed: u64,
    index: IndexSpec,
    models: ModelSpec,
    retrieval: QueryMode,
    /// Hybrid per-channel over-fetch multiplier (`--fuse-depth`; 0 =
    /// [`mcqa_lexical::DEFAULT_FUSE_DEPTH`]).
    fuse_depth: usize,
    /// `ingest`: synthetic edit-batch size (`--edits`; default ≈ 1% of
    /// the live corpus, minimum 1).
    edits: Option<usize>,
    serve: ServeArgs,
}

/// The `--serve-*` knobs (read by `serve-bench`; harmless elsewhere).
struct ServeArgs {
    /// Total requests to replay per run (`--serve-requests`).
    requests: usize,
    /// Client concurrency levels to sweep (`--serve-concurrency`, comma
    /// separated).
    concurrency: Vec<usize>,
    /// Micro-batch watermark for the batched runs (`--serve-batch`).
    batch: usize,
    /// Flush deadline in microseconds (`--serve-deadline-us`).
    deadline_us: u64,
    /// Admission queue capacity (`--serve-queue`).
    queue: usize,
    /// Per-client open-loop arrival rate in q/s (`--serve-rate`):
    /// exponential inter-arrival gaps drawn from the run seed, so load is
    /// offered on a schedule the service cannot slow down. 0 = closed
    /// loop (each client waits for its reply before submitting again).
    rate: f64,
    /// Saturation-knee sweep (`--sweep`, valueless): replace the fixed
    /// load phase with an open-loop rate walk per (retrieval mode,
    /// concurrency) that climbs offered load until the service sheds or
    /// lags, then reports `max_sustainable_qps`.
    sweep: bool,
    /// Panel-cache byte budget for the serving registry
    /// (`--cache-budget`; 0 disables the cache, unset keeps the
    /// size-of-store auto budget).
    cache_budget: Option<usize>,
}

impl Default for ServeArgs {
    fn default() -> Self {
        Self {
            requests: 512,
            concurrency: vec![1, 8, 32],
            batch: 64,
            deadline_us: 500,
            queue: 256,
            rate: 0.0,
            sweep: false,
            cache_budget: None,
        }
    }
}

const USAGE: &str =
    "valid flags: --scale <f64> --seed <u64> --index flat|hnsw|ivf|pq --models sim \
     --retrieval dense|lexical|hybrid|hybrid-rerank --fuse-depth <n> --edits <n> \
     --serve-requests <n> --serve-concurrency <n,n,...> --serve-batch <n> \
     --serve-deadline-us <us> --serve-queue <n> --serve-rate <q/s> --sweep \
     --cache-budget <bytes>";

fn usage_exit(problem: &str) -> ! {
    eprintln!("{problem}\n{USAGE}");
    std::process::exit(2);
}

fn parse_args() -> RunArgs {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let command = argv.first().cloned().unwrap_or_else(|| "all".to_string());
    let mut args = RunArgs {
        command,
        scale: 0.1,
        seed: 42,
        index: IndexSpec::Flat,
        models: ModelSpec::Sim,
        retrieval: QueryMode::Dense,
        fuse_depth: 0,
        edits: None,
        serve: ServeArgs::default(),
    };
    // One shared scanner: every value flag takes exactly one value, and a
    // missing or malformed value is an error, never a silent default.
    // `--sweep` is the one boolean switch (it enables a phase, it has no
    // quantity to carry).
    let mut i = 1;
    while i < argv.len() {
        let flag = argv[i].as_str();
        if flag == "--sweep" {
            args.serve.sweep = true;
            i += 1;
            continue;
        }
        let raw =
            argv.get(i + 1).unwrap_or_else(|| usage_exit(&format!("flag {flag} needs a value")));
        fn val<T: std::str::FromStr>(flag: &str, raw: &str) -> T {
            raw.parse().unwrap_or_else(|_| usage_exit(&format!("bad value '{raw}' for {flag}")))
        }
        match flag {
            "--scale" => args.scale = val(flag, raw),
            "--seed" => args.seed = val(flag, raw),
            "--index" => {
                args.index = IndexSpec::parse(raw).unwrap_or_else(|| {
                    usage_exit(&format!(
                        "unknown index backend '{raw}' (expected flat|hnsw|ivf|pq)"
                    ))
                });
            }
            "--models" => {
                args.models = ModelSpec::parse(raw).unwrap_or_else(|| {
                    usage_exit(&format!("unknown model backend '{raw}' (expected sim)"))
                });
            }
            "--retrieval" => {
                args.retrieval = match raw.as_str() {
                    "dense" => QueryMode::Dense,
                    "lexical" => QueryMode::Lexical,
                    "hybrid" => {
                        QueryMode::Hybrid { fusion: Default::default(), rerank: false, depth: 0 }
                    }
                    "hybrid-rerank" => {
                        QueryMode::Hybrid { fusion: Default::default(), rerank: true, depth: 0 }
                    }
                    other => usage_exit(&format!(
                        "unknown retrieval mode '{other}' (expected \
                         dense|lexical|hybrid|hybrid-rerank)"
                    )),
                };
            }
            "--fuse-depth" => args.fuse_depth = val(flag, raw),
            "--edits" => args.edits = Some(val(flag, raw)),
            "--serve-requests" => args.serve.requests = val(flag, raw),
            "--serve-concurrency" => {
                args.serve.concurrency =
                    raw.split(',').map(|c| val(flag, c.trim())).filter(|c| *c > 0).collect();
                if args.serve.concurrency.is_empty() {
                    usage_exit(&format!("bad value '{raw}' for {flag}"));
                }
            }
            "--serve-batch" => args.serve.batch = val(flag, raw),
            "--serve-deadline-us" => args.serve.deadline_us = val(flag, raw),
            "--serve-queue" => args.serve.queue = val(flag, raw),
            "--serve-rate" => args.serve.rate = val(flag, raw),
            "--cache-budget" => args.serve.cache_budget = Some(val(flag, raw)),
            other => usage_exit(&format!("unknown argument '{other}'")),
        }
        i += 2;
    }
    // `--fuse-depth` rides the retrieval mode: flags are order-independent,
    // so thread it after the scan rather than during it.
    if let QueryMode::Hybrid { depth, .. } = &mut args.retrieval {
        *depth = args.fuse_depth;
    }
    args
}

fn main() {
    let args = parse_args();

    // Schema-only commands need no pipeline run.
    if args.command.as_str() == "table1" {
        println!("{}", cards::render_table1());
        return;
    }

    let mut config = PipelineConfig::at_scale(args.scale, args.seed);
    if args.command.as_str() == "ingest" {
        config.index = args.index.clone();
        config.models = args.models;
        ingest_bench(&config, args.edits, args.seed);
        return;
    }
    // `recall` rebuilds every backend itself over the pipeline's
    // embeddings and never consults the pipeline's own stores, so pin the
    // cheap exact backend there regardless of --index.
    config.index = if args.command == "recall" { IndexSpec::Flat } else { args.index.clone() };
    config.models = args.models;
    eprintln!(
        "[repro] building pipeline at scale {} (seed {}, index {}, models {}) ...",
        args.scale,
        args.seed,
        config.index.label(),
        config.models.label()
    );
    let output = Pipeline::run(&config);
    eprintln!(
        "[repro] {} docs → {} chunks → {} candidates → {} accepted ({:.1}%)",
        output.library.len(),
        output.chunks.len(),
        output.candidates,
        output.items.len(),
        100.0 * output.acceptance_rate()
    );

    match args.command.as_str() {
        "fig1" => {
            println!("Figure 1 — workflow overview (stage census)\n");
            print!("{}", output.report.render());
            println!(
                "\n{} store: chunk DB {} vectors ({} KiB); trace DBs: 3 × {} vectors",
                output.config.index.label(),
                output.chunk_store().len(),
                output.chunk_store().payload_bytes() / 1024,
                output.items.len()
            );
            return;
        }
        "recall" => {
            print_recall(&output, 5);
            print_mode_recall(&output, 5);
            return;
        }
        "serve-bench" => {
            serve_bench(&output, &args.serve, args.seed);
            return;
        }
        "fig2" => {
            println!("Figure 2 — question record JSON schema (one generated record)\n");
            let q = output.questions.first().expect("at least one question");
            println!("{}", serde_json::to_string_pretty(q).expect("serialises"));
            return;
        }
        "fig3" => {
            println!("Figure 3 — reasoning-trace JSON schema (all three modes)\n");
            for mode in TraceMode::ALL {
                let t = output.traces.iter().find(|t| t.mode == mode).expect("trace exists");
                println!("{}\n", serde_json::to_string_pretty(t).expect("serialises"));
            }
            return;
        }
        _ => {}
    }

    eprintln!(
        "[repro] evaluating 8 models × 5 conditions × 2 benchmarks (retrieval {}) ...",
        args.retrieval.label()
    );
    let evaluator = Evaluator::new(
        &output,
        EvalConfig { seed: args.seed, retrieval: args.retrieval, ..Default::default() },
    );
    let run = evaluator.run();

    match args.command.as_str() {
        "all" => {
            println!("{}", cards::render_table1());
            println!("{}", render_table2(&run));
            println!("{}", render_table3(&run));
            println!("{}", render_table4(&run));
            println!("{}", render_fig(&run, FigureSeries::Fig4Synthetic));
            println!("{}", render_fig(&run, FigureSeries::Fig5AstroAll));
            println!("{}", render_fig(&run, FigureSeries::Fig6AstroNoMath));
            print_rates(&run);
            // Pipeline and evaluation run on one scheduler, so both stage
            // reports come from the same runtime metrics surface.
            println!("\nWorkflow stage report (pipeline):\n");
            print!("{}", output.report.render());
            println!("\nWorkflow stage report (evaluation, all cards):\n");
            print!("{}", run.report.render());
        }
        "models" => print_models(&output),
        "table2" => println!("{}", render_table2(&run)),
        "table3" => println!("{}", render_table3(&run)),
        "table4" => println!("{}", render_table4(&run)),
        "fig4" => println!("{}", render_fig(&run, FigureSeries::Fig4Synthetic)),
        "fig5" => println!("{}", render_fig(&run, FigureSeries::Fig5AstroAll)),
        "fig6" => println!("{}", render_fig(&run, FigureSeries::Fig6AstroNoMath)),
        "rates" => print_rates(&run),
        "residuals" => print_residuals(&run),
        "ablate-topk" => ablate_topk(&output, args.seed),
        "ablate-context" => ablate_context(&output, args.seed),
        "ablate-filter" => ablate_filter(args.scale, args.seed),
        other => {
            eprintln!("unknown command {other}");
            std::process::exit(2);
        }
    }
}

/// The machine-readable benchmark ledger `repro serve-bench` and `repro
/// recall` maintain next to the human-readable lines: one JSON file,
/// read-merge-written so each subcommand refreshes only its own section
/// and a full bench pass accumulates every surface in one place.
const BENCH_JSON: &str = "BENCH_10.json";

#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct BenchFile {
    /// `serve-bench` fixed-load rows: one per (dispatch mode, concurrency).
    serve: Vec<ServeRecord>,
    /// `serve-bench --sweep` rows: one knee per (retrieval mode, concurrency).
    sweep: Vec<ServeRecord>,
    /// `recall` rows: one per index backend.
    recall: Vec<RecallRecord>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct ServeRecord {
    mode: String,
    concurrency: usize,
    qps: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
    mem_bytes: usize,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct RecallRecord {
    backend: String,
    qps: f64,
    recall_at_k: f64,
    mem_bytes: usize,
}

/// Read `BENCH_10.json` if present (tolerating a missing or stale file),
/// apply one section update, and write the merged ledger back.
fn update_bench_json(update: impl FnOnce(&mut BenchFile)) {
    let mut file: BenchFile = std::fs::read_to_string(BENCH_JSON)
        .ok()
        .and_then(|s| serde_json::from_str(&s).ok())
        .unwrap_or_default();
    update(&mut file);
    let json = serde_json::to_string_pretty(&file).expect("bench ledger serialises");
    std::fs::write(BENCH_JSON, json).unwrap_or_else(|e| {
        eprintln!("[bench] cannot write {BENCH_JSON}: {e}");
        std::process::exit(1);
    });
    eprintln!("[bench] wrote {BENCH_JSON}");
}

/// `repro recall` — build every backend over the *same* chunk
/// embeddings and report build/search throughput, recall@k against the
/// flat exact baseline, and the serialised footprint (`mem_bytes`, the
/// speed/recall/memory trade the ROADMAP perf table tracks). Lines are
/// `[recall] key=value ...` so CI can assert recall floors and the
/// memory column mechanically.
fn print_recall(output: &mcqa_core::PipelineOutput, k: usize) {
    use mcqa_util::ScopeTimer;

    let exec = &output.executor;
    let dim = output.config.embed.dim;
    let texts: Vec<&str> = output.chunks.iter().map(|c| c.text.as_str()).collect();
    let vectors = output.encoder.encode_batch(exec, &texts);
    let items: Vec<(u64, Vec<f32>)> =
        output.chunks.iter().map(|c| c.chunk_id).zip(vectors).collect();
    let stems: Vec<&str> = output.items.iter().map(|i| i.stem.as_str()).collect();
    let queries = output.encoder.encode_batch(exec, &stems);
    println!(
        "Recall vs flat baseline: {} vectors (dim {}), {} queries, k={k}\n",
        items.len(),
        dim,
        queries.len()
    );
    println!(
        "{:<8} {:>12} {:>12} {:>12} {:>12} {:>10} {:>11} {:>7}",
        "backend",
        "build-secs",
        "vec/s",
        "search-secs",
        "query/s",
        "recall@k",
        "mem-bytes",
        "B/vec"
    );

    if queries.is_empty() {
        // With no stem queries, recall would be 1.0 for every backend by
        // definition — a vacuously passing floor check. Fail loudly.
        eprintln!("[repro] recall needs at least one accepted question (got 0 stem queries)");
        std::process::exit(1);
    }

    let mut truth: Option<Vec<Vec<u64>>> = None;
    let mut records: Vec<RecallRecord> = Vec::new();
    for spec in IndexSpec::all_defaults() {
        let t = ScopeTimer::start("build");
        let store = mcqa_index::build_store_from_vectors(
            &spec,
            dim,
            mcqa_index::Metric::Cosine,
            mcqa_embed::Precision::F16,
            exec,
            &items,
        );
        let build_secs = t.elapsed_secs();

        let t = ScopeTimer::start("search");
        let results = store.search_batch(exec, &queries, k);
        let search_secs = t.elapsed_secs();

        let ids: Vec<Vec<u64>> =
            results.iter().map(|hits| hits.iter().map(|h| h.id).collect()).collect();
        // The first backend in `all_defaults` is flat: it becomes the
        // exact baseline, the ANN backends score against it.
        let recall = match &truth {
            None => {
                truth = Some(ids);
                1.0
            }
            Some(exact_all) => {
                let (mut hit, mut total) = (0usize, 0usize);
                for (approx, exact) in ids.iter().zip(exact_all) {
                    hit += approx.iter().filter(|id| exact.contains(id)).count();
                    total += exact.len();
                }
                if total == 0 {
                    1.0
                } else {
                    hit as f64 / total as f64
                }
            }
        };
        // Serialised footprint: the bytes a store costs at rest (and, for
        // the code-carrying backends, roughly in RAM) — the denominator of
        // the compression claim.
        let mem_bytes = store.to_bytes().len();
        let per_vec = mem_bytes as f64 / items.len().max(1) as f64;
        println!(
            "{:<8} {:>12.3} {:>12.0} {:>12.3} {:>12.0} {:>10.3} {:>11} {:>7.1}",
            spec.label(),
            build_secs,
            items.len() as f64 / build_secs.max(1e-9),
            search_secs,
            queries.len() as f64 / search_secs.max(1e-9),
            recall,
            mem_bytes,
            per_vec
        );
        println!(
            "[recall] backend={} build_secs={:.3} search_secs={:.3} search_qps={:.0} \
             recall_at_{k}={:.4} mem_bytes={mem_bytes} bytes_per_vec={per_vec:.1}",
            spec.label(),
            build_secs,
            search_secs,
            queries.len() as f64 / search_secs.max(1e-9),
            recall
        );
        records.push(RecallRecord {
            backend: spec.label().to_string(),
            qps: queries.len() as f64 / search_secs.max(1e-9),
            recall_at_k: recall,
            mem_bytes,
        });
    }
    update_bench_json(|f| f.recall = records);
}

/// The retrieval-mode comparison behind the README's hybrid table: dense
/// vs lexical vs hybrid (RRF) recall@k over the pipeline's own source
/// databases, with every query riding the `QueryService` envelope exactly
/// the way the evaluator's retrieval does. Recall here is the
/// oracle-labelled hit rate ([`RetrievalBundle::raw_hit_rate`]): the
/// fraction of questions whose top-k contains a supporting passage.
/// `mem_bytes` is the channel's resident footprint — the dense store's
/// serialised bytes, the BM25 sibling's postings + vocabulary
/// ([`mcqa_lexical::LexicalIndex::payload_bytes`]), or their sum for
/// hybrid — so the ROADMAP memory table stays uniform across channels.
/// Lines are `[recall] mode=...` so CI can assert the hybrid floor
/// mechanically.
fn print_mode_recall(output: &mcqa_core::PipelineOutput, k: usize) {
    use mcqa_util::ScopeTimer;

    let modes: [(&str, QueryMode); 3] = [
        ("dense", QueryMode::Dense),
        ("lexical", QueryMode::Lexical),
        ("hybrid", QueryMode::Hybrid { fusion: Default::default(), rerank: false, depth: 0 }),
    ];
    println!(
        "\nRetrieval modes over the pipeline stores: {} questions × {} sources, k={k}\n",
        output.items.len(),
        Source::ALL.len()
    );
    println!(
        "{:<8} {:<18} {:>10} {:>12} {:>12} {:>9}",
        "mode", "source", "recall@k", "query/s", "mem-bytes", "B/doc"
    );
    for (label, mode) in modes {
        let t = ScopeTimer::start("mode-recall");
        let bundle = RetrievalBundle::build_mode(output, &output.items, k, mode);
        let secs = t.elapsed_secs();
        // Throughput spans the whole replay (encode + serve + label) over
        // every (question, source) pair — the end-to-end rate the
        // evaluator pays per mode, which is what the "hybrid within 2× of
        // dense" budget constrains.
        let qps = (Source::ALL.len() * output.items.len()) as f64 / secs.max(1e-9);
        let mut mean = 0.0;
        for source in Source::ALL {
            let recall = bundle.raw_hit_rate(source);
            mean += recall / Source::ALL.len() as f64;
            let store = source.store(&output.indexes);
            let dense_bytes = store.to_bytes().len();
            let lex =
                output.indexes.expect_lexical(&IndexRegistry::lexical_sibling(source.store_name()));
            let (mem_bytes, docs) = match mode {
                QueryMode::Dense => (dense_bytes, store.len()),
                QueryMode::Lexical => (lex.payload_bytes(), lex.len()),
                QueryMode::Hybrid { .. } => (dense_bytes + lex.payload_bytes(), store.len()),
            };
            let per_doc = mem_bytes as f64 / docs.max(1) as f64;
            println!(
                "{:<8} {:<18} {:>10.4} {:>12.0} {:>12} {:>9.1}",
                label,
                source.store_name(),
                recall,
                qps,
                mem_bytes,
                per_doc
            );
            println!(
                "[recall] mode={label} source={} recall_at_{k}={recall:.4} qps={qps:.0} \
                 mem_bytes={mem_bytes} bytes_per_vec={per_doc:.1}",
                source.store_name()
            );
        }
        println!("[recall] mode={label} source=all recall_at_{k}={mean:.4} qps={qps:.0}");
    }
}

/// `repro serve-bench` — load-test the in-process query service.
///
/// Three phases, all emitting greppable `[serve] key=value` lines:
///
/// 1. **Startup**: eager `IndexRegistry::from_bytes` vs lazy
///    `IndexRegistry::open_bytes` over the pipeline's serialised stores,
///    so the lazy path's bounded startup cost is measured, not asserted.
/// 2. **Verification**: a served sample must be bit-identical to direct
///    `VectorStore::search` calls — exit 1 on any mismatch.
/// 3. **Load**: replay eval queries (question stems, sources rotated over
///    every registered store, k=8) from `concurrency` client threads,
///    once with micro-batching disabled (`max_batch=1`, the
///    one-request-at-a-time baseline) and once with the configured
///    watermark, reporting p50/p95/p99 latency, throughput, saturation,
///    and the speedup. Clients are closed-loop by default (submit → wait
///    → repeat, so offered load self-throttles to service speed);
///    `--serve-rate R` switches them to open loop — each client offers a
///    Poisson stream at R q/s (exponential inter-arrival gaps drawn from
///    the run seed) on a fixed schedule, latency is measured from the
///    *scheduled* arrival (queueing delay included, no coordination
///    omission), and every sweep point prints an offered-vs-served
///    saturation line.
fn serve_bench(output: &mcqa_core::PipelineOutput, serve: &ServeArgs, seed: u64) {
    use mcqa_util::{percentile, ScopeTimer};

    if output.items.is_empty() {
        eprintln!("[repro] serve-bench needs at least one accepted question (got 0)");
        std::process::exit(1);
    }
    let sources: Vec<String> = output.indexes.names().iter().map(|s| s.to_string()).collect();
    let k = 8;

    // Phase 1: startup cost, eager vs lazy open of the same bytes.
    let bytes = output.indexes.to_bytes();
    let t = ScopeTimer::start("eager");
    let eager = IndexRegistry::from_bytes(&bytes).expect("pipeline registry re-opens");
    let eager_ms = t.elapsed_secs() * 1e3;
    let t = ScopeTimer::start("lazy");
    let lazy = IndexRegistry::open_bytes(&bytes).expect("pipeline registry opens lazily");
    let lazy_ms = t.elapsed_secs() * 1e3;
    assert_eq!(lazy.names(), output.indexes.names(), "lazy open sees the same stores");
    // First search on a lazy store pays its deferred decode — measure it
    // so the startup trade (open now vs decode on first touch) is visible.
    let t = ScopeTimer::start("first-touch");
    let probe = output.encoder.encode(&output.items[0].stem);
    let _ = lazy.expect_store(&sources[0]).search(&probe, k);
    let first_ms = t.elapsed_secs() * 1e3;
    println!(
        "[serve] startup stores={} bytes={} eager_ms={eager_ms:.2} lazy_ms={lazy_ms:.3} \
         first_search_ms={first_ms:.2}",
        eager.len(),
        bytes.len()
    );

    // The serving registry: the eagerly re-opened stores, re-budgeted when
    // `--cache-budget` bounds the resident panel cache (0 disables caching
    // entirely — the decode-every-search path the smoke compares against).
    let mut serving = eager;
    if let Some(budget) = serve.cache_budget {
        serving.set_panel_cache_budget(mcqa_embed::PanelBudget::Bytes(budget));
    }
    let serving = std::sync::Arc::new(serving);

    // Phase 2: served results must be bit-identical to direct searches.
    // Text queries exercise the full path (service-side encode included);
    // the direct baseline encodes by hand with the same encoder.
    let service = QueryService::start(
        serving.clone(),
        Some(output.encoder.clone()),
        output.executor.clone(),
        ServeConfig::default(),
    );
    let mut checked = 0usize;
    for (qi, item) in output.items.iter().take(8).enumerate() {
        for source in &sources {
            let served = service
                .submit(QueryRequest::text(source.clone(), item.stem.clone(), k))
                .expect("verification submit admitted")
                .wait()
                .unwrap_or_else(|e| {
                    eprintln!("[serve] verify=failed source={source} err={e}");
                    std::process::exit(1);
                });
            let direct =
                output.indexes.expect_store(source).search(&output.encoder.encode(&item.stem), k);
            if served.hits != direct {
                eprintln!("[serve] verify=mismatch source={source} query={qi}");
                std::process::exit(1);
            }
            checked += 1;
        }
    }
    println!("[serve] verify=ok checked={checked}");
    service.shutdown();

    // Phase 3: the load sweep. Requests replay the eval stems the way the
    // evaluator replays them: one contiguous block per source database
    // (eval queries every store with the full stem list in turn), so
    // concurrent in-flight requests mostly share a store and the
    // dispatcher's (source, k) groups stay wide.
    let stems: Vec<&str> = output.items.iter().map(|i| i.stem.as_str()).collect();
    let reqs: Vec<QueryRequest> = (0..serve.requests)
        .map(|i| {
            QueryRequest::text(
                sources[i * sources.len() / serve.requests.max(1)].clone(),
                stems[i % stems.len()],
                k,
            )
        })
        .collect();

    if serve.sweep {
        serve_sweep(&serving, output, serve, seed, &reqs, bytes.len());
        return;
    }

    let arrivals = if serve.rate > 0.0 { "open" } else { "closed" };
    let mut records: Vec<ServeRecord> = Vec::new();
    for &concurrency in &serve.concurrency {
        // qps[0] is the one-at-a-time baseline, qps[1] the batched run.
        let mut qps = [0.0f64; 2];
        // Closed-loop clients never have more than `concurrency` requests
        // outstanding, so a watermark above that would just burn the flush
        // deadline waiting for arrivals that cannot come.
        let watermark = if serve.rate > 0.0 { serve.batch } else { serve.batch.min(concurrency) };
        for (mode, max_batch) in [("baseline", 1), ("batched", watermark)] {
            let config = ServeConfig {
                queue_capacity: serve.queue,
                max_batch,
                flush_deadline: std::time::Duration::from_micros(serve.deadline_us),
                ..ServeConfig::default()
            };
            let service = QueryService::start(
                serving.clone(),
                Some(output.encoder.clone()),
                output.executor.clone(),
                config,
            );
            let t = ScopeTimer::start("load");
            let mut lat_ms: Vec<f64> = if serve.rate > 0.0 {
                open_loop(&service, &reqs, concurrency, serve.rate, seed, mode)
            } else {
                // Closed-loop clients: each owns a request stripe, submits
                // one, waits for its reply, moves on.
                std::thread::scope(|s| {
                    let handles: Vec<_> = (0..concurrency)
                        .map(|c| {
                            let service = &service;
                            let reqs = &reqs;
                            s.spawn(move || {
                                let mut lat = Vec::new();
                                for req in reqs.iter().skip(c).step_by(concurrency) {
                                    let t0 = std::time::Instant::now();
                                    match service.submit(req.clone()) {
                                        // Rejections count via the ledger; a
                                        // closed-loop client just moves on.
                                        Err(_) => continue,
                                        Ok(ticket) => {
                                            if ticket.wait().is_ok() {
                                                lat.push(t0.elapsed().as_secs_f64() * 1e3);
                                            }
                                        }
                                    }
                                }
                                lat
                            })
                        })
                        .collect();
                    handles.into_iter().flat_map(|h| h.join().expect("client thread")).collect()
                })
            };
            let wall = t.elapsed_secs();
            let snap = service.shutdown();
            lat_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
            let rate = snap.served_ok as f64 / wall.max(1e-9);
            qps[usize::from(mode == "batched")] = rate;
            println!(
                "[serve] mode={mode} concurrency={concurrency} requests={} submitted={} \
                 served={} rejected={} qps={rate:.0} p50_ms={:.3} p95_ms={:.3} p99_ms={:.3} \
                 mean_batch={:.1} fast_path_hits={} saturation={:.3} seed={seed} \
                 arrivals={arrivals}",
                serve.requests,
                snap.admitted + snap.rejected,
                snap.served(),
                snap.rejected,
                percentile(&lat_ms, 50.0),
                percentile(&lat_ms, 95.0),
                percentile(&lat_ms, 99.0),
                snap.mean_batch(),
                snap.fast_path_hits,
                snap.saturation(),
            );
            records.push(ServeRecord {
                mode: mode.to_string(),
                concurrency,
                qps: rate,
                p50_ms: percentile(&lat_ms, 50.0),
                p95_ms: percentile(&lat_ms, 95.0),
                p99_ms: percentile(&lat_ms, 99.0),
                mem_bytes: bytes.len() + serving.panel_cache_resident_bytes(),
            });
            if serve.rate > 0.0 {
                // Open loop: offered load is fixed by the schedule, so
                // offered vs served is the saturation verdict — delivered
                // < 1 means the service sheds or lags this arrival rate.
                let offered = serve.rate * concurrency as f64;
                println!(
                    "[serve] arrivals=open mode={mode} concurrency={concurrency} \
                     offered_qps={offered:.0} served_qps={rate:.0} delivered={:.3} seed={seed}",
                    rate / offered.max(1e-9)
                );
            }
            for line in snap.lines() {
                println!("{line}");
            }
        }
        println!(
            "[serve] speedup concurrency={concurrency} baseline_qps={:.0} batched_qps={:.0} \
             ratio={:.2}",
            qps[0],
            qps[1],
            qps[1] / qps[0].max(1e-9)
        );
    }
    println!(
        "[serve] panel_cache resident_bytes={} budget={}",
        serving.panel_cache_resident_bytes(),
        match serve.cache_budget {
            Some(b) => b.to_string(),
            None => "auto".to_string(),
        }
    );
    update_bench_json(|f| f.serve = records);
}

/// Drive `reqs` through `service` from `concurrency` open-loop clients,
/// each offering a Poisson stream at `rate` q/s on a schedule fixed
/// before the run — the service being slow does not slow the arrivals
/// down, it just grows the queue (or trips admission control). A scoped
/// waiter thread per ticket records latency (ms) from the *scheduled*
/// arrival, so queueing delay is charged in full (no coordinated
/// omission). Arrival gaps are drawn from `(seed, client, index, tag)`,
/// so distinct runs get distinct schedules and reruns replay exactly.
fn open_loop(
    service: &QueryService,
    reqs: &[QueryRequest],
    concurrency: usize,
    rate: f64,
    seed: u64,
    tag: &str,
) -> Vec<f64> {
    use mcqa_util::KeyedStochastic;

    let rng = KeyedStochastic::new(seed);
    let lat = std::sync::Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for c in 0..concurrency {
            let (rng, lat) = (&rng, &lat);
            s.spawn(move || {
                let t0 = std::time::Instant::now();
                let mut due = 0.0f64;
                for (i, req) in reqs.iter().skip(c).step_by(concurrency).enumerate() {
                    let u = rng.uniform(&["arrival", &c.to_string(), &i.to_string(), tag]);
                    due += -(1.0 - u).ln() / rate;
                    let at = t0 + std::time::Duration::from_secs_f64(due);
                    if let Some(gap) = at.checked_duration_since(std::time::Instant::now()) {
                        std::thread::sleep(gap);
                    }
                    // Rejections count via the ledger; the schedule
                    // marches on either way.
                    if let Ok(ticket) = service.submit(req.clone()) {
                        s.spawn(move || {
                            if ticket.wait().is_ok() {
                                let ms = at.elapsed().as_secs_f64() * 1e3;
                                lat.lock().expect("latency sink").push(ms);
                            }
                        });
                    }
                }
            });
        }
    });
    lat.into_inner().expect("latency sink")
}

/// The saturation-knee walk behind `repro serve-bench --sweep`: per
/// (retrieval mode, concurrency), climb the total offered open-loop rate
/// multiplicatively until the service sheds (admission saturation) or
/// lags (delivered < 0.95), then bisect between the last sustained and
/// first failed rates. Every point is one open-loop run printing a
/// latency-vs-load `[serve] sweep` line; the knee prints as
/// `max_sustainable_qps=` (the served rate at the highest sustained
/// offered rate).
fn serve_sweep(
    serving: &std::sync::Arc<IndexRegistry>,
    output: &mcqa_core::PipelineOutput,
    serve: &ServeArgs,
    seed: u64,
    reqs: &[QueryRequest],
    store_bytes: usize,
) {
    use mcqa_util::{percentile, ScopeTimer};

    /// Shed fraction above this is saturated: admission control is
    /// actively rejecting the offered schedule.
    const SATURATION_CEIL: f64 = 0.01;
    /// A point is lagging when its p50 (measured from the scheduled
    /// arrival) exceeds this multiple of the lowest-rate point's p50: the
    /// queue is growing faster than the service drains it, even if the
    /// bounded queue has not overflowed into rejections yet. Relative, so
    /// the knee verdict survives machines with different sleep jitter.
    const LATENCY_KNEE_MULT: f64 = 8.0;
    /// Floor for the knee latency threshold (ms), so a near-zero base p50
    /// on a fast machine cannot make legitimate queueing near the knee
    /// look like collapse.
    const LATENCY_KNEE_FLOOR_MS: f64 = 2.0;

    let modes: [(&str, QueryMode); 2] = [
        ("dense", QueryMode::Dense),
        ("hybrid", QueryMode::Hybrid { fusion: Default::default(), rerank: false, depth: 0 }),
    ];
    let mut records: Vec<ServeRecord> = Vec::new();
    for (label, qmode) in modes {
        let reqs: Vec<QueryRequest> = reqs.iter().map(|r| r.clone().with_mode(qmode)).collect();
        for &concurrency in &serve.concurrency {
            // One measured point of the walk at `offered` total q/s,
            // printing its latency-vs-load line and returning
            // (served_qps, delivered, [p50, p95, p99], saturation).
            let point = |offered: f64| -> (f64, f64, [f64; 3], f64) {
                // Bound each point to ~2s of offered schedule (floor 64
                // requests) so the walk's wall clock stays flat as the
                // rate climbs instead of replaying the full request list
                // ever faster.
                let n = ((offered * 2.0) as usize).clamp(64, reqs.len().max(64)).min(reqs.len());
                let config = ServeConfig {
                    queue_capacity: serve.queue,
                    max_batch: serve.batch,
                    flush_deadline: std::time::Duration::from_micros(serve.deadline_us),
                    ..ServeConfig::default()
                };
                let service = QueryService::start(
                    serving.clone(),
                    Some(output.encoder.clone()),
                    output.executor.clone(),
                    config,
                );
                let t = ScopeTimer::start("sweep-point");
                let tag = format!("{label}-{offered:.0}");
                let mut lat_ms = open_loop(
                    &service,
                    &reqs[..n],
                    concurrency,
                    offered / concurrency as f64,
                    seed,
                    &tag,
                );
                let wall = t.elapsed_secs();
                let snap = service.shutdown();
                lat_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
                let served_qps = snap.served_ok as f64 / wall.max(1e-9);
                // Fraction of the offered schedule that was served at all
                // (every admitted request drains, so shortfall here is
                // exactly what admission shed).
                let delivered = snap.served_ok as f64 / n.max(1) as f64;
                let pcts = [
                    percentile(&lat_ms, 50.0),
                    percentile(&lat_ms, 95.0),
                    percentile(&lat_ms, 99.0),
                ];
                println!(
                    "[serve] sweep mode={label} concurrency={concurrency} \
                     offered_qps={offered:.0} served_qps={served_qps:.0} \
                     delivered={delivered:.3} p50_ms={:.3} p95_ms={:.3} p99_ms={:.3} \
                     fast_path_hits={} saturation={:.3} seed={seed} arrivals=open",
                    pcts[0],
                    pcts[1],
                    pcts[2],
                    snap.fast_path_hits,
                    snap.saturation(),
                );
                (served_qps, delivered, pcts, snap.saturation())
            };

            // The knee gate: saturated (admission sheds) or lagging (p50
            // blown out relative to the lowest-rate point's p50).
            let mut base_p50: Option<f64> = None;
            let mut sustained = |p50: f64, sat: f64| -> bool {
                let base = *base_p50.get_or_insert(p50);
                sat <= SATURATION_CEIL
                    && p50 <= (base * LATENCY_KNEE_MULT).max(LATENCY_KNEE_FLOOR_MS)
            };
            // Phase 1: multiplicative climb until the first failed rate.
            let (mut lo, mut best) = (0.0f64, (0.0f64, [0.0f64; 3]));
            let mut offered = 64.0;
            let mut hi = None;
            for _ in 0..14 {
                let (qps, _, pcts, sat) = point(offered);
                if sustained(pcts[0], sat) {
                    lo = offered;
                    best = (qps, pcts);
                    offered *= 2.0;
                } else {
                    hi = Some(offered);
                    break;
                }
            }
            // Phase 2: refine the knee between the last sustained and
            // first failed offered rates.
            if let Some(hi) = hi {
                let (mut lo_r, mut hi_r) = (lo, hi);
                for _ in 0..2 {
                    let mid = (lo_r + hi_r) / 2.0;
                    if mid <= lo_r {
                        break;
                    }
                    let (qps, _, pcts, sat) = point(mid);
                    if sustained(pcts[0], sat) {
                        lo_r = mid;
                        best = (qps, pcts);
                    } else {
                        hi_r = mid;
                    }
                }
                lo = lo_r;
            }
            println!(
                "[serve] sweep mode={label} concurrency={concurrency} knee_offered_qps={lo:.0} \
                 max_sustainable_qps={:.0} seed={seed} arrivals=open",
                best.0
            );
            records.push(ServeRecord {
                mode: format!("sweep-{label}"),
                concurrency,
                qps: best.0,
                p50_ms: best.1[0],
                p95_ms: best.1[1],
                p99_ms: best.1[2],
                mem_bytes: store_bytes + serving.panel_cache_resident_bytes(),
            });
        }
    }
    update_bench_json(|f| f.sweep = records);
}

/// `repro ingest` — the incremental-ingest benchmark: a cold full build,
/// a seeded synthetic edit batch (`--edits`, default ≈ 1% of the live
/// corpus), then the incremental re-run against a cold rebuild of the
/// edited corpus — wall clocks, the planner's skip/re-run census, and a
/// search-identity verdict, all as greppable `[ingest] key=value` lines.
///
/// Verification: every pipeline artifact (chunks, questions, traces,
/// the ingest manifest) must be equal between the incremental run and
/// the cold rebuild, on any backend — exit 1 otherwise. Search results
/// are additionally compared probe by probe: exact for the lexical
/// siblings always and for dense stores on the default `flat` backend;
/// ivf/pq retrain their coarse structure on a cold rebuild and hnsw
/// re-inserts in a different order, so those report top-k overlap
/// instead of asserting bitwise identity.
fn ingest_bench(config: &PipelineConfig, edits: Option<usize>, seed: u64) {
    use mcqa_corpus::EditBatch;
    use mcqa_index::IndexSpec;
    use mcqa_util::ScopeTimer;
    use std::sync::Arc;

    // Phase 1: the cold full build — the baseline the planner must beat.
    let t = ScopeTimer::start("full");
    let base = Pipeline::run(config);
    let full_secs = t.elapsed_secs();
    eprintln!(
        "[repro] base build: {} docs → {} chunks → {} questions ({:.2}s)",
        base.library.len(),
        base.chunks.len(),
        base.items.len(),
        full_secs
    );

    // Phase 2: a seeded synthetic edit batch against the live corpus.
    let n = edits.unwrap_or_else(|| (base.library.live_len() / 100).max(1));
    let mut library = (*base.library).clone();
    let batch = EditBatch::synthetic(&library, seed, n);
    let (add, modify, remove) = batch.profile();
    library.apply_edits(&base.ontology, &batch);
    println!("[ingest] edits={n} add={add} modify={modify} remove={remove}");
    let library = Arc::new(library);

    // Phase 3: the incremental re-run over the previous output.
    let t = ScopeTimer::start("incremental");
    let inc = Pipeline::run_incremental(config, &base, library.clone());
    let inc_secs = t.elapsed_secs();
    for (key, value) in inc.ingest.lines() {
        println!("[ingest] {key}={value}");
    }

    // Phase 4: the ground truth — a cold rebuild of the edited corpus.
    let t = ScopeTimer::start("verify");
    let cold = Pipeline::run_full(config, base.ontology.clone(), library);
    let cold_secs = t.elapsed_secs();

    // Artifact identity holds on every backend: the planner re-derives
    // chunks, questions, traces, and the manifest, not index internals.
    let mut failed = false;
    for (what, ok) in [
        ("chunks", inc.chunks == cold.chunks),
        ("questions", inc.questions == cold.questions),
        ("items", inc.items == cold.items),
        ("traces", inc.traces == cold.traces),
        ("manifest", inc.manifest == cold.manifest),
    ] {
        if !ok {
            eprintln!("[ingest] verify=mismatch artifact={what}");
            failed = true;
        }
    }

    // Search identity, probe by probe. Lexical siblings mutate
    // deterministically on every backend; dense stores are bit-identical
    // only on flat (ivf/pq retrain, hnsw re-inserts on a cold build).
    let probes = ["proton therapy dose", "gene expression pathway", "tumour margin imaging"];
    let k = 10;
    let exact_dense = config.index == IndexSpec::Flat;
    let (mut compared, mut hit, mut total) = (0usize, 0usize, 0usize);
    for name in inc.indexes.names() {
        let store = inc.indexes.expect_store(name);
        let other = cold.indexes.expect_store(name);
        for p in &probes {
            let q = inc.encoder.encode(p);
            let (a, b) = (store.search(&q, k), other.search(&q, k));
            if exact_dense {
                if a != b {
                    eprintln!("[ingest] verify=mismatch store={name} probe={p:?}");
                    failed = true;
                }
            } else {
                let ids: Vec<u64> = b.iter().map(|h| h.id).collect();
                hit += a.iter().filter(|h| ids.contains(&h.id)).count();
                total += b.len();
            }
        }
        compared += 1;
    }
    for name in inc.indexes.lexical_names() {
        let lex = inc.indexes.expect_lexical(name);
        let other = cold.indexes.expect_lexical(name);
        for p in &probes {
            if lex.search(p, k) != other.search(p, k) {
                eprintln!("[ingest] verify=mismatch store={name} probe={p:?}");
                failed = true;
            }
        }
        compared += 1;
    }
    if failed {
        std::process::exit(1);
    }
    if exact_dense {
        println!("[ingest] verify=identical stores={compared} probes={}", probes.len());
    } else {
        println!(
            "[ingest] verify=overlap stores={compared} probes={} dense_overlap={:.3}",
            probes.len(),
            hit as f64 / total.max(1) as f64
        );
    }
    println!(
        "[ingest] full_secs={full_secs:.3} incremental_secs={inc_secs:.3} \
         verify_secs={cold_secs:.3} speedup={:.2}",
        full_secs / inc_secs.max(1e-9)
    );
}

/// `repro models` — the per-role call ledger after a full pipeline + 8-model
/// evaluation: calls, batch sizes, token in/out estimates, and the response
/// cache's hit rate. Lines are `[models] key=value ...` so CI can assert the
/// cost-accounting census mechanically.
fn print_models(output: &mcqa_core::PipelineOutput) {
    use mcqa_llm::ModelEndpoint;

    // The default (dense) evaluation never calls the cross-encoder, so
    // replay a short hybrid+rerank retrieval bundle first: the census then
    // always carries a `role=reranker` row with real traffic, priced by
    // the same shared ledger + response cache as every other role.
    let probe = output.items.len().min(8);
    if probe > 0 {
        let _ = RetrievalBundle::build_mode(
            output,
            &output.items[..probe],
            5,
            QueryMode::Hybrid { fusion: Default::default(), rerank: true, depth: 0 },
        );
    }

    println!(
        "Model-layer call ledger (backend {}, {} distinct completions cached):\n",
        output.models.backend(),
        output.models.cache().len()
    );
    println!(
        "{:<12} {:>10} {:>8} {:>11} {:>11} {:>9} {:>12} {:>12} {:>10}",
        "role",
        "calls",
        "batches",
        "mean-batch",
        "cache-hits",
        "hit-rate",
        "tokens-in",
        "tokens-out",
        "busy-secs"
    );
    let mut rows = output.models.ledger().snapshot();
    rows.retain(|(_, s)| s.calls > 0);
    let total = output.models.ledger().total();
    for (role, s) in rows.iter().map(|(r, s)| (r.label(), s)).chain([("total", &total)]) {
        println!(
            "{:<12} {:>10} {:>8} {:>11.1} {:>11} {:>9.3} {:>12} {:>12} {:>10.3}",
            role,
            s.calls,
            s.batches,
            s.mean_batch_size(),
            s.cache_hits,
            s.hit_rate(),
            s.tokens_in,
            s.tokens_out,
            s.busy_secs
        );
    }
    println!();
    for line in output.models.ledger().summary_lines(output.models.backend()) {
        println!("{line}");
    }
}

fn print_rates(run: &mcqa_eval::EvalRun) {
    println!("Measured usable-hit rates (post truncation):");
    println!(
        "{:<26} {:>8} {:>8} {:>8} {:>8} | {:>8} {:>8}",
        "model", "syn-chk", "syn-det", "syn-foc", "syn-eff", "ast-chk", "ast-rt"
    );
    for m in &run.models {
        println!(
            "{:<26} {:>8.3} {:>8.3} {:>8.3} {:>8.3} | {:>8.3} {:>8.3}",
            m.name,
            m.rates.synth_chunk,
            m.rates.synth_trace[0],
            m.rates.synth_trace[1],
            m.rates.synth_trace[2],
            m.rates.astro_chunk,
            m.rates.astro_trace[1],
        );
    }
}

fn print_residuals(run: &mcqa_eval::EvalRun) {
    println!("Calibration residuals (achieved − paper target at the clamped solve):");
    for m in &run.models {
        let worst: Vec<_> =
            m.calibration.solved.iter().filter(|s| s.residual.abs() > 0.005).collect();
        if worst.is_empty() {
            println!("{:<26} all targets reachable", m.name);
        } else {
            println!("{}:", m.name);
            for s in worst {
                println!("    {:<22} value {:.3}  residual {:+.3}", s.name, s.value, s.residual);
            }
        }
    }
}

/// Ablation: accuracy vs retrieval depth k (beyond the paper).
fn ablate_topk(output: &mcqa_core::PipelineOutput, seed: u64) {
    println!("Ablation — synthetic accuracy vs retrieval depth (SmolLM3-3B):");
    println!("{:>4} {:>12} {:>12}", "k", "rag-chunks", "rt-focused");
    let card = MODEL_CARDS.iter().find(|c| c.name == "SmolLM3-3B").unwrap();
    for k in [1usize, 2, 3, 5, 8, 10] {
        let evaluator =
            Evaluator::new(output, EvalConfig { seed, retrieval_k: k, ..Default::default() });
        let run = evaluator.run_cards(std::slice::from_ref(card));
        let m = &run.models[0];
        println!(
            "{:>4} {:>12.3} {:>12.3}",
            k,
            m.synth_accuracy(Condition::RagChunks),
            m.synth_accuracy(Condition::RagTraces(TraceMode::Focused)),
        );
    }
}

/// Ablation: accuracy vs context window — shows the truncation mechanism.
fn ablate_context(output: &mcqa_core::PipelineOutput, seed: u64) {
    println!("Ablation — synthetic accuracy vs context window (OLMo-7B behaviour card):");
    println!(
        "{:>8} {:>9} {:>9} {:>12} {:>12}",
        "window", "hit-chk", "hit-rt", "rag-chunks", "rt-focused"
    );
    let base = MODEL_CARDS.iter().find(|c| c.name == "OLMo-7B").unwrap();
    for window in [512usize, 1024, 2048, 4096, 8192, 32_768] {
        let mut card = base.clone();
        card.context_window = window;
        let evaluator = Evaluator::new(output, EvalConfig { seed, ..Default::default() });
        let run = evaluator.run_cards(std::slice::from_ref(&card));
        let m = &run.models[0];
        println!(
            "{:>8} {:>9.3} {:>9.3} {:>12.3} {:>12.3}",
            window,
            m.rates.synth_chunk,
            m.rates.synth_trace[1],
            m.synth_accuracy(Condition::RagChunks),
            m.synth_accuracy(Condition::RagTraces(TraceMode::Focused)),
        );
    }
}

/// Ablation: quality threshold sweep — benchmark size vs acceptance bar.
fn ablate_filter(scale: f64, seed: u64) {
    println!("Ablation — quality threshold vs benchmark size (paper uses 7):");
    println!("{:>10} {:>12} {:>12} {:>14}", "threshold", "candidates", "accepted", "acceptance");
    for threshold in [5u8, 6, 7, 8, 9] {
        let mut config = PipelineConfig::at_scale(scale, seed);
        config.quality_threshold = threshold;
        let output = Pipeline::run(&config);
        println!(
            "{:>10} {:>12} {:>12} {:>13.1}%",
            threshold,
            output.candidates,
            output.items.len(),
            100.0 * output.acceptance_rate()
        );
    }
}
