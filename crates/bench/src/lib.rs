//! Shared fixtures for the criterion benches and the `repro` binary.

use mcqa_core::{Pipeline, PipelineConfig, PipelineOutput};

/// Scale used by the criterion benches (kept small so `cargo bench`
/// finishes quickly; the `repro` binary takes `--scale` for real runs).
pub const BENCH_SCALE: f64 = 0.01;

/// Build (once per process) a small pipeline output for benches.
pub fn bench_output() -> &'static PipelineOutput {
    static OUT: std::sync::OnceLock<PipelineOutput> = std::sync::OnceLock::new();
    OUT.get_or_init(|| Pipeline::run(&PipelineConfig::at_scale(BENCH_SCALE, 42)))
}

/// Sample prose for text-stage benches.
pub fn sample_prose(repeats: usize) -> String {
    let base = "Ionising radiation produces clustered lesions in tumour DNA. \
                Damage sensing kinases phosphorylate chromatin-bound substrates. \
                Repair pathway choice depends on cell-cycle phase and chromatin state. \
                Fractionated schedules exploit differential repair between tissues. \
                Hypoxic cores exhibit pronounced radioresistance through oxygen fixation. ";
    base.repeat(repeats)
}

/// Deterministic unit vectors for index benches.
pub fn random_unit_vectors(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
    let ks = mcqa_util::KeyedStochastic::new(seed);
    (0..n)
        .map(|i| {
            let mut v: Vec<f32> = (0..dim)
                .map(|j| ks.gaussian(&["v", &i.to_string(), &j.to_string()]) as f32)
                .collect();
            let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
            v.iter_mut().for_each(|x| *x /= norm);
            v
        })
        .collect()
}

/// Deterministic *clustered* unit vectors for the quantized-index benches:
/// point `i` sits near centre `i * centres / n` (a sparse ±1 direction
/// pattern keyed off the centre id) with gaussian jitter `noise`, then
/// gets normalised. Clustered data is what coarse quantisers are built
/// for — uniform random vectors have no list structure to exploit, so
/// recall and crossover numbers on them say nothing about the deployed
/// regime. Cluster membership runs in contiguous id blocks, the way
/// chunked documents land in a real ingest (sequential chunk ids, one
/// topic per document) — which is also what the inverted lists'
/// delta-varint id compression is shaped for.
pub fn clustered_unit_vectors(
    n: usize,
    centres: usize,
    dim: usize,
    noise: f64,
    seed: u64,
) -> Vec<Vec<f32>> {
    let ks = mcqa_util::KeyedStochastic::new(seed);
    let centre_dirs: Vec<Vec<f32>> = (0..centres)
        .map(|c| {
            (0..dim)
                .map(|j| {
                    // ~1/4 of the dims are "hot" per centre, sign varied,
                    // so centres are well separated but not axis-aligned.
                    let r = ks.uniform(&["centre", &c.to_string(), &j.to_string()]);
                    if r < 0.125 {
                        1.0
                    } else if r < 0.25 {
                        -1.0
                    } else {
                        0.0
                    }
                })
                .collect()
        })
        .collect();
    (0..n)
        .map(|i| {
            let base = &centre_dirs[(i * centres / n).min(centres - 1)];
            let mut v: Vec<f32> = (0..dim)
                .map(|j| {
                    base[j] + (noise * ks.gaussian(&["p", &i.to_string(), &j.to_string()])) as f32
                })
                .collect();
            let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
            v.iter_mut().for_each(|x| *x /= norm.max(1e-12));
            v
        })
        .collect()
}

/// A clustered corpus with *planted* near-neighbour families, plus the
/// queries that own them: each query is a clustered unit vector and the
/// corpus contains `dups_per_query` jittered copies of it (jitter
/// `dup_noise`, applied on the unit sphere) among `n` background points
/// drawn from the same `centres` cluster structure.
///
/// This is the standard way to make ANN ground truth well-conditioned:
/// recall@k against an isotropic blob is meaningless — every point in a
/// dense cluster is an ε-perturbation away from swapping ranks, so *any*
/// lossy representation (PQ codes, but also F16 rounding) scores poorly
/// against it. Retrieval corpora are not isotropic: chunked documents
/// carry families of near-duplicate passages, and the planted families
/// reproduce that regime with exact knowledge of the true neighbours.
#[allow(clippy::too_many_arguments)] // bench fixture: the knobs *are* the API
pub fn planted_corpus(
    n: usize,
    centres: usize,
    n_queries: usize,
    dups_per_query: usize,
    noise: f64,
    dup_noise: f64,
    dim: usize,
    seed: u64,
) -> (Vec<Vec<f32>>, Vec<Vec<f32>>) {
    let planted = n_queries * dups_per_query;
    assert!(planted < n, "corpus must be larger than the planted families");
    let queries = clustered_unit_vectors(n_queries, centres, dim, noise, seed ^ 0x9E37);
    let mut corpus = clustered_unit_vectors(n - planted, centres, dim, noise, seed);
    let ks = mcqa_util::KeyedStochastic::new(seed ^ 0xD0C5);
    for (qi, q) in queries.iter().enumerate() {
        for d in 0..dups_per_query {
            let mut v: Vec<f32> = q
                .iter()
                .enumerate()
                .map(|(j, &x)| {
                    let g = ks.gaussian(&["dup", &qi.to_string(), &d.to_string(), &j.to_string()]);
                    x + (dup_noise * g) as f32
                })
                .collect();
            let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
            v.iter_mut().for_each(|x| *x /= norm.max(1e-12));
            corpus.push(v);
        }
    }
    (corpus, queries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_work() {
        let prose = sample_prose(2);
        assert!(mcqa_text::token_count(&prose) > 50);
        let vecs = random_unit_vectors(4, 16, 1);
        assert_eq!(vecs.len(), 4);
        for v in vecs {
            let n: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
            assert!((n - 1.0).abs() < 1e-4);
        }
        let clustered = clustered_unit_vectors(8, 2, 16, 0.1, 3);
        assert_eq!(clustered.len(), 8);
        for v in &clustered {
            let n: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
            assert!((n - 1.0).abs() < 1e-4);
        }
        // Membership runs in id blocks: 0..4 share a centre, 4..8 the
        // other. Same-cluster points must look more alike than
        // cross-cluster ones.
        let same = mcqa_util::kernel::dot(&clustered[0], &clustered[2]);
        let cross = mcqa_util::kernel::dot(&clustered[0], &clustered[5]);
        assert!(same > cross, "cluster structure present: {same} vs {cross}");
    }
}
