//! Shared fixtures for the criterion benches and the `repro` binary.

use mcqa_core::{Pipeline, PipelineConfig, PipelineOutput};

/// Scale used by the criterion benches (kept small so `cargo bench`
/// finishes quickly; the `repro` binary takes `--scale` for real runs).
pub const BENCH_SCALE: f64 = 0.01;

/// Build (once per process) a small pipeline output for benches.
pub fn bench_output() -> &'static PipelineOutput {
    static OUT: std::sync::OnceLock<PipelineOutput> = std::sync::OnceLock::new();
    OUT.get_or_init(|| Pipeline::run(&PipelineConfig::at_scale(BENCH_SCALE, 42)))
}

/// Sample prose for text-stage benches.
pub fn sample_prose(repeats: usize) -> String {
    let base = "Ionising radiation produces clustered lesions in tumour DNA. \
                Damage sensing kinases phosphorylate chromatin-bound substrates. \
                Repair pathway choice depends on cell-cycle phase and chromatin state. \
                Fractionated schedules exploit differential repair between tissues. \
                Hypoxic cores exhibit pronounced radioresistance through oxygen fixation. ";
    base.repeat(repeats)
}

/// Deterministic unit vectors for index benches.
pub fn random_unit_vectors(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
    let ks = mcqa_util::KeyedStochastic::new(seed);
    (0..n)
        .map(|i| {
            let mut v: Vec<f32> = (0..dim)
                .map(|j| ks.gaussian(&["v", &i.to_string(), &j.to_string()]) as f32)
                .collect();
            let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
            v.iter_mut().for_each(|x| *x /= norm);
            v
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_work() {
        let prose = sample_prose(2);
        assert!(mcqa_text::token_count(&prose) > 50);
        let vecs = random_unit_vectors(4, 16, 1);
        assert_eq!(vecs.len(), 4);
        for v in vecs {
            let n: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
            assert!((n - 1.0).abs() < 1e-4);
        }
    }
}
