//! Question-generation throughput: teacher MCQ synthesis + judge scoring
//! (the paper pushes 173,318 chunks through GPT-4.1 + a judge).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mcqa_llm::{JudgeModel, TeacherModel};
use mcqa_ontology::{Ontology, OntologyConfig};

fn bench_question_gen(c: &mut Criterion) {
    let ontology = Ontology::generate(&OntologyConfig {
        seed: 3,
        entities_per_kind: 120,
        qualitative_facts: 1_200,
        quantitative_facts: 100,
    });
    let teacher = TeacherModel::new(Default::default());
    let judge = JudgeModel::new(3);

    let mut group = c.benchmark_group("question_gen");
    group.sample_size(20);

    group.throughput(Throughput::Elements(100));
    group.bench_function("generate_100_mcqs", |b| {
        b.iter(|| {
            let mut accepted = 0usize;
            for fact in ontology.facts().iter().take(100) {
                let q = teacher.generate_question(&ontology, fact, "bench");
                if judge.score_question(&q, fact.salience).accepted() {
                    accepted += 1;
                }
            }
            std::hint::black_box(accepted)
        });
    });

    group.throughput(Throughput::Elements(300));
    group.bench_function("distill_100_questions_x3_modes", |b| {
        let questions: Vec<_> = ontology
            .facts()
            .iter()
            .take(100)
            .map(|f| teacher.generate_question(&ontology, f, "bench"))
            .collect();
        b.iter(|| {
            let mut total_len = 0usize;
            for q in &questions {
                for mode in mcqa_llm::TraceMode::ALL {
                    total_len += teacher.generate_trace(&ontology, q, mode).len();
                }
            }
            std::hint::black_box(total_len)
        });
    });

    group.throughput(Throughput::Elements(1000));
    group.bench_function("grade_1000_answers", |b| {
        b.iter(|| {
            let mut correct = 0usize;
            for i in 0..1000usize {
                let text = format!("Answer: {}", ['A', 'B', 'C', 'D'][i % 4]);
                if judge.grade(&text, i % 7, 7).correct {
                    correct += 1;
                }
            }
            std::hint::black_box(correct)
        });
    });

    group.finish();
}

criterion_group!(benches, bench_question_gen);
criterion_main!(benches);
