//! AdaParse-substitute benches: clean fast-path throughput vs the
//! escalation cost on damaged documents.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mcqa_corpus::{AcquisitionConfig, CorpusLibrary, DocId, SynthConfig};
use mcqa_ontology::{Ontology, OntologyConfig};
use mcqa_parse::AdaptiveParser;
use mcqa_runtime::Executor;

fn libraries() -> (CorpusLibrary, CorpusLibrary) {
    let ont = Ontology::generate(&OntologyConfig {
        seed: 5,
        entities_per_kind: 60,
        qualitative_facts: 600,
        quantitative_facts: 150,
    });
    let clean = CorpusLibrary::build(
        &ont,
        &AcquisitionConfig {
            seed: 5,
            full_papers: 48,
            abstracts: 16,
            corruption_rate: 0.0,
            synth: SynthConfig::default(),
        },
        Executor::global(),
    );
    let dirty = CorpusLibrary::build(
        &ont,
        &AcquisitionConfig {
            seed: 5,
            full_papers: 48,
            abstracts: 16,
            corruption_rate: 0.4,
            synth: SynthConfig::default(),
        },
        Executor::global(),
    );
    (clean, dirty)
}

fn bench_parser(c: &mut Criterion) {
    let (clean, dirty) = libraries();
    let clean_blobs: Vec<&[u8]> =
        (0..clean.len() as u32).map(|i| clean.download(DocId(i)).unwrap()).collect();
    let dirty_blobs: Vec<&[u8]> =
        (0..dirty.len() as u32).map(|i| dirty.download(DocId(i)).unwrap()).collect();
    let parser = AdaptiveParser::default();

    let mut group = c.benchmark_group("parser");
    group.sample_size(10);
    group.throughput(Throughput::Elements(clean_blobs.len() as u64));
    group.bench_function("clean_batch_64", |b| {
        b.iter(|| std::hint::black_box(parser.parse_batch(Executor::global(), &clean_blobs)).1.fast)
    });
    group.bench_function("corrupt40pct_batch_64", |b| {
        b.iter(|| {
            std::hint::black_box(parser.parse_batch(Executor::global(), &dirty_blobs)).1.salvage
        })
    });
    group.throughput(Throughput::Elements(1));
    group.bench_function("single_clean_doc", |b| {
        b.iter(|| std::hint::black_box(parser.parse(clean_blobs[0])).is_parsed())
    });
    group.finish();
}

criterion_group!(benches, bench_parser);
criterion_main!(benches);
