//! Semantic-chunker throughput (the stage that turns 22,548 documents into
//! 173,318 chunks in the paper).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mcqa_bench::sample_prose;
use mcqa_embed::{BioEncoder, EmbedConfig};
use mcqa_text::{Chunker, ChunkerConfig, TfEncoder};

fn bench_chunker(c: &mut Criterion) {
    let mut group = c.benchmark_group("chunker");
    group.sample_size(20);
    let doc = sample_prose(40); // ~ a full paper's worth of prose
    let tokens = mcqa_text::token_count(&doc) as u64;
    group.throughput(Throughput::Elements(tokens));

    let tf = TfEncoder::new(64);
    group.bench_function("lexical_encoder", |b| {
        let chunker = Chunker::new(&tf, ChunkerConfig::default());
        b.iter(|| std::hint::black_box(chunker.chunk(&doc)).len());
    });

    let bio = BioEncoder::new(EmbedConfig::default());
    group.bench_function("bio_encoder", |b| {
        let chunker = Chunker::new(&bio, ChunkerConfig::default());
        b.iter(|| std::hint::black_box(chunker.chunk(&doc)).len());
    });

    for max_tokens in [128usize, 256, 512] {
        let chunker_cfg = ChunkerConfig { max_tokens, ..Default::default() };
        group.bench_with_input(BenchmarkId::new("budget", max_tokens), &max_tokens, |b, _| {
            let chunker = Chunker::new(&tf, chunker_cfg.clone());
            b.iter(|| std::hint::black_box(chunker.chunk(&doc)).len());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_chunker);
criterion_main!(benches);
