//! Evaluation throughput: the full retrieval → assembly → answer → grade
//! path per (model, condition) on a real (small) pipeline output.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mcqa_bench::bench_output;
use mcqa_eval::{EvalConfig, Evaluator};
use mcqa_llm::MODEL_CARDS;

fn bench_eval(c: &mut Criterion) {
    let output = bench_output();
    let mut group = c.benchmark_group("eval_throughput");
    group.sample_size(10);

    group.bench_function("prepare_retrieval_bundles", |b| {
        b.iter(|| {
            let ev = Evaluator::new(output, EvalConfig::default());
            std::hint::black_box(ev.synth_bundle().len())
        });
    });

    let evaluator = Evaluator::new(output, EvalConfig::default());
    let n = output.items.len() as u64;
    group.throughput(Throughput::Elements(n * 5)); // 5 conditions
    group.bench_function("evaluate_one_model_all_conditions", |b| {
        b.iter(|| {
            let run = evaluator.run_cards(std::slice::from_ref(&MODEL_CARDS[3]));
            std::hint::black_box(run.models[0].synth_best_rt())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_eval);
criterion_main!(benches);
