//! Embedding throughput: the PubMedBERT-stand-in encode path that the
//! paper runs over 173,318 chunks, plus the FP16-vs-F32 storage trade.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mcqa_bench::sample_prose;
use mcqa_embed::{BioEncoder, EmbedConfig, EmbeddingMatrix, Precision};
use mcqa_runtime::Executor;

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("embed_throughput");
    group.sample_size(20);
    let text = sample_prose(4);
    for dim in [128usize, 256, 768] {
        let enc = BioEncoder::new(EmbedConfig { dim, ..Default::default() });
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::new("encode_one", dim), &dim, |b, _| {
            b.iter(|| std::hint::black_box(enc.encode(&text)));
        });
    }
    let enc = BioEncoder::new(EmbedConfig::default());
    let batch: Vec<String> = (0..256).map(|i| format!("{} variant {i}", sample_prose(1))).collect();
    group.throughput(Throughput::Elements(batch.len() as u64));
    group.bench_function("encode_batch_256_parallel", |b| {
        b.iter(|| std::hint::black_box(enc.encode_batch(Executor::global(), &batch)));
    });
    group.finish();
}

fn bench_storage(c: &mut Criterion) {
    let mut group = c.benchmark_group("embed_storage");
    group.sample_size(20);
    let enc = BioEncoder::new(EmbedConfig::default());
    let rows: Vec<Vec<f32>> =
        (0..512).map(|i| enc.encode(&format!("chunk {i} about dna repair"))).collect();
    for precision in [Precision::F32, Precision::F16] {
        group.bench_with_input(
            BenchmarkId::new("matrix_build", format!("{precision:?}")),
            &precision,
            |b, &p| {
                b.iter(|| std::hint::black_box(EmbeddingMatrix::from_rows(256, p, &rows)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_encode, bench_storage);
criterion_main!(benches);
