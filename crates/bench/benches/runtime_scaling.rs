//! Runtime scaling: stage throughput vs worker count (the node-scale
//! analogue of the paper's Parsl scaling on ALCF machines).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mcqa_runtime::{run_stage, run_stage_batched, WorkStealingPool};

/// A CPU-bound task roughly the cost of judging one candidate question.
fn work_unit(x: u64) -> Result<u64, String> {
    let mut acc = x;
    for i in 0..4_000 {
        acc = mcqa_util::splitmix64(acc ^ i);
    }
    Ok(acc)
}

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime_scaling");
    group.sample_size(10);
    let n_tasks = 2_000u64;
    group.throughput(Throughput::Elements(n_tasks));
    let max_workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let mut worker_counts = vec![1usize, 2, 4, max_workers];
    worker_counts.dedup();
    worker_counts.sort_unstable();
    worker_counts.dedup();
    for workers in worker_counts {
        group.bench_with_input(BenchmarkId::new("stage_2k_tasks", workers), &workers, |b, &w| {
            let pool = WorkStealingPool::new(w);
            b.iter(|| {
                let items: Vec<u64> = (0..n_tasks).collect();
                let (results, _) = run_stage(&pool, "bench", items, work_unit);
                std::hint::black_box(results.len())
            });
        });
    }
    group.finish();
}

/// Per-item vs batched submission on trivial tasks: this isolates the
/// scheduler's own overhead (boxing + channel send per pool task), which is
/// exactly what `run_stage_batched` amortises for high-item-count stages
/// like generate+judge.
fn bench_submission_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime_overhead");
    group.sample_size(20);
    let pool = WorkStealingPool::new(4);
    for n in [10_000u64, 100_000] {
        group.throughput(Throughput::Elements(n));
        group.bench_with_input(BenchmarkId::new("per_item", n), &n, |b, &n| {
            b.iter(|| {
                let items: Vec<u64> = (0..n).collect();
                let (r, _) = run_stage(&pool, "trivial", items, Ok::<u64, String>);
                std::hint::black_box(r.len())
            });
        });
        group.bench_with_input(BenchmarkId::new("batched_auto", n), &n, |b, &n| {
            b.iter(|| {
                let items: Vec<u64> = (0..n).collect();
                let (r, _) = run_stage_batched(&pool, "trivial", items, 0, Ok::<u64, String>);
                std::hint::black_box(r.len())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling, bench_submission_overhead);
criterion_main!(benches);
