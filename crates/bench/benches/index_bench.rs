//! Vector-store benches: Flat vs IVF vs HNSW build and search (the
//! recall/latency trade the paper's FAISS deployment makes).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mcqa_bench::random_unit_vectors;
use mcqa_embed::Precision;
use mcqa_index::{FlatIndex, HnswConfig, HnswIndex, IvfConfig, IvfIndex, Metric, VectorStore};

const DIM: usize = 256;

fn build_flat(data: &[Vec<f32>]) -> FlatIndex {
    let mut idx = FlatIndex::new(DIM, Metric::Cosine, Precision::F16);
    for (i, v) in data.iter().enumerate() {
        idx.add(i as u64, v);
    }
    idx
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_build");
    group.sample_size(10);
    let data = random_unit_vectors(4_000, DIM, 7);
    group.throughput(Throughput::Elements(data.len() as u64));
    group.bench_function("flat_4k", |b| b.iter(|| std::hint::black_box(build_flat(&data))));
    group.bench_function("ivf_4k", |b| {
        b.iter(|| {
            let mut idx = IvfIndex::new(DIM, Metric::Cosine, IvfConfig::default());
            idx.train(&data[..1000.min(data.len())]);
            for (i, v) in data.iter().enumerate() {
                idx.add(i as u64, v);
            }
            std::hint::black_box(idx.len())
        })
    });
    group.bench_function("hnsw_1k", |b| {
        // HNSW construction is the expensive one; bench a smaller set.
        b.iter(|| {
            let mut idx = HnswIndex::new(DIM, Metric::Cosine, HnswConfig::default());
            for (i, v) in data[..1000].iter().enumerate() {
                idx.add(i as u64, v);
            }
            std::hint::black_box(idx.len())
        })
    });
    group.finish();
}

fn bench_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_search");
    group.sample_size(30);
    let data = random_unit_vectors(8_000, DIM, 11);
    let queries = random_unit_vectors(16, DIM, 99);

    let flat = build_flat(&data);
    let mut ivf = IvfIndex::new(
        DIM,
        Metric::Cosine,
        IvfConfig { nlist: 64, nprobe: 8, train_iters: 6, seed: 3 },
    );
    ivf.train(&data[..2000]);
    let mut hnsw = HnswIndex::new(DIM, Metric::Cosine, HnswConfig::default());
    for (i, v) in data.iter().enumerate() {
        ivf.add(i as u64, v);
        hnsw.add(i as u64, v);
    }

    group.throughput(Throughput::Elements(queries.len() as u64));
    group.bench_function("flat_top5_8k", |b| {
        b.iter(|| {
            for q in &queries {
                std::hint::black_box(flat.search(q, 5));
            }
        })
    });
    for nprobe in [4usize, 8, 16] {
        let mut idx = IvfIndex::new(
            DIM,
            Metric::Cosine,
            IvfConfig { nlist: 64, nprobe, train_iters: 6, seed: 3 },
        );
        idx.train(&data[..2000]);
        for (i, v) in data.iter().enumerate() {
            idx.add(i as u64, v);
        }
        group.bench_with_input(BenchmarkId::new("ivf_top5_8k_nprobe", nprobe), &nprobe, |b, _| {
            b.iter(|| {
                for q in &queries {
                    std::hint::black_box(idx.search(q, 5));
                }
            })
        });
    }
    group.bench_function("hnsw_top5_8k", |b| {
        b.iter(|| {
            for q in &queries {
                std::hint::black_box(hnsw.search(q, 5));
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_build, bench_search);
criterion_main!(benches);
