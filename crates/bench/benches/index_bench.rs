//! Vector-store benches: Flat vs IVF vs HNSW vs PQ build and search
//! through the unified `VectorStore` trait (the recall/latency trade the
//! paper's FAISS deployment makes), at 10k and 100k vectors.
//!
//! Everything goes through `IndexSpec` + `build_store_from_vectors` +
//! `search_batch` — the exact path the pipeline and `repro --index` use —
//! so these numbers describe the production surface, not a bespoke loop.
//! `flat_search` additionally sweeps the exact-search kernel matrix
//! (corpus size × query-batch size × F16/F32) that the ROADMAP "perf
//! baselines to beat" entry records, and `crossover` prints the
//! speed/recall/memory verdict for the quantized backend at 10⁵ vectors.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mcqa_bench::{planted_corpus, random_unit_vectors};
use mcqa_embed::Precision;
use mcqa_index::{build_store_from_vectors, IndexSpec, Metric, PqConfig, VectorStore};
use mcqa_lexical::LexicalIndex;
use mcqa_runtime::Executor;

/// Modest dimensionality keeps the 100k HNSW build inside bench budgets
/// while preserving the backends' relative ordering.
const DIM: usize = 64;

fn dataset(n: usize, seed: u64) -> Vec<(u64, Vec<f32>)> {
    random_unit_vectors(n, DIM, seed).into_iter().enumerate().map(|(i, v)| (i as u64, v)).collect()
}

fn build(spec: &IndexSpec, items: &[(u64, Vec<f32>)]) -> Box<dyn VectorStore> {
    build_store_from_vectors(spec, DIM, Metric::Cosine, Precision::F16, Executor::global(), items)
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_build");
    group.sample_size(10);
    for n in [10_000usize, 100_000] {
        let items = dataset(n, 7);
        group.throughput(Throughput::Elements(n as u64));
        for spec in IndexSpec::all_defaults() {
            // HNSW construction at 100k is graph-bound and would dominate
            // the whole suite; its scaling is visible at 10k already.
            if n == 100_000 && matches!(spec, IndexSpec::Hnsw(_)) {
                continue;
            }
            group.bench_with_input(BenchmarkId::new(spec.label(), n), &n, |b, _| {
                b.iter(|| std::hint::black_box(build(&spec, &items)).len())
            });
        }
    }
    group.finish();
}

/// The exact-search kernel matrix: flat search throughput across corpus
/// size × query-batch size × storage precision. Batches >1 exercise the
/// query-blocked path where one decoded row panel is amortised across the
/// whole batch; F16 vs F32 isolates the decode cost that amortisation
/// removes. Throughput is reported in queries/s.
fn bench_flat_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("flat_search");
    group.sample_size(10);
    for n in [10_000usize, 100_000] {
        let items = dataset(n, 13);
        for precision in [Precision::F16, Precision::F32] {
            let store = build_store_from_vectors(
                &IndexSpec::Flat,
                DIM,
                Metric::Cosine,
                precision,
                Executor::global(),
                &items,
            );
            for batch in [1usize, 8, 64] {
                let queries = random_unit_vectors(batch, DIM, 99);
                group.throughput(Throughput::Elements(batch as u64));
                let label = format!(
                    "{}v-{}-q{batch}",
                    n / 1000,
                    match precision {
                        Precision::F16 => "f16",
                        Precision::F32 => "f32",
                    }
                );
                group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                    b.iter(|| {
                        std::hint::black_box(store.search_batch(Executor::global(), &queries, 5))
                    })
                });
            }
        }
    }
    group.finish();
}

fn bench_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_search");
    group.sample_size(20);
    let queries = random_unit_vectors(64, DIM, 99);
    for n in [10_000usize, 100_000] {
        let items = dataset(n, 11);
        group.throughput(Throughput::Elements(queries.len() as u64));
        for spec in IndexSpec::all_defaults() {
            // Same skip as bench_build: the serial 100k HNSW graph build
            // would dominate the suite even as untimed setup.
            if n == 100_000 && matches!(spec, IndexSpec::Hnsw(_)) {
                continue;
            }
            let store = build(&spec, &items);
            // The memory column of the speed/recall/memory trade, on the
            // same stores the throughput rows time.
            println!(
                "[index_bench] backend={} n={n} mem_bytes={} bytes_per_vec={:.1}",
                spec.label(),
                store.to_bytes().len(),
                store.to_bytes().len() as f64 / n as f64
            );
            group.bench_with_input(BenchmarkId::new(spec.label(), n), &n, |b, _| {
                b.iter(|| std::hint::black_box(store.search_batch(Executor::global(), &queries, 5)))
            });
        }
    }
    group.finish();
}

/// Deterministic pseudo-documents for the lexical bench: ~40 words drawn
/// Zipf-ishly from a 1000-term vocabulary (rank `r` picked with weight
/// ∝ 1/(r+1) via inverse-CDF on a harmonic prefix), the frequency profile
/// postings compression and BM25's idf actually face in prose.
fn synthetic_docs(n: usize, seed: u64) -> Vec<(u64, String)> {
    const VOCAB: usize = 1000;
    let ks = mcqa_util::KeyedStochastic::new(seed);
    let harmonic: f64 = (0..VOCAB).map(|r| 1.0 / (r + 1) as f64).sum();
    (0..n)
        .map(|i| {
            let words: Vec<String> = (0..40)
                .map(|j| {
                    let mut target = ks.uniform(&["w", &i.to_string(), &j.to_string()]) * harmonic;
                    let mut rank = 0;
                    while rank + 1 < VOCAB {
                        target -= 1.0 / (rank + 1) as f64;
                        if target <= 0.0 {
                            break;
                        }
                        rank += 1;
                    }
                    format!("term{rank:03}")
                })
                .collect();
            (i as u64, words.join(" "))
        })
        .collect()
}

/// The lexical channel's build/search throughput and resident footprint,
/// through the same `add_batch`/`search_batch` surface the pipeline and
/// the query service use. The printed `[index_bench] backend=lexical`
/// line keeps the ROADMAP memory table uniform across channels:
/// `mem_bytes` is `payload_bytes()` — postings + docs table + vocabulary
/// (the resident structures), not the delta-varint serialisation.
fn bench_lexical(c: &mut Criterion) {
    let exec = Executor::global();
    let mut group = c.benchmark_group("lexical");
    group.sample_size(10);
    let n = 10_000usize;
    let docs = synthetic_docs(n, 17);
    let queries: Vec<String> = synthetic_docs(64, 91).into_iter().map(|(_, text)| text).collect();
    group.throughput(Throughput::Elements(n as u64));
    group.bench_with_input(BenchmarkId::new("build", n), &n, |b, _| {
        b.iter(|| {
            let mut idx = LexicalIndex::default();
            idx.add_batch(exec, &docs);
            black_box(idx.len())
        })
    });
    let mut idx = LexicalIndex::default();
    idx.add_batch(exec, &docs);
    println!(
        "[index_bench] backend=lexical n={n} terms={} mem_bytes={} bytes_per_vec={:.1} \
         serialized_bytes={}",
        idx.num_terms(),
        idx.payload_bytes(),
        idx.payload_bytes() as f64 / n as f64,
        idx.to_bytes().len()
    );
    group.throughput(Throughput::Elements(queries.len() as u64));
    group.bench_with_input(BenchmarkId::new("search", n), &n, |b, _| {
        b.iter(|| black_box(idx.search_batch(exec, &queries, 5)))
    });
    group.finish();
}

/// The headline crossover: at 10⁵ clustered vectors the quantized backend
/// must answer queries *faster* than exact flat search while paying ≥4×
/// less memory than the flat store's own F16 serialisation (≈8× vs raw
/// F32 rows) and holding recall@5 ≥ 0.9. Build cost, throughput, recall,
/// and both compression ratios print as one greppable `[crossover]` line
/// measured outside the criterion timers; the timed rows then replay the
/// same flat-vs-pq search so the speedup survives in the bench report.
///
/// The corpus is clustered with *planted* 5-member near-neighbour
/// families per query (see [`planted_corpus`]): recall@5 then measures
/// what deployment cares about — routing to the right lists and keeping
/// true neighbours separated from 100k background points under a 16-step
/// residual grid — rather than the rank order inside an isotropic blob,
/// which no lossy representation (F16 included) can preserve.
fn bench_crossover(c: &mut Criterion) {
    use std::time::Instant;

    const N: usize = 100_000;
    const CENTRES: usize = 256;
    let exec = Executor::global();
    let (corpus, queries) = planted_corpus(N, CENTRES, 256, 5, 0.08, 0.015, DIM, 21);
    let items: Vec<(u64, Vec<f32>)> =
        corpus.into_iter().enumerate().map(|(i, v)| (i as u64, v)).collect();
    // nlist tracks the corpus's natural cluster count: with one list per
    // cluster the residuals the codec quantizes are noise-scale, which is
    // what keeps 4 bits/dim above the recall floor. Undershooting nlist
    // folds whole-cluster offsets into the residual range and the 16-step
    // grid loses the within-cluster ordering.
    let pq_spec = IndexSpec::Pq(PqConfig {
        nlist: CENTRES,
        nprobe: 8,
        train_iters: 4,
        bits: 4,
        sub_dim: 16,
        seed: 21,
    });

    let t = Instant::now();
    let flat = build(&IndexSpec::Flat, &items);
    let flat_build = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let pq = build(&pq_spec, &items);
    let pq_build = t.elapsed().as_secs_f64();

    let t = Instant::now();
    let truth = flat.search_batch(exec, &queries, 5);
    let flat_secs = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let approx = pq.search_batch(exec, &queries, 5);
    let pq_secs = t.elapsed().as_secs_f64();

    let (mut hit, mut total) = (0usize, 0usize);
    for (exact, got) in truth.iter().zip(&approx) {
        hit += got.iter().filter(|h| exact.iter().any(|e| e.id == h.id)).count();
        total += exact.len();
    }
    let recall = hit as f64 / total.max(1) as f64;
    let flat_mem = flat.to_bytes().len();
    let pq_mem = pq.to_bytes().len();
    let raw_mem = N * (DIM * 4 + 8); // f32 rows + u64 ids, the uncompressed floor
    println!(
        "[crossover] n={N} dim={DIM} flat_build_secs={flat_build:.2} pq_build_secs={pq_build:.2} \
         flat_qps={:.0} pq_qps={:.0} speedup={:.2} recall_at_5={recall:.4} \
         flat_mem_bytes={flat_mem} pq_mem_bytes={pq_mem} compression_vs_f16={:.2} \
         compression_vs_f32={:.2}",
        queries.len() as f64 / flat_secs.max(1e-9),
        queries.len() as f64 / pq_secs.max(1e-9),
        flat_secs / pq_secs.max(1e-9),
        flat_mem as f64 / pq_mem as f64,
        raw_mem as f64 / pq_mem as f64,
    );
    assert!(recall >= 0.9, "crossover recall@5 {recall:.3} fell below the 0.9 floor");
    assert!(
        pq_mem as f64 * 4.0 <= flat_mem as f64,
        "pq store ({pq_mem}B) lost the 4x compression bar vs flat ({flat_mem}B)"
    );

    let mut group = c.benchmark_group("crossover_search");
    group.sample_size(10);
    group.throughput(Throughput::Elements(queries.len() as u64));
    group.bench_function("flat", |b| b.iter(|| black_box(flat.search_batch(exec, &queries, 5))));
    group.bench_function("pq", |b| b.iter(|| black_box(pq.search_batch(exec, &queries, 5))));
    group.finish();
}

criterion_group!(
    benches,
    bench_build,
    bench_flat_search,
    bench_search,
    bench_lexical,
    bench_crossover
);
criterion_main!(benches);
