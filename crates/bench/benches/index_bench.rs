//! Vector-store benches: Flat vs IVF vs HNSW build and search through the
//! unified `VectorStore` trait (the recall/latency trade the paper's FAISS
//! deployment makes), at 10k and 100k vectors.
//!
//! Everything goes through `IndexSpec` + `build_store_from_vectors` +
//! `search_batch` — the exact path the pipeline and `repro --index` use —
//! so these numbers describe the production surface, not a bespoke loop.
//! `flat_search` additionally sweeps the exact-search kernel matrix
//! (corpus size × query-batch size × F16/F32) that the ROADMAP "perf
//! baselines to beat" entry records.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mcqa_bench::random_unit_vectors;
use mcqa_embed::Precision;
use mcqa_index::{build_store_from_vectors, IndexSpec, Metric, VectorStore};
use mcqa_runtime::Executor;

/// Modest dimensionality keeps the 100k HNSW build inside bench budgets
/// while preserving the backends' relative ordering.
const DIM: usize = 64;

fn dataset(n: usize, seed: u64) -> Vec<(u64, Vec<f32>)> {
    random_unit_vectors(n, DIM, seed).into_iter().enumerate().map(|(i, v)| (i as u64, v)).collect()
}

fn build(spec: &IndexSpec, items: &[(u64, Vec<f32>)]) -> Box<dyn VectorStore> {
    build_store_from_vectors(spec, DIM, Metric::Cosine, Precision::F16, Executor::global(), items)
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_build");
    group.sample_size(10);
    for n in [10_000usize, 100_000] {
        let items = dataset(n, 7);
        group.throughput(Throughput::Elements(n as u64));
        for spec in IndexSpec::all_defaults() {
            // HNSW construction at 100k is graph-bound and would dominate
            // the whole suite; its scaling is visible at 10k already.
            if n == 100_000 && matches!(spec, IndexSpec::Hnsw(_)) {
                continue;
            }
            group.bench_with_input(BenchmarkId::new(spec.label(), n), &n, |b, _| {
                b.iter(|| std::hint::black_box(build(&spec, &items)).len())
            });
        }
    }
    group.finish();
}

/// The exact-search kernel matrix: flat search throughput across corpus
/// size × query-batch size × storage precision. Batches >1 exercise the
/// query-blocked path where one decoded row panel is amortised across the
/// whole batch; F16 vs F32 isolates the decode cost that amortisation
/// removes. Throughput is reported in queries/s.
fn bench_flat_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("flat_search");
    group.sample_size(10);
    for n in [10_000usize, 100_000] {
        let items = dataset(n, 13);
        for precision in [Precision::F16, Precision::F32] {
            let store = build_store_from_vectors(
                &IndexSpec::Flat,
                DIM,
                Metric::Cosine,
                precision,
                Executor::global(),
                &items,
            );
            for batch in [1usize, 8, 64] {
                let queries = random_unit_vectors(batch, DIM, 99);
                group.throughput(Throughput::Elements(batch as u64));
                let label = format!(
                    "{}v-{}-q{batch}",
                    n / 1000,
                    match precision {
                        Precision::F16 => "f16",
                        Precision::F32 => "f32",
                    }
                );
                group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                    b.iter(|| {
                        std::hint::black_box(store.search_batch(Executor::global(), &queries, 5))
                    })
                });
            }
        }
    }
    group.finish();
}

fn bench_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_search");
    group.sample_size(20);
    let queries = random_unit_vectors(64, DIM, 99);
    for n in [10_000usize, 100_000] {
        let items = dataset(n, 11);
        group.throughput(Throughput::Elements(queries.len() as u64));
        for spec in IndexSpec::all_defaults() {
            // Same skip as bench_build: the serial 100k HNSW graph build
            // would dominate the suite even as untimed setup.
            if n == 100_000 && matches!(spec, IndexSpec::Hnsw(_)) {
                continue;
            }
            let store = build(&spec, &items);
            group.bench_with_input(BenchmarkId::new(spec.label(), n), &n, |b, _| {
                b.iter(|| std::hint::black_box(store.search_batch(Executor::global(), &queries, 5)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_build, bench_flat_search, bench_search);
criterion_main!(benches);
