//! Minimal wall-clock instrumentation for pipeline stage metrics.

use std::time::{Duration, Instant};

/// A named wall-clock scope.
///
/// ```
/// use mcqa_util::ScopeTimer;
/// let t = ScopeTimer::start("embed");
/// // ... work ...
/// let elapsed = t.elapsed();
/// assert!(elapsed.as_nanos() > 0 || elapsed.as_nanos() == 0); // monotonic
/// ```
#[derive(Debug)]
pub struct ScopeTimer {
    label: &'static str,
    start: Instant,
}

impl ScopeTimer {
    /// Start timing a named scope.
    pub fn start(label: &'static str) -> Self {
        Self { label, start: Instant::now() }
    }

    /// The scope's label.
    pub fn label(&self) -> &'static str {
        self.label
    }

    /// Time elapsed since `start`.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed time in fractional seconds.
    pub fn elapsed_secs(&self) -> f64 {
        self.elapsed().as_secs_f64()
    }

    /// Items/second for `n` items processed in this scope (0 when no time
    /// has passed yet, avoiding ±inf in reports).
    pub fn throughput(&self, n: usize) -> f64 {
        let secs = self.elapsed_secs();
        if secs <= 0.0 {
            0.0
        } else {
            n as f64 / secs
        }
    }
}

/// Format a `Duration` as a short human string (`1.23s`, `45.6ms`, `789µs`).
pub fn human_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.2}s", d.as_secs_f64())
    } else if nanos >= 1_000_000 {
        format!("{:.1}ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{}µs", nanos / 1_000)
    } else {
        format!("{nanos}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_monotonic() {
        let t = ScopeTimer::start("x");
        let a = t.elapsed();
        let b = t.elapsed();
        assert!(b >= a);
        assert_eq!(t.label(), "x");
    }

    #[test]
    fn throughput_no_div_by_zero() {
        let t = ScopeTimer::start("x");
        // Either a sane number or 0, never inf/NaN.
        let tp = t.throughput(100);
        assert!(tp.is_finite());
    }

    #[test]
    fn human_duration_units() {
        assert_eq!(human_duration(Duration::from_nanos(500)), "500ns");
        assert_eq!(human_duration(Duration::from_micros(12)), "12µs");
        assert_eq!(human_duration(Duration::from_millis(3)), "3.0ms");
        assert_eq!(human_duration(Duration::from_secs(2)), "2.00s");
    }
}
