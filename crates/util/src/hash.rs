//! Stable, portable 64-bit hashing.
//!
//! The standard library's `DefaultHasher` is explicitly *not* stable across
//! releases, and `HashMap` iteration order is randomised per process. The
//! pipeline needs hashes that are identical on every platform, in every run,
//! and independent of thread scheduling, because:
//!
//! 1. simulated model behaviour is keyed on `(model, item, decision)` hashes;
//! 2. artifact ids (chunk ids, question ids) must be reproducible so that
//!    provenance links survive re-runs;
//! 3. the embedder's feature hashing must produce the same vector for the
//!    same text forever.
//!
//! We provide FNV-1a for byte streams plus SplitMix64 as a finaliser/mixer.

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Hash a byte slice with FNV-1a (64-bit).
///
/// Fast, allocation-free, and stable. Good dispersion for short keys after
/// a [`splitmix64`] finalisation.
#[inline]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// An [`std::io::Write`] sink that FNV-1a-hashes every byte written to it.
///
/// Streaming counterpart of [`fnv1a`]: writing a byte stream and calling
/// [`Fnv1aWriter::finish`] yields exactly `fnv1a(&all_bytes)` without ever
/// materialising the stream. This is what lets serializers hash a canonical
/// encoding (e.g. the model layer's ~270k-per-run request cache keys)
/// allocation-free.
#[derive(Debug, Clone)]
pub struct Fnv1aWriter(u64);

impl Default for Fnv1aWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv1aWriter {
    /// A writer starting from the canonical FNV offset basis.
    #[inline]
    pub fn new() -> Self {
        Self(FNV_OFFSET)
    }

    /// The hash of everything written so far (equals [`fnv1a`] over the
    /// concatenated bytes).
    #[inline]
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl std::io::Write for Fnv1aWriter {
    #[inline]
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        for &b in buf {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
        Ok(buf.len())
    }

    #[inline]
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// SplitMix64 mixing step: a bijective avalanche function on `u64`.
///
/// Used both as a finaliser for FNV output and as a cheap counter-based RNG
/// (`splitmix64(seed + i)` yields a high-quality pseudo-random stream that
/// can be indexed in O(1), which is what makes order-independent parallel
/// determinism possible).
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// An incremental stable hasher combining FNV-1a accumulation with a
/// SplitMix64 finaliser.
///
/// ```
/// use mcqa_util::StableHasher;
/// let mut h = StableHasher::new();
/// h.write_str("tinyllama");
/// h.write_u64(42);
/// let a = h.finish();
/// // Identical inputs always produce identical outputs.
/// let mut h2 = StableHasher::new();
/// h2.write_str("tinyllama");
/// h2.write_u64(42);
/// assert_eq!(a, h2.finish());
/// ```
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u64,
}

impl Default for StableHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl StableHasher {
    /// Create a hasher with the canonical FNV offset basis.
    #[inline]
    pub fn new() -> Self {
        Self { state: FNV_OFFSET }
    }

    /// Create a hasher whose stream is domain-separated by `seed`.
    ///
    /// Different seeds yield statistically independent hash functions, used
    /// to derive independent Bernoulli decisions from the same key material.
    #[inline]
    pub fn with_seed(seed: u64) -> Self {
        let mut h = Self::new();
        h.write_u64(splitmix64(seed));
        h
    }

    /// Absorb raw bytes.
    #[inline]
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorb a UTF-8 string (length-prefixed to avoid concatenation
    /// ambiguity: `("ab","c")` must differ from `("a","bc")`).
    #[inline]
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    /// Absorb a `u64` in little-endian byte order.
    #[inline]
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Absorb a `u32`.
    #[inline]
    pub fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    /// Finalise with an avalanche mix so that low-entropy inputs still
    /// disperse across the full 64-bit range.
    #[inline]
    pub fn finish(&self) -> u64 {
        splitmix64(self.state)
    }
}

/// Convenience: hash a sequence of string parts with domain separation.
///
/// This is the workhorse for keyed model decisions, e.g.
/// `stable_key(&["know", model_id, question_id])`.
pub fn stable_key(parts: &[&str]) -> u64 {
    let mut h = StableHasher::new();
    h.write_u64(parts.len() as u64);
    for p in parts {
        h.write_str(p);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_known_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn writer_matches_one_shot_fnv_at_any_chunking() {
        use std::io::Write;
        let data = b"the canonical encoding of a model request";
        for chunk in [1usize, 3, 7, data.len()] {
            let mut w = Fnv1aWriter::new();
            for c in data.chunks(chunk) {
                w.write_all(c).unwrap();
            }
            assert_eq!(w.finish(), fnv1a(data), "chunk={chunk}");
        }
        assert_eq!(Fnv1aWriter::new().finish(), fnv1a(b""));
    }

    #[test]
    fn splitmix_is_bijective_on_sample() {
        // Injectivity spot check over a contiguous range.
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(splitmix64(i)));
        }
    }

    #[test]
    fn hasher_matches_fnv_then_mix() {
        let mut h = StableHasher::new();
        h.write(b"foobar");
        assert_eq!(h.finish(), splitmix64(fnv1a(b"foobar")));
    }

    #[test]
    fn length_prefix_disambiguates() {
        let a = stable_key(&["ab", "c"]);
        let b = stable_key(&["a", "bc"]);
        assert_ne!(a, b);
    }

    #[test]
    fn seeded_streams_differ() {
        let mut a = StableHasher::with_seed(1);
        let mut b = StableHasher::with_seed(2);
        a.write_str("x");
        b.write_str("x");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn stable_key_order_sensitivity() {
        assert_ne!(stable_key(&["a", "b"]), stable_key(&["b", "a"]));
        assert_ne!(stable_key(&["a"]), stable_key(&["a", ""]));
    }

    #[test]
    fn dispersion_of_counter_stream() {
        // Counter-mode SplitMix should have ~uniform bit balance.
        let mut ones = 0u64;
        let n = 4096u64;
        for i in 0..n {
            ones += splitmix64(i).count_ones() as u64;
        }
        let mean_bits = ones as f64 / n as f64;
        assert!((mean_bits - 32.0).abs() < 1.0, "mean bits {mean_bits}");
    }
}
