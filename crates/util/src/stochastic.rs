//! Keyed, order-independent stochastic primitives.
//!
//! The evaluation harness answers hundreds of thousands of questions across
//! many threads. Classic sequential RNGs make results depend on evaluation
//! order; instead, every random decision here is a *pure function* of a
//! stable key (`(seed, domain, entity ids...)`). This yields:
//!
//! * bit-identical results regardless of thread count or batching,
//! * independent decisions for independent keys,
//! * the ability to "replay" any single decision in isolation (great for
//!   debugging a single question's outcome).

use crate::hash::{splitmix64, StableHasher};

/// A keyed stochastic source: a fixed 64-bit seed plus per-call key material.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeyedStochastic {
    seed: u64,
}

impl KeyedStochastic {
    /// Create a source with a global seed (e.g. the run's `--seed`).
    #[inline]
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// The raw 64-bit hash for a key path.
    #[inline]
    pub fn raw(&self, parts: &[&str]) -> u64 {
        let mut h = StableHasher::with_seed(self.seed);
        h.write_u64(parts.len() as u64);
        for p in parts {
            h.write_str(p);
        }
        h.finish()
    }

    /// A uniform float in `[0, 1)` for the key path.
    #[inline]
    pub fn uniform(&self, parts: &[&str]) -> f64 {
        // 53 mantissa bits → exactly representable dyadic rational in [0,1).
        (self.raw(parts) >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A Bernoulli draw with probability `p` for the key path.
    ///
    /// `p <= 0` always yields `false`; `p >= 1` always yields `true`.
    #[inline]
    pub fn bernoulli(&self, p: f64, parts: &[&str]) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.uniform(parts) < p
    }

    /// A uniform integer in `[0, n)` for the key path. `n` must be > 0.
    #[inline]
    pub fn below(&self, n: usize, parts: &[&str]) -> usize {
        assert!(n > 0, "below(0) is undefined");
        // Multiply-shift reduction avoids modulo bias for n << 2^64.
        let r = self.raw(parts);
        ((r as u128 * n as u128) >> 64) as usize
    }

    /// Choose an index from a weight vector (weights need not sum to 1).
    ///
    /// Returns `None` when all weights are zero/negative or the slice is
    /// empty.
    pub fn weighted_choice(&self, weights: &[f64], parts: &[&str]) -> Option<usize> {
        let total: f64 = weights.iter().filter(|w| **w > 0.0).sum();
        if total <= 0.0 {
            return None;
        }
        let mut target = self.uniform(parts) * total;
        for (i, &w) in weights.iter().enumerate() {
            if w <= 0.0 {
                continue;
            }
            if target < w {
                return Some(i);
            }
            target -= w;
        }
        // Floating-point edge: fall back to the last positive weight.
        weights.iter().rposition(|w| *w > 0.0)
    }

    /// A Gaussian(0, 1) sample via the Box–Muller transform on two
    /// independent key-derived uniforms.
    pub fn gaussian(&self, parts: &[&str]) -> f64 {
        let u1 = self.uniform(parts).max(f64::MIN_POSITIVE);
        // Derive an independent second uniform by perturbing the key.
        let r2 = splitmix64(self.raw(parts) ^ 0x9e37_79b9_7f4a_7c15);
        let u2 = (r2 >> 11) as f64 / (1u64 << 53) as f64;
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Deterministic Fisher–Yates permutation of `0..n` for the key path.
    pub fn permutation(&self, n: usize, parts: &[&str]) -> Vec<usize> {
        let mut out: Vec<usize> = (0..n).collect();
        let base = self.raw(parts);
        for i in (1..n).rev() {
            let r = splitmix64(base.wrapping_add(i as u64));
            let j = ((r as u128 * (i as u128 + 1)) >> 64) as usize;
            out.swap(i, j);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_in_range_and_deterministic() {
        let s = KeyedStochastic::new(7);
        for i in 0..1000 {
            let key = format!("k{i}");
            let u = s.uniform(&[&key]);
            assert!((0.0..1.0).contains(&u));
            assert_eq!(u, s.uniform(&[&key]), "same key, same value");
        }
    }

    #[test]
    fn bernoulli_frequency_matches_p() {
        let s = KeyedStochastic::new(11);
        for &p in &[0.1, 0.5, 0.9] {
            let n = 20_000;
            let hits =
                (0..n).filter(|i| s.bernoulli(p, &["b", &i.to_string(), &p.to_string()])).count();
            let freq = hits as f64 / n as f64;
            assert!((freq - p).abs() < 0.02, "p={p} freq={freq}");
        }
    }

    #[test]
    fn bernoulli_extremes() {
        let s = KeyedStochastic::new(1);
        assert!(!s.bernoulli(0.0, &["x"]));
        assert!(!s.bernoulli(-1.0, &["x"]));
        assert!(s.bernoulli(1.0, &["x"]));
        assert!(s.bernoulli(2.0, &["x"]));
    }

    #[test]
    fn below_is_uniform() {
        let s = KeyedStochastic::new(3);
        let n = 10;
        let mut counts = vec![0usize; n];
        let trials = 50_000;
        for i in 0..trials {
            counts[s.below(n, &["u", &i.to_string()])] += 1;
        }
        let expect = trials as f64 / n as f64;
        for (i, &c) in counts.iter().enumerate() {
            assert!((c as f64 - expect).abs() < expect * 0.12, "bucket {i}: {c} vs {expect}");
        }
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        KeyedStochastic::new(0).below(0, &["x"]);
    }

    #[test]
    fn weighted_choice_respects_weights() {
        let s = KeyedStochastic::new(5);
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for i in 0..40_000 {
            let idx = s.weighted_choice(&weights, &["w", &i.to_string()]).unwrap();
            counts[idx] += 1;
        }
        assert_eq!(counts[1], 0, "zero weight never chosen");
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    fn weighted_choice_degenerate() {
        let s = KeyedStochastic::new(5);
        assert_eq!(s.weighted_choice(&[], &["w"]), None);
        assert_eq!(s.weighted_choice(&[0.0, 0.0], &["w"]), None);
        assert_eq!(s.weighted_choice(&[-1.0], &["w"]), None);
    }

    #[test]
    fn gaussian_moments() {
        let s = KeyedStochastic::new(9);
        let n = 30_000;
        let samples: Vec<f64> = (0..n).map(|i| s.gaussian(&["g", &i.to_string()])).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn permutation_is_valid_and_varies() {
        let s = KeyedStochastic::new(13);
        let p1 = s.permutation(20, &["p", "1"]);
        let p2 = s.permutation(20, &["p", "2"]);
        let mut sorted = p1.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert_ne!(p1, p2, "different keys should permute differently");
        assert_eq!(p1, s.permutation(20, &["p", "1"]), "deterministic");
    }

    #[test]
    fn different_seeds_decorrelate() {
        let a = KeyedStochastic::new(1);
        let b = KeyedStochastic::new(2);
        let n = 10_000;
        let agree = (0..n)
            .filter(|i| {
                let k = i.to_string();
                a.bernoulli(0.5, &[&k]) == b.bernoulli(0.5, &[&k])
            })
            .count();
        let frac = agree as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.03, "agreement {frac}");
    }
}
