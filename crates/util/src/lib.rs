//! Shared low-level utilities for the `distllm-rs` workspace.
//!
//! Everything in this crate is dependency-light and deterministic:
//!
//! * [`hash`] — stable 64-bit hashing (FNV-1a and SplitMix64 finalisation)
//!   that is identical across platforms, runs, and thread counts. All
//!   "stochastic" behaviour in the simulated language models is keyed off
//!   these hashes so that results are reproducible bit-for-bit.
//! * [`stochastic`] — keyed Bernoulli draws, uniform floats, and categorical
//!   picks derived from stable hashes.
//! * [`mod@f16`] — a half-precision (IEEE 754 binary16) codec used by the
//!   embedding store, mirroring the paper's FP16 FAISS databases.
//! * [`kernel`] — multi-accumulator dot/norm/L2 kernels with a fixed
//!   accumulation order, the scalar core of exact vector search.
//! * [`codec`] — bounds-checked byte cursor, varint/zigzag, and
//!   little-endian put helpers shared by every serialised artifact format.
//! * [`hits`] — the shared [`SearchResult`] hit type, its one canonical
//!   ordering ([`cmp_hits`]: descending score, ascending id), and the
//!   bounded [`TopK`] accumulator — common to dense, lexical, and fused
//!   retrieval.
//! * [`stats`] — online mean/variance, accuracy accounting and Wilson score
//!   intervals used by the evaluation harness.
//! * [`timer`] — lightweight wall-clock scopes for the runtime's stage
//!   metrics.

pub mod codec;
pub mod f16;
pub mod hash;
pub mod hits;
pub mod kernel;
pub mod stats;
pub mod stochastic;
pub mod timer;

pub use f16::F16;
pub use hash::{fnv1a, splitmix64, Fnv1aWriter, StableHasher};
pub use hits::{cmp_hits, sort_hits, SearchResult, TopK};
pub use stats::{percentile, Accuracy, OnlineStats, WilsonInterval};
pub use stochastic::KeyedStochastic;
pub use timer::ScopeTimer;
