//! Statistics used across the pipeline and the evaluation harness.
//!
//! * [`OnlineStats`] — Welford's online mean/variance, mergeable so that
//!   per-worker accumulators can be reduced without precision loss.
//! * [`Accuracy`] — correct/total accounting with Wilson score intervals
//!   (the evaluation tables print these so readers can judge whether a
//!   scaled-down run is compatible with the paper's point estimates).
//! * [`WilsonInterval`] — the interval itself.

use serde::{Deserialize, Serialize};

/// Welford online mean/variance accumulator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merge another accumulator (Chan et al. parallel variance).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 when fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Maximum observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }
}

/// A Wilson score interval for a binomial proportion.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WilsonInterval {
    /// Lower bound in `[0, 1]`.
    pub lo: f64,
    /// Upper bound in `[0, 1]`.
    pub hi: f64,
}

impl WilsonInterval {
    /// The 95% Wilson score interval for `successes` out of `trials`.
    ///
    /// Returns the degenerate `[0, 1]` interval when `trials == 0`.
    pub fn wilson95(successes: u64, trials: u64) -> Self {
        Self::wilson(successes, trials, 1.959963984540054)
    }

    /// Wilson interval at an arbitrary normal quantile `z`.
    pub fn wilson(successes: u64, trials: u64, z: f64) -> Self {
        if trials == 0 {
            return Self { lo: 0.0, hi: 1.0 };
        }
        let n = trials as f64;
        let p = successes as f64 / n;
        let z2 = z * z;
        let denom = 1.0 + z2 / n;
        let centre = (p + z2 / (2.0 * n)) / denom;
        let half = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
        Self { lo: (centre - half).max(0.0), hi: (centre + half).min(1.0) }
    }

    /// True when `p` falls inside the interval (inclusive).
    pub fn contains(&self, p: f64) -> bool {
        p >= self.lo && p <= self.hi
    }

    /// Interval width.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }
}

/// Correct/total accuracy accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Accuracy {
    /// Number of correctly answered items.
    pub correct: u64,
    /// Number of graded items.
    pub total: u64,
}

impl Accuracy {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one graded item.
    pub fn record(&mut self, correct: bool) {
        self.total += 1;
        if correct {
            self.correct += 1;
        }
    }

    /// Merge two accumulators.
    pub fn merge(&mut self, other: &Accuracy) {
        self.correct += other.correct;
        self.total += other.total;
    }

    /// Point accuracy in `[0, 1]` (0 when empty).
    pub fn value(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.correct as f64 / self.total as f64
        }
    }

    /// 95% Wilson interval around the point accuracy.
    pub fn interval(&self) -> WilsonInterval {
        WilsonInterval::wilson95(self.correct, self.total)
    }
}

/// Nearest-rank percentile over **sorted ascending** samples.
///
/// `q` is in percent (`50.0` = median, `99.0` = p99). Uses the
/// nearest-rank definition (`ceil(q/100 · n)`-th smallest), so the result
/// is always an observed sample — the right convention for latency
/// reporting, where interpolated values between observations are fiction.
/// Returns 0.0 on an empty slice.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "samples must be sorted");
    let q = q.clamp(0.0, 100.0);
    let rank = ((q / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

/// Relative improvement of `new` over `old`, in percent.
///
/// This is the quantity plotted in the paper's Figures 4–6
/// (`100 * (new - old) / old`). Returns `None` when `old` is zero.
pub fn relative_improvement_pct(old: f64, new: f64) -> Option<f64> {
    if old == 0.0 {
        None
    } else {
        Some(100.0 * (new - old) / old)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basics() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.571428571428571).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn online_stats_empty() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..1000).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        xs.iter().for_each(|&x| whole.push(x));

        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        xs[..300].iter().for_each(|&x| a.push(x));
        xs[300..].iter().for_each(|&x| b.push(x));
        a.merge(&b);

        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        a.push(3.0);
        let before = a;
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);

        let mut e = OnlineStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn wilson_known_value() {
        // 8/10 successes, z=1.96 → approx [0.490, 0.943].
        let iv = WilsonInterval::wilson95(8, 10);
        assert!((iv.lo - 0.4901625).abs() < 1e-3, "lo {}", iv.lo);
        assert!((iv.hi - 0.9433178).abs() < 1e-3, "hi {}", iv.hi);
        assert!(iv.contains(0.8));
    }

    #[test]
    fn wilson_edges() {
        let zero = WilsonInterval::wilson95(0, 0);
        assert_eq!((zero.lo, zero.hi), (0.0, 1.0));
        let all = WilsonInterval::wilson95(50, 50);
        assert!(all.hi <= 1.0 && all.lo > 0.9);
        let none = WilsonInterval::wilson95(0, 50);
        assert!(none.lo == 0.0 && none.hi < 0.1);
    }

    #[test]
    fn wilson_narrows_with_n() {
        let small = WilsonInterval::wilson95(80, 100);
        let large = WilsonInterval::wilson95(8000, 10000);
        assert!(large.width() < small.width() / 5.0);
    }

    #[test]
    fn accuracy_accounting() {
        let mut acc = Accuracy::new();
        for i in 0..100 {
            acc.record(i % 4 != 0);
        }
        assert_eq!(acc.total, 100);
        assert_eq!(acc.correct, 75);
        assert!((acc.value() - 0.75).abs() < 1e-12);
        assert!(acc.interval().contains(0.75));

        let mut other = Accuracy::new();
        other.record(true);
        acc.merge(&other);
        assert_eq!(acc.total, 101);
        assert_eq!(acc.correct, 76);
    }

    #[test]
    fn percentile_nearest_rank() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&xs, 50.0), 50.0);
        assert_eq!(percentile(&xs, 95.0), 95.0);
        assert_eq!(percentile(&xs, 99.0), 99.0);
        assert_eq!(percentile(&xs, 100.0), 100.0);
        assert_eq!(percentile(&xs, 0.0), 1.0);
        // Small samples: nearest rank, never interpolated.
        assert_eq!(percentile(&[3.0], 99.0), 3.0);
        assert_eq!(percentile(&[1.0, 10.0], 50.0), 1.0);
        assert_eq!(percentile(&[1.0, 10.0], 51.0), 10.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        // Percentiles are monotone in q.
        for (lo, hi) in [(10.0, 50.0), (50.0, 95.0), (95.0, 99.0)] {
            assert!(percentile(&xs, lo) <= percentile(&xs, hi));
        }
    }

    #[test]
    fn relative_improvement() {
        assert_eq!(relative_improvement_pct(0.5, 0.75), Some(50.0));
        assert_eq!(relative_improvement_pct(0.4, 0.2), Some(-50.0));
        assert_eq!(relative_improvement_pct(0.0, 0.5), None);
    }
}
