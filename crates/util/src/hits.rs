//! The shared search-hit type and its one canonical ordering.
//!
//! Every retrieval channel — the dense vector stores, the BM25 lexical
//! index, and the fusion layer that merges them — returns
//! [`SearchResult`]s ranked by [`cmp_hits`]: descending score, ties broken
//! by ascending id. Centralising the comparator here means the full-sort
//! path, the bounded-heap path, and the rank-fusion tie-breaks cannot
//! disagree.

use serde::{Deserialize, Serialize};

/// One search hit: an external id and a similarity score (higher = better
/// under every metric; L2 distances are negated).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SearchResult {
    /// External id supplied at insertion.
    pub id: u64,
    /// Similarity score (metric-dependent; higher is more similar).
    pub score: f32,
}

/// The one hit ordering every retrieval channel uses: descending score,
/// then ascending id (`Less` = ranks earlier).
#[inline]
pub fn cmp_hits(a: &SearchResult, b: &SearchResult) -> std::cmp::Ordering {
    b.score.partial_cmp(&a.score).unwrap_or(std::cmp::Ordering::Equal).then(a.id.cmp(&b.id))
}

/// Deterministically order candidate hits: descending score, then
/// ascending id. Shared by all index implementations.
pub fn sort_hits(hits: &mut [SearchResult]) {
    hits.sort_by(cmp_hits);
}

/// A [`SearchResult`] ordered by [`cmp_hits`] with `Greater` = worse, so a
/// max-[`std::collections::BinaryHeap`] keeps the worst retained hit at
/// the root.
struct WorstFirst(SearchResult);

impl PartialEq for WorstFirst {
    fn eq(&self, other: &Self) -> bool {
        cmp_hits(&self.0, &other.0) == std::cmp::Ordering::Equal
    }
}

impl Eq for WorstFirst {}

impl PartialOrd for WorstFirst {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for WorstFirst {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        cmp_hits(&self.0, &other.0)
    }
}

/// A bounded top-k accumulator: keeps the `k` best hits under [`cmp_hits`]
/// out of an arbitrary stream, O(log k) per pushed improvement and O(1)
/// per rejected candidate, instead of materialising every hit and sorting.
///
/// Yields exactly what [`sort_hits`] + `truncate(k)` yields on the same
/// stream: [`cmp_hits`] is a total order whose ties are value-identical
/// hits, so which duplicate survives is unobservable.
pub struct TopK {
    k: usize,
    heap: std::collections::BinaryHeap<WorstFirst>,
}

impl TopK {
    pub fn new(k: usize) -> Self {
        Self { k, heap: std::collections::BinaryHeap::with_capacity(k.min(1024)) }
    }

    #[inline]
    pub fn push(&mut self, hit: SearchResult) {
        if self.heap.len() < self.k {
            self.heap.push(WorstFirst(hit));
        } else if let Some(mut worst) = self.heap.peek_mut() {
            if cmp_hits(&hit, &worst.0) == std::cmp::Ordering::Less {
                *worst = WorstFirst(hit);
            }
        }
    }

    /// The kept hits, best first.
    pub fn into_sorted(self) -> Vec<SearchResult> {
        let mut hits: Vec<SearchResult> = self.heap.into_iter().map(|w| w.0).collect();
        sort_hits(&mut hits);
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topk_equals_sort_then_truncate() {
        // Adversarial stream: duplicate scores, duplicate (score, id)
        // pairs, ascending and descending runs.
        let mut hits = Vec::new();
        for i in 0..200u64 {
            let score = ((i * 7919) % 23) as f32 / 23.0;
            hits.push(SearchResult { id: i % 40, score });
        }
        for k in [0usize, 1, 3, 5, 40, 200, 500] {
            let mut oracle = hits.clone();
            sort_hits(&mut oracle);
            oracle.truncate(k);
            let mut topk = TopK::new(k);
            for h in &hits {
                topk.push(*h);
            }
            assert_eq!(topk.into_sorted(), oracle, "k={k}");
        }
    }
}
