//! Multi-accumulator scoring kernels shared by the vector stores and the
//! embedding matrix.
//!
//! Exact retrieval is a dense dot-product sweep: at paper scale every query
//! visits every stored row, so the per-element loop *is* the hot path. A
//! naive `iter().zip().map().sum()` builds one serial dependency chain of
//! float adds, which caps the loop at one add per ~4 cycles. These kernels
//! split the reduction across [`LANES`] independent accumulators over
//! `chunks_exact` blocks — a shape LLVM's autovectorizer folds into packed
//! SIMD adds/multiplies — and reduce the lanes in one **fixed** pairwise
//! tree.
//!
//! Determinism contract: every kernel accumulates in a fixed order that
//! depends only on the slice length, never on block boundaries, worker
//! counts, or call sites. `Metric::score` in `mcqa-index` and the blocked
//! panel kernels are built on the same three functions, which is what makes
//! blocked/batched search bit-identical to the per-row scalar oracle.

/// Independent accumulator lanes per kernel. Eight f32 lanes fill one
/// AVX2 register (or two NEON registers) and leave the autovectorizer no
/// reassociation to prove — the source order already is the packed order.
pub const LANES: usize = 8;

/// Reduce the lanes in a fixed pairwise tree (part of the determinism
/// contract: the same inputs always reduce in the same order).
#[inline(always)]
fn reduce(acc: [f32; LANES]) -> f32 {
    ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]))
}

/// Dot product with a fixed accumulation order.
///
/// Element `i` lands in lane `i % LANES` over full blocks; the ragged tail
/// continues lane-by-lane from lane 0.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; LANES];
    let split = (a.len() / LANES) * LANES;
    for (ca, cb) in a[..split].chunks_exact(LANES).zip(b[..split].chunks_exact(LANES)) {
        for l in 0..LANES {
            acc[l] += ca[l] * cb[l];
        }
    }
    for (l, (x, y)) in a[split..].iter().zip(&b[split..]).enumerate() {
        acc[l] += x * y;
    }
    reduce(acc)
}

/// Squared L2 norm (`Σ xᵢ²`) with the same accumulation order as [`dot`].
#[inline]
pub fn sq_norm(a: &[f32]) -> f32 {
    let mut acc = [0.0f32; LANES];
    let split = (a.len() / LANES) * LANES;
    for ca in a[..split].chunks_exact(LANES) {
        for l in 0..LANES {
            acc[l] += ca[l] * ca[l];
        }
    }
    for (l, x) in a[split..].iter().enumerate() {
        acc[l] += x * x;
    }
    reduce(acc)
}

/// Squared Euclidean distance (`Σ (xᵢ − yᵢ)²`) with the same accumulation
/// order as [`dot`].
#[inline]
pub fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; LANES];
    let split = (a.len() / LANES) * LANES;
    for (ca, cb) in a[..split].chunks_exact(LANES).zip(b[..split].chunks_exact(LANES)) {
        for l in 0..LANES {
            let d = ca[l] - cb[l];
            acc[l] += d * d;
        }
    }
    for (l, (x, y)) in a[split..].iter().zip(&b[split..]).enumerate() {
        let d = x - y;
        acc[l] += d * d;
    }
    reduce(acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize, seed: u64) -> Vec<f32> {
        (0..n)
            .map(|i| (crate::splitmix64(seed ^ i as u64) as f32 / u64::MAX as f32) - 0.5)
            .collect()
    }

    #[test]
    fn matches_naive_within_tolerance() {
        // The kernels reassociate relative to a serial fold, so compare
        // against f64 ground truth, not bit-for-bit against f32 serial.
        for n in [0usize, 1, 3, 7, 8, 9, 15, 16, 17, 64, 100, 256, 1000] {
            let a = sample(n, 1);
            let b = sample(n, 2);
            let dot64: f64 = a.iter().zip(&b).map(|(x, y)| *x as f64 * *y as f64).sum();
            let nrm64: f64 = a.iter().map(|x| (*x as f64) * (*x as f64)).sum();
            let l264: f64 = a.iter().zip(&b).map(|(x, y)| ((x - y) as f64).powi(2)).sum();
            let tol = 1e-4 * (n as f64 + 1.0);
            assert!((dot(&a, &b) as f64 - dot64).abs() < tol, "dot n={n}");
            assert!((sq_norm(&a) as f64 - nrm64).abs() < tol, "sq_norm n={n}");
            assert!((l2_sq(&a, &b) as f64 - l264).abs() < tol, "l2_sq n={n}");
        }
    }

    #[test]
    fn fixed_order_is_length_only() {
        // Scoring a row as part of a longer panel sweep or alone must give
        // the same bits: the kernels only ever see one row's slice, so
        // slicing the same data differently upstream cannot change results.
        let a = sample(37, 3);
        let b = sample(37, 4);
        let d1 = dot(&a, &b);
        let d2 = dot(&a.clone(), &b.clone());
        assert_eq!(d1.to_bits(), d2.to_bits());
    }

    #[test]
    fn empty_and_zero() {
        assert_eq!(dot(&[], &[]), 0.0);
        assert_eq!(sq_norm(&[]), 0.0);
        assert_eq!(l2_sq(&[], &[]), 0.0);
        let z = vec![0.0f32; 19];
        assert_eq!(sq_norm(&z), 0.0);
    }

    #[test]
    fn self_dot_equals_sq_norm_bits() {
        // dot(a, a) and sq_norm(a) share the accumulation order, so they
        // agree bit-for-bit — the cached-norms cosine path relies on it.
        for n in [5usize, 8, 23, 128, 257] {
            let a = sample(n, 9);
            assert_eq!(dot(&a, &a).to_bits(), sq_norm(&a).to_bits(), "n={n}");
        }
    }
}
