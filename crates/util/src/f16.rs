//! IEEE 754 binary16 ("half precision") codec.
//!
//! The paper stores PubMedBERT chunk embeddings as FP16 in FAISS (747 MB for
//! 173,318 chunks). Our vector store offers the same compressed layout; this
//! module provides the conversion, implemented from scratch (no `half`
//! dependency) with round-to-nearest-even semantics and full subnormal /
//! infinity / NaN handling.

use serde::{Deserialize, Serialize};

/// A half-precision float stored as its raw bit pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[repr(transparent)]
pub struct F16(pub u16);

impl F16 {
    /// Positive zero.
    pub const ZERO: F16 = F16(0);
    /// Positive infinity.
    pub const INFINITY: F16 = F16(0x7c00);
    /// Negative infinity.
    pub const NEG_INFINITY: F16 = F16(0xfc00);
    /// A canonical quiet NaN.
    pub const NAN: F16 = F16(0x7e00);
    /// Largest finite value (65504).
    pub const MAX: F16 = F16(0x7bff);
    /// Smallest positive normal value (2^-14).
    pub const MIN_POSITIVE: F16 = F16(0x0400);

    /// Encode an `f32` with round-to-nearest-even.
    pub fn from_f32(value: f32) -> Self {
        let bits = value.to_bits();
        let sign = ((bits >> 16) & 0x8000) as u16;
        let exp = ((bits >> 23) & 0xff) as i32;
        let mantissa = bits & 0x007f_ffff;

        if exp == 0xff {
            // Inf or NaN. Preserve NaN-ness (set a mantissa bit).
            let m = if mantissa != 0 { 0x0200 } else { 0 };
            return F16(sign | 0x7c00 | m);
        }

        // Unbiased exponent.
        let unbiased = exp - 127;
        if unbiased > 15 {
            // Overflow to infinity.
            return F16(sign | 0x7c00);
        }
        if unbiased >= -14 {
            // Normal range: 10-bit mantissa, round to nearest even.
            let half_exp = ((unbiased + 15) as u16) << 10;
            let shifted = mantissa >> 13;
            let round_bits = mantissa & 0x1fff;
            let mut h = sign | half_exp | shifted as u16;
            // round up if above halfway, or exactly halfway and odd
            if round_bits > 0x1000 || (round_bits == 0x1000 && (shifted & 1) == 1) {
                h = h.wrapping_add(1); // may carry into exponent: correct behaviour
            }
            return F16(h);
        }
        if unbiased >= -25 {
            // Subnormal half: implicit leading 1 becomes explicit.
            let full = mantissa | 0x0080_0000;
            let shift = (-14 - unbiased + 13) as u32;
            let shifted = full >> shift;
            let rem = full & ((1u32 << shift) - 1);
            let halfway = 1u32 << (shift - 1);
            let mut h = sign | shifted as u16;
            if rem > halfway || (rem == halfway && (shifted & 1) == 1) {
                h = h.wrapping_add(1);
            }
            return F16(h);
        }
        // Underflow to signed zero.
        F16(sign)
    }

    /// Decode to `f32` (exact: every binary16 value is representable).
    pub fn to_f32(self) -> f32 {
        let sign = ((self.0 & 0x8000) as u32) << 16;
        let exp = ((self.0 >> 10) & 0x1f) as u32;
        let mantissa = (self.0 & 0x03ff) as u32;

        let bits = match (exp, mantissa) {
            (0, 0) => sign, // signed zero
            (0, m) => {
                // Subnormal: value = m * 2^-24. Normalise so bit 10 is the
                // implicit leading one, giving value = 1.f * 2^(-14 - shift).
                let shift = m.leading_zeros() - 21;
                let m2 = (m << shift) & 0x03ff;
                let exp_field = 113 - shift; // (-14 - shift) + 127
                sign | (exp_field << 23) | (m2 << 13)
            }
            (0x1f, 0) => sign | 0x7f80_0000,             // infinity
            (0x1f, m) => sign | 0x7f80_0000 | (m << 13), // NaN
            (e, m) => sign | ((e + 127 - 15) << 23) | (m << 13),
        };
        f32::from_bits(bits)
    }

    /// True when the value encodes NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        (self.0 & 0x7c00) == 0x7c00 && (self.0 & 0x03ff) != 0
    }

    /// True for ±∞.
    #[inline]
    pub fn is_infinite(self) -> bool {
        (self.0 & 0x7fff) == 0x7c00
    }
}

impl From<f32> for F16 {
    fn from(v: f32) -> Self {
        F16::from_f32(v)
    }
}

impl From<F16> for f32 {
    fn from(v: F16) -> Self {
        v.to_f32()
    }
}

/// Encode a slice of `f32` into raw little-endian half-precision bytes.
pub fn encode_f16_bytes(values: &[f32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 2);
    for &v in values {
        out.extend_from_slice(&F16::from_f32(v).0.to_le_bytes());
    }
    out
}

/// Decode raw little-endian half-precision bytes into `f32`s.
///
/// Returns `None` when the byte length is odd.
pub fn decode_f16_bytes(bytes: &[u8]) -> Option<Vec<f32>> {
    if !bytes.len().is_multiple_of(2) {
        return None;
    }
    Some(bytes.chunks_exact(2).map(|c| F16(u16::from_le_bytes([c[0], c[1]])).to_f32()).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_values() {
        assert_eq!(F16::from_f32(0.0).0, 0x0000);
        assert_eq!(F16::from_f32(-0.0).0, 0x8000);
        assert_eq!(F16::from_f32(1.0).0, 0x3c00);
        assert_eq!(F16::from_f32(-2.0).0, 0xc000);
        assert_eq!(F16::from_f32(65504.0).0, 0x7bff);
        assert_eq!(F16::from_f32(0.5).0, 0x3800);
        assert_eq!(F16::from_f32(0.099975586).0, 0x2e66); // ~0.1
    }

    #[test]
    fn decode_known_values() {
        assert_eq!(F16(0x3c00).to_f32(), 1.0);
        assert_eq!(F16(0xc000).to_f32(), -2.0);
        assert_eq!(F16(0x7bff).to_f32(), 65504.0);
        assert_eq!(F16(0x0001).to_f32(), 5.9604645e-8); // smallest subnormal
        assert_eq!(F16(0x0400).to_f32(), 6.103_515_6e-5); // smallest normal
    }

    #[test]
    fn specials_roundtrip() {
        assert!(F16::from_f32(f32::NAN).is_nan());
        assert!(F16::from_f32(f32::INFINITY).is_infinite());
        assert_eq!(F16::from_f32(f32::INFINITY).0, 0x7c00);
        assert_eq!(F16::from_f32(f32::NEG_INFINITY).0, 0xfc00);
        assert!(F16::NAN.to_f32().is_nan());
        assert_eq!(F16::INFINITY.to_f32(), f32::INFINITY);
    }

    #[test]
    fn overflow_saturates_to_infinity() {
        assert!(F16::from_f32(1.0e6).is_infinite());
        assert!(F16::from_f32(-1.0e6).is_infinite());
        assert_eq!(F16::from_f32(65520.0).0, 0x7c00); // rounds up past MAX
    }

    #[test]
    fn underflow_flushes_to_zero_with_sign() {
        assert_eq!(F16::from_f32(1.0e-10).0, 0x0000);
        assert_eq!(F16::from_f32(-1.0e-10).0, 0x8000);
    }

    #[test]
    fn roundtrip_exact_for_all_finite_halves() {
        // Every finite f16 → f32 → f16 must be the identity.
        for bits in 0..=0xffffu16 {
            let h = F16(bits);
            if h.is_nan() {
                continue;
            }
            let rt = F16::from_f32(h.to_f32());
            assert_eq!(rt.0, bits, "bits {bits:#06x}");
        }
    }

    #[test]
    fn round_to_nearest_even() {
        // 1.0 + 2^-11 is exactly halfway between two halves; ties-to-even
        // keeps the even mantissa (1.0).
        let halfway = 1.0f32 + 2.0f32.powi(-11);
        assert_eq!(F16::from_f32(halfway).0, 0x3c00);
        // Slightly above halfway rounds up.
        let above = 1.0f32 + 2.0f32.powi(-11) + 2.0f32.powi(-20);
        assert_eq!(F16::from_f32(above).0, 0x3c01);
    }

    #[test]
    fn relative_error_bound_in_normal_range() {
        // |x - roundtrip(x)| / |x| <= 2^-11 for normal-range values.
        let mut x = 6.2e-5f32;
        while x < 6.0e4 {
            let rt = F16::from_f32(x).to_f32();
            let rel = ((x - rt) / x).abs();
            assert!(rel <= 4.9e-4, "x={x} rt={rt} rel={rel}");
            x *= 1.37;
        }
    }

    #[test]
    fn byte_codec_roundtrip() {
        let vals = vec![0.0f32, 1.5, -3.25, 0.1, 100.0, -0.0078125];
        let bytes = encode_f16_bytes(&vals);
        assert_eq!(bytes.len(), vals.len() * 2);
        let back = decode_f16_bytes(&bytes).unwrap();
        for (a, b) in vals.iter().zip(back.iter()) {
            assert!((a - b).abs() <= a.abs() * 5e-4 + 1e-6, "{a} vs {b}");
        }
        assert!(decode_f16_bytes(&bytes[..3]).is_none(), "odd length rejected");
    }
}
