//! Byte-cursor helpers shared by every serialised artifact format.
//!
//! Every format is little-endian with a 4-byte magic tag; decoders return
//! `None` on any truncation or tag mismatch rather than panicking, so
//! corrupted artifacts are rejected loudly by the caller. The vector
//! stores (`mcqa-index`) and the lexical index (`mcqa-lexical`) both
//! serialise through these primitives.

/// A bounds-checked read cursor over serialised bytes.
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Consume the 4-byte magic tag, failing when it doesn't match.
    pub fn expect_magic(&mut self, magic: &[u8; 4]) -> Option<()> {
        (self.take(4)? == magic).then_some(())
    }

    pub fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let slice = self.bytes.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }

    pub fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    pub fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    pub fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    /// A `u32` used as a length/count: additionally bounded by the bytes
    /// remaining, so a corrupted count cannot trigger a huge allocation.
    pub fn count(&mut self, elem_size: usize) -> Option<usize> {
        let n = self.u32()? as usize;
        (n.checked_mul(elem_size.max(1))? <= self.remaining()).then_some(n)
    }

    /// An LEB128 varint (at most 10 bytes for a u64).
    pub fn varint(&mut self) -> Option<u64> {
        let mut v = 0u64;
        for shift in (0..70).step_by(7) {
            let b = self.u8()?;
            if shift == 63 && b > 1 {
                return None; // overflow past 64 bits
            }
            v |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Some(v);
            }
        }
        None
    }

    pub fn f32_vec(&mut self, len: usize) -> Option<Vec<f32>> {
        let raw = self.take(len.checked_mul(4)?)?;
        Some(
            raw.chunks_exact(4)
                .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
                .collect(),
        )
    }

    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// True when every byte has been consumed (trailing garbage rejected).
    pub fn exhausted(&self) -> bool {
        self.remaining() == 0
    }
}

pub fn put_u32(out: &mut Vec<u8>, v: usize) {
    out.extend_from_slice(&u32::try_from(v).expect("count fits u32").to_le_bytes());
}

pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub fn put_f32s(out: &mut Vec<u8>, vs: &[f32]) {
    for v in vs {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

/// LEB128 varint: 7 payload bits per byte, low bits first.
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Zigzag-fold a signed delta into an unsigned varint payload (small
/// magnitudes of either sign stay short).
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reader_rejects_truncation() {
        let mut out = Vec::new();
        out.extend_from_slice(b"TEST");
        put_u32(&mut out, 7);
        put_u64(&mut out, 99);
        let mut r = Reader::new(&out);
        r.expect_magic(b"TEST").unwrap();
        assert_eq!(r.u32(), Some(7));
        assert_eq!(r.u64(), Some(99));
        assert!(r.exhausted());
        let mut short = Reader::new(&out[..6]);
        short.expect_magic(b"TEST").unwrap();
        assert_eq!(short.u32(), None, "truncated read fails");
    }

    #[test]
    fn corrupt_count_rejected() {
        let mut out = Vec::new();
        put_u32(&mut out, u32::MAX as usize);
        let mut r = Reader::new(&out);
        assert_eq!(r.count(8), None, "count larger than remaining bytes rejected");
    }

    #[test]
    fn varint_roundtrip() {
        let values =
            [0u64, 1, 127, 128, 300, 16_383, 16_384, u32::MAX as u64, u64::MAX - 1, u64::MAX];
        let mut out = Vec::new();
        for &v in &values {
            put_varint(&mut out, v);
        }
        let mut r = Reader::new(&out);
        for &v in &values {
            assert_eq!(r.varint(), Some(v));
        }
        assert!(r.exhausted());
        // Truncated varint rejected.
        let mut out = Vec::new();
        put_varint(&mut out, u64::MAX);
        assert_eq!(Reader::new(&out[..out.len() - 1]).varint(), None);
        // Unterminated garbage rejected rather than looping.
        assert_eq!(Reader::new(&[0x80u8; 11]).varint(), None);
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, 1, -1, 2, -2, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        // Small magnitudes stay small varints.
        assert!(zigzag(-1) < 256);
        assert!(zigzag(1) < 256);
    }
}
