//! Property tests for the lexical channel's determinism contract:
//!
//! * **Batch ≡ serial** — `add_batch` and `search_batch` are bit-identical
//!   to their sequential counterparts at 1 and 4 workers.
//! * **Codec fidelity** — a `LEXI` round trip reproduces the index
//!   structurally *and* behaviourally: every search on the decoded index
//!   is bit-identical, and re-encoding is byte-identical.
//! * **RRF permutation invariance** — fusing the same ranked lists in any
//!   order yields bitwise-identical output (the canonical-order summation
//!   the fusion module promises).
//! * **Degenerate totality** — empty queries, all-stopword queries,
//!   `k = 0`, `k > len`, and empty indexes all return cleanly, and top-k
//!   lists are prefixes of deeper searches.

use mcqa_lexical::fusion::rrf;
use mcqa_lexical::LexicalIndex;
use mcqa_runtime::Executor;
use mcqa_util::SearchResult;
use proptest::prelude::*;

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Content words plus genuine stopwords ("the", "of", "and", "during"),
/// so generated documents exercise the stopword filter and repeated-term
/// frequencies, not just distinct-term postings.
const WORDS: [&str; 16] = [
    "radiation",
    "dose",
    "fractionation",
    "apoptosis",
    "hypoxia",
    "tumour",
    "repair",
    "pathway",
    "proton",
    "dosimetry",
    "plasma",
    "telescope",
    "the",
    "of",
    "and",
    "during",
];

/// A deterministic pseudo-document: 0-11 pool words drawn by seed (length
/// 0 covers the empty-document case inside corpora).
fn doc(seed: u64) -> String {
    let n = (splitmix(seed) % 12) as usize;
    (0..n)
        .map(|j| WORDS[(splitmix(seed ^ (j as u64 + 1).wrapping_mul(0x9e39)) % 16) as usize])
        .collect::<Vec<_>>()
        .join(" ")
}

/// `n` documents under deliberately non-contiguous external ids (the
/// delta-zigzag id codec must not depend on dense id spaces).
fn corpus(n: usize, seed: u64) -> Vec<(u64, String)> {
    (0..n).map(|i| (i as u64 * 7 + 3, doc(seed ^ ((i as u64 + 1) * 0x5bd1)))).collect()
}

fn build(docs: &[(u64, String)]) -> LexicalIndex {
    let mut idx = LexicalIndex::default();
    for (id, text) in docs {
        idx.add(*id, text);
    }
    idx
}

proptest! {
    /// `add_batch` produces the same index as serial `add`, and
    /// `search_batch` the same hits as per-query `search`, at 1 and 4
    /// workers — bit-identical, scores included.
    #[test]
    fn batch_build_and_search_match_serial_at_any_worker_count(
        n in 1usize..24,
        seed in 0u64..1000,
        k in 0usize..12,
        workers_pick in 0usize..2,
    ) {
        let workers = [1usize, 4][workers_pick];
        let exec = Executor::new(workers);
        let docs = corpus(n, seed);
        let serial = build(&docs);
        let mut batched = LexicalIndex::default();
        batched.add_batch(&exec, &docs);
        prop_assert_eq!(&batched, &serial, "add_batch diverged at {} workers", workers);

        let queries: Vec<String> =
            (0..6).map(|i| doc(seed ^ 0xbeef ^ (i as u64 * 0x7f4a))).collect();
        let batch = batched.search_batch(&exec, &queries, k);
        prop_assert_eq!(batch.len(), queries.len());
        for (q, hits) in queries.iter().zip(&batch) {
            prop_assert_eq!(hits, &serial.search(q, k), "query {:?} at {} workers", q, workers);
        }
    }

    /// A serialise → decode round trip reproduces the index exactly: the
    /// decoded index searches bit-identically and re-encodes to the same
    /// bytes.
    #[test]
    fn codec_roundtrip_searches_bit_identically(
        n in 1usize..24,
        seed in 0u64..1000,
        k in 1usize..8,
    ) {
        let idx = build(&corpus(n, seed));
        let bytes = idx.to_bytes();
        let back = LexicalIndex::from_bytes(&bytes).expect("round trip decodes");
        prop_assert_eq!(&back, &idx);
        prop_assert_eq!(back.to_bytes(), bytes, "re-encode must be byte-identical");
        for i in 0..6u64 {
            let q = doc(seed ^ 0xdead ^ (i * 0x1331));
            prop_assert_eq!(back.search(&q, k), idx.search(&q, k), "query {:?}", q);
        }
    }

    /// RRF output is bitwise invariant under permutation of its input
    /// lists, for real BM25 result lists at any damping constant.
    #[test]
    fn rrf_is_invariant_under_list_permutation(
        n in 2usize..24,
        seed in 0u64..1000,
        k0 in 1u32..120,
        k in 1usize..10,
    ) {
        let idx = build(&corpus(n, seed));
        let lists: Vec<Vec<SearchResult>> = (0..3u64)
            .map(|i| idx.search(&doc(seed ^ 0xfeed ^ (i * 0x49bb)), n))
            .collect();
        let as_slices = |order: [usize; 3]| -> Vec<&[SearchResult]> {
            order.iter().map(|&i| lists[i].as_slice()).collect()
        };
        let base = rrf(&as_slices([0, 1, 2]), k0, k);
        for order in [[0, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0]] {
            prop_assert_eq!(rrf(&as_slices(order), k0, k), base.clone(), "order {:?}", order);
        }
    }

    /// Degenerate inputs are total, and top-k lists are prefixes of
    /// deeper searches (the total order makes truncation consistent).
    #[test]
    fn degenerate_queries_are_total(n in 0usize..16, seed in 0u64..1000, k in 1usize..6) {
        let idx = build(&corpus(n, seed));
        prop_assert_eq!(idx.len(), n);
        prop_assert!(idx.search("", 5).is_empty(), "empty query");
        prop_assert!(idx.search("the of and during", 5).is_empty(), "all-stopword query");
        prop_assert!(idx.search("zzz9unknown", 5).is_empty(), "unknown term");
        prop_assert!(idx.search("radiation dose", 0).is_empty(), "k = 0");

        let q = doc(seed ^ 0xabcd);
        let deep = idx.search(&q, n + 100);
        prop_assert!(deep.len() <= n, "k > len returns at most the matching docs");
        let top = idx.search(&q, k);
        prop_assert_eq!(&top[..], &deep[..k.min(deep.len())], "top-k is a prefix of top-all");
    }
}
