//! An Okapi BM25 inverted index over the workspace's shared tokenisation.
//!
//! Documents are tokenised with [`content_tokens`] — the same helper the
//! vocabulary and the hash embeddings use, so the corpus side and the
//! query side can never disagree — and interned into a
//! [`Vocabulary`], which carries the term ↔ id tables and document
//! frequencies. Per-term postings record `(doc index, term frequency)`
//! in insertion order, which keeps doc indices strictly increasing per
//! list and makes the serialised form delta-varint friendly.
//!
//! Determinism contract (property-tested in `tests/bm25.rs`):
//! [`LexicalIndex::add_batch`] produces a store bit-identical to serial
//! [`LexicalIndex::add`] calls in item order, and
//! [`LexicalIndex::search_batch`] is bit-identical to per-query
//! [`LexicalIndex::search`], at any worker count. Scoring accumulates
//! per-document sums in sorted term-**string** order, so the
//! floating-point addition order is fixed *and* independent of interning
//! order — a mutated index (whose vocabulary still holds terms the live
//! documents no longer use) scores bit-identically to one rebuilt from
//! scratch over the live documents.
//!
//! Mutation surface (mirroring [`mcqa-index`'s](../index) `VectorStore`):
//! [`LexicalIndex::remove`] tombstones documents by external id — their
//! postings stay resident but are skipped, with `n`, `avgdl`, and each
//! term's `df` corrected to the live view so scores match a live-only
//! rebuild. [`LexicalIndex::compact`] (and serialisation, whose `LEXI`
//! wire format is always tombstone-free) rewrites postings without the
//! dead documents.

use std::collections::HashMap;

use mcqa_runtime::{run_stage_batched, Executor};
use mcqa_text::{content_tokens, TermId, Vocabulary};
use mcqa_util::codec::{put_u32, put_varint, unzigzag, zigzag, Reader};
use mcqa_util::{SearchResult, TopK};

/// Okapi BM25 parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bm25Params {
    /// Term-frequency saturation (`k1`).
    pub k1: f32,
    /// Length normalisation strength (`b`).
    pub b: f32,
}

impl Default for Bm25Params {
    fn default() -> Self {
        Self { k1: 1.2, b: 0.75 }
    }
}

/// One posting: a document (by insertion index) and the term's frequency
/// in it.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Posting {
    doc: u32,
    tf: u32,
}

/// One indexed document: its external id and content-token length.
#[derive(Debug, Clone, Copy, PartialEq)]
struct DocEntry {
    id: u64,
    len: u32,
}

/// A BM25 inverted index: the lexical sibling of a dense vector store.
///
/// External ids are arbitrary `u64`s supplied at insertion — the same id
/// space the paired dense store uses, so fused result lists refer to the
/// same documents.
#[derive(Debug, Clone, PartialEq)]
pub struct LexicalIndex {
    params: Bm25Params,
    vocab: Vocabulary,
    /// Postings per term, indexed by [`TermId`]; doc indices are strictly
    /// increasing within each list.
    postings: Vec<Vec<Posting>>,
    /// Documents in insertion order.
    docs: Vec<DocEntry>,
    /// Sum of all documents' content-token lengths.
    total_tokens: u64,
    /// Per-document tombstones, parallel to `docs`. Per entry rather than
    /// per id so an upsert (tombstone + re-append the same id) never
    /// masks the new live document. Never serialised.
    dead: Vec<bool>,
    dead_count: usize,
    /// Content-token lengths of tombstoned documents, for `avgdl`
    /// correction.
    dead_tokens: u64,
}

/// The per-item tokenisation product `add_batch` fans out: distinct terms
/// in first-occurrence order with their frequencies, plus the content
/// length.
type TokenCounts = (Vec<(String, u32)>, u32);

fn count_tokens(text: &str) -> TokenCounts {
    let toks = content_tokens(text);
    let len = toks.len() as u32;
    let mut order: Vec<(String, u32)> = Vec::new();
    let mut at: HashMap<String, usize> = HashMap::new();
    for tok in toks {
        match at.get(&tok) {
            Some(&i) => order[i].1 += 1,
            None => {
                at.insert(tok.clone(), order.len());
                order.push((tok, 1));
            }
        }
    }
    (order, len)
}

impl Default for LexicalIndex {
    fn default() -> Self {
        Self::new(Bm25Params::default())
    }
}

impl LexicalIndex {
    /// Serialisation magic tag.
    pub const MAGIC: &'static [u8; 4] = b"LEXI";

    /// An empty index.
    pub fn new(params: Bm25Params) -> Self {
        Self {
            params,
            vocab: Vocabulary::new(),
            postings: Vec::new(),
            docs: Vec::new(),
            total_tokens: 0,
            dead: Vec::new(),
            dead_count: 0,
            dead_tokens: 0,
        }
    }

    /// The BM25 parameters in use.
    pub fn params(&self) -> Bm25Params {
        self.params
    }

    /// Number of live (non-tombstoned) indexed documents.
    pub fn len(&self) -> usize {
        self.docs.len() - self.dead_count
    }

    /// True when no live documents are indexed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Vocabulary size (distinct content terms seen).
    pub fn num_terms(&self) -> usize {
        self.vocab.len()
    }

    /// Index one document under an external id. Stopword-only and empty
    /// documents are recorded (they count toward length statistics) but
    /// post nothing.
    pub fn add(&mut self, id: u64, text: &str) {
        let (counts, len) = count_tokens(text);
        self.merge(id, counts, len);
    }

    /// Fold one document's pre-tokenised counts into the index. The
    /// serial tail of both `add` and `add_batch` — interning happens here,
    /// in document order, so term ids are identical however the
    /// tokenisation was produced.
    fn merge(&mut self, id: u64, counts: Vec<(String, u32)>, len: u32) {
        let doc = u32::try_from(self.docs.len()).expect("doc count fits u32");
        let mut distinct = Vec::with_capacity(counts.len());
        for (term, tf) in counts {
            let tid = self.vocab.intern(&term);
            if tid.0 as usize == self.postings.len() {
                self.postings.push(Vec::new());
            }
            self.postings[tid.0 as usize].push(Posting { doc, tf });
            distinct.push(tid);
        }
        self.vocab.record_document(&distinct);
        self.docs.push(DocEntry { id, len });
        self.dead.push(false);
        self.total_tokens += u64::from(len);
    }

    /// Tombstone the documents stored under `ids`: they stop appearing in
    /// results (and stop counting toward `n`/`avgdl`/`df`) immediately;
    /// postings are only rewritten by [`LexicalIndex::compact`] or
    /// serialisation. Unknown (or already tombstoned) ids are ignored.
    /// Returns the number of documents newly tombstoned.
    pub fn remove(&mut self, ids: &[u64]) -> usize {
        let targets: std::collections::HashSet<u64> = ids.iter().copied().collect();
        let mut removed = 0usize;
        let mut removed_tokens = 0u64;
        for (d, dead) in self.docs.iter().zip(self.dead.iter_mut()) {
            if !*dead && targets.contains(&d.id) {
                *dead = true;
                removed += 1;
                removed_tokens += u64::from(d.len);
            }
        }
        self.dead_count += removed;
        self.dead_tokens += removed_tokens;
        removed
    }

    /// Replace-or-insert: tombstone any existing documents under the item
    /// ids, then bulk-insert the new texts. Afterwards search results are
    /// bit-identical to an index rebuilt from scratch over the final live
    /// documents.
    pub fn upsert<S: AsRef<str> + Sync>(&mut self, exec: &Executor, items: &[(u64, S)]) {
        let ids: Vec<u64> = items.iter().map(|(id, _)| *id).collect();
        self.remove(&ids);
        self.add_batch(exec, items);
    }

    /// Number of tombstoned documents still resident in the postings.
    pub fn tombstones(&self) -> usize {
        self.dead_count
    }

    /// Rewrite postings without the tombstoned documents (a no-op when
    /// nothing is tombstoned). Vocabulary term ids are preserved — terms
    /// whose every posting died stay interned with an empty list — which
    /// is invisible to search (accumulation is string-ordered and `df`
    /// counts live postings).
    pub fn compact(&mut self) {
        if self.dead_count > 0 {
            *self = self.live_view();
        }
    }

    /// The tombstone-free rewrite backing [`LexicalIndex::compact`] and
    /// [`LexicalIndex::to_bytes`]: live documents keep their insertion
    /// order (doc indices renumbered densely), postings drop dead entries,
    /// and the vocabulary's document frequencies are rebuilt from the
    /// surviving lists.
    fn live_view(&self) -> Self {
        let mut remap = vec![u32::MAX; self.docs.len()];
        let mut docs = Vec::with_capacity(self.docs.len() - self.dead_count);
        for (i, (d, &dead)) in self.docs.iter().zip(&self.dead).enumerate() {
            if !dead {
                remap[i] = docs.len() as u32;
                docs.push(*d);
            }
        }
        let mut dfs = Vec::with_capacity(self.postings.len());
        let mut postings = Vec::with_capacity(self.postings.len());
        for list in &self.postings {
            let live: Vec<Posting> = list
                .iter()
                .filter(|p| remap[p.doc as usize] != u32::MAX)
                .map(|p| Posting { doc: remap[p.doc as usize], tf: p.tf })
                .collect();
            dfs.push(live.len() as u32);
            postings.push(live);
        }
        let terms: Vec<String> = self.vocab.terms().map(str::to_string).collect();
        let vocab = Vocabulary::from_parts(terms, dfs, docs.len() as u32)
            .expect("live view preserves vocabulary invariants");
        let n_docs = docs.len();
        Self {
            params: self.params,
            vocab,
            postings,
            docs,
            total_tokens: self.total_tokens - self.dead_tokens,
            dead: vec![false; n_docs],
            dead_count: 0,
            dead_tokens: 0,
        }
    }

    /// Bulk insertion: tokenisation and counting fan out on `exec`'s
    /// pool; interning and posting stay serial in `items` order, so the
    /// result is **bit-identical** to sequential [`LexicalIndex::add`]
    /// calls at any worker count.
    pub fn add_batch<S: AsRef<str> + Sync>(&mut self, exec: &Executor, items: &[(u64, S)]) {
        let (counted, _) =
            run_stage_batched(exec, "lex-tokenize", (0..items.len()).collect(), 0, |i| {
                Ok::<_, String>(count_tokens(items[i].1.as_ref()))
            });
        for ((id, _), c) in items.iter().zip(counted) {
            let (counts, len) = c.expect("tokenisation cannot fail");
            self.merge(*id, counts, len);
        }
    }

    /// Top-`k` BM25 hits for `query`, best first, ties broken by
    /// ascending id (the shared [`mcqa_util::cmp_hits`] order). Returns
    /// fewer than `k` hits when fewer documents share a term with the
    /// query — lexical recall is sparse by nature, and the fusion layer
    /// treats a short list as "no lexical evidence" rather than padding
    /// it with zeros.
    pub fn search(&self, query: &str, k: usize) -> Vec<SearchResult> {
        if k == 0 || self.is_empty() {
            return Vec::new();
        }
        // Distinct known query terms in sorted term-**string** order: a
        // fixed accumulation order makes scores bit-stable however the
        // query spelled them, and — unlike id order — is independent of
        // interning history, so a tombstoned index scores bit-identically
        // to one rebuilt from scratch over its live documents.
        let mut qterms: Vec<(String, TermId)> = content_tokens(query)
            .into_iter()
            .filter_map(|t| self.vocab.id(&t).map(|id| (t, id)))
            .collect();
        qterms.sort_by(|a, b| a.0.cmp(&b.0));
        qterms.dedup_by(|a, b| a.0 == b.0);
        if qterms.is_empty() {
            return Vec::new();
        }
        let n = self.len() as f64;
        let avgdl = (self.total_tokens - self.dead_tokens) as f64 / n;
        let Bm25Params { k1, b } = self.params;
        let (k1, b) = (f64::from(k1), f64::from(b));
        let mut scores: HashMap<u32, f64> = HashMap::new();
        for (_, tid) in qterms {
            let list = &self.postings[tid.0 as usize];
            let df = if self.dead_count == 0 {
                list.len()
            } else {
                list.iter().filter(|p| !self.dead[p.doc as usize]).count()
            } as f64;
            if df == 0.0 {
                continue; // every posting tombstoned: no live evidence
            }
            // Lucene's non-negative Okapi idf.
            let idf = ((n - df + 0.5) / (df + 0.5) + 1.0).ln();
            for p in list {
                if self.dead[p.doc as usize] {
                    continue;
                }
                let tf = f64::from(p.tf);
                let dl = f64::from(self.docs[p.doc as usize].len);
                let norm = k1 * (1.0 - b + b * dl / avgdl);
                *scores.entry(p.doc).or_insert(0.0) += idf * (tf * (k1 + 1.0)) / (tf + norm);
            }
        }
        // TopK's total order makes the outcome independent of the
        // HashMap's iteration order.
        let mut topk = TopK::new(k);
        for (&doc, &score) in &scores {
            topk.push(SearchResult { id: self.docs[doc as usize].id, score: score as f32 });
        }
        topk.into_sorted()
    }

    /// Batch search fanned out on `exec`'s pool; results are
    /// index-aligned with `queries` and bit-identical to per-query
    /// [`LexicalIndex::search`].
    pub fn search_batch<S: AsRef<str> + Sync>(
        &self,
        exec: &Executor,
        queries: &[S],
        k: usize,
    ) -> Vec<Vec<SearchResult>> {
        let (results, _) =
            run_stage_batched(exec, "lex-search", (0..queries.len()).collect(), 0, |i| {
                Ok::<_, String>(self.search(queries[i].as_ref(), k))
            });
        results.into_iter().map(|r| r.expect("search cannot fail")).collect()
    }

    /// Resident payload bytes: postings, the documents table, and the
    /// vocabulary's term strings + frequency table. The capacity number
    /// `mem_bytes=` columns report for the lexical channel.
    pub fn payload_bytes(&self) -> usize {
        let postings: usize = self.postings.iter().map(|l| l.len() * 8).sum();
        let docs = self.docs.len() * 12;
        let terms: usize = self.vocab.terms().map(|t| t.len()).sum();
        postings + docs + terms + 4 * self.vocab.len()
    }

    /// Serialise under the `LEXI` magic tag. External doc ids are
    /// delta-zigzag-varint coded in insertion order; each term's posting
    /// list delta-varint codes its (strictly increasing) doc indices.
    pub fn to_bytes(&self) -> Vec<u8> {
        if self.dead_count > 0 {
            return self.live_view().to_bytes();
        }
        let mut out = Vec::new();
        out.extend_from_slice(Self::MAGIC);
        out.extend_from_slice(&self.params.k1.to_le_bytes());
        out.extend_from_slice(&self.params.b.to_le_bytes());
        put_u32(&mut out, self.docs.len());
        let mut prev_id = 0i64;
        for d in &self.docs {
            put_varint(&mut out, zigzag((d.id as i64).wrapping_sub(prev_id)));
            put_varint(&mut out, u64::from(d.len));
            prev_id = d.id as i64;
        }
        put_u32(&mut out, self.vocab.len());
        for (term, list) in self.vocab.terms().zip(&self.postings) {
            put_varint(&mut out, term.len() as u64);
            out.extend_from_slice(term.as_bytes());
            put_varint(&mut out, list.len() as u64);
            let mut prev_doc = 0u64;
            for p in list {
                put_varint(&mut out, u64::from(p.doc) - prev_doc);
                put_varint(&mut out, u64::from(p.tf));
                prev_doc = u64::from(p.doc);
            }
        }
        out
    }

    /// Decode a [`LexicalIndex::to_bytes`] artifact. `None` on any
    /// truncation, magic mismatch, or internal inconsistency.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let mut r = Reader::new(bytes);
        let idx = Self::decode(&mut r)?;
        r.exhausted().then_some(idx)
    }

    /// Decode one index off a cursor (shared by [`Self::from_bytes`] and
    /// embedded contexts like the registry's lexical section, which
    /// frame the payload themselves).
    pub(crate) fn decode(r: &mut Reader<'_>) -> Option<Self> {
        r.expect_magic(Self::MAGIC)?;
        let k1 = f32::from_le_bytes(r.take(4)?.try_into().ok()?);
        let b = f32::from_le_bytes(r.take(4)?.try_into().ok()?);
        if !(k1.is_finite() && b.is_finite()) {
            return None;
        }
        let ndocs = r.count(2)?; // ≥ 2 bytes per doc entry
        let mut docs = Vec::with_capacity(ndocs);
        let mut total_tokens = 0u64;
        let mut prev_id = 0i64;
        for _ in 0..ndocs {
            let id = prev_id.wrapping_add(unzigzag(r.varint()?));
            let len = u32::try_from(r.varint()?).ok()?;
            docs.push(DocEntry { id: id as u64, len });
            total_tokens = total_tokens.checked_add(u64::from(len))?;
            prev_id = id;
        }
        let nterms = r.count(2)?; // ≥ 2 bytes per term entry
        let mut terms = Vec::with_capacity(nterms);
        let mut dfs = Vec::with_capacity(nterms);
        let mut postings = Vec::with_capacity(nterms);
        for _ in 0..nterms {
            let tlen = usize::try_from(r.varint()?).ok()?;
            let term = std::str::from_utf8(r.take(tlen)?).ok()?;
            terms.push(term.to_string());
            let n = usize::try_from(r.varint()?).ok()?;
            if n > ndocs {
                return None; // a term cannot appear in more docs than exist
            }
            let mut list = Vec::with_capacity(n);
            let mut doc = 0u64;
            for i in 0..n {
                let delta = r.varint()?;
                if i > 0 && delta == 0 {
                    return None; // doc indices strictly increase
                }
                doc = doc.checked_add(delta)?;
                if doc as usize >= ndocs {
                    return None;
                }
                let tf = u32::try_from(r.varint()?).ok()?;
                list.push(Posting { doc: doc as u32, tf });
            }
            dfs.push(list.len() as u32);
            postings.push(list);
        }
        let vocab = Vocabulary::from_parts(terms, dfs, u32::try_from(ndocs).ok()?)?;
        Some(Self {
            params: Bm25Params { k1, b },
            vocab,
            postings,
            docs,
            total_tokens,
            dead: vec![false; ndocs],
            dead_count: 0,
            dead_tokens: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<(u64, &'static str)> {
        vec![
            (10, "Radiation induces apoptosis in tumour cells."),
            (11, "Radiation damages DNA. Repair pathways respond to radiation."),
            (12, "Hypoxia causes radioresistance in tumour cores."),
            (13, "Hospital billing codes changed in fiscal budgets."),
            (14, "the of and"), // stopword-only: counted, posts nothing
            (15, ""),
        ]
    }

    fn build() -> LexicalIndex {
        let mut idx = LexicalIndex::default();
        for (id, text) in corpus() {
            idx.add(id, text);
        }
        idx
    }

    #[test]
    fn bm25_ranks_keyword_matches_first() {
        let idx = build();
        let hits = idx.search("radiation repair", 3);
        assert_eq!(hits[0].id, 11, "two matching terms beat one: {hits:?}");
        assert_eq!(hits[1].id, 10);
        assert!(hits.iter().all(|h| h.id != 13), "unrelated doc never surfaces");
    }

    #[test]
    fn rare_terms_outweigh_common_ones() {
        let idx = build();
        let hits = idx.search("hypoxia radiation", 4);
        // "hypoxia" (df 1) out-scores "radiation" (df 2, higher tf).
        assert_eq!(hits[0].id, 12, "{hits:?}");
    }

    #[test]
    fn degenerate_queries_are_total() {
        let idx = build();
        assert!(idx.search("", 5).is_empty());
        assert!(idx.search("the of and", 5).is_empty(), "all-stopword query");
        assert!(idx.search("zzzunknown", 5).is_empty());
        assert!(idx.search("radiation", 0).is_empty(), "k = 0");
        let all = idx.search("radiation tumour hypoxia billing", 100);
        assert!(all.len() <= idx.len(), "k > len returns at most the matches");
        assert!(LexicalIndex::default().search("radiation", 5).is_empty(), "empty index");
    }

    #[test]
    fn batch_build_and_search_match_serial() {
        let exec = Executor::global();
        let serial = build();
        let mut batched = LexicalIndex::default();
        batched.add_batch(exec, &corpus());
        assert_eq!(serial, batched, "add_batch ≡ serial add");
        let queries = ["radiation repair", "", "tumour cores", "billing"];
        let batch = batched.search_batch(exec, &queries, 4);
        for (q, hits) in queries.iter().zip(&batch) {
            assert_eq!(hits, &serial.search(q, 4), "query {q:?}");
        }
    }

    #[test]
    fn codec_roundtrip_is_bit_identical() {
        let idx = build();
        let bytes = idx.to_bytes();
        let back = LexicalIndex::from_bytes(&bytes).expect("decodes");
        assert_eq!(back, idx);
        assert_eq!(back.to_bytes(), bytes, "re-encode is byte-identical");
        // Truncation at every prefix length is rejected, never panics.
        for cut in 0..bytes.len() {
            assert!(LexicalIndex::from_bytes(&bytes[..cut]).is_none(), "cut {cut}");
        }
        // Trailing garbage rejected.
        let mut longer = bytes.clone();
        longer.push(0);
        assert!(LexicalIndex::from_bytes(&longer).is_none());
        // Wrong magic rejected.
        let mut wrong = idx.to_bytes();
        wrong[0] = b'X';
        assert!(LexicalIndex::from_bytes(&wrong).is_none());
    }

    #[test]
    fn remove_upsert_compact_match_rebuild_from_scratch() {
        let exec = Executor::global();
        let mut idx = build();

        assert_eq!(idx.remove(&[11, 14, 999]), 2);
        assert_eq!(idx.remove(&[11]), 0, "re-removal is a no-op");
        assert_eq!(idx.len(), 4);
        assert_eq!(idx.tombstones(), 2);
        assert!(idx.search("repair", 5).is_empty(), "df of a fully dead term is live-corrected");

        // Upsert replaces doc 12 and re-introduces id 11 with new text:
        // per-entry tombstones must surface the new entries.
        idx.upsert(
            exec,
            &[(12, "Proton arcs spare healthy tissue."), (11, "Dose painting boosts tumours.")],
        );
        assert_eq!(idx.len(), 5, "12 replaced in place, 11 re-added");

        // From-scratch rebuild over the final live docs: interning order
        // differs (e.g. "radiation" is no longer term 0), yet every score
        // must match bit-for-bit thanks to string-ordered accumulation
        // and live-corrected n/avgdl/df.
        let mut rebuilt = LexicalIndex::default();
        rebuilt.add(10, "Radiation induces apoptosis in tumour cells.");
        rebuilt.add(13, "Hospital billing codes changed in fiscal budgets.");
        rebuilt.add(15, "");
        rebuilt.add(12, "Proton arcs spare healthy tissue.");
        rebuilt.add(11, "Dose painting boosts tumours.");
        for q in ["radiation tumour", "proton dose", "billing", "repair pathways", ""] {
            assert_eq!(idx.search(q, 6), rebuilt.search(q, 6), "query {q:?}");
        }

        // Serialisation writes the live view; compaction is the same
        // rewrite in place, and neither changes a single search bit.
        let wire = idx.to_bytes();
        idx.compact();
        assert_eq!(idx.tombstones(), 0);
        assert_eq!(idx.to_bytes(), wire);
        for q in ["radiation tumour", "proton dose", "billing"] {
            assert_eq!(idx.search(q, 6), rebuilt.search(q, 6), "post-compaction query {q:?}");
        }
        // The decoded live view keeps matching too.
        let back = LexicalIndex::from_bytes(&wire).expect("decodes");
        assert_eq!(back.search("radiation tumour", 6), rebuilt.search("radiation tumour", 6));

        // Degenerate: removing everything empties the index (the
        // vocabulary survives with zero-df terms, invisible to search).
        let mut all_gone = build();
        let ids: Vec<u64> = corpus().iter().map(|(id, _)| *id).collect();
        assert_eq!(all_gone.remove(&ids), 6);
        assert!(all_gone.is_empty());
        assert!(all_gone.search("radiation", 5).is_empty());
        all_gone.compact();
        assert_eq!(all_gone.len(), 0);
        let back = LexicalIndex::from_bytes(&all_gone.to_bytes()).expect("decodes");
        assert!(back.is_empty());
        assert!(back.search("radiation", 5).is_empty());
    }

    #[test]
    fn payload_bytes_counts_resident_structures() {
        let idx = build();
        assert!(idx.payload_bytes() > 0);
        assert!(idx.payload_bytes() >= idx.num_terms() * 4);
        assert_eq!(LexicalIndex::default().payload_bytes(), 0);
    }

    #[test]
    fn stats_track_documents() {
        let idx = build();
        assert_eq!(idx.len(), 6);
        assert!(idx.num_terms() > 0);
        assert!(!idx.is_empty());
    }
}
