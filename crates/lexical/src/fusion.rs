//! Rank fusion: merging dense and lexical candidate lists.
//!
//! Two strategies, both deterministic and both ranked through the shared
//! [`cmp_hits`] order so fused ties break exactly like index-internal
//! ties (descending score, ascending id):
//!
//! * **Reciprocal rank fusion** ([`rrf`]) — scores an id by
//!   `Σ 1/(k0 + rank)` over the lists that contain it. Rank-only, so the
//!   two channels' incommensurable score scales never meet; invariant
//!   under permutation of the input lists (per-id contributions are
//!   summed in a canonical order, so even the floating-point result is
//!   identical).
//! * **Weighted-score fusion** ([`weighted`]) — min-max normalises each
//!   list's scores to `[0, 1]`, then blends with `dense_weight` /
//!   `1 − dense_weight`. Sensitive to score shape but lets a caller dial
//!   channel trust.

use std::collections::HashMap;

use mcqa_util::{cmp_hits, SearchResult};
use serde::{Deserialize, Serialize};

/// A fusion strategy, carried on the query envelope.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Fusion {
    /// Reciprocal rank fusion with constant `k0` (60 is the literature
    /// default).
    Rrf {
        /// The rank-damping constant.
        k0: u32,
    },
    /// Weighted min-max score fusion; `dense` ∈ [0, 1] is the dense
    /// list's weight, the lexical list gets `1 − dense`.
    Weighted {
        /// Weight of the dense channel.
        dense: f32,
    },
}

impl Default for Fusion {
    fn default() -> Self {
        Self::Rrf { k0: 60 }
    }
}

impl Fusion {
    /// Merge one query's dense and lexical candidate lists into a fused
    /// top-`k`.
    pub fn fuse(
        &self,
        dense: &[SearchResult],
        lexical: &[SearchResult],
        k: usize,
    ) -> Vec<SearchResult> {
        match *self {
            Fusion::Rrf { k0 } => rrf(&[dense, lexical], k0, k),
            Fusion::Weighted { dense: w } => weighted(dense, lexical, w, k),
        }
    }

    /// A stable label for logs and bench output.
    pub fn label(&self) -> String {
        match self {
            Fusion::Rrf { k0 } => format!("rrf{k0}"),
            Fusion::Weighted { dense } => format!("wsum{dense:.2}"),
        }
    }
}

/// The default per-channel over-fetch multiplier ([`fuse_depth`] with
/// `depth == 0`). 8× in practice: 4× left hybrid a hair below dense on
/// one trace source — rank evidence between 4k and 8k was still moving
/// the fused order.
pub const DEFAULT_FUSE_DEPTH: usize = 8;

/// How deep each underlying channel should retrieve before fusing to a
/// top-`k`: rank evidence below the cut still moves the fused order, so
/// both channels over-fetch `depth`× (`0` selects
/// [`DEFAULT_FUSE_DEPTH`]).
pub fn fuse_depth(k: usize, depth: usize) -> usize {
    let d = if depth == 0 { DEFAULT_FUSE_DEPTH } else { depth };
    k.saturating_mul(d)
}

/// Reciprocal rank fusion over any number of ranked lists.
///
/// Per-id contributions `1/(k0 + rank)` are collected from every list,
/// then summed in ascending-denominator order — a canonical order, which
/// makes the result (bitwise, not just semantically) invariant under
/// permutation of `lists`.
pub fn rrf(lists: &[&[SearchResult]], k0: u32, k: usize) -> Vec<SearchResult> {
    let mut ranks: HashMap<u64, Vec<u64>> = HashMap::new();
    for list in lists {
        for (rank, hit) in list.iter().enumerate() {
            ranks.entry(hit.id).or_default().push(u64::from(k0) + rank as u64 + 1);
        }
    }
    let mut fused: Vec<SearchResult> = ranks
        .into_iter()
        .map(|(id, mut denoms)| {
            denoms.sort_unstable();
            let score: f64 = denoms.iter().map(|&d| 1.0 / d as f64).sum();
            SearchResult { id, score: score as f32 }
        })
        .collect();
    fused.sort_by(cmp_hits);
    fused.truncate(k);
    fused
}

/// Min-max normalise a list's scores to `[0, 1]` (a degenerate list —
/// empty or constant-score — normalises to all-ones: every member is its
/// channel's best evidence).
fn min_max(list: &[SearchResult]) -> Vec<(u64, f64)> {
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for h in list {
        lo = lo.min(f64::from(h.score));
        hi = hi.max(f64::from(h.score));
    }
    let span = hi - lo;
    list.iter()
        .map(|h| {
            let s = if span > 0.0 { (f64::from(h.score) - lo) / span } else { 1.0 };
            (h.id, s)
        })
        .collect()
}

/// Weighted-score fusion of one dense and one lexical list: each list is
/// min-max normalised, then an id scores
/// `dense_weight · dense_norm + (1 − dense_weight) · lexical_norm`
/// (missing from a list = 0 from that channel).
pub fn weighted(
    dense: &[SearchResult],
    lexical: &[SearchResult],
    dense_weight: f32,
    k: usize,
) -> Vec<SearchResult> {
    let w = f64::from(dense_weight).clamp(0.0, 1.0);
    let mut scores: HashMap<u64, f64> = HashMap::new();
    for (id, s) in min_max(dense) {
        *scores.entry(id).or_insert(0.0) += w * s;
    }
    for (id, s) in min_max(lexical) {
        *scores.entry(id).or_insert(0.0) += (1.0 - w) * s;
    }
    let mut fused: Vec<SearchResult> =
        scores.into_iter().map(|(id, s)| SearchResult { id, score: s as f32 }).collect();
    fused.sort_by(cmp_hits);
    fused.truncate(k);
    fused
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hits(pairs: &[(u64, f32)]) -> Vec<SearchResult> {
        pairs.iter().map(|&(id, score)| SearchResult { id, score }).collect()
    }

    #[test]
    fn rrf_rewards_agreement() {
        let dense = hits(&[(1, 0.9), (2, 0.8), (3, 0.7)]);
        let lex = hits(&[(2, 12.0), (4, 11.0)]);
        let fused = rrf(&[&dense, &lex], 60, 4);
        assert_eq!(fused[0].id, 2, "the id both channels rank wins: {fused:?}");
        assert_eq!(fused.len(), 4);
    }

    #[test]
    fn rrf_is_permutation_invariant_bitwise() {
        let a = hits(&[(1, 0.9), (2, 0.8)]);
        let b = hits(&[(2, 5.0), (3, 4.0)]);
        let c = hits(&[(3, 1.0), (1, 0.5)]);
        let base = rrf(&[&a, &b, &c], 60, 10);
        for perm in [[&b, &a, &c], [&c, &b, &a], [&a, &c, &b]] {
            let lists: Vec<&[SearchResult]> = perm.iter().map(|l| l.as_slice()).collect();
            assert_eq!(rrf(&lists, 60, 10), base);
        }
    }

    #[test]
    fn rrf_ties_break_by_ascending_id() {
        // Symmetric evidence: ids 7 and 3 each rank first in one list and
        // nowhere else — identical scores, so the lower id must lead.
        let a = hits(&[(7, 0.5)]);
        let b = hits(&[(3, 9.0)]);
        let fused = rrf(&[&a, &b], 60, 2);
        assert_eq!(fused.iter().map(|h| h.id).collect::<Vec<_>>(), vec![3, 7]);
        assert_eq!(fused[0].score, fused[1].score);
    }

    #[test]
    fn weighted_extremes_follow_one_channel() {
        let dense = hits(&[(1, 0.9), (2, 0.5), (3, 0.1)]);
        let lex = hits(&[(3, 8.0), (2, 6.0), (1, 2.0)]);
        let d_only = weighted(&dense, &lex, 1.0, 3);
        assert_eq!(d_only.iter().map(|h| h.id).collect::<Vec<_>>(), vec![1, 2, 3]);
        let l_only = weighted(&dense, &lex, 0.0, 3);
        assert_eq!(l_only.iter().map(|h| h.id).collect::<Vec<_>>(), vec![3, 2, 1]);
    }

    #[test]
    fn degenerate_inputs_are_total() {
        assert!(rrf(&[], 60, 5).is_empty());
        assert!(rrf(&[&[], &[]], 60, 5).is_empty());
        assert!(Fusion::default().fuse(&[], &[], 5).is_empty());
        assert!(weighted(&[], &[], 0.5, 0).is_empty());
        // Constant-score list (span 0) still fuses.
        let flat = hits(&[(1, 0.5), (2, 0.5)]);
        let fused = weighted(&flat, &[], 0.5, 2);
        assert_eq!(fused.len(), 2);
        assert_eq!(fused[0].id, 1, "ties break by id");
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Fusion::default().label(), "rrf60");
        assert_eq!(Fusion::Weighted { dense: 0.5 }.label(), "wsum0.50");
    }
}
