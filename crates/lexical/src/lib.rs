//! `mcqa-lexical` — the keyword retrieval channel.
//!
//! Every source database in the pipeline is dense-only (hash-embedding
//! vectors behind `mcqa-index`'s `VectorStore`). This crate adds the
//! lexical sibling each dense store pairs with, plus the layer that merges
//! the two channels:
//!
//! * [`bm25`] — [`LexicalIndex`], an Okapi BM25 inverted index built on
//!   `mcqa-text`'s **shared** tokenisation ([`mcqa_text::content_tokens`]
//!   — there is exactly one tokeniser in this workspace) and
//!   [`mcqa_text::Vocabulary`] for the term ↔ id tables and document
//!   frequencies. Postings serialise with the delta-varint codec
//!   primitives of [`mcqa_util::codec`] under the `LEXI` magic tag;
//!   `add_batch` / `search_batch` fan out on the shared
//!   [`mcqa_runtime::Executor`] and are bit-identical to their serial
//!   counterparts at any worker count.
//! * [`fusion`] — reciprocal-rank fusion and weighted-score fusion over
//!   dense + lexical candidate lists, ranked through the one shared
//!   [`mcqa_util::cmp_hits`] order so ties cannot break differently from
//!   the index families.
//!
//! Hits are [`mcqa_util::SearchResult`]s — the same type the vector
//! stores return — so fused lists are drop-in replacements anywhere a
//! dense result list flows today.

pub mod bm25;
pub mod fusion;

pub use bm25::{Bm25Params, LexicalIndex};
pub use fusion::{fuse_depth, Fusion, DEFAULT_FUSE_DEPTH};
