//! Pipeline configuration with paper-scale defaults.

use mcqa_corpus::AcquisitionConfig;
use mcqa_embed::EmbedConfig;
use mcqa_index::IndexSpec;
use mcqa_llm::ModelSpec;
use mcqa_ontology::OntologyConfig;
use mcqa_text::ChunkerConfig;
use serde::{Deserialize, Serialize};

/// Configuration for the whole benchmark-generation pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Master seed: every stage derives its own stream from it.
    pub seed: u64,
    /// Fraction of the paper's corpus size (1.0 = 14,115 papers + 8,433
    /// abstracts; the default 0.1 keeps laptop runs in seconds).
    pub scale: f64,
    /// Domain ontology settings.
    pub ontology: OntologyConfig,
    /// Corpus acquisition settings.
    pub acquisition: AcquisitionConfig,
    /// Semantic chunker settings.
    pub chunker: ChunkerConfig,
    /// Encoder settings (the PubMedBERT stand-in).
    pub embed: EmbedConfig,
    /// Judge acceptance threshold (paper: 7/10).
    pub quality_threshold: u8,
    /// Retrieval depth for RAG (passages per query).
    pub retrieval_k: usize,
    /// Worker threads for the runtime pool (0 = one per core).
    pub workers: usize,
    /// Vector-store backend for every database the pipeline builds
    /// (chunks + one per trace mode). Flat is exact and the paper's
    /// effective configuration; HNSW/IVF trade recall for speed
    /// (`repro recall` measures the trade).
    pub index: IndexSpec,
    /// Model backend serving every role (teacher, judge, classifier,
    /// answerers) behind the `ModelEndpoint` trait. `sim` is the
    /// calibrated behavioural simulator; a remote backend would be a new
    /// variant, selected here (`repro --models`).
    pub models: ModelSpec,
}

impl PipelineConfig {
    /// The paper's configuration scaled by `scale`, seeded by `seed`.
    ///
    /// The ontology's fact count scales sublinearly (a field's body of
    /// knowledge does not shrink as fast as a corpus sample), keeping the
    /// benchmark's fact-coverage density — and therefore exam-time trace
    /// retrieval — comparable across scales.
    pub fn at_scale(scale: f64, seed: u64) -> Self {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        let facts = ((6_000.0 * scale * 1.5) as usize).clamp(600, 6_000);
        let quant = ((600.0 * scale * 1.5) as usize).clamp(150, 600);
        let entities = ((facts as f64 / 12.0) as usize).max(60);
        Self {
            seed,
            scale,
            ontology: OntologyConfig {
                seed,
                entities_per_kind: entities,
                qualitative_facts: facts,
                quantitative_facts: quant,
            },
            acquisition: AcquisitionConfig::paper_scale(scale, seed),
            chunker: ChunkerConfig::default(),
            embed: EmbedConfig { seed, ..EmbedConfig::default() },
            quality_threshold: 7,
            retrieval_k: 8,
            workers: 0,
            index: IndexSpec::Flat,
            models: ModelSpec::Sim,
        }
    }

    /// A tiny configuration for unit/integration tests (sub-second runs).
    pub fn tiny(seed: u64) -> Self {
        let mut c = Self::at_scale(0.01, seed);
        c.ontology.qualitative_facts = 600;
        c.ontology.quantitative_facts = 150;
        c.ontology.entities_per_kind = 60;
        c
    }

    /// Effective worker count.
    pub fn effective_workers(&self) -> usize {
        if self.workers == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
        } else {
            self.workers
        }
    }
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self::at_scale(0.1, 42)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_counts() {
        let c = PipelineConfig::at_scale(1.0, 7);
        assert_eq!(c.acquisition.full_papers, 14_115);
        assert_eq!(c.acquisition.abstracts, 8_433);
        assert_eq!(c.ontology.qualitative_facts, 6_000);
        assert_eq!(c.quality_threshold, 7);
        assert_eq!(c.retrieval_k, 8);
    }

    #[test]
    fn small_scale_clamps_ontology() {
        let c = PipelineConfig::at_scale(0.01, 7);
        assert_eq!(c.ontology.qualitative_facts, 600);
        assert!(c.ontology.entities_per_kind >= 60);
        assert_eq!(c.acquisition.full_papers, 141);
    }

    #[test]
    #[should_panic(expected = "scale must be in")]
    fn zero_scale_rejected() {
        PipelineConfig::at_scale(0.0, 1);
    }

    #[test]
    fn workers_default_positive() {
        let c = PipelineConfig::default();
        assert!(c.effective_workers() >= 1);
    }

    #[test]
    fn serde_roundtrip() {
        let c = PipelineConfig::tiny(3);
        let s = serde_json::to_string(&c).unwrap();
        let back: PipelineConfig = serde_json::from_str(&s).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn model_backend_is_a_config_choice() {
        // The model layer mirrors the index layer: the backend is a value,
        // and it survives serialisation (it is part of provenance).
        let c = PipelineConfig::default();
        assert_eq!(c.models, ModelSpec::Sim);
        assert_eq!(c.models.label(), "sim");
        let back: PipelineConfig =
            serde_json::from_str(&serde_json::to_string(&c).unwrap()).unwrap();
        assert_eq!(back.models, ModelSpec::Sim);
    }

    #[test]
    fn index_backend_is_a_config_choice() {
        // Flat is the exact default; ANN backends swap in by value, and
        // the choice survives serialisation (it is part of provenance).
        let mut c = PipelineConfig::default();
        assert_eq!(c.index, IndexSpec::Flat);
        c.index = IndexSpec::parse("hnsw").unwrap();
        let back: PipelineConfig =
            serde_json::from_str(&serde_json::to_string(&c).unwrap()).unwrap();
        assert_eq!(back.index.label(), "hnsw");
    }
}
