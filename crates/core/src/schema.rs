//! The paper's JSON record schemas.
//!
//! * [`QuestionRecord`] reproduces Figure 2: question text, options,
//!   answer, type, provenance (`chunk_id` + file path), and the relevance
//!   and quality checks that make filtering transparent.
//! * [`TraceRecord`] reproduces Figure 3: the three reasoning modes with
//!   the final answer excluded, linked back to the question.

use mcqa_llm::TraceMode;
use mcqa_ontology::{FactId, Topic};
use serde::{Deserialize, Serialize};

/// Provenance of a generated question (Figure 2's lineage block).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Provenance {
    /// Source chunk id.
    pub chunk_id: u64,
    /// Source container path.
    pub file_path: String,
    /// Source document id.
    pub doc_id: u32,
    /// The supporting fact (simulation ground truth; a real deployment
    /// would not have this field — it is what makes the reproduction
    /// verifiable).
    pub fact_id: u64,
}

/// Quality-control block (Figure 2's `quality` object).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QualityBlock {
    /// Judge score, 1–10.
    pub score: u8,
    /// Judge reasoning.
    pub reasoning: String,
    /// Whether the item passed the acceptance threshold.
    pub passed: bool,
}

/// The Figure-2 question record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuestionRecord {
    /// Benchmark-wide question id.
    pub question_id: u64,
    /// Question stem.
    pub question: String,
    /// Options in display order (seven on the synthetic benchmark).
    pub options: Vec<String>,
    /// Correct answer as `"C"`-style letter.
    pub answer_letter: char,
    /// Correct answer text.
    pub answer_text: String,
    /// Question type tag (`"multiple-choice"`).
    pub question_type: String,
    /// Topical subfield.
    pub topic: Topic,
    /// Lineage to the source chunk and document.
    pub provenance: Provenance,
    /// Relevance check: does the source chunk actually state the fact the
    /// question tests?
    pub relevance_check: bool,
    /// Quality check from the LLM judge.
    pub quality: QualityBlock,
}

impl QuestionRecord {
    /// Serialise as a JSONL line.
    pub fn to_jsonl(&self) -> String {
        serde_json::to_string(self).expect("record serialises")
    }

    /// Parse a JSONL line.
    pub fn from_jsonl(line: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(line)
    }
}

/// The Figure-3 reasoning-trace record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Trace id (unique across modes).
    pub trace_id: u64,
    /// The question this trace reasons about.
    pub question_id: u64,
    /// Reasoning mode.
    pub mode: TraceMode,
    /// The reasoning text (final answer excluded).
    pub trace: String,
    /// The teacher that produced it.
    pub teacher: String,
    /// Leakage control flag (always true; audited in tests).
    pub answer_excluded: bool,
    /// The supporting fact (ground truth for retrieval relevance).
    pub fact_id: u64,
}

impl TraceRecord {
    /// Serialise as a JSONL line.
    pub fn to_jsonl(&self) -> String {
        serde_json::to_string(self).expect("record serialises")
    }

    /// Parse a JSONL line.
    pub fn from_jsonl(line: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(line)
    }

    /// The fact id as a typed id.
    pub fn fact(&self) -> FactId {
        FactId(self.fact_id)
    }
}

/// Write records to a JSONL string (one line per record).
pub fn to_jsonl_document<T: Serialize>(records: &[T]) -> String {
    records
        .iter()
        .map(|r| serde_json::to_string(r).expect("record serialises"))
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_question() -> QuestionRecord {
        QuestionRecord {
            question_id: 17,
            question: "Which pathway is activated by TRK2 following irradiation?".into(),
            options: (0..7).map(|i| format!("opt{i}")).collect(),
            answer_letter: 'B',
            answer_text: "opt1".into(),
            question_type: "multiple-choice".into(),
            topic: Topic::DnaRepair,
            provenance: Provenance {
                chunk_id: 655_361,
                file_path: "corpus/doc_000010.spdf".into(),
                doc_id: 10,
                fact_id: 99,
            },
            relevance_check: true,
            quality: QualityBlock { score: 8, reasoning: "clear".into(), passed: true },
        }
    }

    #[test]
    fn question_jsonl_roundtrip() {
        let q = sample_question();
        let line = q.to_jsonl();
        assert!(!line.contains('\n'));
        assert_eq!(QuestionRecord::from_jsonl(&line).unwrap(), q);
    }

    #[test]
    fn question_schema_has_figure2_fields() {
        let v: serde_json::Value = serde_json::from_str(&sample_question().to_jsonl()).unwrap();
        for field in [
            "question_id",
            "question",
            "options",
            "answer_letter",
            "question_type",
            "provenance",
            "relevance_check",
            "quality",
        ] {
            assert!(v.get(field).is_some(), "missing {field}");
        }
        assert!(v["provenance"].get("chunk_id").is_some());
        assert!(v["provenance"].get("file_path").is_some());
        assert!(v["quality"].get("score").is_some());
        assert!(v["quality"].get("reasoning").is_some());
    }

    #[test]
    fn trace_jsonl_roundtrip_and_fields() {
        let t = TraceRecord {
            trace_id: 3,
            question_id: 17,
            mode: TraceMode::Focused,
            trace: "Principle: ... final answer withheld.".into(),
            teacher: "GPT-4.1-sim".into(),
            answer_excluded: true,
            fact_id: 99,
        };
        let line = t.to_jsonl();
        assert_eq!(TraceRecord::from_jsonl(&line).unwrap(), t);
        let v: serde_json::Value = serde_json::from_str(&line).unwrap();
        for field in ["trace_id", "question_id", "mode", "trace", "answer_excluded"] {
            assert!(v.get(field).is_some(), "missing {field}");
        }
        assert_eq!(t.fact(), FactId(99));
    }

    #[test]
    fn jsonl_document_layout() {
        let doc = to_jsonl_document(&[sample_question(), sample_question()]);
        assert_eq!(doc.lines().count(), 2);
        for line in doc.lines() {
            assert!(QuestionRecord::from_jsonl(line).is_ok());
        }
    }
}
