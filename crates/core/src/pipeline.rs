//! The orchestrated end-to-end pipeline.
//!
//! Every run — the cold full build and the incremental re-run — flows
//! through one planner (`Pipeline::run_planned`): the corpus is content-
//! hashed, diffed against the previous run's [`IngestManifest`] (empty on
//! a cold build, so everything classifies as added), and only the
//! chunk→embed→question slices the [`mcqa_ingest::ChangeSet`] touches are
//! re-run. Unchanged slices replay from the previous output; stale index
//! rows are tombstoned and fresh rows upserted in place. There is no
//! second bookkeeping path: a full rebuild is the all-added degenerate
//! case of the incremental plan.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use mcqa_corpus::{CorpusLibrary, DocId};
use mcqa_embed::{BioEncoder, Precision};
use mcqa_index::{build_store_from_vectors, IndexRegistry, Metric, VectorStore};
use mcqa_ingest::{ContentHash, IngestCensus, IngestManifest};
use mcqa_lexical::LexicalIndex;
use mcqa_llm::{
    build_hub, BenchKind, Judge, McqItem, ModelEndpoint, ModelHub, QuestionPrompt, Teacher,
    TraceMode, OPTION_LETTERS,
};
use mcqa_ontology::Ontology;
use mcqa_parse::{AdaptiveParser, ParsedDocument, ParserConfig};
use mcqa_runtime::{run_stage, run_stage_batched, Executor, RunReport, StageMetrics};
use mcqa_util::{KeyedStochastic, ScopeTimer};

use crate::chunks::ChunkRecord;
use crate::config::PipelineConfig;
use crate::schema::{Provenance, QualityBlock, QuestionRecord, TraceRecord};

/// Registry name of the chunk vector database. The per-mode trace
/// databases are named by [`TraceMode::db_name`] (`traces-<mode>`).
pub const CHUNKS_STORE: &str = "chunks";

/// Manifest source name under which the corpus document table is
/// content-addressed.
pub const CORPUS_SOURCE: &str = "corpus";

/// A store is compacted once tombstones exceed a quarter of its live
/// rows — cheap enough to amortise, tight enough that scans never wade
/// through mostly-dead storage.
fn over_tombstone_threshold(tombstones: usize, live: usize) -> bool {
    tombstones * 4 > live.max(1)
}

/// Everything the pipeline produces, ready for evaluation.
pub struct PipelineOutput {
    /// The configuration that produced this output.
    pub config: PipelineConfig,
    /// The generating ontology (ground truth).
    pub ontology: Arc<Ontology>,
    /// The corpus library (documents + blobs + oracle).
    pub library: Arc<CorpusLibrary>,
    /// All semantic chunks with provenance.
    pub chunks: Vec<ChunkRecord>,
    /// The shared encoder.
    pub encoder: BioEncoder,
    /// Accepted question records (Figure-2 schema).
    pub questions: Vec<QuestionRecord>,
    /// Accepted questions in evaluation form (index-aligned with
    /// `questions`; `qid` equals the position).
    pub items: Vec<McqItem>,
    /// Number of candidate questions generated (one per chunk), counting
    /// memoized candidates replayed by an incremental run.
    pub candidates: usize,
    /// Reasoning-trace records (Figure-3 schema), 3 per accepted question.
    pub traces: Vec<TraceRecord>,
    /// Per-mode trace embeddings in question-id order
    /// (`trace_vectors[mode-index][qid]`, mode index as in
    /// [`TraceMode::ALL`]). Trace text — and therefore its embedding —
    /// depends only on question content, so an incremental re-run re-keys
    /// a shifted question's store rows from these instead of re-encoding
    /// three unchanged traces per shifted id.
    pub trace_vectors: Vec<Vec<Vec<f32>>>,
    /// The paper's four vector databases behind one registry, all built
    /// with the backend `config.index` selects: [`CHUNKS_STORE`] keyed by
    /// `chunk_id` plus one [`TraceMode::db_name`] store per mode keyed by
    /// `question_id`. `Arc`-shared so the serving layer's dispatcher
    /// thread can hold the registry without copying the stores.
    pub indexes: Arc<IndexRegistry>,
    /// The model hub that served every model call: the backend
    /// `config.models` selects, behind the response cache and per-role
    /// call ledger. The evaluator routes its judge/classifier/answerer
    /// calls through this same hub, so one ledger accounts for the whole
    /// reproduction and repeated evaluation passes hit the cache.
    pub models: Arc<ModelHub>,
    /// Per-stage metrics (Figure-1 reproduction), including one
    /// `model-<role>` cost row per model role the pipeline called.
    pub report: RunReport,
    /// The scheduler the pipeline ran on. Downstream consumers (the
    /// evaluator, retrieval bundles, ablations) clone this handle so the
    /// whole reproduction shares one pool and one metrics surface.
    pub executor: Executor,
    /// The corpus content-address table this output was built from.
    /// Persist it alongside the registry blob; the next run diffs its own
    /// table against this one to plan incremental work.
    pub manifest: IngestManifest,
    /// What the ingest planner scanned, skipped, and re-ran.
    pub ingest: IngestCensus,
}

impl PipelineOutput {
    /// Quality-filter acceptance rate (paper: ≈ 9.6%).
    pub fn acceptance_rate(&self) -> f64 {
        if self.candidates == 0 {
            0.0
        } else {
            self.items.len() as f64 / self.candidates as f64
        }
    }

    /// The chunk vector database. Panics when absent (a wiring bug).
    pub fn chunk_store(&self) -> &dyn VectorStore {
        self.indexes.expect_store(CHUNKS_STORE)
    }

    /// The trace vector database for `mode`. Panics when absent.
    pub fn trace_store(&self, mode: TraceMode) -> &dyn VectorStore {
        self.indexes.expect_store(mode.db_name())
    }
}

/// The pipeline runner.
pub struct Pipeline;

/// A memoized per-chunk generation outcome replayed from a previous run.
struct PrevOutcome<'a> {
    record: &'a QuestionRecord,
    item: &'a McqItem,
    /// The question id the previous run assigned (ids are dense in
    /// acceptance order, so edits upstream shift them).
    old_qid: u64,
}

impl Pipeline {
    /// Run every stage from scratch: generate the ontology, acquire the
    /// corpus, and hand off to the planner with no previous output.
    pub fn run(config: &PipelineConfig) -> PipelineOutput {
        let mut report = RunReport::new();
        let exec = Executor::new(config.effective_workers());

        // Stage 1: ontology + corpus acquisition (synthesis and SPDF
        // rendering fan out on the pool inside `CorpusLibrary::build`).
        let t = ScopeTimer::start("acquire");
        let ontology = Arc::new(Ontology::generate(&config.ontology));
        let library = Arc::new(CorpusLibrary::build(&ontology, &config.acquisition, &exec));
        report.add(StageMetrics::single("acquire", library.len(), library.len(), t.elapsed_secs()));

        Self::run_planned(config, ontology, library, exec, report, None)
    }

    /// Full build over an existing (possibly edited) corpus — the cold
    /// rebuild an incremental run is measured against.
    pub fn run_full(
        config: &PipelineConfig,
        ontology: Arc<Ontology>,
        library: Arc<CorpusLibrary>,
    ) -> PipelineOutput {
        let exec = Executor::new(config.effective_workers());
        Self::run_planned(config, ontology, library, exec, RunReport::new(), None)
    }

    /// Incremental run: content-hash `library`, diff against `prev`'s
    /// manifest, and re-run only the slices the change set touches.
    /// Unchanged chunks replay their memoized generation outcome; index
    /// rows for removed/modified slices are tombstoned and fresh rows
    /// upserted, compacting once tombstones exceed the threshold.
    pub fn run_incremental(
        config: &PipelineConfig,
        prev: &PipelineOutput,
        library: Arc<CorpusLibrary>,
    ) -> PipelineOutput {
        assert_eq!(config.seed, prev.config.seed, "incremental run must keep the seed");
        assert_eq!(
            config.index.label(),
            prev.config.index.label(),
            "incremental run must keep the index backend"
        );
        let exec = Executor::new(config.effective_workers());
        Self::run_planned(
            config,
            Arc::clone(&prev.ontology),
            library,
            exec,
            RunReport::new(),
            Some(prev),
        )
    }

    /// The single planner every run flows through. `prev: None` is the
    /// cold build: the diff against an empty manifest classifies every
    /// document as added, so the whole corpus is one big re-run slice.
    fn run_planned(
        config: &PipelineConfig,
        ontology: Arc<Ontology>,
        library: Arc<CorpusLibrary>,
        exec: Executor,
        mut report: RunReport,
        prev: Option<&PipelineOutput>,
    ) -> PipelineOutput {
        let mut census = IngestCensus::default();

        // Ingest scan: content-hash every live document (fanned out) and
        // diff the merkle trees. O(changed·log n) once the hashes exist.
        let live_ids = library.live_ids();
        let (hash_results, mut scan_metrics) =
            run_stage_batched(&exec, "ingest-scan", live_ids, 0, |id| {
                let blob = library.download(id).expect("live doc has a blob");
                Ok::<_, String>((id.0 as u64, ContentHash::of_bytes(blob)))
            });
        let table: Vec<(u64, ContentHash)> =
            hash_results.into_iter().map(|r| r.expect("hashing cannot fail")).collect();
        let mut manifest = IngestManifest::new();
        manifest.set_source(CORPUS_SOURCE, table);
        let prev_manifest = prev.map_or_else(IngestManifest::new, |p| p.manifest.clone());
        let changes = IngestManifest::diff(&prev_manifest, &manifest, CORPUS_SOURCE);
        census.docs_scanned = library.live_len();
        census.docs_added = changes.added.len();
        census.docs_modified = changes.modified.len();
        census.docs_removed = changes.removed.len();
        scan_metrics.produced = changes.len();
        report.add(scan_metrics);

        // Stage 2: adaptive parallel parsing — only the added/modified
        // documents (everything, on a cold build).
        let mut parse_ids: Vec<u32> =
            changes.added.iter().chain(&changes.modified).map(|id| *id as u32).collect();
        parse_ids.sort_unstable();
        let parser = AdaptiveParser::new(ParserConfig::default());
        let (parse_results, parse_metrics) = run_stage(&exec, "parse", parse_ids, |id| {
            let blob = library.download(DocId(id)).ok_or_else(|| format!("doc {id} missing"))?;
            match parser.parse(blob).document() {
                Some(doc) => Ok((id, doc.clone())),
                None => Err(format!("doc {id} unparseable")),
            }
        });
        let parsed: Vec<(u32, ParsedDocument)> =
            parse_results.into_iter().filter_map(Result::ok).collect();
        report.add(parse_metrics);

        // Stage 3: semantic chunking with provenance mapping, fanned out one
        // task per re-parsed document on the work-stealing pool. The stage's
        // metrics keep both rates observable: `throughput()` is docs/s,
        // `output_throughput()` is chunks/s.
        let encoder = BioEncoder::new(config.embed.clone());
        let chunker_cfg = config.chunker.clone();
        let (chunk_results, mut chunk_metrics) = run_stage(&exec, "chunk", parsed, |(id, pdoc)| {
            let chunker = mcqa_text::Chunker::new(&encoder, chunker_cfg.clone());
            let doc_id = DocId(id);
            let truth = library.document(doc_id);
            let text = pdoc.full_text();
            let records: Vec<ChunkRecord> = chunker
                .chunk(&text)
                .into_iter()
                .enumerate()
                .map(|(ci, c)| {
                    // Provenance oracle: which fact mentions landed in
                    // this chunk (verbatim sentence containment).
                    let mut facts: Vec<mcqa_ontology::FactId> = truth
                        .map(|d| {
                            d.mentions
                                .iter()
                                .filter(|m| c.text.contains(&m.sentence))
                                .map(|m| m.fact)
                                .collect()
                        })
                        .unwrap_or_default();
                    facts.sort_unstable();
                    facts.dedup();
                    ChunkRecord {
                        chunk_id: ChunkRecord::make_id(doc_id, ci as u32),
                        doc: doc_id,
                        index_in_doc: ci as u32,
                        text: c.text,
                        tokens: c.tokens,
                        facts,
                    }
                })
                .collect();
            Ok::<_, String>(records)
        });
        let mut fresh_chunks: Vec<ChunkRecord> =
            chunk_results.into_iter().filter_map(Result::ok).flatten().collect();
        fresh_chunks.sort_by_key(|c| c.chunk_id);
        chunk_metrics.produced = fresh_chunks.len();
        report.add(chunk_metrics);

        // Ingest merge: replay chunks of untouched documents from the
        // previous run, splice in the freshly chunked slices, and keep the
        // global chunk-id order a cold build would produce.
        let t = ScopeTimer::start("ingest-chunks");
        let dead_docs: HashSet<u32> =
            changes.modified.iter().chain(&changes.removed).map(|id| *id as u32).collect();
        let fresh_ids: HashSet<u64> = fresh_chunks.iter().map(|c| c.chunk_id).collect();
        let mut chunks: Vec<ChunkRecord> = prev
            .map(|p| p.chunks.iter().filter(|c| !dead_docs.contains(&c.doc.0)).cloned().collect())
            .unwrap_or_default();
        census.chunks_reused = chunks.len();
        census.chunks_rerun = fresh_chunks.len();
        chunks.append(&mut fresh_chunks);
        chunks.sort_by_key(|c| c.chunk_id);
        census.chunks_total = chunks.len();
        report.add(StageMetrics::single(
            "ingest-chunks",
            chunks.len(),
            census.chunks_rerun,
            t.elapsed_secs(),
        ));

        // Stage 4: embed the re-run chunks (batched submission — the
        // per-item cost is one hash-encode, so chunked tasks amortise
        // scheduling overhead). Unchanged chunks keep their rows in the
        // previous run's stores, so they are never re-embedded.
        let gen_chunks: Vec<&ChunkRecord> =
            chunks.iter().filter(|c| fresh_ids.contains(&c.chunk_id)).collect();
        let (embed_results, embed_metrics) =
            run_stage_batched(&exec, "embed-chunks", (0..gen_chunks.len()).collect(), 0, |i| {
                let c = gen_chunks[i];
                Ok::<_, String>((c.chunk_id, encoder.encode(&c.text)))
            });
        // The embed closure is infallible, so an Err slot can only be a
        // panic; a silently missing vector would skew retrieval, so fail
        // loudly instead.
        let chunk_vectors: Vec<(u64, Vec<f32>)> =
            embed_results.into_iter().map(|r| r.expect("embed-chunks task cannot fail")).collect();
        report.add(embed_metrics);

        // Chunk DB: cold build bulk-loads the configured backend; an
        // incremental run decodes the previous registry, tombstones the
        // rows of removed/modified documents, and appends the fresh ones.
        let mut indexes = match prev {
            None => IndexRegistry::new(),
            Some(p) => IndexRegistry::from_bytes(&p.indexes.to_bytes())
                .expect("a registry round-trips through its own serialisation"),
        };
        let dead_chunk_ids: Vec<u64> = prev
            .map(|p| {
                p.chunks
                    .iter()
                    .filter(|c| dead_docs.contains(&c.doc.0))
                    .map(|c| c.chunk_id)
                    .collect()
            })
            .unwrap_or_default();

        let t = ScopeTimer::start("index-chunks");
        if prev.is_none() {
            let chunk_store = build_store_from_vectors(
                &config.index,
                config.embed.dim,
                Metric::Cosine,
                Precision::F16,
                &exec,
                &chunk_vectors,
            );
            indexes.insert(CHUNKS_STORE, chunk_store);
        } else {
            let store = indexes.expect_store_mut(CHUNKS_STORE);
            census.tombstones_dense += store.remove(&dead_chunk_ids);
            store.add_batch(&exec, &chunk_vectors);
            if over_tombstone_threshold(store.tombstones(), store.len()) {
                store.compact(&exec);
                census.compactions += 1;
            }
        }
        report.add(StageMetrics::single(
            "index-chunks",
            chunk_vectors.len(),
            indexes.expect_store(CHUNKS_STORE).len(),
            t.elapsed_secs(),
        ));
        drop(chunk_vectors);

        // Lexical sibling: the same chunks indexed by BM25 — the hybrid
        // retrieval channel's word-level view, one Figure-1 stage row like
        // any dense build. Mutated with the same tombstone surface.
        let t = ScopeTimer::start("index-lex-chunks");
        let lex_pairs: Vec<(u64, &str)> =
            gen_chunks.iter().map(|c| (c.chunk_id, c.text.as_str())).collect();
        let lex_name = IndexRegistry::lexical_sibling(CHUNKS_STORE);
        if prev.is_none() {
            let mut chunk_lex = LexicalIndex::new(Default::default());
            chunk_lex.add_batch(&exec, &lex_pairs);
            indexes.insert_lexical(&lex_name, chunk_lex);
        } else {
            let lex = indexes.expect_lexical_mut(&lex_name);
            census.tombstones_lexical += lex.remove(&dead_chunk_ids);
            lex.add_batch(&exec, &lex_pairs);
            if over_tombstone_threshold(lex.tombstones(), lex.len()) {
                lex.compact();
                census.compactions += 1;
            }
        }
        report.add(StageMetrics::single(
            "index-lex-chunks",
            lex_pairs.len(),
            indexes.expect_lexical(&lex_name).len(),
            t.elapsed_secs(),
        ));
        drop(lex_pairs);

        // Stage 5: question generation (one candidate per re-run chunk) +
        // judge filtering at the paper's 7/10 threshold. Both model roles
        // run through the endpoint's batched completion API. Unchanged
        // chunks replay their memoized outcome below — including memoized
        // rejections, which must not burn a second model call.
        let models = Arc::new(build_hub(&config.models, config.seed, Arc::clone(&ontology)));
        let endpoint: Arc<dyn ModelEndpoint> = models.clone();
        let teacher = Teacher::new(endpoint.clone(), config.seed);
        let judge = Judge::new(endpoint, config.seed);
        let rng = KeyedStochastic::new(config.seed ^ 0x9E5_71A6);
        let candidates = chunks.len();

        let t = ScopeTimer::start("generate+judge");
        // Anchor fact per chunk: one stated by the chunk, or (relevance
        // failure) an arbitrary fact — real pipelines generate from every
        // chunk and rely on QC to drop the unanchored ones.
        struct Candidate<'a> {
            chunk: &'a ChunkRecord,
            fact_id: mcqa_ontology::FactId,
            relevant: bool,
        }
        let cands: Vec<Candidate> = gen_chunks
            .iter()
            .filter_map(|chunk| {
                let ckey = chunk.chunk_id.to_string();
                let (fact_id, relevant) = if chunk.facts.is_empty() {
                    let all = ontology.facts();
                    (all[rng.below(all.len(), &["anchor", &ckey])].id, false)
                } else {
                    (chunk.facts[rng.below(chunk.facts.len(), &["anchor", &ckey])], true)
                };
                ontology.fact(fact_id).map(|_| Candidate { chunk, fact_id, relevant })
            })
            .collect();

        let prompts: Vec<QuestionPrompt> = cands
            .iter()
            .map(|c| QuestionPrompt {
                fact: c.fact_id,
                salt: c.chunk.chunk_id.to_string(),
                passage: &c.chunk.text,
            })
            .collect();
        let generated = if prompts.is_empty() {
            Vec::new()
        } else {
            teacher.generate_question_batch(&exec, &prompts)
        };

        // Candidates whose distractor pool was exhausted (< 7 options)
        // never reach the judge.
        let wellformed: Vec<(&Candidate, &mcqa_llm::GeneratedQuestion)> =
            cands.iter().zip(&generated).filter(|(_, q)| q.options.len() == 7).collect();
        let score_prompts: Vec<(&mcqa_llm::GeneratedQuestion, f64)> = wellformed
            .iter()
            .map(|(c, q)| (*q, ontology.fact(c.fact_id).expect("anchor resolved").salience))
            .collect();
        let judgments = if score_prompts.is_empty() {
            Vec::new()
        } else {
            judge.score_question_batch(&exec, &score_prompts)
        };

        // Accepted outcomes of the re-run slice, in chunk-id order. Ids
        // stay provisional (0) until the merge renumbers the full set.
        let mut fresh_accepted: Vec<(u64, QuestionRecord, McqItem)> = Vec::new();
        for ((cand, q), mut judgment) in wellformed.into_iter().zip(judgments) {
            if !cand.relevant {
                // The paper's relevance check: the chunk does not state the
                // tested fact.
                judgment.score = judgment.score.saturating_sub(4).max(1);
                judgment.reasoning = format!(
                    "Relevance check failed: source chunk does not state the tested fact. {}",
                    judgment.reasoning
                );
            }
            let passed = judgment.score >= config.quality_threshold;
            if !passed {
                continue;
            }
            let fact = ontology.fact(cand.fact_id).expect("anchor resolved");
            let record = QuestionRecord {
                question_id: 0,
                question: q.stem.clone(),
                options: q.options.clone(),
                answer_letter: OPTION_LETTERS[q.recorded_key],
                answer_text: q.options[q.recorded_key].clone(),
                question_type: "multiple-choice".into(),
                topic: fact.topic,
                provenance: Provenance {
                    chunk_id: cand.chunk.chunk_id,
                    file_path: cand.chunk.file_path(),
                    doc_id: cand.chunk.doc.0,
                    fact_id: fact.id.0,
                },
                relevance_check: cand.relevant,
                quality: QualityBlock {
                    score: judgment.score,
                    reasoning: judgment.reasoning,
                    passed,
                },
            };
            let item = McqItem {
                qid: 0,
                bench: BenchKind::Synthetic,
                fact: fact.id,
                stem: record.question.clone(),
                options: record.options.clone(),
                correct: q.recorded_key,
                difficulty: fact.difficulty,
                is_math: false,
            };
            fresh_accepted.push((cand.chunk.chunk_id, record, item));
        }
        report.add(StageMetrics::single(
            "generate+judge",
            gen_chunks.len(),
            fresh_accepted.len(),
            t.elapsed_secs(),
        ));

        // Stage 6: reasoning-trace distillation for the re-run questions —
        // every (question, mode) pair is one batched endpoint request.
        // Trace text depends only on question content and mode, never on
        // ids, so replayed questions keep their previous traces verbatim.
        let t = ScopeTimer::start("traces");
        let trace_stride = TraceMode::ALL.len();
        let teacher_views: Vec<mcqa_llm::GeneratedQuestion> = fresh_accepted
            .iter()
            .map(|(_, _, item)| mcqa_llm::GeneratedQuestion {
                fact: item.fact,
                stem: item.stem.clone(),
                options: item.options.clone(),
                recorded_key: item.correct,
                true_key: item.correct,
                defects: vec![],
                distractor_plausibility: 1.0,
            })
            .collect();
        let trace_prompts: Vec<(&mcqa_llm::GeneratedQuestion, TraceMode)> = teacher_views
            .iter()
            .flat_map(|gq| TraceMode::ALL.iter().map(move |mode| (gq, *mode)))
            .collect();
        let trace_texts = if trace_prompts.is_empty() {
            Vec::new()
        } else {
            teacher.generate_trace_batch(&exec, &trace_prompts)
        };
        report.add(StageMetrics::single(
            "traces",
            fresh_accepted.len(),
            trace_texts.len(),
            t.elapsed_secs(),
        ));

        // Memoized outcomes from the previous run, keyed by chunk id. A
        // chunk present with no question is a memoized rejection.
        let mut snapshot: HashMap<u64, Option<PrevOutcome<'_>>> = HashMap::new();
        if let Some(p) = prev {
            for c in &p.chunks {
                snapshot.insert(c.chunk_id, None);
            }
            for (qi, (record, item)) in p.questions.iter().zip(&p.items).enumerate() {
                snapshot.insert(
                    record.provenance.chunk_id,
                    Some(PrevOutcome { record, item, old_qid: qi as u64 }),
                );
            }
        }
        let mut fresh_map: HashMap<u64, (QuestionRecord, McqItem, Vec<String>)> = HashMap::new();
        for (ai, (chunk_id, record, item)) in fresh_accepted.into_iter().enumerate() {
            let texts: Vec<String> =
                trace_texts[ai * trace_stride..(ai + 1) * trace_stride].to_vec();
            fresh_map.insert(chunk_id, (record, item, texts));
        }

        // Merge in chunk-id order — the acceptance order a cold build
        // walks — renumbering question and trace ids densely. `identical`
        // marks replayed questions whose id did not shift: their rows in
        // the trace stores are already correct and stay untouched.
        let mut questions: Vec<QuestionRecord> = Vec::new();
        let mut items: Vec<McqItem> = Vec::new();
        let mut traces: Vec<TraceRecord> = Vec::new();
        let mut identical: Vec<bool> = Vec::new();
        // `prev_qids[qid]` = the question's id in the previous run (None
        // for freshly generated questions) — the key its reusable trace
        // vectors live under in `prev.trace_vectors`.
        let mut prev_qids: Vec<Option<u64>> = Vec::new();
        for chunk in &chunks {
            let cid = chunk.chunk_id;
            let (mut record, mut item, texts, old_qid) = if fresh_ids.contains(&cid) {
                match fresh_map.remove(&cid) {
                    Some((r, it, tx)) => (r, it, tx, None),
                    None => continue, // freshly generated and rejected
                }
            } else {
                match snapshot.get(&cid) {
                    Some(Some(pq)) => {
                        let base = pq.old_qid as usize * trace_stride;
                        let texts: Vec<String> = prev.expect("snapshot implies prev").traces
                            [base..base + trace_stride]
                            .iter()
                            .map(|tr| tr.trace.clone())
                            .collect();
                        (pq.record.clone(), pq.item.clone(), texts, Some(pq.old_qid))
                    }
                    _ => continue, // memoized rejection
                }
            };
            let qid = questions.len() as u64;
            record.question_id = qid;
            item.qid = qid;
            identical.push(old_qid == Some(qid));
            prev_qids.push(old_qid);
            for (mi, text) in texts.into_iter().enumerate() {
                traces.push(TraceRecord {
                    trace_id: qid * trace_stride as u64 + mi as u64,
                    question_id: qid,
                    mode: TraceMode::ALL[mi],
                    trace: text,
                    teacher: "GPT-4.1-sim".into(),
                    answer_excluded: true,
                    fact_id: item.fact.0,
                });
            }
            items.push(item);
            questions.push(record);
        }

        // Stage 7: embed the traces no previous vector exists for — all of
        // them on a cold build, only fresh questions' on an incremental
        // run. A replayed question's traces are verbatim replays, so even
        // when its dense id shifted (forcing re-keyed store rows) the
        // previous run's vectors are reused instead of re-encoded.
        let to_embed: Vec<usize> = traces
            .iter()
            .enumerate()
            .filter(|(i, _)| prev_qids[i / trace_stride].is_none())
            .map(|(i, _)| i)
            .collect();
        let (trace_embed_results, trace_embed_metrics) =
            run_stage_batched(&exec, "embed-traces", to_embed, 0, |i| {
                let tr = &traces[i];
                Ok::<_, String>((tr.mode, tr.question_id, encoder.encode(&tr.trace)))
            });
        let mut fresh_vecs: HashMap<(usize, u64), Vec<f32>> = HashMap::new();
        for r in trace_embed_results {
            // Infallible closure: an Err slot is a panic — fail loudly
            // rather than leave a trace unretrievable.
            let (mode, qid, v) = r.expect("embed-traces task cannot fail");
            let mi = TraceMode::ALL.iter().position(|m| *m == mode).expect("known mode");
            fresh_vecs.insert((mi, qid), v);
        }
        report.add(trace_embed_metrics);

        // Assemble, per mode: the rows whose store key must change
        // (`mode_vectors`, ascending qid — the cold build's insertion
        // order) and the full vector table the next incremental run reuses
        // (`trace_vectors`).
        let mut mode_vectors: Vec<Vec<(u64, Vec<f32>)>> =
            (0..trace_stride).map(|_| Vec::with_capacity(items.len())).collect();
        let mut trace_vectors: Vec<Vec<Vec<f32>>> =
            (0..trace_stride).map(|_| Vec::with_capacity(items.len())).collect();
        for qid in 0..items.len() as u64 {
            let old = prev_qids[qid as usize];
            for mi in 0..trace_stride {
                let v = match old {
                    Some(pq) => {
                        prev.expect("replay implies prev").trace_vectors[mi][pq as usize].clone()
                    }
                    None => fresh_vecs.remove(&(mi, qid)).expect("fresh trace was embedded"),
                };
                if old != Some(qid) {
                    mode_vectors[mi].push((qid, v.clone()));
                }
                trace_vectors[mi].push(v);
            }
        }

        // Previous-run question ids whose rows are stale: everything not
        // replayed in place. Removed FIRST across every trace store, so a
        // shifted id's old row can never mask its re-inserted one.
        let dead_qids: Vec<u64> = prev
            .map(|p| {
                (0..p.items.len() as u64)
                    .filter(|q| {
                        let q = *q as usize;
                        !(q < identical.len() && identical[q])
                    })
                    .collect()
            })
            .unwrap_or_default();

        for (mode, vectors) in TraceMode::ALL.iter().zip(&mode_vectors) {
            let t = ScopeTimer::start("index-traces");
            if prev.is_none() {
                let store = build_store_from_vectors(
                    &config.index,
                    config.embed.dim,
                    Metric::Cosine,
                    Precision::F16,
                    &exec,
                    vectors,
                );
                indexes.insert(mode.db_name(), store);
            } else {
                let store = indexes.expect_store_mut(mode.db_name());
                census.tombstones_dense += store.remove(&dead_qids);
                store.add_batch(&exec, vectors);
                if over_tombstone_threshold(store.tombstones(), store.len()) {
                    store.compact(&exec);
                    census.compactions += 1;
                }
            }
            report.add(StageMetrics::single(
                &format!("index-{}", mode.db_name()),
                vectors.len(),
                indexes.expect_store(mode.db_name()).len(),
                t.elapsed_secs(),
            ));

            // BM25 sibling over the same traces, keyed by question id like
            // the dense store, so both channels retrieve the same ids.
            let t = ScopeTimer::start("index-lex-traces");
            let pairs: Vec<(u64, &str)> = traces
                .iter()
                .filter(|tr| tr.mode == *mode && !identical[tr.question_id as usize])
                .map(|tr| (tr.question_id, tr.trace.as_str()))
                .collect();
            let sibling = IndexRegistry::lexical_sibling(mode.db_name());
            if prev.is_none() {
                let mut lex = LexicalIndex::new(Default::default());
                lex.add_batch(&exec, &pairs);
                indexes.insert_lexical(&sibling, lex);
            } else {
                let lex = indexes.expect_lexical_mut(&sibling);
                census.tombstones_lexical += lex.remove(&dead_qids);
                lex.add_batch(&exec, &pairs);
                if over_tombstone_threshold(lex.tombstones(), lex.len()) {
                    lex.compact();
                    census.compactions += 1;
                }
            }
            report.add(StageMetrics::single(
                &format!("index-lex-{}", mode.db_name()),
                pairs.len(),
                indexes.expect_lexical(&sibling).len(),
                t.elapsed_secs(),
            ));
        }

        // The model layer's cost accounting joins the stage report: one
        // `model-<role>` row per role the pipeline called (items = calls,
        // out = completion-token estimate, secs = backend busy time).
        for row in models.ledger().stage_rows() {
            report.add(row);
        }

        PipelineOutput {
            config: config.clone(),
            ontology,
            library,
            chunks,
            encoder,
            questions,
            items,
            candidates,
            traces,
            trace_vectors,
            indexes: Arc::new(indexes),
            models,
            report,
            executor: exec,
            manifest,
            ingest: census,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcqa_corpus::EditBatch;

    fn tiny_output() -> &'static PipelineOutput {
        static OUT: std::sync::OnceLock<PipelineOutput> = std::sync::OnceLock::new();
        OUT.get_or_init(|| Pipeline::run(&PipelineConfig::tiny(42)))
    }

    #[test]
    fn pipeline_produces_consistent_artifacts() {
        let out = tiny_output();
        assert!(out.chunks.len() > 50, "chunks: {}", out.chunks.len());
        assert_eq!(out.candidates, out.chunks.len(), "one candidate per chunk");
        assert!(!out.items.is_empty(), "no questions survived the filter");
        assert_eq!(out.items.len(), out.questions.len());
        assert_eq!(out.traces.len(), out.items.len() * 3);
        assert_eq!(out.chunk_store().len(), out.chunks.len());
        for mode in TraceMode::ALL {
            assert_eq!(out.trace_store(mode).len(), out.items.len());
        }
        // The paper's four stores, all registered under canonical names —
        // lexical siblings live in their own namespace and never leak in.
        assert_eq!(
            out.indexes.names(),
            vec![CHUNKS_STORE, "traces-detailed", "traces-efficient", "traces-focused"]
        );
        // Every dense source has a BM25 sibling covering the same docs.
        assert_eq!(
            out.indexes.lexical_names(),
            vec!["lex-chunks", "lex-traces-detailed", "lex-traces-efficient", "lex-traces-focused"]
        );
        assert_eq!(out.indexes.expect_lexical("lex-chunks").len(), out.chunks.len());
        for mode in TraceMode::ALL {
            let lex = out.indexes.expect_lexical(&IndexRegistry::lexical_sibling(mode.db_name()));
            assert_eq!(lex.len(), out.items.len());
        }
        // Figure-1 stage census, including the ingest planner's scan and
        // merge rows, one build row per store (dense and lexical), and one
        // model-layer cost row per role the pipeline called.
        let names: Vec<&str> = out.report.stages().iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "acquire",
                "ingest-scan",
                "parse",
                "chunk",
                "ingest-chunks",
                "embed-chunks",
                "index-chunks",
                "index-lex-chunks",
                "generate+judge",
                "traces",
                "embed-traces",
                "index-traces-detailed",
                "index-lex-traces-detailed",
                "index-traces-focused",
                "index-lex-traces-focused",
                "index-traces-efficient",
                "index-lex-traces-efficient",
                "model-teacher",
                "model-judge",
            ]
        );
        // The cold build is the all-added degenerate case of the planner.
        assert_eq!(out.ingest.docs_added, out.library.len());
        assert_eq!(out.ingest.docs_skipped(), 0);
        assert_eq!(out.ingest.chunks_reused, 0);
        assert_eq!(out.ingest.chunks_rerun, out.chunks.len());
        assert_eq!(out.manifest.source(CORPUS_SOURCE).unwrap().len(), out.library.len());
    }

    #[test]
    fn model_ledger_accounts_for_every_pipeline_call() {
        let out = tiny_output();
        let teacher = out.models.ledger().role(mcqa_llm::Role::Teacher);
        // One generation request per anchored candidate plus one trace
        // request per (accepted question, mode).
        assert_eq!(
            teacher.calls as usize,
            out.candidates + out.items.len() * TraceMode::ALL.len(),
            "teacher calls must equal generation + distillation requests"
        );
        assert_eq!(teacher.batches, 2, "one generation batch + one trace batch");
        assert!(teacher.tokens_in > 0 && teacher.tokens_out > 0);
        let judge = out.models.ledger().role(mcqa_llm::Role::Judge);
        assert!(judge.calls as usize <= out.candidates);
        assert!(judge.calls as usize >= out.items.len());
        // Nothing repeats during generation — and the hub's payload-aware
        // policy knows it: teacher generation/distillation and judge
        // quality scoring bypass the cache entirely, so after the pipeline
        // the cache holds nothing (it fills with grading/answer/classify
        // completions at evaluation time, where repeats exist).
        assert_eq!(teacher.cache_hits, 0);
        assert_eq!(judge.cache_hits, 0);
        assert_eq!(
            out.models.cache().len(),
            0,
            "once-only generation requests must not be retained"
        );
    }

    #[test]
    fn acceptance_rate_in_paper_band() {
        let out = tiny_output();
        let rate = out.acceptance_rate();
        assert!((0.04..=0.25).contains(&rate), "acceptance rate {rate:.3}, paper has 0.096");
    }

    #[test]
    fn provenance_links_resolve() {
        let out = tiny_output();
        for (q, item) in out.questions.iter().zip(&out.items) {
            // Chunk exists and belongs to the recorded document.
            let chunk = out
                .chunks
                .iter()
                .find(|c| c.chunk_id == q.provenance.chunk_id)
                .unwrap_or_else(|| panic!("chunk {} missing", q.provenance.chunk_id));
            assert_eq!(chunk.doc.0, q.provenance.doc_id);
            // Relevant questions: the chunk really states the fact.
            if q.relevance_check {
                assert!(
                    chunk.facts.contains(&item.fact),
                    "chunk {} does not state fact {:?}",
                    chunk.chunk_id,
                    item.fact
                );
            }
            // The answer letter maps back to the answer text.
            let idx = OPTION_LETTERS.iter().position(|l| *l == q.answer_letter).unwrap();
            assert_eq!(q.options[idx], q.answer_text);
            // Item validates structurally.
            item.validate().unwrap_or_else(|e| panic!("qid {}: {e}", item.qid));
        }
    }

    #[test]
    fn accepted_questions_passed_quality_bar() {
        let out = tiny_output();
        for q in &out.questions {
            assert!(q.quality.passed);
            assert!(q.quality.score >= out.config.quality_threshold);
            assert!(!q.quality.reasoning.is_empty());
        }
    }

    #[test]
    fn trace_ids_are_dense() {
        // The id stride is `TraceMode::ALL.len()`: with n questions and m
        // modes, ids must be exactly {0, 1, …, n*m − 1} — no phantom gaps
        // from a stale hard-coded stride.
        let out = tiny_output();
        let stride = TraceMode::ALL.len() as u64;
        let mut ids: Vec<u64> = out.traces.iter().map(|t| t.trace_id).collect();
        ids.sort_unstable();
        let expected: Vec<u64> = (0..out.items.len() as u64 * stride).collect();
        assert_eq!(ids, expected, "trace ids must be dense in [0, n*modes)");
        for t in &out.traces {
            assert_eq!(t.trace_id / stride, t.question_id, "id encodes its question");
            let mi = (t.trace_id % stride) as usize;
            assert_eq!(t.mode, TraceMode::ALL[mi], "id encodes its mode");
        }
    }

    #[test]
    fn traces_exclude_answers_globally() {
        // The paper's leakage control, audited over the whole artifact.
        let out = tiny_output();
        for tr in &out.traces {
            let item = &out.items[tr.question_id as usize];
            assert!(tr.answer_excluded);
            assert!(
                !tr.trace.contains(item.correct_text()),
                "trace {} leaks the answer",
                tr.trace_id
            );
            assert_eq!(tr.fact_id, item.fact.0);
        }
    }

    #[test]
    fn ann_backends_produce_identical_artifacts() {
        // The store backend only affects retrieval; every generation
        // artifact (questions, traces, store cardinalities) must be
        // identical whichever backend the config selects.
        let flat = tiny_output();
        for label in ["hnsw", "ivf"] {
            let mut cfg = PipelineConfig::tiny(42);
            cfg.index = mcqa_index::IndexSpec::parse(label).unwrap();
            let out = Pipeline::run(&cfg);
            assert_eq!(out.config.index.label(), label);
            assert_eq!(out.questions, flat.questions, "{label}");
            assert_eq!(out.traces, flat.traces, "{label}");
            assert_eq!(out.chunk_store().len(), flat.chunk_store().len(), "{label}");
            for mode in TraceMode::ALL {
                assert_eq!(out.trace_store(mode).len(), flat.trace_store(mode).len(), "{label}");
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let a = Pipeline::run(&PipelineConfig::tiny(7));
        let b = Pipeline::run(&PipelineConfig::tiny(7));
        assert_eq!(a.chunks.len(), b.chunks.len());
        assert_eq!(a.questions, b.questions);
        assert_eq!(a.traces, b.traces);
        assert_eq!(a.manifest, b.manifest);
    }

    #[test]
    fn chunk_sizes_respect_budget() {
        let out = tiny_output();
        let max = out.config.chunker.max_tokens;
        let oversized = out.chunks.iter().filter(|c| c.tokens > max).count();
        // Only single-oversized-sentence chunks may exceed the budget.
        assert!(
            oversized * 100 <= out.chunks.len(),
            "{oversized}/{} chunks over budget",
            out.chunks.len()
        );
    }

    #[test]
    fn chunks_per_doc_near_paper_ratio() {
        // Paper: 173,318 chunks / 22,548 docs ≈ 7.7 per doc.
        let out = tiny_output();
        let ratio = out.chunks.len() as f64 / out.library.len() as f64;
        assert!((3.0..=16.0).contains(&ratio), "chunks/doc = {ratio:.1}");
    }

    #[test]
    fn incremental_noop_reuses_everything() {
        // Unchanged corpus: 100%-skipped census, zero model calls, and
        // artifacts identical to the previous output.
        let prev = tiny_output();
        let out = Pipeline::run_incremental(&prev.config, prev, Arc::clone(&prev.library));
        assert_eq!(out.ingest.docs_changed(), 0);
        assert_eq!(out.ingest.docs_skipped(), out.ingest.docs_scanned);
        assert_eq!(out.ingest.chunks_rerun, 0);
        assert_eq!(out.ingest.chunks_reused, prev.chunks.len());
        assert_eq!(out.ingest.tombstones_dense, 0);
        assert_eq!(out.ingest.tombstones_lexical, 0);
        assert_eq!(out.questions, prev.questions);
        assert_eq!(out.traces, prev.traces);
        assert_eq!(out.chunks, prev.chunks);
        assert_eq!(out.manifest, prev.manifest);
        let teacher = out.models.ledger().role(mcqa_llm::Role::Teacher);
        assert_eq!(teacher.calls, 0, "no-op run must not burn model calls");
    }

    #[test]
    fn incremental_matches_full_rebuild_after_edits() {
        // The tentpole acceptance: after a synthetic edit batch, the
        // incremental run's artifacts AND search behaviour are identical
        // to a cold rebuild over the edited corpus.
        let prev = tiny_output();
        let mut library = (*prev.library).clone();
        let batch = EditBatch::synthetic(&library, 13, 5);
        library.apply_edits(&prev.ontology, &batch);
        let library = Arc::new(library);

        let inc = Pipeline::run_incremental(&prev.config, prev, Arc::clone(&library));
        let full =
            Pipeline::run_full(&prev.config, Arc::clone(&prev.ontology), Arc::clone(&library));

        assert!(inc.ingest.docs_changed() > 0, "batch must touch the corpus");
        assert!(inc.ingest.chunks_reused > 0, "most chunks replay");
        assert_eq!(inc.chunks, full.chunks);
        assert_eq!(inc.questions, full.questions);
        assert_eq!(inc.items, full.items);
        assert_eq!(inc.traces, full.traces);
        assert_eq!(inc.manifest, full.manifest);

        // Search bit-identity on every dense store (flat backend) and
        // every lexical sibling, over real probe queries.
        let probes = ["proton therapy dose", "gene expression pathway", "tumour margin imaging"];
        for name in inc.indexes.names() {
            let a = inc.indexes.expect_store(name);
            let b = full.indexes.expect_store(name);
            assert_eq!(a.len(), b.len(), "{name} cardinality");
            for p in &probes {
                let q = inc.encoder.encode(p);
                assert_eq!(a.search(&q, 10), b.search(&q, 10), "{name} search for {p:?}");
            }
        }
        for name in inc.indexes.lexical_names() {
            let a = inc.indexes.expect_lexical(name);
            let b = full.indexes.expect_lexical(name);
            assert_eq!(a.len(), b.len(), "{name} cardinality");
            for p in &probes {
                assert_eq!(a.search(p, 10), b.search(p, 10), "{name} search for {p:?}");
            }
        }

        // A second hop: incremental-on-incremental stays identical too.
        let mut lib2 = (*library).clone();
        let batch2 = EditBatch::synthetic(&lib2, 14, 4);
        lib2.apply_edits(&prev.ontology, &batch2);
        let lib2 = Arc::new(lib2);
        let inc2 = Pipeline::run_incremental(&inc.config, &inc, Arc::clone(&lib2));
        let full2 = Pipeline::run_full(&prev.config, Arc::clone(&prev.ontology), lib2);
        assert_eq!(inc2.questions, full2.questions);
        assert_eq!(inc2.traces, full2.traces);
        for p in &probes {
            let q = inc2.encoder.encode(p);
            assert_eq!(
                inc2.chunk_store().search(&q, 10),
                full2.chunk_store().search(&q, 10),
                "second-hop chunk search for {p:?}"
            );
        }
    }
}
