//! The orchestrated end-to-end pipeline.

use std::sync::Arc;

use mcqa_corpus::{CorpusLibrary, DocId};
use mcqa_embed::{BioEncoder, Precision};
use mcqa_index::{build_store_from_vectors, IndexRegistry, Metric, VectorStore};
use mcqa_lexical::LexicalIndex;
use mcqa_llm::{
    build_hub, BenchKind, Judge, McqItem, ModelEndpoint, ModelHub, QuestionPrompt, Teacher,
    TraceMode, OPTION_LETTERS,
};
use mcqa_ontology::Ontology;
use mcqa_parse::{AdaptiveParser, ParsedDocument, ParserConfig};
use mcqa_runtime::{run_stage, run_stage_batched, Executor, RunReport, StageMetrics};
use mcqa_util::{KeyedStochastic, ScopeTimer};

use crate::chunks::ChunkRecord;
use crate::config::PipelineConfig;
use crate::schema::{Provenance, QualityBlock, QuestionRecord, TraceRecord};

/// Registry name of the chunk vector database. The per-mode trace
/// databases are named by [`TraceMode::db_name`] (`traces-<mode>`).
pub const CHUNKS_STORE: &str = "chunks";

/// Everything the pipeline produces, ready for evaluation.
pub struct PipelineOutput {
    /// The configuration that produced this output.
    pub config: PipelineConfig,
    /// The generating ontology (ground truth).
    pub ontology: Arc<Ontology>,
    /// The corpus library (documents + blobs + oracle).
    pub library: Arc<CorpusLibrary>,
    /// All semantic chunks with provenance.
    pub chunks: Vec<ChunkRecord>,
    /// The shared encoder.
    pub encoder: BioEncoder,
    /// Accepted question records (Figure-2 schema).
    pub questions: Vec<QuestionRecord>,
    /// Accepted questions in evaluation form (index-aligned with
    /// `questions`; `qid` equals the position).
    pub items: Vec<McqItem>,
    /// Number of candidate questions generated (one per chunk).
    pub candidates: usize,
    /// Reasoning-trace records (Figure-3 schema), 3 per accepted question.
    pub traces: Vec<TraceRecord>,
    /// The paper's four vector databases behind one registry, all built
    /// with the backend `config.index` selects: [`CHUNKS_STORE`] keyed by
    /// `chunk_id` plus one [`TraceMode::db_name`] store per mode keyed by
    /// `question_id`. `Arc`-shared so the serving layer's dispatcher
    /// thread can hold the registry without copying the stores.
    pub indexes: Arc<IndexRegistry>,
    /// The model hub that served every model call: the backend
    /// `config.models` selects, behind the response cache and per-role
    /// call ledger. The evaluator routes its judge/classifier/answerer
    /// calls through this same hub, so one ledger accounts for the whole
    /// reproduction and repeated evaluation passes hit the cache.
    pub models: Arc<ModelHub>,
    /// Per-stage metrics (Figure-1 reproduction), including one
    /// `model-<role>` cost row per model role the pipeline called.
    pub report: RunReport,
    /// The scheduler the pipeline ran on. Downstream consumers (the
    /// evaluator, retrieval bundles, ablations) clone this handle so the
    /// whole reproduction shares one pool and one metrics surface.
    pub executor: Executor,
}

impl PipelineOutput {
    /// Quality-filter acceptance rate (paper: ≈ 9.6%).
    pub fn acceptance_rate(&self) -> f64 {
        if self.candidates == 0 {
            0.0
        } else {
            self.items.len() as f64 / self.candidates as f64
        }
    }

    /// The chunk vector database. Panics when absent (a wiring bug).
    pub fn chunk_store(&self) -> &dyn VectorStore {
        self.indexes.expect_store(CHUNKS_STORE)
    }

    /// The trace vector database for `mode`. Panics when absent.
    pub fn trace_store(&self, mode: TraceMode) -> &dyn VectorStore {
        self.indexes.expect_store(mode.db_name())
    }
}

/// The pipeline runner.
pub struct Pipeline;

impl Pipeline {
    /// Run every stage and return the full output.
    pub fn run(config: &PipelineConfig) -> PipelineOutput {
        let mut report = RunReport::new();
        let exec = Executor::new(config.effective_workers());

        // Stage 1: ontology + corpus acquisition (synthesis and SPDF
        // rendering fan out on the pool inside `CorpusLibrary::build`).
        let t = ScopeTimer::start("acquire");
        let ontology = Arc::new(Ontology::generate(&config.ontology));
        let library = Arc::new(CorpusLibrary::build(&ontology, &config.acquisition, &exec));
        report.add(StageMetrics::single("acquire", library.len(), library.len(), t.elapsed_secs()));

        // Stage 2: adaptive parallel parsing (through the runtime pool).
        let doc_ids: Vec<u32> = (0..library.len() as u32).collect();
        let parser = AdaptiveParser::new(ParserConfig::default());
        let (parse_results, parse_metrics) = run_stage(&exec, "parse", doc_ids, |id| {
            let blob = library.download(DocId(id)).ok_or_else(|| format!("doc {id} missing"))?;
            match parser.parse(blob).document() {
                Some(doc) => Ok((id, doc.clone())),
                None => Err(format!("doc {id} unparseable")),
            }
        });
        let parsed: Vec<(u32, ParsedDocument)> =
            parse_results.into_iter().filter_map(Result::ok).collect();
        report.add(parse_metrics);

        // Stage 3: semantic chunking with provenance mapping, fanned out one
        // task per parsed document on the work-stealing pool. The stage's
        // metrics keep both rates observable: `throughput()` is docs/s,
        // `output_throughput()` is chunks/s.
        let encoder = BioEncoder::new(config.embed.clone());
        let chunker_cfg = config.chunker.clone();
        let (chunk_results, mut chunk_metrics) = run_stage(&exec, "chunk", parsed, |(id, pdoc)| {
            let chunker = mcqa_text::Chunker::new(&encoder, chunker_cfg.clone());
            let doc_id = DocId(id);
            let truth = library.document(doc_id);
            let text = pdoc.full_text();
            let records: Vec<ChunkRecord> = chunker
                .chunk(&text)
                .into_iter()
                .enumerate()
                .map(|(ci, c)| {
                    // Provenance oracle: which fact mentions landed in
                    // this chunk (verbatim sentence containment).
                    let mut facts: Vec<mcqa_ontology::FactId> = truth
                        .map(|d| {
                            d.mentions
                                .iter()
                                .filter(|m| c.text.contains(&m.sentence))
                                .map(|m| m.fact)
                                .collect()
                        })
                        .unwrap_or_default();
                    facts.sort_unstable();
                    facts.dedup();
                    ChunkRecord {
                        chunk_id: ChunkRecord::make_id(doc_id, ci as u32),
                        doc: doc_id,
                        index_in_doc: ci as u32,
                        text: c.text,
                        tokens: c.tokens,
                        facts,
                    }
                })
                .collect();
            Ok::<_, String>(records)
        });
        let mut chunks: Vec<ChunkRecord> =
            chunk_results.into_iter().filter_map(Result::ok).flatten().collect();
        chunks.sort_by_key(|c| c.chunk_id);
        chunk_metrics.produced = chunks.len();
        report.add(chunk_metrics);

        // Stage 4: embed chunks (batched submission — the per-item cost is
        // one hash-encode, so chunked tasks amortise scheduling overhead),
        // then build the chunk vector DB (FP16) with the configured
        // backend, bulk-loaded through the store's parallel `add_batch`.
        let (embed_results, embed_metrics) =
            run_stage_batched(&exec, "embed-chunks", (0..chunks.len()).collect(), 0, |i| {
                let c = &chunks[i];
                Ok::<_, String>((c.chunk_id, encoder.encode(&c.text)))
            });
        // The embed closure is infallible, so an Err slot can only be a
        // panic; a silently missing vector would skew retrieval, so fail
        // loudly instead.
        let chunk_vectors: Vec<(u64, Vec<f32>)> =
            embed_results.into_iter().map(|r| r.expect("embed-chunks task cannot fail")).collect();
        report.add(embed_metrics);

        let mut indexes = IndexRegistry::new();
        let t = ScopeTimer::start("index-chunks");
        let chunk_store = build_store_from_vectors(
            &config.index,
            config.embed.dim,
            Metric::Cosine,
            Precision::F16,
            &exec,
            &chunk_vectors,
        );
        report.add(StageMetrics::single(
            "index-chunks",
            chunk_vectors.len(),
            chunk_store.len(),
            t.elapsed_secs(),
        ));
        indexes.insert(CHUNKS_STORE, chunk_store);
        drop(chunk_vectors);

        // Lexical sibling: the same chunks indexed by BM25 — the hybrid
        // retrieval channel's word-level view, one Figure-1 stage row like
        // any dense build.
        let t = ScopeTimer::start("index-lex-chunks");
        let mut chunk_lex = LexicalIndex::new(Default::default());
        let lex_pairs: Vec<(u64, &str)> =
            chunks.iter().map(|c| (c.chunk_id, c.text.as_str())).collect();
        chunk_lex.add_batch(&exec, &lex_pairs);
        report.add(StageMetrics::single(
            "index-lex-chunks",
            lex_pairs.len(),
            chunk_lex.len(),
            t.elapsed_secs(),
        ));
        indexes.insert_lexical(&IndexRegistry::lexical_sibling(CHUNKS_STORE), chunk_lex);
        drop(lex_pairs);

        // Stage 5: question generation (one candidate per chunk) + judge
        // filtering at the paper's 7/10 threshold. Both model roles run
        // through the endpoint's batched completion API — the highest-call-
        // count generation stage is exactly where a real deployment batches
        // its LLM traffic.
        let models = Arc::new(build_hub(&config.models, config.seed, Arc::clone(&ontology)));
        let endpoint: Arc<dyn ModelEndpoint> = models.clone();
        let teacher = Teacher::new(endpoint.clone(), config.seed);
        let judge = Judge::new(endpoint, config.seed);
        let rng = KeyedStochastic::new(config.seed ^ 0x9E5_71A6);
        let candidates = chunks.len();

        let t = ScopeTimer::start("generate+judge");
        // Anchor fact per chunk: one stated by the chunk, or (relevance
        // failure) an arbitrary fact — real pipelines generate from every
        // chunk and rely on QC to drop the unanchored ones.
        struct Candidate<'a> {
            chunk: &'a ChunkRecord,
            fact_id: mcqa_ontology::FactId,
            relevant: bool,
        }
        let cands: Vec<Candidate> = chunks
            .iter()
            .filter_map(|chunk| {
                let ckey = chunk.chunk_id.to_string();
                let (fact_id, relevant) = if chunk.facts.is_empty() {
                    let all = ontology.facts();
                    (all[rng.below(all.len(), &["anchor", &ckey])].id, false)
                } else {
                    (chunk.facts[rng.below(chunk.facts.len(), &["anchor", &ckey])], true)
                };
                ontology.fact(fact_id).map(|_| Candidate { chunk, fact_id, relevant })
            })
            .collect();

        let prompts: Vec<QuestionPrompt> = cands
            .iter()
            .map(|c| QuestionPrompt {
                fact: c.fact_id,
                salt: c.chunk.chunk_id.to_string(),
                passage: &c.chunk.text,
            })
            .collect();
        let generated = teacher.generate_question_batch(&exec, &prompts);

        // Candidates whose distractor pool was exhausted (< 7 options)
        // never reach the judge.
        let wellformed: Vec<(&Candidate, &mcqa_llm::GeneratedQuestion)> =
            cands.iter().zip(&generated).filter(|(_, q)| q.options.len() == 7).collect();
        let score_prompts: Vec<(&mcqa_llm::GeneratedQuestion, f64)> = wellformed
            .iter()
            .map(|(c, q)| (*q, ontology.fact(c.fact_id).expect("anchor resolved").salience))
            .collect();
        let judgments = judge.score_question_batch(&exec, &score_prompts);

        let mut questions = Vec::new();
        let mut items = Vec::new();
        for ((cand, q), mut judgment) in wellformed.into_iter().zip(judgments) {
            if !cand.relevant {
                // The paper's relevance check: the chunk does not state the
                // tested fact.
                judgment.score = judgment.score.saturating_sub(4).max(1);
                judgment.reasoning = format!(
                    "Relevance check failed: source chunk does not state the tested fact. {}",
                    judgment.reasoning
                );
            }
            let passed = judgment.score >= config.quality_threshold;
            if !passed {
                continue;
            }
            let fact = ontology.fact(cand.fact_id).expect("anchor resolved");
            let question_id = questions.len() as u64;
            let record = QuestionRecord {
                question_id,
                question: q.stem.clone(),
                options: q.options.clone(),
                answer_letter: OPTION_LETTERS[q.recorded_key],
                answer_text: q.options[q.recorded_key].clone(),
                question_type: "multiple-choice".into(),
                topic: fact.topic,
                provenance: Provenance {
                    chunk_id: cand.chunk.chunk_id,
                    file_path: cand.chunk.file_path(),
                    doc_id: cand.chunk.doc.0,
                    fact_id: fact.id.0,
                },
                relevance_check: cand.relevant,
                quality: QualityBlock {
                    score: judgment.score,
                    reasoning: judgment.reasoning,
                    passed,
                },
            };
            items.push(McqItem {
                qid: question_id,
                bench: BenchKind::Synthetic,
                fact: fact.id,
                stem: record.question.clone(),
                options: record.options.clone(),
                correct: q.recorded_key,
                difficulty: fact.difficulty,
                is_math: false,
            });
            questions.push(record);
        }
        // `chunks` is sorted by chunk id, so acceptance order == chunk-id
        // order and ids are densely assigned in that order (as before the
        // endpoint reroute — artifacts are byte-identical).
        report.add(StageMetrics::single(
            "generate+judge",
            candidates,
            questions.len(),
            t.elapsed_secs(),
        ));

        // Stage 6: reasoning-trace distillation — every (question, mode)
        // pair is one batched endpoint request. Trace ids are dense:
        // `qid * |modes| + mode_index`, with the stride derived from
        // `TraceMode::ALL` so adding a mode can never open id gaps.
        let t = ScopeTimer::start("traces");
        let trace_stride = TraceMode::ALL.len() as u64;
        // Rebuild the teacher's view of each accepted question for tracing.
        let teacher_views: Vec<mcqa_llm::GeneratedQuestion> = items
            .iter()
            .map(|item| mcqa_llm::GeneratedQuestion {
                fact: item.fact,
                stem: item.stem.clone(),
                options: item.options.clone(),
                recorded_key: item.correct,
                true_key: item.correct,
                defects: vec![],
                distractor_plausibility: 1.0,
            })
            .collect();
        let trace_prompts: Vec<(&mcqa_llm::GeneratedQuestion, TraceMode)> = teacher_views
            .iter()
            .flat_map(|gq| TraceMode::ALL.iter().map(move |mode| (gq, *mode)))
            .collect();
        let trace_texts = teacher.generate_trace_batch(&exec, &trace_prompts);
        let traces: Vec<TraceRecord> = trace_texts
            .into_iter()
            .enumerate()
            .map(|(i, trace)| {
                let (qi, mi) = (i / TraceMode::ALL.len(), i % TraceMode::ALL.len());
                let item = &items[qi];
                TraceRecord {
                    trace_id: item.qid * trace_stride + mi as u64,
                    question_id: questions[qi].question_id,
                    mode: TraceMode::ALL[mi],
                    trace,
                    teacher: "GPT-4.1-sim".into(),
                    answer_excluded: true,
                    fact_id: item.fact.0,
                }
            })
            .collect();
        report.add(StageMetrics::single("traces", items.len(), traces.len(), t.elapsed_secs()));

        // Stage 7: embed traces (batched submission), then build one DB
        // per mode with the configured backend. Per-mode vectors keep
        // question order, so every backend sees the same insertion
        // sequence a serial build would.
        let (trace_embed_results, trace_embed_metrics) =
            run_stage_batched(&exec, "embed-traces", (0..traces.len()).collect(), 0, |i| {
                let tr = &traces[i];
                Ok::<_, String>((tr.mode, tr.question_id, encoder.encode(&tr.trace)))
            });
        let mut mode_vectors: Vec<Vec<(u64, Vec<f32>)>> =
            (0..TraceMode::ALL.len()).map(|_| Vec::with_capacity(items.len())).collect();
        for r in trace_embed_results {
            // Infallible closure: an Err slot is a panic — fail loudly
            // rather than leave a trace unretrievable.
            let (mode, qid, v) = r.expect("embed-traces task cannot fail");
            let mi = TraceMode::ALL.iter().position(|m| *m == mode).expect("known mode");
            mode_vectors[mi].push((qid, v));
        }
        report.add(trace_embed_metrics);

        for (mode, vectors) in TraceMode::ALL.iter().zip(&mode_vectors) {
            let t = ScopeTimer::start("index-traces");
            let store = build_store_from_vectors(
                &config.index,
                config.embed.dim,
                Metric::Cosine,
                Precision::F16,
                &exec,
                vectors,
            );
            report.add(StageMetrics::single(
                &format!("index-{}", mode.db_name()),
                vectors.len(),
                store.len(),
                t.elapsed_secs(),
            ));
            indexes.insert(mode.db_name(), store);

            // BM25 sibling over the same traces, keyed by question id like
            // the dense store, so both channels retrieve the same ids.
            let t = ScopeTimer::start("index-lex-traces");
            let mut lex = LexicalIndex::new(Default::default());
            let pairs: Vec<(u64, &str)> = traces
                .iter()
                .filter(|tr| tr.mode == *mode)
                .map(|tr| (tr.question_id, tr.trace.as_str()))
                .collect();
            lex.add_batch(&exec, &pairs);
            report.add(StageMetrics::single(
                &format!("index-lex-{}", mode.db_name()),
                pairs.len(),
                lex.len(),
                t.elapsed_secs(),
            ));
            indexes.insert_lexical(&IndexRegistry::lexical_sibling(mode.db_name()), lex);
        }

        // The model layer's cost accounting joins the stage report: one
        // `model-<role>` row per role the pipeline called (items = calls,
        // out = completion-token estimate, secs = backend busy time).
        for row in models.ledger().stage_rows() {
            report.add(row);
        }

        PipelineOutput {
            config: config.clone(),
            ontology,
            library,
            chunks,
            encoder,
            questions,
            items,
            candidates,
            traces,
            indexes: Arc::new(indexes),
            models,
            report,
            executor: exec,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_output() -> &'static PipelineOutput {
        static OUT: std::sync::OnceLock<PipelineOutput> = std::sync::OnceLock::new();
        OUT.get_or_init(|| Pipeline::run(&PipelineConfig::tiny(42)))
    }

    #[test]
    fn pipeline_produces_consistent_artifacts() {
        let out = tiny_output();
        assert!(out.chunks.len() > 50, "chunks: {}", out.chunks.len());
        assert_eq!(out.candidates, out.chunks.len(), "one candidate per chunk");
        assert!(!out.items.is_empty(), "no questions survived the filter");
        assert_eq!(out.items.len(), out.questions.len());
        assert_eq!(out.traces.len(), out.items.len() * 3);
        assert_eq!(out.chunk_store().len(), out.chunks.len());
        for mode in TraceMode::ALL {
            assert_eq!(out.trace_store(mode).len(), out.items.len());
        }
        // The paper's four stores, all registered under canonical names —
        // lexical siblings live in their own namespace and never leak in.
        assert_eq!(
            out.indexes.names(),
            vec![CHUNKS_STORE, "traces-detailed", "traces-efficient", "traces-focused"]
        );
        // Every dense source has a BM25 sibling covering the same docs.
        assert_eq!(
            out.indexes.lexical_names(),
            vec!["lex-chunks", "lex-traces-detailed", "lex-traces-efficient", "lex-traces-focused"]
        );
        assert_eq!(out.indexes.expect_lexical("lex-chunks").len(), out.chunks.len());
        for mode in TraceMode::ALL {
            let lex = out.indexes.expect_lexical(&IndexRegistry::lexical_sibling(mode.db_name()));
            assert_eq!(lex.len(), out.items.len());
        }
        // Figure-1 stage census, including one build row per store (dense
        // and lexical) and one model-layer cost row per role the pipeline
        // called.
        let names: Vec<&str> = out.report.stages().iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "acquire",
                "parse",
                "chunk",
                "embed-chunks",
                "index-chunks",
                "index-lex-chunks",
                "generate+judge",
                "traces",
                "embed-traces",
                "index-traces-detailed",
                "index-lex-traces-detailed",
                "index-traces-focused",
                "index-lex-traces-focused",
                "index-traces-efficient",
                "index-lex-traces-efficient",
                "model-teacher",
                "model-judge",
            ]
        );
    }

    #[test]
    fn model_ledger_accounts_for_every_pipeline_call() {
        let out = tiny_output();
        let teacher = out.models.ledger().role(mcqa_llm::Role::Teacher);
        // One generation request per anchored candidate plus one trace
        // request per (accepted question, mode).
        assert_eq!(
            teacher.calls as usize,
            out.candidates + out.items.len() * TraceMode::ALL.len(),
            "teacher calls must equal generation + distillation requests"
        );
        assert_eq!(teacher.batches, 2, "one generation batch + one trace batch");
        assert!(teacher.tokens_in > 0 && teacher.tokens_out > 0);
        let judge = out.models.ledger().role(mcqa_llm::Role::Judge);
        assert!(judge.calls as usize <= out.candidates);
        assert!(judge.calls as usize >= out.items.len());
        // Nothing repeats during generation — and the hub's payload-aware
        // policy knows it: teacher generation/distillation and judge
        // quality scoring bypass the cache entirely, so after the pipeline
        // the cache holds nothing (it fills with grading/answer/classify
        // completions at evaluation time, where repeats exist).
        assert_eq!(teacher.cache_hits, 0);
        assert_eq!(judge.cache_hits, 0);
        assert_eq!(
            out.models.cache().len(),
            0,
            "once-only generation requests must not be retained"
        );
    }

    #[test]
    fn acceptance_rate_in_paper_band() {
        let out = tiny_output();
        let rate = out.acceptance_rate();
        assert!((0.04..=0.25).contains(&rate), "acceptance rate {rate:.3}, paper has 0.096");
    }

    #[test]
    fn provenance_links_resolve() {
        let out = tiny_output();
        for (q, item) in out.questions.iter().zip(&out.items) {
            // Chunk exists and belongs to the recorded document.
            let chunk = out
                .chunks
                .iter()
                .find(|c| c.chunk_id == q.provenance.chunk_id)
                .unwrap_or_else(|| panic!("chunk {} missing", q.provenance.chunk_id));
            assert_eq!(chunk.doc.0, q.provenance.doc_id);
            // Relevant questions: the chunk really states the fact.
            if q.relevance_check {
                assert!(
                    chunk.facts.contains(&item.fact),
                    "chunk {} does not state fact {:?}",
                    chunk.chunk_id,
                    item.fact
                );
            }
            // The answer letter maps back to the answer text.
            let idx = OPTION_LETTERS.iter().position(|l| *l == q.answer_letter).unwrap();
            assert_eq!(q.options[idx], q.answer_text);
            // Item validates structurally.
            item.validate().unwrap_or_else(|e| panic!("qid {}: {e}", item.qid));
        }
    }

    #[test]
    fn accepted_questions_passed_quality_bar() {
        let out = tiny_output();
        for q in &out.questions {
            assert!(q.quality.passed);
            assert!(q.quality.score >= out.config.quality_threshold);
            assert!(!q.quality.reasoning.is_empty());
        }
    }

    #[test]
    fn trace_ids_are_dense() {
        // The id stride is `TraceMode::ALL.len()`: with n questions and m
        // modes, ids must be exactly {0, 1, …, n*m − 1} — no phantom gaps
        // from a stale hard-coded stride.
        let out = tiny_output();
        let stride = TraceMode::ALL.len() as u64;
        let mut ids: Vec<u64> = out.traces.iter().map(|t| t.trace_id).collect();
        ids.sort_unstable();
        let expected: Vec<u64> = (0..out.items.len() as u64 * stride).collect();
        assert_eq!(ids, expected, "trace ids must be dense in [0, n*modes)");
        for t in &out.traces {
            assert_eq!(t.trace_id / stride, t.question_id, "id encodes its question");
            let mi = (t.trace_id % stride) as usize;
            assert_eq!(t.mode, TraceMode::ALL[mi], "id encodes its mode");
        }
    }

    #[test]
    fn traces_exclude_answers_globally() {
        // The paper's leakage control, audited over the whole artifact.
        let out = tiny_output();
        for tr in &out.traces {
            let item = &out.items[tr.question_id as usize];
            assert!(tr.answer_excluded);
            assert!(
                !tr.trace.contains(item.correct_text()),
                "trace {} leaks the answer",
                tr.trace_id
            );
            assert_eq!(tr.fact_id, item.fact.0);
        }
    }

    #[test]
    fn ann_backends_produce_identical_artifacts() {
        // The store backend only affects retrieval; every generation
        // artifact (questions, traces, store cardinalities) must be
        // identical whichever backend the config selects.
        let flat = tiny_output();
        for label in ["hnsw", "ivf"] {
            let mut cfg = PipelineConfig::tiny(42);
            cfg.index = mcqa_index::IndexSpec::parse(label).unwrap();
            let out = Pipeline::run(&cfg);
            assert_eq!(out.config.index.label(), label);
            assert_eq!(out.questions, flat.questions, "{label}");
            assert_eq!(out.traces, flat.traces, "{label}");
            assert_eq!(out.chunk_store().len(), flat.chunk_store().len(), "{label}");
            for mode in TraceMode::ALL {
                assert_eq!(out.trace_store(mode).len(), flat.trace_store(mode).len(), "{label}");
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let a = Pipeline::run(&PipelineConfig::tiny(7));
        let b = Pipeline::run(&PipelineConfig::tiny(7));
        assert_eq!(a.chunks.len(), b.chunks.len());
        assert_eq!(a.questions, b.questions);
        assert_eq!(a.traces, b.traces);
    }

    #[test]
    fn chunk_sizes_respect_budget() {
        let out = tiny_output();
        let max = out.config.chunker.max_tokens;
        let oversized = out.chunks.iter().filter(|c| c.tokens > max).count();
        // Only single-oversized-sentence chunks may exceed the budget.
        assert!(
            oversized * 100 <= out.chunks.len(),
            "{oversized}/{} chunks over budget",
            out.chunks.len()
        );
    }

    #[test]
    fn chunks_per_doc_near_paper_ratio() {
        // Paper: 173,318 chunks / 22,548 docs ≈ 7.7 per doc.
        let out = tiny_output();
        let ratio = out.chunks.len() as f64 / out.library.len() as f64;
        assert!((3.0..=16.0).contains(&ratio), "chunks/doc = {ratio:.1}");
    }
}
