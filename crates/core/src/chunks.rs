//! Chunk records with document and fact provenance.

use mcqa_corpus::DocId;
use mcqa_ontology::FactId;
use serde::{Deserialize, Serialize};

/// One semantic chunk, with provenance back to its document and the facts
/// its text states (resolved through the corpus mention oracle).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChunkRecord {
    /// Corpus-wide chunk id (stable: `doc_id << 16 | per-doc index`).
    pub chunk_id: u64,
    /// Source document.
    pub doc: DocId,
    /// Index within the document's chunk sequence.
    pub index_in_doc: u32,
    /// Chunk text.
    pub text: String,
    /// Token count.
    pub tokens: usize,
    /// Facts stated verbatim inside this chunk (provenance oracle).
    pub facts: Vec<FactId>,
}

impl ChunkRecord {
    /// Compose the corpus-wide id.
    pub fn make_id(doc: DocId, index_in_doc: u32) -> u64 {
        ((doc.0 as u64) << 16) | (index_in_doc as u64 & 0xFFFF)
    }

    /// Recover `(doc, index)` from a chunk id.
    pub fn split_id(chunk_id: u64) -> (DocId, u32) {
        (DocId((chunk_id >> 16) as u32), (chunk_id & 0xFFFF) as u32)
    }

    /// The synthetic "file path" recorded in question provenance
    /// (mirrors the paper's `file path` field in Figure 2).
    pub fn file_path(&self) -> String {
        format!("corpus/doc_{:06}.spdf", self.doc.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_roundtrip() {
        for (d, i) in [(0u32, 0u32), (5, 3), (70_000, 65_535), (u32::MAX / 2, 12)] {
            let id = ChunkRecord::make_id(DocId(d), i);
            assert_eq!(ChunkRecord::split_id(id), (DocId(d), i));
        }
    }

    #[test]
    fn ids_unique_across_docs() {
        let a = ChunkRecord::make_id(DocId(1), 0);
        let b = ChunkRecord::make_id(DocId(0), 1);
        assert_ne!(a, b);
    }

    #[test]
    fn file_path_format() {
        let c = ChunkRecord {
            chunk_id: ChunkRecord::make_id(DocId(42), 1),
            doc: DocId(42),
            index_in_doc: 1,
            text: "t".into(),
            tokens: 1,
            facts: vec![],
        };
        assert_eq!(c.file_path(), "corpus/doc_000042.spdf");
    }
}
