//! `mcqa-core` — the paper's primary contribution: a scalable, modular
//! pipeline for automated MCQA benchmark generation from a scientific
//! corpus.
//!
//! End-to-end stages (paper Figure 1):
//!
//! ```text
//! acquire ─→ parse ─→ chunk ─→ embed+index ─→ generate ─→ judge/filter
//!                                      │                        │
//!                                      ▼                        ▼
//!                               chunk FAISS-like DB      accepted MCQs
//!                                                              │
//!                                              trace distillation (×3 modes)
//!                                                              │
//!                                               three trace vector DBs
//! ```
//!
//! * [`config`] — one config object for the whole pipeline with
//!   paper-scale defaults and a `--scale` knob.
//! * [`chunks`] — chunk records with provenance (chunk id → document →
//!   facts stated inside, via the corpus oracle).
//! * [`schema`] — the Figure-2 question record and Figure-3 trace record
//!   JSON schemas, serialisable to JSONL artifacts.
//! * [`pipeline`] — the orchestrated workflow over `mcqa-runtime`, ending
//!   in a [`pipeline::PipelineOutput`] that the evaluation crate consumes.

pub mod chunks;
pub mod config;
pub mod pipeline;
pub mod schema;

pub use chunks::ChunkRecord;
pub use config::PipelineConfig;
pub use pipeline::{Pipeline, PipelineOutput, CHUNKS_STORE};
pub use schema::{QuestionRecord, TraceRecord};
