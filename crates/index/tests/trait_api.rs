//! Property tests for the backend-agnostic `VectorStore` trait surface:
//! for every backend, the batch entry points must be observationally
//! identical to their sequential counterparts, and the persistence codec
//! must round-trip stores without changing a single search result.

use std::sync::OnceLock;

use mcqa_embed::Precision;
use mcqa_index::{
    build_store_from_vectors, decode_store, IndexSpec, Metric, SearchResult, VectorStore,
};
use mcqa_runtime::Executor;
use mcqa_util::KeyedStochastic;
use proptest::prelude::*;

fn exec() -> &'static Executor {
    static EXEC: OnceLock<Executor> = OnceLock::new();
    EXEC.get_or_init(|| Executor::new(4))
}

/// Deterministic unit vectors keyed on (seed, i).
fn unit_vectors(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
    let ks = KeyedStochastic::new(seed);
    (0..n)
        .map(|i| {
            let mut v: Vec<f32> = (0..dim)
                .map(|j| ks.gaussian(&["v", &i.to_string(), &j.to_string()]) as f32)
                .collect();
            let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
            v.iter_mut().for_each(|x| *x /= norm);
            v
        })
        .collect()
}

fn build(spec: &IndexSpec, dim: usize, data: &[(u64, Vec<f32>)]) -> Box<dyn VectorStore> {
    build_store_from_vectors(spec, dim, Metric::Cosine, Precision::F32, exec(), data)
}

proptest! {
    /// `search_batch` through the trait is bit-identical to sequential
    /// `search` for all three backends, at every query-batch size
    /// (including empty) and several worker counts.
    #[test]
    fn search_batch_matches_sequential_search(
        n in 1usize..120,
        n_queries in 0usize..24,
        seed in 0u64..1_000,
    ) {
        let dim = 16;
        let data: Vec<(u64, Vec<f32>)> = unit_vectors(n, dim, seed)
            .into_iter()
            .enumerate()
            .map(|(i, v)| (i as u64, v))
            .collect();
        let queries = unit_vectors(n_queries, dim, seed ^ 0xDEAD);
        for spec in IndexSpec::all_defaults() {
            let store = build(&spec, dim, &data);
            let sequential: Vec<Vec<SearchResult>> =
                queries.iter().map(|q| store.search(q, 5)).collect();
            for workers in [1usize, 4] {
                let pool = Executor::new(workers);
                let batched = store.search_batch(&pool, &queries, 5);
                prop_assert_eq!(
                    &batched, &sequential,
                    "{} with {} workers", spec.label(), workers
                );
            }
        }
    }

    /// `add_batch` through the trait builds a store whose serialised bytes
    /// equal a store built by sequential `add` calls in the same order.
    #[test]
    fn add_batch_builds_identical_stores(
        n in 1usize..100,
        seed in 0u64..1_000,
    ) {
        let dim = 12;
        let data: Vec<(u64, Vec<f32>)> = unit_vectors(n, dim, seed)
            .into_iter()
            .enumerate()
            .map(|(i, v)| (i as u64 * 5, v))
            .collect();
        let sample: Vec<Vec<f32>> = data.iter().map(|(_, v)| v.clone()).collect();
        for spec in IndexSpec::all_defaults() {
            let mut serial = mcqa_index::build_store(&spec, dim, Metric::Cosine, Precision::F32);
            if serial.needs_training() {
                serial.train(exec(), &sample);
            }
            for (id, v) in &data {
                serial.add(*id, v);
            }
            let mut batched = mcqa_index::build_store(&spec, dim, Metric::Cosine, Precision::F32);
            if batched.needs_training() {
                batched.train(exec(), &sample);
            }
            batched.add_batch(exec(), &data);
            prop_assert_eq!(batched.to_bytes(), serial.to_bytes(), "{}", spec.label());
        }
    }

    /// Persistence: decode(encode(store)) answers every query identically,
    /// and the re-encoded bytes are stable.
    #[test]
    fn codec_roundtrip_preserves_search(
        n in 1usize..100,
        seed in 0u64..1_000,
    ) {
        let dim = 10;
        let data: Vec<(u64, Vec<f32>)> = unit_vectors(n, dim, seed)
            .into_iter()
            .enumerate()
            .map(|(i, v)| (i as u64, v))
            .collect();
        let queries = unit_vectors(6, dim, seed ^ 0xBEEF);
        for spec in IndexSpec::all_defaults() {
            let store = build(&spec, dim, &data);
            let bytes = store.to_bytes();
            let back = decode_store(&bytes).expect("store decodes");
            prop_assert_eq!(back.len(), store.len());
            prop_assert_eq!(back.dim(), store.dim());
            prop_assert_eq!(back.metric(), store.metric());
            for q in &queries {
                prop_assert_eq!(back.search(q, 5), store.search(q, 5), "{}", spec.label());
            }
            prop_assert_eq!(back.to_bytes(), bytes, "{} re-encode stable", spec.label());
        }
    }

    /// Degenerate inputs are defined, not panics: k = 0, k > len, and
    /// all-zero queries return cleanly for every backend.
    #[test]
    fn degenerate_queries_are_total(
        n in 1usize..60,
        seed in 0u64..1_000,
    ) {
        let dim = 8;
        let data: Vec<(u64, Vec<f32>)> = unit_vectors(n, dim, seed)
            .into_iter()
            .enumerate()
            .map(|(i, v)| (i as u64, v))
            .collect();
        let q = unit_vectors(1, dim, seed ^ 0xF00D).pop().unwrap();
        for spec in IndexSpec::all_defaults() {
            let store = build(&spec, dim, &data);
            prop_assert!(store.search(&q, 0).is_empty(), "{} k=0", spec.label());
            // k > len is total for every backend; exact backends return
            // everything, ANN backends at most their probed candidates.
            let all = store.search(&q, n + 50);
            prop_assert!(all.len() <= n, "{} k>len bounded by len", spec.label());
            prop_assert!(!all.is_empty(), "{} k>len finds something", spec.label());
            if matches!(spec, IndexSpec::Flat) {
                prop_assert_eq!(all.len(), n, "flat k>len returns len");
            }
            let zero = store.search(&vec![0.0; dim], 3);
            prop_assert!(zero.len() <= 3, "{} zero query", spec.label());
            prop_assert!(
                zero.iter().all(|h| h.score == 0.0),
                "{} zero query scores 0 under cosine", spec.label()
            );
        }
    }
}
