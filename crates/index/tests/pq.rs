//! Property tests for the quantized IVF backend: the residual codec's
//! error bound, bit-identical persistence and batching, the recall floor
//! against the flat oracle, and degenerate-input totality.

use std::sync::OnceLock;

use mcqa_embed::Precision;
use mcqa_index::{
    decode_store, FlatIndex, Metric, PqConfig, PqIndex, ResidualCodec, SearchResult, VectorStore,
};
use mcqa_runtime::Executor;
use mcqa_util::KeyedStochastic;
use proptest::prelude::*;

fn exec() -> &'static Executor {
    static EXEC: OnceLock<Executor> = OnceLock::new();
    EXEC.get_or_init(|| Executor::new(4))
}

/// Clustered unit vectors: `n` points around `centres` separated
/// directions, keyed on (seed, i, j) so generation is order-independent.
fn clustered(n: usize, centres: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
    let rng = KeyedStochastic::new(seed);
    (0..n)
        .map(|i| {
            let c = i % centres;
            let mut v: Vec<f32> = (0..dim)
                .map(|j| {
                    let base = if j % centres == c { 1.0 } else { 0.0 };
                    base + 0.12 * rng.gaussian(&["g", &i.to_string(), &j.to_string()]) as f32
                })
                .collect();
            let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
            v.iter_mut().for_each(|x| *x /= norm);
            v
        })
        .collect()
}

fn trained(dim: usize, data: &[Vec<f32>], config: PqConfig) -> PqIndex {
    let mut pq = PqIndex::new(dim, Metric::Cosine, config);
    pq.train(exec(), data);
    for (i, v) in data.iter().enumerate() {
        pq.add(i as u64, v);
    }
    pq
}

proptest! {
    /// Codec round-trip: every in-range residual dimension decodes within
    /// half a quantization step, at every bit width and subspace shape.
    #[test]
    fn codec_roundtrip_within_quantization_bound(
        bits in 4usize..9,
        sub_dim in 1usize..10,
        seed in 0u64..500,
    ) {
        let dim = 13; // ragged vs every sub_dim in range
        let rng = KeyedStochastic::new(seed);
        let residuals: Vec<Vec<f32>> = (0..40)
            .map(|i| {
                (0..dim)
                    .map(|j| 0.4 * rng.gaussian(&["r", &i.to_string(), &j.to_string()]) as f32)
                    .collect()
            })
            .collect();
        let codec = ResidualCodec::fit(dim, bits, sub_dim, &residuals);
        prop_assert_eq!(codec.code_bytes(), (dim * bits).div_ceil(8));
        let zero = vec![0.0f32; dim];
        let mut rec = vec![0.0f32; dim];
        for r in &residuals {
            let mut codes = Vec::new();
            codec.encode_into(r, &mut codes);
            prop_assert_eq!(codes.len(), codec.code_bytes());
            codec.decode_into(&codes, &zero, &mut rec);
            for (j, (&x, &y)) in r.iter().zip(&rec).enumerate() {
                let bound = codec.quantum(j) * 0.5001 + 1e-6;
                prop_assert!(
                    (x - y).abs() <= bound,
                    "bits={} sub_dim={} dim {}: |{} - {}| > {}", bits, sub_dim, j, x, y, bound
                );
            }
        }
    }

    /// Persistence: a trained store's serde round-trip (through both the
    /// typed decoder and the magic-tag dispatch) answers every query with
    /// bit-identical scores, and re-encoding is stable.
    #[test]
    fn serde_roundtrip_preserves_search_bit_identically(
        n in 1usize..150,
        seed in 0u64..500,
    ) {
        let dim = 16;
        let data = clustered(n, 4, dim, seed);
        let pq = trained(
            dim,
            &data,
            PqConfig { nlist: 8, nprobe: 4, train_iters: 2, bits: 5, sub_dim: 6, seed },
        );
        let bytes = pq.to_bytes();
        let typed = PqIndex::from_bytes(&bytes).expect("typed decode");
        let dynamic = decode_store(&bytes).expect("magic-tag decode");
        prop_assert_eq!(typed.len(), pq.len());
        prop_assert_eq!(dynamic.len(), pq.len());
        for q in clustered(6, 4, dim, seed ^ 0xBEEF) {
            let a = pq.search(&q, 5);
            for hits in [typed.search(&q, 5), dynamic.search(&q, 5)] {
                prop_assert_eq!(hits.len(), a.len());
                for (x, y) in a.iter().zip(&hits) {
                    prop_assert_eq!(x.id, y.id);
                    prop_assert_eq!(x.score.to_bits(), y.score.to_bits(), "score bits");
                }
            }
        }
        prop_assert_eq!(typed.to_bytes(), bytes, "re-encode stable");
    }

    /// The list-sharded `search_batch` is bit-identical to sequential
    /// `search` at 1 and 4 workers, for every batch size (including 0).
    #[test]
    fn search_batch_matches_sequential(
        n in 1usize..200,
        n_queries in 0usize..16,
        seed in 0u64..500,
    ) {
        let dim = 16;
        let data = clustered(n, 4, dim, seed);
        let pq = trained(
            dim,
            &data,
            PqConfig { nlist: 8, nprobe: 3, train_iters: 2, bits: 4, sub_dim: 8, seed },
        );
        let queries = clustered(n_queries, 4, dim, seed ^ 0xDEAD);
        let sequential: Vec<Vec<SearchResult>> =
            queries.iter().map(|q| pq.search(q, 5)).collect();
        for workers in [1usize, 4] {
            let pool = Executor::new(workers);
            prop_assert_eq!(
                &pq.search_batch(&pool, &queries, 5), &sequential,
                "{} workers", workers
            );
        }
    }

    /// Degenerate inputs are defined, not panics: untrained stores,
    /// empty inverted lists (nlist ≫ distinct points), k = 0, k > len,
    /// and the zero query.
    #[test]
    fn degenerate_inputs_are_total(
        n in 1usize..40,
        seed in 0u64..500,
    ) {
        let dim = 8;
        let data = clustered(n, 2, dim, seed);
        let q = data[0].clone();
        let untrained = PqIndex::new(dim, Metric::Cosine, PqConfig::default());
        prop_assert!(!untrained.is_trained());
        prop_assert!(untrained.search(&q, 5).is_empty(), "untrained search is empty");
        // nlist far above the point count: the codebook shrinks, and any
        // empty lists that remain scan cleanly.
        let pq = trained(
            dim,
            &data,
            PqConfig { nlist: 64, nprobe: 64, train_iters: 2, bits: 4, sub_dim: 4, seed },
        );
        prop_assert!(pq.nlist() <= n, "codebook shrinks to the sample");
        prop_assert!(pq.list_sizes().iter().sum::<usize>() == n, "every vector lands in a list");
        prop_assert!(pq.search(&q, 0).is_empty(), "k=0");
        let all = pq.search(&q, n + 50);
        prop_assert!(!all.is_empty() && all.len() <= n, "k>len bounded");
        let zero = pq.search(&vec![0.0; dim], 3);
        prop_assert!(zero.iter().all(|h| h.score == 0.0), "zero query scores 0 under cosine");
    }
}

/// Recall floor against the flat oracle — statistical, so a plain test
/// with fixed generators rather than a proptest shrink target: at a
/// 6-bit width and a 1/4 probe ratio on clustered data, recall@5
/// must clear the same 0.9 floor the CI smoke asserts on the pipeline's
/// real embeddings. (4 bits tops out near 0.83 here — within-cluster
/// top-5 ordering needs the finer residual grid.)
#[test]
fn recall_at_5_floor_against_flat_oracle() {
    let dim = 32;
    let data = clustered(3_000, 16, dim, 7);
    let mut flat = FlatIndex::new(dim, Metric::Cosine, Precision::F32);
    for (i, v) in data.iter().enumerate() {
        flat.add(i as u64, v);
    }
    let pq = trained(
        dim,
        &data,
        PqConfig { nlist: 32, nprobe: 8, train_iters: 4, bits: 6, sub_dim: 8, seed: 11 },
    );
    let queries = clustered(200, 16, dim, 4242);
    let truth = flat.search_batch(exec(), &queries, 5);
    let approx = pq.search_batch(exec(), &queries, 5);
    let mut hits = 0usize;
    let mut total = 0usize;
    for (t, a) in truth.iter().zip(&approx) {
        let ids: std::collections::HashSet<u64> = t.iter().map(|h| h.id).collect();
        hits += a.iter().filter(|h| ids.contains(&h.id)).count();
        total += ids.len();
    }
    let recall = hits as f64 / total as f64;
    assert!(recall >= 0.9, "pq recall@5 = {recall:.3} < 0.9");
}
