//! Property suite for the blocked, query-batched flat-search kernel: every
//! (metric × precision × block size × query block × worker count) path must
//! return **identical ids and scores** to a naive per-row scalar oracle —
//! score each stored row with `Metric::score`, sort by (score desc, id
//! asc), truncate to k. Covers ragged tails (`len % block_rows != 0`),
//! `k >= len`, and duplicate-score ties.

use std::sync::OnceLock;

use mcqa_embed::Precision;
use mcqa_index::{FlatIndex, Metric, SearchResult, VectorStore};
use mcqa_runtime::Executor;
use mcqa_util::KeyedStochastic;
use proptest::prelude::*;

fn exec() -> &'static Executor {
    static EXEC: OnceLock<Executor> = OnceLock::new();
    EXEC.get_or_init(|| Executor::new(4))
}

/// Deterministic dense vectors keyed on (seed, i); deliberately *not*
/// normalised so Dot and L2 see a spread of magnitudes.
fn vectors(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
    let ks = KeyedStochastic::new(seed);
    (0..n)
        .map(|i| {
            (0..dim).map(|j| ks.gaussian(&["v", &i.to_string(), &j.to_string()]) as f32).collect()
        })
        .collect()
}

/// The scalar oracle: per-row `Metric::score` on the store's own decoded
/// rows, full sort with the canonical tie-break, truncate.
fn oracle(idx: &FlatIndex, query: &[f32], k: usize) -> Vec<SearchResult> {
    let mut hits: Vec<SearchResult> = (0..idx.len())
        .map(|i| SearchResult { id: idx.row_id(i), score: idx.metric().score(query, &idx.row(i)) })
        .collect();
    hits.sort_by(|a, b| {
        b.score.partial_cmp(&a.score).unwrap_or(std::cmp::Ordering::Equal).then(a.id.cmp(&b.id))
    });
    hits.truncate(k);
    hits
}

fn build(
    metric: Metric,
    precision: Precision,
    dim: usize,
    rows: &[Vec<f32>],
    duplicate_every: usize,
) -> FlatIndex {
    let mut idx = FlatIndex::new(dim, metric, precision);
    for (i, v) in rows.iter().enumerate() {
        // Duplicated rows under fresh ids force exact score ties, the case
        // where heap order and sort order could legally diverge if the
        // tie-break were not total.
        let v = if duplicate_every > 0 && i % duplicate_every == 0 && i > 0 { &rows[0] } else { v };
        idx.add(i as u64 * 3, v);
    }
    idx
}

const METRICS: [Metric; 3] = [Metric::Cosine, Metric::Dot, Metric::L2];

proptest! {
    /// Single-query blocked search equals the scalar oracle bit-for-bit at
    /// every panel height, including ragged tails and k >= len.
    #[test]
    fn blocked_search_matches_scalar_oracle(
        n in 1usize..90,
        dim in 1usize..40,
        k in 0usize..100,
        seed in 0u64..500,
        dup in 0usize..6,
    ) {
        let rows = vectors(n, dim, seed);
        let query = vectors(1, dim, seed ^ 0xABCD).pop().unwrap();
        for metric in METRICS {
            for precision in [Precision::F32, Precision::F16] {
                let idx = build(metric, precision, dim, &rows, dup);
                let expect = oracle(&idx, &query, k);
                for block_rows in [1usize, 3, 8, n.max(1), n + 7] {
                    let got = idx.search_blocked(&query, k, block_rows);
                    prop_assert_eq!(
                        &got, &expect,
                        "{:?}/{:?} n={} block={}", metric, precision, n, block_rows
                    );
                }
                // The trait entry point uses the default panel height.
                prop_assert_eq!(idx.search(&query, k), expect, "{:?}/{:?}", metric, precision);
            }
        }
    }

    /// Query-batched blocked search equals per-query search at every
    /// (panel height × query block × worker count), i.e. one amortised
    /// panel decode serves every query bit-identically.
    #[test]
    fn batched_search_matches_per_query_search(
        n in 1usize..70,
        n_queries in 0usize..12,
        seed in 0u64..500,
    ) {
        let dim = 24;
        let rows = vectors(n, dim, seed);
        let queries = vectors(n_queries, dim, seed ^ 0xBEEF);
        for metric in METRICS {
            for precision in [Precision::F32, Precision::F16] {
                let idx = build(metric, precision, dim, &rows, 3);
                let expect: Vec<Vec<SearchResult>> =
                    queries.iter().map(|q| oracle(&idx, q, 5)).collect();
                for workers in [1usize, 4] {
                    let pool = Executor::new(workers);
                    for (block_rows, query_block) in [(1, 1), (7, 3), (64, 0), (n.max(1), 2)] {
                        let got =
                            idx.search_batch_blocked(&pool, &queries, 5, block_rows, query_block);
                        prop_assert_eq!(
                            &got, &expect,
                            "{:?}/{:?} n={} rb={} qb={} w={}",
                            metric, precision, n, block_rows, query_block, workers
                        );
                    }
                    prop_assert_eq!(idx.search_batch(&pool, &queries, 5), expect.clone());
                }
            }
        }
    }
}

/// All-identical rows: every score ties, so the returned ids must be the k
/// smallest ids in order — for every metric, precision, and path.
#[test]
fn all_ties_rank_by_ascending_id() {
    let dim = 16;
    let v = vectors(1, dim, 77).pop().unwrap();
    for metric in METRICS {
        for precision in [Precision::F32, Precision::F16] {
            let mut idx = FlatIndex::new(dim, metric, precision);
            for id in [9u64, 2, 14, 5, 0, 7] {
                idx.add(id, &v);
            }
            let hits = idx.search_blocked(&v, 4, 4);
            assert_eq!(
                hits.iter().map(|h| h.id).collect::<Vec<_>>(),
                vec![0, 2, 5, 7],
                "{metric:?}/{precision:?}"
            );
            let batched = idx.search_batch_blocked(exec(), &[v.clone(), v.clone()], 4, 2, 1);
            assert_eq!(batched[0], hits, "{metric:?}/{precision:?} batched");
            assert_eq!(batched[1], hits, "{metric:?}/{precision:?} batched");
        }
    }
}

/// Degenerate shapes stay total on the blocked paths.
#[test]
fn degenerate_blocked_shapes() {
    let dim = 8;
    let idx = FlatIndex::new(dim, Metric::Cosine, Precision::F16);
    assert!(idx.search_blocked(&vec![0.0; dim], 5, 16).is_empty(), "empty index");
    let out = idx.search_batch_blocked(exec(), &[vec![0.0; dim]], 5, 16, 0);
    assert_eq!(out, vec![Vec::new()], "empty index, batched");

    let mut idx = FlatIndex::new(dim, Metric::Cosine, Precision::F16);
    idx.add(1, &vec![1.0; dim]);
    assert!(idx.search_blocked(&vec![1.0; dim], 0, 16).is_empty(), "k = 0");
    assert_eq!(idx.search_blocked(&vec![1.0; dim], 10, 16).len(), 1, "k > len");
    assert_eq!(
        idx.search_batch_blocked(exec(), &[], 5, 16, 0),
        Vec::<Vec<SearchResult>>::new(),
        "no queries"
    );
}
