//! Quantized IVF: coarse centroids plus per-dimension quantized residuals
//! (the PLAID/IVF-SQ family of compressed indexes).
//!
//! Each stored vector is reduced to its nearest coarse centroid's id plus
//! a residual (`v − centroid`) quantized at a configurable 4–8 bits per
//! dimension with per-subspace scale/bias — 4 bits is a 4× compression of
//! the F16 flat matrix, 8 bits matches FAISS's `SQ8`. Search is
//! **asymmetric**: the query stays full-precision while candidate rows are
//! reconstructed (`centroid + dequantized residual`) into panels and
//! scored by the same [`Metric::score_block`] kernel as flat search, with
//! reconstruction norms cached at insert time so cosine stays one dot
//! product per row. Batched search shards the inverted file across the
//! [`Executor`]'s workers *by list*: every probed list's panel is decoded
//! once and scored against all the queries probing it, and per-list
//! partial top-k results merge into the final [`crate::SearchResult`]
//! ranking through the shared `TopK`/`cmp_hits` order — bit-identical to
//! sequential per-query search at any worker count.
//!
//! Training (k-means++ seeding + Lloyd) is shared with plain IVF through
//! [`crate::kmeans`]. Persistence follows the magic-tag codec contract
//! (`PQIV`); inverted-list ids are delta + zigzag varint coded, so the
//! serialized store stays close to `bits/8` bytes per dimension.

use mcqa_embed::{PanelBudget, PanelCache};
use mcqa_runtime::{run_stage_batched, Executor};
use mcqa_util::kernel;
use serde::{Deserialize, Serialize};

use crate::codec::{
    encode_metric, put_f32s, put_u32, put_varint, unzigzag, zigzag, ReadMetricExt, Reader,
};
use crate::kmeans;
use crate::metric::Metric;
use crate::{SearchResult, TopK, VectorStore};

/// Quantized-IVF configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PqConfig {
    /// Number of coarse centroids (inverted lists).
    pub nlist: usize,
    /// Lists visited per query.
    pub nprobe: usize,
    /// k-means iterations.
    pub train_iters: usize,
    /// Residual bits per dimension (4–8).
    pub bits: usize,
    /// Dimensions per scale/bias subspace.
    pub sub_dim: usize,
    /// Seed for centroid initialisation.
    pub seed: u64,
}

impl Default for PqConfig {
    /// Defaults tuned on the pipeline's own chunk embeddings alongside
    /// [`crate::IvfConfig`] (see `repro recall`): the weakly clustered
    /// hash embeddings need the same high `nprobe`/`nlist` ratio to hold
    /// recall@5 ≥ 0.9, and 7 residual bits keep quantization loss below
    /// the ranking noise floor at both smoke (0.01) and characterisation
    /// (0.1) scales — 6 bits dips to 0.89 at scale 0.1 for one byte less
    /// per 8 dims. Narrow subspaces (`sub_dim: 4`) fit the
    /// scale/bias to the hash embeddings' uneven per-dim ranges at no
    /// memory cost (scale/bias is per store, not per vector) and buy
    /// ~2 recall points over whole-vector fitting. Sharply clustered
    /// corpora tolerate `bits: 4` and a much lower `nprobe` (see the
    /// crossover bench).
    fn default() -> Self {
        Self { nlist: 64, nprobe: 48, train_iters: 8, bits: 7, sub_dim: 4, seed: 42 }
    }
}

/// A uniform scalar quantizer over centroid residuals with per-subspace
/// scale/bias, bit-packing `bits` bits per dimension LSB-first.
///
/// Fitting takes each subspace's observed `[min, max]` residual range;
/// values inside the fitted range round-trip within `scale/2` per
/// dimension, values outside clamp to the range edge. A zero-width
/// subspace (constant residuals) stores `scale = 0` and decodes to the
/// constant exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct ResidualCodec {
    dim: usize,
    bits: usize,
    sub_dim: usize,
    scale: Vec<f32>,
    bias: Vec<f32>,
}

impl ResidualCodec {
    /// Fit scale/bias per subspace from training residuals. Panics on an
    /// empty sample, out-of-range `bits`, or `sub_dim == 0`.
    pub fn fit(dim: usize, bits: usize, sub_dim: usize, residuals: &[Vec<f32>]) -> Self {
        assert!((4..=8).contains(&bits), "bits must be in 4..=8, got {bits}");
        assert!(sub_dim >= 1, "sub_dim must be >= 1");
        assert!(!residuals.is_empty(), "cannot fit a codec on an empty sample");
        let n_sub = dim.div_ceil(sub_dim);
        let max_code = (1u32 << bits) - 1;
        let mut scale = vec![0.0f32; n_sub];
        let mut bias = vec![0.0f32; n_sub];
        for s in 0..n_sub {
            let lo_dim = s * sub_dim;
            let hi_dim = ((s + 1) * sub_dim).min(dim);
            let mut lo = f32::INFINITY;
            let mut hi = f32::NEG_INFINITY;
            for r in residuals {
                debug_assert_eq!(r.len(), dim);
                for &x in &r[lo_dim..hi_dim] {
                    lo = lo.min(x);
                    hi = hi.max(x);
                }
            }
            if hi > lo {
                bias[s] = lo;
                scale[s] = (hi - lo) / max_code as f32;
            } else {
                // Constant (or empty) subspace: decode reproduces it exactly.
                bias[s] = if lo.is_finite() { lo } else { 0.0 };
                scale[s] = 0.0;
            }
        }
        Self { dim, bits, sub_dim, scale, bias }
    }

    /// Packed bytes per encoded vector.
    pub fn code_bytes(&self) -> usize {
        (self.dim * self.bits).div_ceil(8)
    }

    /// The decode step size for dimension `j` (0 for constant subspaces);
    /// in-range values round-trip within half of this.
    pub fn quantum(&self, j: usize) -> f32 {
        self.scale[j / self.sub_dim]
    }

    /// Quantize `residual` and append [`ResidualCodec::code_bytes`] packed
    /// bytes to `out`.
    pub fn encode_into(&self, residual: &[f32], out: &mut Vec<u8>) {
        assert_eq!(residual.len(), self.dim, "residual dimension mismatch");
        let max_code = (1u32 << self.bits) - 1;
        let mut acc = 0u32;
        let mut nbits = 0usize;
        for (j, &x) in residual.iter().enumerate() {
            let s = j / self.sub_dim;
            let code = if self.scale[s] == 0.0 {
                0
            } else {
                // NaN-safe: clamp() orders the comparison so NaN falls to
                // the lower bound via the `as` cast's saturating-to-0.
                ((x - self.bias[s]) / self.scale[s]).round().clamp(0.0, max_code as f32) as u32
            };
            acc |= code << nbits;
            nbits += self.bits;
            while nbits >= 8 {
                out.push((acc & 0xff) as u8);
                acc >>= 8;
                nbits -= 8;
            }
        }
        if nbits > 0 {
            out.push((acc & 0xff) as u8);
        }
    }

    /// Reconstruct a full-precision row into `out`: `centroid +
    /// dequantized residual`. This is the one expression every consumer
    /// (insert-time norm caching, deserialisation, search panels) decodes
    /// through, so reconstructions are bit-identical everywhere.
    pub fn decode_into(&self, codes: &[u8], centroid: &[f32], out: &mut [f32]) {
        assert_eq!(codes.len(), self.code_bytes(), "code length mismatch");
        assert_eq!(out.len(), self.dim, "output dimension mismatch");
        let mask = (1u32 << self.bits) - 1;
        let mut acc = 0u32;
        let mut nbits = 0usize;
        let mut bytes = codes.iter();
        for (j, o) in out.iter_mut().enumerate() {
            while nbits < self.bits {
                acc |= u32::from(*bytes.next().expect("code_bytes covers dim")) << nbits;
                nbits += 8;
            }
            let code = acc & mask;
            acc >>= self.bits;
            nbits -= self.bits;
            let s = j / self.sub_dim;
            *o = centroid[j] + (self.bias[s] + code as f32 * self.scale[s]);
        }
    }
}

/// One inverted list: parallel arrays of ids, packed codes, and cached
/// reconstruction norms.
#[derive(Debug, Clone, Default)]
struct PqList {
    ids: Vec<u64>,
    /// `ids.len() × code_bytes` packed residual codes.
    codes: Vec<u8>,
    /// Squared norms of the *reconstructed* rows — the values search
    /// scores — so cosine's cached-norm path is bit-identical to scoring
    /// the reconstruction directly. Derived data: recomputed on
    /// deserialisation, never part of the wire format.
    norms: Vec<f32>,
    /// Per-entry tombstones, parallel to `ids`. Per entry rather than per
    /// id so an upsert (tombstone + re-append the same id) never masks
    /// the new live entry. Never serialised: the wire format is the live
    /// view.
    dead: Vec<bool>,
}

/// The quantized IVF index.
#[derive(Debug, Clone)]
pub struct PqIndex {
    config: PqConfig,
    dim: usize,
    metric: Metric,
    centroids: Vec<Vec<f32>>,
    codec: Option<ResidualCodec>,
    lists: Vec<PqList>,
    /// Resident entries (live + tombstoned).
    len: usize,
    dead_count: usize,
    /// Resident reconstructed panels, keyed by inverted list (`seg` = list
    /// index). Invalidated whenever list contents change; `remove` only
    /// tombstones, so panels stay resident across it.
    cache: PanelCache,
}

impl PqIndex {
    /// Magic tag opening the serialised format.
    pub(crate) const MAGIC: &'static [u8; 4] = b"PQIV";

    /// Create an untrained index.
    pub fn new(dim: usize, metric: Metric, config: PqConfig) -> Self {
        assert!(config.nlist >= 1);
        assert!(config.nprobe >= 1);
        assert!((4..=8).contains(&config.bits), "bits must be in 4..=8");
        assert!(config.sub_dim >= 1);
        Self {
            config,
            dim,
            metric,
            centroids: Vec::new(),
            codec: None,
            lists: Vec::new(),
            len: 0,
            dead_count: 0,
            cache: PanelCache::default(),
        }
    }

    /// The resident panel cache (hit/miss counters, budget, residency) —
    /// read-only; budgets change through
    /// [`VectorStore::set_panel_cache_budget`].
    pub fn panel_cache(&self) -> &PanelCache {
        &self.cache
    }

    /// True when the coarse quantiser and residual codec have been trained.
    pub fn is_trained(&self) -> bool {
        self.codec.is_some()
    }

    /// Number of inverted lists actually in use.
    pub fn nlist(&self) -> usize {
        self.centroids.len()
    }

    /// Occupancy histogram (list lengths), useful for balance diagnostics.
    pub fn list_sizes(&self) -> Vec<usize> {
        self.lists.iter().map(|l| l.ids.len()).collect()
    }

    /// Rows per reconstructed panel: sized like flat search's so an f32
    /// panel stays around 64 KiB at any dimensionality.
    fn block_rows(&self) -> usize {
        (16_384 / self.dim.max(1)).clamp(8, 4096)
    }

    /// Quantize one vector: (list index, packed codes, reconstruction
    /// squared norm). Deterministic, so parallel encoding commutes with
    /// serial insertion.
    fn encode_one(&self, v: &[f32]) -> (usize, Vec<u8>, f32) {
        let codec = self.codec.as_ref().expect("trained");
        let c = kmeans::nearest(self.metric, &self.centroids, v);
        let centroid = &self.centroids[c];
        let residual: Vec<f32> = v.iter().zip(centroid).map(|(x, m)| x - m).collect();
        let mut codes = Vec::with_capacity(codec.code_bytes());
        codec.encode_into(&residual, &mut codes);
        let mut rec = vec![0.0f32; self.dim];
        codec.decode_into(&codes, centroid, &mut rec);
        (c, codes, kernel::sq_norm(&rec))
    }

    fn push_encoded(&mut self, list: usize, id: u64, codes: &[u8], norm: f32) {
        let l = &mut self.lists[list];
        l.ids.push(id);
        l.codes.extend_from_slice(codes);
        l.norms.push(norm);
        l.dead.push(false);
        self.len += 1;
        // The appended list's tail panel changed; resident copies are stale.
        self.cache.invalidate();
    }

    /// Rewrite every list without its tombstoned entries. Centroids and
    /// codec are untouched, so live rows keep their codes (and therefore
    /// their scores) bit-for-bit.
    fn drop_dead_entries(&mut self) {
        if self.dead_count == 0 {
            return;
        }
        let code_bytes = self.codec.as_ref().map_or(0, |c| c.code_bytes());
        for list in &mut self.lists {
            if !list.dead.iter().any(|&d| d) {
                continue;
            }
            let live = list.dead.iter().filter(|&&d| !d).count();
            let mut ids = Vec::with_capacity(live);
            let mut codes = Vec::with_capacity(live * code_bytes);
            let mut norms = Vec::with_capacity(live);
            for (r, &dead) in list.dead.iter().enumerate() {
                if dead {
                    continue;
                }
                ids.push(list.ids[r]);
                codes.extend_from_slice(&list.codes[r * code_bytes..(r + 1) * code_bytes]);
                norms.push(list.norms[r]);
            }
            list.ids = ids;
            list.codes = codes;
            list.norms = norms;
            list.dead.clear();
            list.dead.resize(list.ids.len(), false);
        }
        self.len -= self.dead_count;
        self.dead_count = 0;
        self.cache.invalidate();
    }

    /// The `nprobe` best lists for `query`, best first (descending
    /// centroid score, ascending index on ties).
    fn ranked_lists(&self, query: &[f32]) -> Vec<usize> {
        let mut ranked: Vec<(usize, f32)> = self
            .centroids
            .iter()
            .enumerate()
            .map(|(i, c)| (i, self.metric.score(query, c)))
            .collect();
        ranked.sort_by(|a, b| {
            b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0))
        });
        ranked.truncate(self.config.nprobe);
        ranked.into_iter().map(|(i, _)| i).collect()
    }

    /// Scan one inverted list for a set of queries: fetch each row panel
    /// through the resident [`PanelCache`] (reconstructing it **once** on a
    /// miss), score it against every probing query with
    /// [`Metric::score_block`], and feed the per-query `TopK`s. The
    /// single-query and batched paths both come through here, so their
    /// per-row math (and therefore their results) is identical; the cache
    /// replays the same [`ResidualCodec::decode_into`] output a miss
    /// produces, so residency never changes a bit either.
    fn scan_list(
        &self,
        li: usize,
        queries: &[&[f32]],
        q_sqs: &[f32],
        topks: &mut [TopK],
        scratch: &mut Vec<f32>,
        scores: &mut [f32],
    ) {
        let list = &self.lists[li];
        if list.ids.is_empty() {
            return;
        }
        let codec = self.codec.as_ref().expect("trained");
        let centroid = &self.centroids[li];
        let code_bytes = codec.code_bytes();
        let block_rows = self.block_rows();
        // Budget `Auto` resolves to the whole reconstructed store (every
        // resident entry across all lists, decoded to F32).
        let auto_cap = self.len * self.dim * 4;
        let n = list.ids.len();
        let mut start = 0usize;
        while start < n {
            let rows = block_rows.min(n - start);
            let floats = rows * self.dim;
            self.cache.with_panel(
                li as u64,
                start,
                floats,
                auto_cap,
                scratch,
                |buf| {
                    for r in 0..rows {
                        let codes =
                            &list.codes[(start + r) * code_bytes..(start + r + 1) * code_bytes];
                        codec.decode_into(
                            codes,
                            centroid,
                            &mut buf[r * self.dim..(r + 1) * self.dim],
                        );
                    }
                },
                |panel| {
                    let row_norms = &list.norms[start..start + rows];
                    for ((q, &q_sq), topk) in queries.iter().zip(q_sqs).zip(topks.iter_mut()) {
                        let out = &mut scores[..rows];
                        self.metric.score_block(q, q_sq, &panel[..floats], row_norms, out);
                        for (j, &score) in out.iter().enumerate() {
                            if !list.dead[start + j] {
                                topk.push(SearchResult { id: list.ids[start + j], score });
                            }
                        }
                    }
                },
            );
            start += rows;
        }
    }

    /// Deserialise from [`VectorStore::to_bytes`] output.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let mut r = Reader::new(bytes);
        r.expect_magic(Self::MAGIC)?;
        let metric = r.metric()?;
        let dim = r.u32()? as usize;
        let config = PqConfig {
            nlist: r.u32()? as usize,
            nprobe: r.u32()? as usize,
            train_iters: r.u32()? as usize,
            bits: r.u8()? as usize,
            sub_dim: r.u32()? as usize,
            seed: r.u64()?,
        };
        if config.nlist == 0
            || config.nprobe == 0
            || !(4..=8).contains(&config.bits)
            || config.sub_dim == 0
        {
            return None;
        }
        let trained = match r.u8()? {
            0 => false,
            1 => true,
            _ => return None,
        };
        let n_sub = r.count(8)?;
        let scale = r.f32_vec(n_sub)?;
        let bias = r.f32_vec(n_sub)?;
        let codec = if trained {
            if n_sub != dim.div_ceil(config.sub_dim) {
                return None;
            }
            Some(ResidualCodec { dim, bits: config.bits, sub_dim: config.sub_dim, scale, bias })
        } else {
            if n_sub != 0 {
                return None;
            }
            None
        };
        let n_centroids = r.count(dim * 4)?;
        let centroids: Vec<Vec<f32>> =
            (0..n_centroids).map(|_| r.f32_vec(dim)).collect::<Option<_>>()?;
        let n_lists = r.count(4)?;
        if trained && n_lists != n_centroids {
            return None;
        }
        let code_bytes = (dim * config.bits).div_ceil(8);
        let mut len = 0usize;
        let mut lists = Vec::with_capacity(n_lists);
        for _ in 0..n_lists {
            let entries = r.count(code_bytes.max(1))?;
            let payload_len = r.count(1)?;
            let mut p = Reader::new(r.take(payload_len)?);
            let mut ids = Vec::with_capacity(entries);
            let mut prev = 0i64;
            for _ in 0..entries {
                let id = prev.checked_add(unzigzag(p.varint()?))?;
                if id < 0 {
                    return None;
                }
                ids.push(id as u64);
                prev = id;
            }
            let codes = p.take(entries.checked_mul(code_bytes)?)?.to_vec();
            if !p.exhausted() {
                return None;
            }
            len += entries;
            lists.push(PqList { ids, codes, norms: Vec::new(), dead: vec![false; entries] });
        }
        if !r.exhausted() {
            return None;
        }
        let mut index = Self {
            config,
            dim,
            metric,
            centroids,
            codec,
            lists,
            len,
            dead_count: 0,
            cache: PanelCache::default(),
        };
        // Reconstruction norms are derived data: recompute them through
        // the same decode path insert-time caching used, so the decoded
        // store searches bit-identically to the original.
        if let Some(codec) = index.codec.as_ref() {
            let mut rec = vec![0.0f32; dim];
            for (li, list) in index.lists.iter_mut().enumerate() {
                let centroid = &index.centroids[li];
                let cb = codec.code_bytes();
                list.norms = (0..list.ids.len())
                    .map(|r| {
                        codec.decode_into(&list.codes[r * cb..(r + 1) * cb], centroid, &mut rec);
                        kernel::sq_norm(&rec)
                    })
                    .collect();
            }
        }
        Some(index)
    }
}

impl VectorStore for PqIndex {
    fn add(&mut self, id: u64, vector: &[f32]) {
        assert!(self.is_trained(), "PqIndex::add before train()");
        assert_eq!(vector.len(), self.dim, "vector dimension mismatch");
        let (c, codes, norm) = self.encode_one(vector);
        self.push_encoded(c, id, &codes, norm);
    }

    fn add_batch(&mut self, exec: &Executor, items: &[(u64, Vec<f32>)]) {
        assert!(self.is_trained(), "PqIndex::add_batch before train()");
        for (_, v) in items {
            assert_eq!(v.len(), self.dim, "vector dimension mismatch");
        }
        // Assignment + quantization is the per-item cost and is
        // independent per vector; fan it out, then fill the lists in
        // input order so the store is bit-identical to sequential adds.
        let (encoded, _) =
            run_stage_batched(exec, "pq-encode", (0..items.len()).collect(), 0, |i| {
                Ok::<_, String>(self.encode_one(&items[i].1))
            });
        for (enc, (id, _)) in encoded.into_iter().zip(items) {
            let (c, codes, norm) = enc.expect("encoding cannot fail");
            self.push_encoded(c, *id, &codes, norm);
        }
    }

    /// Train the coarse quantiser (shared k-means++, Lloyd on `exec`) and
    /// fit the residual codec on the sample's residuals, after which the
    /// index accepts [`VectorStore::add`]. Fewer training vectors than
    /// `nlist` shrink the list count. Panics on an empty sample.
    fn train(&mut self, exec: &Executor, training: &[Vec<f32>]) {
        assert!(!training.is_empty(), "cannot train on an empty sample");
        for t in training {
            assert_eq!(t.len(), self.dim, "training vector dimension mismatch");
        }
        let k = self.config.nlist.min(training.len());
        let centroids = kmeans::train_centroids(
            exec,
            self.metric,
            training,
            k,
            self.config.train_iters,
            self.config.seed,
        );
        let (residuals, _) =
            run_stage_batched(exec, "pq-residuals", (0..training.len()).collect(), 0, |i| {
                let c = kmeans::nearest(self.metric, &centroids, &training[i]);
                let r: Vec<f32> =
                    training[i].iter().zip(&centroids[c]).map(|(x, m)| x - m).collect();
                Ok::<_, String>(r)
            });
        let residuals: Vec<Vec<f32>> =
            residuals.into_iter().map(|r| r.expect("residual cannot fail")).collect();
        self.codec =
            Some(ResidualCodec::fit(self.dim, self.config.bits, self.config.sub_dim, &residuals));
        self.lists = vec![PqList::default(); centroids.len()];
        self.centroids = centroids;
        self.len = 0;
        self.dead_count = 0;
        self.cache.invalidate();
    }

    fn remove(&mut self, ids: &[u64]) -> usize {
        let targets: std::collections::HashSet<u64> = ids.iter().copied().collect();
        let mut removed = 0usize;
        for list in &mut self.lists {
            for (id, dead) in list.ids.iter().zip(list.dead.iter_mut()) {
                if !*dead && targets.contains(id) {
                    *dead = true;
                    removed += 1;
                }
            }
        }
        self.dead_count += removed;
        removed
    }

    fn tombstones(&self) -> usize {
        self.dead_count
    }

    fn compact(&mut self, _exec: &Executor) {
        self.drop_dead_entries();
    }

    fn needs_training(&self) -> bool {
        true
    }

    fn search(&self, query: &[f32], k: usize) -> Vec<SearchResult> {
        assert_eq!(query.len(), self.dim, "query dimension mismatch");
        if k == 0 || self.len() == 0 {
            return Vec::new();
        }
        let q_sq = kernel::sq_norm(query);
        let mut topk = vec![TopK::new(k)];
        let mut scratch = Vec::new();
        let mut scores = vec![0.0f32; self.block_rows()];
        for li in self.ranked_lists(query) {
            self.scan_list(li, &[query], &[q_sq], &mut topk, &mut scratch, &mut scores);
        }
        topk.pop().expect("one accumulator").into_sorted()
    }

    fn search_batch(
        &self,
        exec: &Executor,
        queries: &[Vec<f32>],
        k: usize,
    ) -> Vec<Vec<SearchResult>> {
        for q in queries {
            assert_eq!(q.len(), self.dim, "query dimension mismatch");
        }
        if k == 0 || self.len() == 0 || queries.is_empty() {
            return vec![Vec::new(); queries.len()];
        }
        // Stage 1: rank centroids per query (independent, fan out).
        let (probes, _) =
            run_stage_batched(exec, "pq-rank", (0..queries.len()).collect(), 0, |qi| {
                Ok::<_, String>(self.ranked_lists(&queries[qi]))
            });
        // Invert to the list-centric view: which queries probe each list.
        let mut by_list: Vec<Vec<usize>> = vec![Vec::new(); self.lists.len()];
        for (qi, lists) in probes.into_iter().enumerate() {
            for li in lists.expect("ranking cannot fail") {
                by_list[li].push(qi);
            }
        }
        let work: Vec<usize> = (0..self.lists.len())
            .filter(|&li| !by_list[li].is_empty() && !self.lists[li].ids.is_empty())
            .collect();
        // Stage 2: shard the inverted file across the pool by list. Each
        // task reconstructs its list's panels once, scores every probing
        // query, and returns per-(list, query) partial top-k sets.
        let (partials, _) = run_stage_batched(exec, "pq-scan", work, 0, |li| {
            let qis = &by_list[li];
            let qrefs: Vec<&[f32]> = qis.iter().map(|&qi| queries[qi].as_slice()).collect();
            let q_sqs: Vec<f32> = qrefs.iter().map(|q| kernel::sq_norm(q)).collect();
            let mut topks: Vec<TopK> = (0..qis.len()).map(|_| TopK::new(k)).collect();
            let mut scratch = Vec::new();
            let mut scores = vec![0.0f32; self.block_rows()];
            self.scan_list(li, &qrefs, &q_sqs, &mut topks, &mut scratch, &mut scores);
            let out: Vec<(usize, Vec<SearchResult>)> =
                qis.iter().copied().zip(topks.into_iter().map(TopK::into_sorted)).collect();
            Ok::<_, String>(out)
        });
        // Stage 3: merge. The global top-k of a union equals the top-k of
        // the per-list top-k's under `cmp_hits` (a total order whose ties
        // are value-identical), so this matches sequential search exactly.
        let mut topks: Vec<TopK> = (0..queries.len()).map(|_| TopK::new(k)).collect();
        for part in partials {
            for (qi, hits) in part.expect("scan cannot fail") {
                for h in hits {
                    topks[qi].push(h);
                }
            }
        }
        topks.into_iter().map(TopK::into_sorted).collect()
    }

    fn len(&self) -> usize {
        self.len - self.dead_count
    }

    fn metric(&self) -> Metric {
        self.metric
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn payload_bytes(&self) -> usize {
        let lists: usize =
            self.lists.iter().map(|l| l.ids.len() * 8 + l.codes.len() + l.norms.len() * 4).sum();
        let centroids = self.centroids.len() * self.dim * 4;
        let codec = self.codec.as_ref().map_or(0, |c| (c.scale.len() + c.bias.len()) * 4);
        lists + centroids + codec
    }

    fn set_panel_cache_budget(&mut self, budget: PanelBudget) {
        self.cache.set_budget(budget);
    }

    fn panel_cache_resident_bytes(&self) -> usize {
        self.cache.resident_bytes()
    }

    fn to_bytes(&self) -> Vec<u8> {
        if self.dead_count > 0 {
            let mut live = self.clone();
            live.drop_dead_entries();
            return live.to_bytes();
        }
        let mut out = Vec::with_capacity(self.payload_bytes() + 64);
        out.extend_from_slice(Self::MAGIC);
        out.push(encode_metric(self.metric));
        put_u32(&mut out, self.dim);
        put_u32(&mut out, self.config.nlist);
        put_u32(&mut out, self.config.nprobe);
        put_u32(&mut out, self.config.train_iters);
        out.push(self.config.bits as u8);
        put_u32(&mut out, self.config.sub_dim);
        crate::codec::put_u64(&mut out, self.config.seed);
        out.push(u8::from(self.is_trained()));
        match self.codec.as_ref() {
            Some(c) => {
                put_u32(&mut out, c.scale.len());
                put_f32s(&mut out, &c.scale);
                put_f32s(&mut out, &c.bias);
            }
            None => put_u32(&mut out, 0),
        }
        put_u32(&mut out, self.centroids.len());
        for c in &self.centroids {
            put_f32s(&mut out, c);
        }
        put_u32(&mut out, self.lists.len());
        let mut payload = Vec::new();
        for list in &self.lists {
            put_u32(&mut out, list.ids.len());
            payload.clear();
            let mut prev = 0i64;
            for &id in &list.ids {
                put_varint(&mut payload, zigzag(id as i64 - prev));
                prev = id as i64;
            }
            payload.extend_from_slice(&list.codes);
            put_u32(&mut out, payload.len());
            out.extend_from_slice(&payload);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::FlatIndex;
    use mcqa_embed::Precision;
    use mcqa_util::KeyedStochastic;

    /// Clustered synthetic vectors: `n` points around `c` centres.
    fn clustered(n: usize, centres: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
        let rng = KeyedStochastic::new(seed);
        (0..n)
            .map(|i| {
                let c = i % centres;
                let mut v: Vec<f32> = (0..dim)
                    .map(|j| {
                        let base = if j % centres == c { 1.0 } else { 0.0 };
                        base + 0.15 * rng.gaussian(&["g", &i.to_string(), &j.to_string()]) as f32
                    })
                    .collect();
                let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
                v.iter_mut().for_each(|x| *x /= norm);
                v
            })
            .collect()
    }

    fn trained(dim: usize, data: &[Vec<f32>], config: PqConfig) -> PqIndex {
        let mut pq = PqIndex::new(dim, Metric::Cosine, config);
        pq.train(Executor::global(), data);
        for (i, v) in data.iter().enumerate() {
            pq.add(i as u64, v);
        }
        pq
    }

    #[test]
    fn codec_roundtrip_within_quantum() {
        let dim = 24;
        let rng = KeyedStochastic::new(5);
        let residuals: Vec<Vec<f32>> = (0..200)
            .map(|i| {
                (0..dim)
                    .map(|j| 0.3 * rng.gaussian(&["r", &i.to_string(), &j.to_string()]) as f32)
                    .collect()
            })
            .collect();
        for bits in [4usize, 6, 8] {
            let codec = ResidualCodec::fit(dim, bits, 8, &residuals);
            assert_eq!(codec.code_bytes(), (dim * bits).div_ceil(8));
            let zero = vec![0.0f32; dim];
            let mut rec = vec![0.0f32; dim];
            for r in &residuals {
                let mut codes = Vec::new();
                codec.encode_into(r, &mut codes);
                assert_eq!(codes.len(), codec.code_bytes());
                codec.decode_into(&codes, &zero, &mut rec);
                for (j, (&x, &y)) in r.iter().zip(&rec).enumerate() {
                    let bound = codec.quantum(j) * 0.5001 + 1e-6;
                    assert!((x - y).abs() <= bound, "bits={bits} dim {j}: |{x} - {y}| > {bound}");
                }
            }
        }
    }

    #[test]
    fn codec_constant_subspace_is_exact() {
        let residuals = vec![vec![0.5f32, -1.0, 0.5, -1.0]; 3];
        let codec = ResidualCodec::fit(4, 4, 2, &residuals);
        let mut codes = Vec::new();
        codec.encode_into(&residuals[0], &mut codes);
        let mut rec = vec![0.0f32; 4];
        codec.decode_into(&codes, &[0.0; 4], &mut rec);
        assert_eq!(rec, residuals[0], "zero-width ranges decode exactly");
    }

    #[test]
    fn recall_against_flat() {
        let dim = 32;
        let data = clustered(600, 8, dim, 7);
        let mut flat = FlatIndex::new(dim, Metric::Cosine, Precision::F32);
        for (i, v) in data.iter().enumerate() {
            flat.add(i as u64, v);
        }
        let pq = trained(
            dim,
            &data,
            PqConfig { nlist: 16, nprobe: 4, train_iters: 6, bits: 4, sub_dim: 8, seed: 3 },
        );
        let queries = clustered(50, 8, dim, 99);
        let mut hits = 0usize;
        let mut total = 0usize;
        for q in &queries {
            let truth: std::collections::HashSet<u64> =
                flat.search(q, 10).into_iter().map(|h| h.id).collect();
            hits += pq.search(q, 10).iter().filter(|h| truth.contains(&h.id)).count();
            total += truth.len();
        }
        let recall = hits as f64 / total as f64;
        assert!(recall >= 0.8, "PQ recall@10 = {recall}");
    }

    #[test]
    fn search_batch_is_identical_to_sequential() {
        let dim = 16;
        let data = clustered(300, 4, dim, 21);
        let pq = trained(
            dim,
            &data,
            PqConfig { nlist: 8, nprobe: 3, train_iters: 4, bits: 6, sub_dim: 4, seed: 1 },
        );
        let queries = clustered(17, 4, dim, 77);
        let sequential: Vec<Vec<SearchResult>> = queries.iter().map(|q| pq.search(q, 5)).collect();
        for workers in [1usize, 4] {
            let pool = Executor::new(workers);
            assert_eq!(pq.search_batch(&pool, &queries, 5), sequential, "workers={workers}");
        }
        assert!(pq.search_batch(Executor::global(), &[], 5).is_empty());
    }

    #[test]
    fn add_batch_is_bit_identical_to_serial_adds() {
        let dim = 16;
        let data = clustered(150, 4, dim, 13);
        let items: Vec<(u64, Vec<f32>)> =
            data.iter().enumerate().map(|(i, v)| (i as u64 * 3, v.clone())).collect();
        let exec = Executor::global();
        let mut serial = PqIndex::new(dim, Metric::Cosine, PqConfig::default());
        serial.train(exec, &data);
        for (id, v) in &items {
            serial.add(*id, v);
        }
        let mut batched = PqIndex::new(dim, Metric::Cosine, PqConfig::default());
        batched.train(exec, &data);
        batched.add_batch(exec, &items);
        assert_eq!(batched.to_bytes(), serial.to_bytes());
    }

    #[test]
    fn serialisation_roundtrip_preserves_search_bits() {
        let dim = 12;
        let data = clustered(160, 4, dim, 31);
        let pq = trained(
            dim,
            &data,
            PqConfig { nlist: 8, nprobe: 8, train_iters: 4, bits: 5, sub_dim: 5, seed: 9 },
        );
        let bytes = pq.to_bytes();
        let back = PqIndex::from_bytes(&bytes).unwrap();
        assert_eq!(back.len(), pq.len());
        assert_eq!(back.list_sizes(), pq.list_sizes());
        assert!(back.is_trained());
        for q in data.iter().take(8) {
            let a = pq.search(q, 7);
            let b = back.search(q, 7);
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.id, y.id);
                assert_eq!(x.score.to_bits(), y.score.to_bits(), "scores bit-identical");
            }
        }
        assert_eq!(back.to_bytes(), bytes, "re-serialisation is stable");
        // Corruption rejected.
        assert!(PqIndex::from_bytes(&bytes[..bytes.len() - 3]).is_none());
        assert!(PqIndex::from_bytes(b"PQIV").is_none());
        assert!(PqIndex::from_bytes(b"FLATxxxx").is_none());
        // Untrained round-trip.
        let empty = PqIndex::new(4, Metric::Cosine, PqConfig::default());
        let back = PqIndex::from_bytes(&empty.to_bytes()).unwrap();
        assert!(!back.is_trained());
        assert_eq!(back.len(), 0);
    }

    #[test]
    fn remove_upsert_compact_match_rebuild_with_same_codec() {
        let dim = 16;
        let data = clustered(120, 4, dim, 19);
        let config = PqConfig { nlist: 8, nprobe: 8, train_iters: 4, bits: 6, sub_dim: 4, seed: 2 };
        let mut pq = trained(dim, &data, config.clone());
        let exec = Executor::global();

        let gone: Vec<u64> = (0..40).collect();
        assert_eq!(pq.remove(&gone), 40);
        assert_eq!(pq.remove(&gone), 0, "re-removal is a no-op");
        assert_eq!(pq.len(), 80);
        assert_eq!(pq.tombstones(), 40);

        let upserts: Vec<(u64, Vec<f32>)> =
            (50u64..55).map(|i| (i, data[(i as usize + 7) % data.len()].clone())).collect();
        pq.upsert(exec, &upserts);
        assert_eq!(pq.len(), 80, "upsert replaces, not grows");

        // Rebuild cold over the surviving rows, reusing the same trained
        // structure (same config + training sample → same centroids/codec).
        let mut rebuilt = PqIndex::new(dim, Metric::Cosine, config);
        rebuilt.train(exec, &data);
        for (i, v) in data.iter().enumerate() {
            if i >= 40 && !(50..55).contains(&i) {
                rebuilt.add(i as u64, v);
            }
        }
        rebuilt.add_batch(exec, &upserts);

        let queries = clustered(8, 4, dim, 91);
        for q in &queries {
            assert_eq!(pq.search(q, 10), rebuilt.search(q, 10));
        }
        let wire = pq.to_bytes();
        pq.compact(exec);
        assert_eq!(pq.tombstones(), 0);
        assert_eq!(pq.to_bytes(), wire, "serialisation already wrote the live view");
        for q in &queries {
            assert_eq!(pq.search(q, 10), rebuilt.search(q, 10), "post-compaction");
        }
    }

    #[test]
    fn compression_beats_4x_at_4_bits() {
        // Per row: flat/F16 stores 2·dim + 8 (id) bytes, pq stores dim/2
        // (codes) + ~1 (delta-varint id); the centroid table amortises
        // away with corpus size, so the serialized ratio clears 4×.
        let dim = 32;
        let data = clustered(2_000, 8, dim, 17);
        let pq = trained(
            dim,
            &data,
            PqConfig { nlist: 8, nprobe: 4, train_iters: 4, bits: 4, sub_dim: 16, seed: 5 },
        );
        let mut flat = FlatIndex::new(dim, Metric::Cosine, Precision::F16);
        for (i, v) in data.iter().enumerate() {
            flat.add(i as u64, v);
        }
        let ratio = flat.to_bytes().len() as f64 / pq.to_bytes().len() as f64;
        assert!(ratio >= 4.0, "serialized compression vs flat/F16 = {ratio:.2}x");
    }

    #[test]
    fn untrained_and_degenerate_are_total() {
        let pq = PqIndex::new(4, Metric::Cosine, PqConfig::default());
        assert!(!pq.is_trained());
        assert!(pq.search(&[1.0, 0.0, 0.0, 0.0], 5).is_empty());
        let mut pq = pq;
        pq.train(Executor::global(), &[vec![1.0, 0.0, 0.0, 0.0]]);
        assert_eq!(pq.nlist(), 1, "training shrinks nlist to the sample size");
        assert!(pq.search(&[1.0, 0.0, 0.0, 0.0], 5).is_empty(), "trained but empty");
        pq.add(9, &[1.0, 0.0, 0.0, 0.0]);
        assert!(pq.search(&[1.0, 0.0, 0.0, 0.0], 0).is_empty(), "k=0");
        assert_eq!(pq.search(&[1.0, 0.0, 0.0, 0.0], 50)[0].id, 9, "k>len");
    }

    #[test]
    #[should_panic(expected = "before train")]
    fn add_before_train_panics() {
        let mut pq = PqIndex::new(4, Metric::Cosine, PqConfig::default());
        pq.add(0, &[0.0; 4]);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn train_empty_panics() {
        let mut pq = PqIndex::new(4, Metric::Cosine, PqConfig::default());
        pq.train(Executor::global(), &[]);
    }
}
