//! `mcqa-index` — vector stores standing in for FAISS.
//!
//! The paper keeps four FAISS databases: one over paper chunks and one per
//! reasoning-trace mode. This crate supplies the same capability with four
//! index families behind **one backend-agnostic trait**, [`VectorStore`]:
//!
//! * [`flat`] — exact brute-force search (ground truth; what the paper's
//!   small FP16 databases effectively use).
//! * [`ivf`] — inverted-file index with a k-means coarse quantiser and
//!   `nprobe` search, trading recall for speed on large corpora.
//! * [`pq`] — quantized IVF: coarse centroids plus 4–8-bit residual codes,
//!   holding large corpora in a fraction of the flat matrix's memory.
//! * [`hnsw`] — a hierarchical navigable-small-world graph for logarithmic
//!   search, the standard high-recall ANN structure.
//! * [`kmeans`] — the shared k-means++ trainer both coarse quantisers
//!   fit their centroids through (Lloyd fanned out on the [`Executor`]).
//! * [`metric`] — cosine / dot / L2 metrics shared by all indexes.
//! * [`spec`] — [`IndexSpec`] (the *configuration* of a backend) plus the
//!   [`build_store`] factory and the [`decode_store`] codec, so consumers
//!   pick a backend by value instead of by type.
//! * [`registry`] — a named multi-database registry (chunks + three trace
//!   modes, like the paper's four FAISS stores), round-trippable to bytes.
//! * [`lazy`] — the serving-grade open path: [`IndexRegistry::open_bytes`]
//!   validates headers now and defers row decoding to first search, so
//!   startup cost is a header walk instead of a full-corpus decode.
//!
//! The trait surface covers the whole store lifecycle: [`VectorStore::train`]
//! (a no-op for everything but the coarse quantisers), [`VectorStore::add`] /
//! [`VectorStore::add_batch`] (parallel build on a caller-supplied
//! [`Executor`]), [`VectorStore::search`] / [`VectorStore::search_batch`],
//! and [`VectorStore::to_bytes`] persistence (decoded back through
//! [`decode_store`], which dispatches on each format's magic tag).
//!
//! All indexes are deterministic given their seeds — `add_batch` and
//! `search_batch` produce bit-identical stores/results to their sequential
//! counterparts at any worker count — and IVF/HNSW recall is
//! property-tested against the flat ground truth.
//!
//! Exact scoring bottoms out in the fixed-order multi-accumulator kernels
//! of [`mcqa_util::kernel`]: flat search decodes rows in panels, reuses
//! build-time-cached row norms, streams candidates through a bounded
//! top-k heap, and blocks batched search over queries as well as rows
//! (one panel decode per query block). The blocked paths are
//! property-tested bit-identical to a per-row scalar oracle
//! (`tests/kernel.rs`); IVF's in-list scan reuses the same kernels.

pub mod flat;
pub mod hnsw;
pub mod ivf;
pub mod kmeans;
pub mod lazy;
pub mod metric;
pub mod pq;
pub mod registry;
pub mod spec;

pub(crate) mod codec;

pub use flat::FlatIndex;
pub use hnsw::{HnswConfig, HnswIndex};
pub use ivf::{IvfConfig, IvfIndex};
pub use kmeans::train_centroids;
pub use lazy::{peek_store_header, LazyStore, StoreHeader};
pub use metric::Metric;
pub use pq::{PqConfig, PqIndex, ResidualCodec};
pub use registry::IndexRegistry;
pub use spec::{build_store, build_store_from_vectors, decode_store, IndexSpec};

use mcqa_runtime::{run_stage_batched, Executor};
use serde::{Deserialize, Serialize};

/// One search hit: an external id and a similarity score (higher = better
/// under every metric; L2 distances are negated).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SearchResult {
    /// External id supplied at insertion.
    pub id: u64,
    /// Similarity score (metric-dependent; higher is more similar).
    pub score: f32,
}

/// The common vector-store interface. Everything downstream of this crate
/// (the pipeline, the evaluator, the `repro` binary) programs against
/// `dyn VectorStore`, so the backend is a configuration choice
/// ([`IndexSpec`]) rather than a type.
///
/// `Send + Sync` are supertraits: stores are built once and then shared
/// read-only across the runtime pool's workers.
pub trait VectorStore: Send + Sync {
    /// Add a vector under an external id. For trainable backends (IVF)
    /// this panics until [`VectorStore::train`] has run.
    fn add(&mut self, id: u64, vector: &[f32]);

    /// Top-`k` most similar vectors to `query`, best first. Deterministic:
    /// ties break by ascending id.
    fn search(&self, query: &[f32], k: usize) -> Vec<SearchResult>;

    /// Number of stored vectors.
    fn len(&self) -> usize;

    /// True when no vectors are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The metric in use.
    fn metric(&self) -> Metric;

    /// Dimensionality every vector must have.
    fn dim(&self) -> usize;

    /// True when the store must see [`VectorStore::train`] before
    /// [`VectorStore::add`]. Only the coarse quantisers (IVF, PQ) return
    /// true.
    fn needs_training(&self) -> bool {
        false
    }

    /// Fit any coarse structure on a training sample, fanning k-means
    /// iterations out on `exec`'s pool. A no-op for backends without one
    /// (flat, HNSW). Deterministic at any worker count.
    fn train(&mut self, _exec: &Executor, _sample: &[Vec<f32>]) {}

    /// Bulk insertion fanned out on `exec`'s pool where the backend
    /// permits (flat parallelises row encoding, IVF parallelises centroid
    /// assignment; HNSW inserts serially — its graph updates are
    /// order-dependent). The resulting store is **bit-identical** to
    /// sequential [`VectorStore::add`] calls in `items` order, at any
    /// worker count.
    fn add_batch(&mut self, exec: &Executor, items: &[(u64, Vec<f32>)]) {
        let _ = exec;
        for (id, v) in items {
            self.add(*id, v);
        }
    }

    /// Batch search fanned out on `exec`'s pool; results are index-aligned
    /// with `queries` and bit-identical to per-query [`VectorStore::search`].
    fn search_batch(
        &self,
        exec: &Executor,
        queries: &[Vec<f32>],
        k: usize,
    ) -> Vec<Vec<SearchResult>> {
        let (results, _) =
            run_stage_batched(exec, "search-batch", (0..queries.len()).collect(), 0, |i| {
                Ok::<_, String>(self.search(&queries[i], k))
            });
        results.into_iter().map(|r| r.expect("search cannot fail")).collect()
    }

    /// Payload bytes of the backing storage (vectors + graph/list
    /// structure), for capacity reporting.
    fn payload_bytes(&self) -> usize;

    /// Serialise the store (self-describing: a 4-byte magic tag selects
    /// the decoder in [`decode_store`]).
    fn to_bytes(&self) -> Vec<u8>;
}

/// The one hit ordering every index family uses: descending score, then
/// ascending id (`Less` = ranks earlier). Centralised so the full-sort
/// path and the bounded-heap path cannot disagree on ties.
#[inline]
pub(crate) fn cmp_hits(a: &SearchResult, b: &SearchResult) -> std::cmp::Ordering {
    b.score.partial_cmp(&a.score).unwrap_or(std::cmp::Ordering::Equal).then(a.id.cmp(&b.id))
}

/// Deterministically order candidate hits: descending score, then
/// ascending id. Shared by all index implementations.
pub(crate) fn sort_hits(hits: &mut [SearchResult]) {
    hits.sort_by(cmp_hits);
}

/// A [`SearchResult`] ordered by [`cmp_hits`] with `Greater` = worse, so a
/// max-[`std::collections::BinaryHeap`] keeps the worst retained hit at
/// the root (the same `Ord`-newtype pattern as `hnsw`'s `Scored`).
struct WorstFirst(SearchResult);

impl PartialEq for WorstFirst {
    fn eq(&self, other: &Self) -> bool {
        cmp_hits(&self.0, &other.0) == std::cmp::Ordering::Equal
    }
}

impl Eq for WorstFirst {}

impl PartialOrd for WorstFirst {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for WorstFirst {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        cmp_hits(&self.0, &other.0)
    }
}

/// A bounded top-k accumulator: keeps the `k` best hits under [`cmp_hits`]
/// out of an arbitrary stream, O(log k) per pushed improvement and O(1)
/// per rejected candidate, instead of materialising every hit and sorting
/// (`O(n log n)` and `n × 12` bytes per query — the old flat-search cost).
///
/// Yields exactly what `sort_hits` + `truncate(k)` yields on the same
/// stream: [`cmp_hits`] is a total order whose ties are value-identical
/// hits, so which duplicate survives is unobservable.
pub(crate) struct TopK {
    k: usize,
    heap: std::collections::BinaryHeap<WorstFirst>,
}

impl TopK {
    pub(crate) fn new(k: usize) -> Self {
        Self { k, heap: std::collections::BinaryHeap::with_capacity(k.min(1024)) }
    }

    #[inline]
    pub(crate) fn push(&mut self, hit: SearchResult) {
        if self.heap.len() < self.k {
            self.heap.push(WorstFirst(hit));
        } else if let Some(mut worst) = self.heap.peek_mut() {
            if cmp_hits(&hit, &worst.0) == std::cmp::Ordering::Less {
                *worst = WorstFirst(hit);
            }
        }
    }

    /// The kept hits, best first.
    pub(crate) fn into_sorted(self) -> Vec<SearchResult> {
        let mut hits: Vec<SearchResult> = self.heap.into_iter().map(|w| w.0).collect();
        sort_hits(&mut hits);
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topk_equals_sort_then_truncate() {
        // Adversarial stream: duplicate scores, duplicate (score, id)
        // pairs, ascending and descending runs.
        let mut hits = Vec::new();
        for i in 0..200u64 {
            let score = ((i * 7919) % 23) as f32 / 23.0;
            hits.push(SearchResult { id: i % 40, score });
        }
        for k in [0usize, 1, 3, 5, 40, 200, 500] {
            let mut oracle = hits.clone();
            sort_hits(&mut oracle);
            oracle.truncate(k);
            let mut topk = TopK::new(k);
            for h in &hits {
                topk.push(*h);
            }
            assert_eq!(topk.into_sorted(), oracle, "k={k}");
        }
    }
}
