//! `mcqa-index` — vector stores standing in for FAISS.
//!
//! The paper keeps four FAISS databases: one over paper chunks and one per
//! reasoning-trace mode. This crate supplies the same capability with three
//! index families exposing one trait:
//!
//! * [`flat`] — exact brute-force search (ground truth; what the paper's
//!   small FP16 databases effectively use).
//! * [`ivf`] — inverted-file index with a k-means coarse quantiser and
//!   `nprobe` search, trading recall for speed on large corpora.
//! * [`hnsw`] — a hierarchical navigable-small-world graph for logarithmic
//!   search, the standard high-recall ANN structure.
//! * [`metric`] — cosine / dot / L2 metrics shared by all indexes.
//! * [`registry`] — a named multi-database registry (chunks + three trace
//!   modes, like the paper's four FAISS stores).
//!
//! All indexes are deterministic given their seeds, and IVF/HNSW recall is
//! property-tested against the flat ground truth.

pub mod flat;
pub mod hnsw;
pub mod ivf;
pub mod metric;
pub mod registry;

pub use flat::FlatIndex;
pub use hnsw::{HnswConfig, HnswIndex};
pub use ivf::{IvfConfig, IvfIndex};
pub use metric::Metric;
pub use registry::IndexRegistry;

use serde::{Deserialize, Serialize};

/// One search hit: an external id and a similarity score (higher = better
/// under every metric; L2 distances are negated).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SearchResult {
    /// External id supplied at insertion.
    pub id: u64,
    /// Similarity score (metric-dependent; higher is more similar).
    pub score: f32,
}

/// The common vector-store interface.
pub trait VectorStore {
    /// Add a vector under an external id.
    fn add(&mut self, id: u64, vector: &[f32]);
    /// Top-`k` most similar vectors to `query`, best first. Deterministic:
    /// ties break by ascending id.
    fn search(&self, query: &[f32], k: usize) -> Vec<SearchResult>;
    /// Number of stored vectors.
    fn len(&self) -> usize;
    /// True when no vectors are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// The metric in use.
    fn metric(&self) -> Metric;
}

/// Deterministically order candidate hits: descending score, then
/// ascending id. Shared by all index implementations.
pub(crate) fn sort_hits(hits: &mut [SearchResult]) {
    hits.sort_by(|a, b| {
        b.score.partial_cmp(&a.score).unwrap_or(std::cmp::Ordering::Equal).then(a.id.cmp(&b.id))
    });
}
