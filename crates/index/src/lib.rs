//! `mcqa-index` — vector stores standing in for FAISS.
//!
//! The paper keeps four FAISS databases: one over paper chunks and one per
//! reasoning-trace mode. This crate supplies the same capability with four
//! index families behind **one backend-agnostic trait**, [`VectorStore`]:
//!
//! * [`flat`] — exact brute-force search (ground truth; what the paper's
//!   small FP16 databases effectively use).
//! * [`ivf`] — inverted-file index with a k-means coarse quantiser and
//!   `nprobe` search, trading recall for speed on large corpora.
//! * [`pq`] — quantized IVF: coarse centroids plus 4–8-bit residual codes,
//!   holding large corpora in a fraction of the flat matrix's memory.
//! * [`hnsw`] — a hierarchical navigable-small-world graph for logarithmic
//!   search, the standard high-recall ANN structure.
//! * [`kmeans`] — the shared k-means++ trainer both coarse quantisers
//!   fit their centroids through (Lloyd fanned out on the [`Executor`]).
//! * [`metric`] — cosine / dot / L2 metrics shared by all indexes.
//! * [`spec`] — [`IndexSpec`] (the *configuration* of a backend) plus the
//!   [`build_store`] factory and the [`decode_store`] codec, so consumers
//!   pick a backend by value instead of by type.
//! * [`registry`] — a named multi-database registry (chunks + three trace
//!   modes, like the paper's four FAISS stores), round-trippable to bytes.
//! * [`lazy`] — the serving-grade open path: [`IndexRegistry::open_bytes`]
//!   validates headers now and defers row decoding to first search, so
//!   startup cost is a header walk instead of a full-corpus decode.
//!
//! The trait surface covers the whole store lifecycle: [`VectorStore::train`]
//! (a no-op for everything but the coarse quantisers), [`VectorStore::add`] /
//! [`VectorStore::add_batch`] (parallel build on a caller-supplied
//! [`Executor`]), [`VectorStore::search`] / [`VectorStore::search_batch`],
//! the incremental-ingest mutation surface — [`VectorStore::remove`]
//! (tombstones), [`VectorStore::upsert`], and [`VectorStore::compact`]
//! (rewrites the storage once tombstones accumulate) — and
//! [`VectorStore::to_bytes`] persistence (decoded back through
//! [`decode_store`], which dispatches on each format's magic tag; the
//! wire formats are always tombstone-free, serialising the live view).
//!
//! All indexes are deterministic given their seeds — `add_batch` and
//! `search_batch` produce bit-identical stores/results to their sequential
//! counterparts at any worker count — and IVF/HNSW recall is
//! property-tested against the flat ground truth.
//!
//! Exact scoring bottoms out in the fixed-order multi-accumulator kernels
//! of [`mcqa_util::kernel`]: flat search decodes rows in panels, reuses
//! build-time-cached row norms, streams candidates through a bounded
//! top-k heap, and blocks batched search over queries as well as rows
//! (one panel decode per query block). The blocked paths are
//! property-tested bit-identical to a per-row scalar oracle
//! (`tests/kernel.rs`); IVF's in-list scan reuses the same kernels.

pub mod flat;
pub mod hnsw;
pub mod ivf;
pub mod kmeans;
pub mod lazy;
pub mod metric;
pub mod pq;
pub mod registry;
pub mod spec;

pub(crate) mod codec;

pub use flat::FlatIndex;
pub use hnsw::{HnswConfig, HnswIndex};
pub use ivf::{IvfConfig, IvfIndex};
pub use kmeans::train_centroids;
pub use lazy::{peek_store_header, LazyStore, StoreHeader};
pub use metric::Metric;
pub use pq::{PqConfig, PqIndex, ResidualCodec};
pub use registry::IndexRegistry;
pub use spec::{build_store, build_store_from_vectors, decode_store, IndexSpec};

use mcqa_runtime::{run_stage_batched, Executor};

/// The shared hit type and its canonical ordering now live in
/// [`mcqa_util::hits`] (the lexical index and fusion layer rank through
/// the same comparator); re-exported here so downstream paths are
/// unchanged.
pub use mcqa_util::hits::SearchResult;
pub(crate) use mcqa_util::hits::{sort_hits, TopK};

/// The common vector-store interface. Everything downstream of this crate
/// (the pipeline, the evaluator, the `repro` binary) programs against
/// `dyn VectorStore`, so the backend is a configuration choice
/// ([`IndexSpec`]) rather than a type.
///
/// `Send + Sync` are supertraits: stores are built once and then shared
/// read-only across the runtime pool's workers.
pub trait VectorStore: Send + Sync {
    /// Add a vector under an external id. For trainable backends (IVF)
    /// this panics until [`VectorStore::train`] has run.
    fn add(&mut self, id: u64, vector: &[f32]);

    /// Top-`k` most similar vectors to `query`, best first. Deterministic:
    /// ties break by ascending id. Tombstoned rows (see
    /// [`VectorStore::remove`]) never appear.
    fn search(&self, query: &[f32], k: usize) -> Vec<SearchResult>;

    /// Number of live (non-tombstoned) stored vectors.
    fn len(&self) -> usize;

    /// True when no vectors are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The metric in use.
    fn metric(&self) -> Metric;

    /// Dimensionality every vector must have.
    fn dim(&self) -> usize;

    /// True when the store must see [`VectorStore::train`] before
    /// [`VectorStore::add`]. Only the coarse quantisers (IVF, PQ) return
    /// true.
    fn needs_training(&self) -> bool {
        false
    }

    /// Fit any coarse structure on a training sample, fanning k-means
    /// iterations out on `exec`'s pool. A no-op for backends without one
    /// (flat, HNSW). Deterministic at any worker count.
    fn train(&mut self, _exec: &Executor, _sample: &[Vec<f32>]) {}

    /// Bulk insertion fanned out on `exec`'s pool where the backend
    /// permits (flat parallelises row encoding, IVF parallelises centroid
    /// assignment; HNSW inserts serially — its graph updates are
    /// order-dependent). The resulting store is **bit-identical** to
    /// sequential [`VectorStore::add`] calls in `items` order, at any
    /// worker count.
    fn add_batch(&mut self, exec: &Executor, items: &[(u64, Vec<f32>)]) {
        let _ = exec;
        for (id, v) in items {
            self.add(*id, v);
        }
    }

    /// Tombstone the rows stored under `ids`: they stop appearing in
    /// search results immediately, while the backing storage is only
    /// rewritten at the next [`VectorStore::compact`] (or serialisation,
    /// which always writes the tombstone-free live view). Ids not present
    /// (or already tombstoned) are ignored. Returns the number of rows
    /// newly tombstoned.
    fn remove(&mut self, ids: &[u64]) -> usize;

    /// Replace-or-insert: tombstone any existing rows under the item ids,
    /// then bulk-insert the new vectors through
    /// [`VectorStore::add_batch`]. Afterwards search results are
    /// bit-identical to a store rebuilt from scratch over the final live
    /// rows — for IVF/PQ, one reusing the same trained coarse structure;
    /// HNSW's graph is insertion-order-dependent and documents its
    /// rebuild-on-compaction semantics in [`crate::hnsw`].
    fn upsert(&mut self, exec: &Executor, items: &[(u64, Vec<f32>)]) {
        let ids: Vec<u64> = items.iter().map(|(id, _)| *id).collect();
        self.remove(&ids);
        self.add_batch(exec, items);
    }

    /// Number of tombstoned rows still resident in the backing storage.
    fn tombstones(&self) -> usize {
        0
    }

    /// Rewrite the backing storage without its tombstoned rows (a no-op
    /// when nothing is tombstoned). Trained coarse structure — IVF/PQ
    /// centroids and codebooks — is preserved, so post-compaction search
    /// is bit-identical to pre-compaction search; HNSW instead rebuilds
    /// its graph from the live rows in insertion order (see
    /// [`crate::hnsw`]).
    fn compact(&mut self, _exec: &Executor) {}

    /// Batch search fanned out on `exec`'s pool; results are index-aligned
    /// with `queries` and bit-identical to per-query [`VectorStore::search`].
    fn search_batch(
        &self,
        exec: &Executor,
        queries: &[Vec<f32>],
        k: usize,
    ) -> Vec<Vec<SearchResult>> {
        let (results, _) =
            run_stage_batched(exec, "search-batch", (0..queries.len()).collect(), 0, |i| {
                Ok::<_, String>(self.search(&queries[i], k))
            });
        results.into_iter().map(|r| r.expect("search cannot fail")).collect()
    }

    /// Payload bytes of the backing storage (vectors + graph/list
    /// structure), for capacity reporting.
    fn payload_bytes(&self) -> usize;

    /// Re-budget the store's resident decoded-panel cache (see
    /// [`mcqa_embed::PanelCache`]). A no-op for backends without one —
    /// IVF and HNSW keep working vectors at F32 already; flat and PQ
    /// decode panels at search time and cache them under this budget.
    fn set_panel_cache_budget(&mut self, _budget: mcqa_embed::PanelBudget) {}

    /// Bytes of decoded panels currently resident in the store's panel
    /// cache (0 for backends without one), for capacity reporting.
    fn panel_cache_resident_bytes(&self) -> usize {
        0
    }

    /// Serialise the store (self-describing: a 4-byte magic tag selects
    /// the decoder in [`decode_store`]).
    fn to_bytes(&self) -> Vec<u8>;
}
