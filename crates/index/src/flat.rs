//! Exact brute-force index over an [`EmbeddingMatrix`].

use mcqa_embed::{EmbeddingMatrix, Precision};
use mcqa_runtime::Executor;

use crate::codec::{encode_metric, put_u64, Reader};
use crate::metric::Metric;
use crate::{sort_hits, SearchResult, VectorStore};

/// An exact (non-approximate) vector index. Ground truth for recall tests
/// and the right default below ~10⁵ vectors.
#[derive(Debug, Clone)]
pub struct FlatIndex {
    matrix: EmbeddingMatrix,
    ids: Vec<u64>,
    metric: Metric,
}

impl FlatIndex {
    /// Magic tag opening the serialised format.
    pub(crate) const MAGIC: &'static [u8; 4] = b"FLAT";

    /// Create an empty index.
    pub fn new(dim: usize, metric: Metric, precision: Precision) -> Self {
        Self { matrix: EmbeddingMatrix::new(dim, precision), ids: Vec::new(), metric }
    }

    /// Deserialise from [`VectorStore::to_bytes`] output.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let mut r = Reader::new(bytes);
        r.expect_magic(Self::MAGIC)?;
        let metric = r.metric()?;
        let mlen = r.u64()? as usize;
        let matrix = EmbeddingMatrix::from_bytes(r.take(mlen)?)?;
        let n = matrix.len();
        let ids: Vec<u64> = (0..n).map(|_| r.u64()).collect::<Option<_>>()?;
        r.exhausted().then_some(Self { matrix, ids, metric })
    }
}

impl VectorStore for FlatIndex {
    fn add(&mut self, id: u64, vector: &[f32]) {
        self.matrix.push(vector);
        self.ids.push(id);
    }

    fn add_batch(&mut self, exec: &Executor, items: &[(u64, Vec<f32>)]) {
        // Row quantisation is the per-item cost; fan it out while keeping
        // insertion order (and therefore bytes) identical to serial adds.
        let rows: Vec<&[f32]> = items.iter().map(|(_, v)| v.as_slice()).collect();
        self.matrix.extend_parallel(exec, &rows);
        self.ids.extend(items.iter().map(|(id, _)| *id));
    }

    fn search(&self, query: &[f32], k: usize) -> Vec<SearchResult> {
        assert_eq!(query.len(), self.dim(), "query dimension mismatch");
        if k == 0 || self.is_empty() {
            return Vec::new();
        }
        let mut hits: Vec<SearchResult> = Vec::with_capacity(self.len());
        self.matrix.for_each_row(|i, row| {
            hits.push(SearchResult { id: self.ids[i], score: self.metric.score(query, row) });
        });
        sort_hits(&mut hits);
        hits.truncate(k);
        hits
    }

    fn len(&self) -> usize {
        self.ids.len()
    }

    fn metric(&self) -> Metric {
        self.metric
    }

    fn dim(&self) -> usize {
        self.matrix.dim()
    }

    fn payload_bytes(&self) -> usize {
        self.matrix.payload_bytes() + self.ids.len() * 8
    }

    fn to_bytes(&self) -> Vec<u8> {
        let m = self.matrix.to_bytes();
        let mut out = Vec::with_capacity(m.len() + self.ids.len() * 8 + 16);
        out.extend_from_slice(Self::MAGIC);
        out.push(encode_metric(self.metric));
        put_u64(&mut out, m.len() as u64);
        out.extend_from_slice(&m);
        for id in &self.ids {
            put_u64(&mut out, *id);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(dim: usize, hot: usize) -> Vec<f32> {
        let mut v = vec![0.0; dim];
        v[hot] = 1.0;
        v
    }

    #[test]
    fn exact_nearest_neighbour() {
        let mut idx = FlatIndex::new(4, Metric::Cosine, Precision::F32);
        for i in 0..4 {
            idx.add(100 + i as u64, &unit(4, i));
        }
        let hits = idx.search(&unit(4, 2), 2);
        assert_eq!(hits[0].id, 102);
        assert!((hits[0].score - 1.0).abs() < 1e-6);
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn ties_break_by_id() {
        let mut idx = FlatIndex::new(2, Metric::Dot, Precision::F32);
        idx.add(7, &[1.0, 0.0]);
        idx.add(3, &[1.0, 0.0]);
        idx.add(5, &[1.0, 0.0]);
        let hits = idx.search(&[1.0, 0.0], 3);
        assert_eq!(hits.iter().map(|h| h.id).collect::<Vec<_>>(), vec![3, 5, 7]);
    }

    #[test]
    fn k_larger_than_len() {
        let mut idx = FlatIndex::new(2, Metric::Cosine, Precision::F32);
        idx.add(1, &[1.0, 0.0]);
        assert_eq!(idx.search(&[1.0, 0.0], 10).len(), 1);
        assert!(idx.search(&[1.0, 0.0], 0).is_empty());
    }

    #[test]
    fn empty_index_returns_nothing() {
        let idx = FlatIndex::new(2, Metric::Cosine, Precision::F32);
        assert!(idx.search(&[1.0, 0.0], 5).is_empty());
        assert!(idx.is_empty());
    }

    #[test]
    #[should_panic(expected = "query dimension mismatch")]
    fn dim_mismatch_panics() {
        let mut idx = FlatIndex::new(3, Metric::Cosine, Precision::F32);
        idx.add(1, &[1.0, 0.0, 0.0]);
        idx.search(&[1.0, 0.0], 1);
    }

    #[test]
    fn f16_backing_preserves_ranking() {
        let dim = 64;
        let mk = |seed: u64| -> Vec<f32> {
            let mut v: Vec<f32> = (0..dim)
                .map(|j| {
                    (mcqa_util::splitmix64(seed * 1000 + j as u64) as f32 / u64::MAX as f32) - 0.5
                })
                .collect();
            let n: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
            v.iter_mut().for_each(|x| *x /= n);
            v
        };
        let mut f32_idx = FlatIndex::new(dim, Metric::Cosine, Precision::F32);
        let mut f16_idx = FlatIndex::new(dim, Metric::Cosine, Precision::F16);
        for i in 0..200u64 {
            let v = mk(i);
            f32_idx.add(i, &v);
            f16_idx.add(i, &v);
        }
        // Top-1 must agree on (almost) every query; check exactly.
        let mut agree = 0;
        for q in 0..50u64 {
            let query = mk(10_000 + q);
            let a = f32_idx.search(&query, 1)[0].id;
            let b = f16_idx.search(&query, 1)[0].id;
            if a == b {
                agree += 1;
            }
        }
        assert!(agree >= 48, "f16 quantisation changed too many top-1s: {agree}/50");
    }

    #[test]
    fn batch_matches_serial() {
        let mut idx = FlatIndex::new(8, Metric::Cosine, Precision::F32);
        for i in 0..20 {
            idx.add(i as u64, &unit(8, i % 8));
        }
        let queries: Vec<Vec<f32>> = (0..8).map(|i| unit(8, i)).collect();
        let batch = idx.search_batch(Executor::global(), &queries, 3);
        for (q, hits) in queries.iter().zip(&batch) {
            assert_eq!(hits, &idx.search(q, 3));
        }
    }

    #[test]
    fn add_batch_is_bit_identical_to_serial_adds() {
        let items: Vec<(u64, Vec<f32>)> =
            (0..100).map(|i| (i as u64 * 7, unit(8, i % 8))).collect();
        for precision in [Precision::F32, Precision::F16] {
            let mut serial = FlatIndex::new(8, Metric::Cosine, precision);
            for (id, v) in &items {
                serial.add(*id, v);
            }
            let mut batched = FlatIndex::new(8, Metric::Cosine, precision);
            batched.add_batch(Executor::global(), &items);
            assert_eq!(batched.to_bytes(), serial.to_bytes(), "{precision:?}");
        }
    }

    #[test]
    fn serialisation_roundtrip() {
        let mut idx = FlatIndex::new(8, Metric::L2, Precision::F16);
        for i in 0..10 {
            idx.add(i as u64 * 3, &unit(8, i % 8));
        }
        let bytes = idx.to_bytes();
        let back = FlatIndex::from_bytes(&bytes).unwrap();
        assert_eq!(back.len(), idx.len());
        assert_eq!(back.metric(), Metric::L2);
        let q = unit(8, 3);
        assert_eq!(back.search(&q, 5), idx.search(&q, 5));
        // Corruption rejected.
        assert!(FlatIndex::from_bytes(&bytes[..bytes.len() - 5]).is_none());
        assert!(FlatIndex::from_bytes(b"nope").is_none());
    }
}
