//! Exact brute-force index over an [`EmbeddingMatrix`], scored by a
//! blocked, query-batched kernel.
//!
//! Search never materialises the full hit list: rows arrive in panels
//! through the cache-aware accessor ([`EmbeddingMatrix::for_each_panel`],
//! backed by the index's resident [`PanelCache`]), scored by
//! [`Metric::score_block`] against the matrix's build-time-cached row
//! norms, and fed into a bounded top-k heap. Batched search additionally
//! blocks over *queries*, so one F16 panel fetch is amortised across a
//! whole block of queries instead of being repeated per query; the panel
//! cache removes the remaining per-search decode for batch-of-1 traffic —
//! after the first search the decoded panels are resident and a lone
//! query runs at F32 speed. Results are bit-identical to scoring each row
//! with [`Metric::score`] and fully sorting (the property suite in
//! `tests/kernel.rs` holds every path to that oracle).

use mcqa_embed::{EmbeddingMatrix, PanelBudget, PanelCache, Precision};
use mcqa_runtime::{run_stage, Executor};
use mcqa_util::kernel;

use crate::codec::{encode_metric, put_u64, ReadMetricExt, Reader};
use crate::metric::Metric;
use crate::{SearchResult, TopK, VectorStore};

/// An exact (non-approximate) vector index. Ground truth for recall tests
/// and the right default below ~10⁵ vectors.
#[derive(Debug, Clone)]
pub struct FlatIndex {
    matrix: EmbeddingMatrix,
    ids: Vec<u64>,
    metric: Metric,
    /// Tombstone bitmap by row position; tombstoned rows stay resident
    /// (and scored — their hits are filtered at the top-k push) until
    /// [`VectorStore::compact`] rewrites the matrix.
    dead: Vec<bool>,
    dead_count: usize,
    /// Resident decoded panels for F16 matrices (a `Clone` starts cold, so
    /// derived `Clone` stays correct for independently-mutating copies).
    /// Invalidated whenever the matrix bytes change; `remove` only
    /// tombstones, so it leaves the panels resident.
    cache: PanelCache,
}

impl FlatIndex {
    /// Magic tag opening the serialised format.
    pub(crate) const MAGIC: &'static [u8; 4] = b"FLAT";

    /// Create an empty index.
    pub fn new(dim: usize, metric: Metric, precision: Precision) -> Self {
        Self {
            matrix: EmbeddingMatrix::new(dim, precision),
            ids: Vec::new(),
            metric,
            dead: Vec::new(),
            dead_count: 0,
            cache: PanelCache::default(),
        }
    }

    /// Deserialise from [`VectorStore::to_bytes`] output.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let mut r = Reader::new(bytes);
        r.expect_magic(Self::MAGIC)?;
        let metric = r.metric()?;
        let mlen = r.u64()? as usize;
        let matrix = EmbeddingMatrix::from_bytes(r.take(mlen)?)?;
        let n = matrix.len();
        let ids: Vec<u64> = (0..n).map(|_| r.u64()).collect::<Option<_>>()?;
        r.exhausted().then_some(Self {
            matrix,
            ids,
            metric,
            dead: vec![false; n],
            dead_count: 0,
            cache: PanelCache::default(),
        })
    }

    /// The resident panel cache (hit/miss counters, budget, residency) —
    /// read-only; budgets change through
    /// [`VectorStore::set_panel_cache_budget`].
    pub fn panel_cache(&self) -> &PanelCache {
        &self.cache
    }

    /// A tombstone-free copy: live rows re-encoded in position order. The
    /// F16 round-trip (decode → re-encode) is exact, so the copy scores
    /// (and serialises) identically to a cold build over the live rows.
    fn live_clone(&self) -> Self {
        let mut out = Self::new(self.matrix.dim(), self.metric, self.matrix.precision());
        out.cache = self.cache.clone(); // cold, but keeps the budget policy
        for (i, &id) in self.ids.iter().enumerate() {
            if !self.dead[i] {
                out.add(id, &self.matrix.row(i).expect("row in range"));
            }
        }
        out
    }

    /// The external id stored at `position` (insertion order). Panics out
    /// of range.
    pub fn row_id(&self, position: usize) -> u64 {
        self.ids[position]
    }

    /// The stored vector at `position`, decoded to `f32` (i.e. exactly the
    /// values search scores). Panics out of range.
    pub fn row(&self, position: usize) -> Vec<f32> {
        self.matrix.row(position).expect("position out of range")
    }

    /// Default rows per decoded panel: sized so an f32 panel stays around
    /// 64 KiB (L2-resident) at any dimensionality.
    fn default_block_rows(&self) -> usize {
        (16_384 / self.dim().max(1)).clamp(8, 4096)
    }

    /// [`VectorStore::search`] with an explicit panel height. Exposed so
    /// the property suite and benches can sweep block sizes (including
    /// ragged tails, `len % block_rows != 0`); results are independent of
    /// `block_rows`.
    pub fn search_blocked(&self, query: &[f32], k: usize, block_rows: usize) -> Vec<SearchResult> {
        assert_eq!(query.len(), self.dim(), "query dimension mismatch");
        if k == 0 || self.is_empty() {
            return Vec::new();
        }
        let q_sq = kernel::sq_norm(query);
        let mut topk = TopK::new(k);
        let mut scores = vec![0.0f32; block_rows];
        let norms = self.matrix.row_sq_norms();
        self.matrix.for_each_panel(&self.cache, 0, block_rows, |start, panel| {
            let rows = panel.len() / self.dim();
            let out = &mut scores[..rows];
            self.metric.score_block(query, q_sq, panel, &norms[start..start + rows], out);
            for (j, &score) in out.iter().enumerate() {
                if !self.dead[start + j] {
                    topk.push(SearchResult { id: self.ids[start + j], score });
                }
            }
        });
        topk.into_sorted()
    }

    /// [`VectorStore::search_batch`] with explicit panel height and
    /// queries-per-task block. `query_block == 0` picks the size
    /// automatically (the pool's stage batching heuristic). Results are
    /// independent of both block sizes and of the worker count.
    pub fn search_batch_blocked(
        &self,
        exec: &Executor,
        queries: &[Vec<f32>],
        k: usize,
        block_rows: usize,
        query_block: usize,
    ) -> Vec<Vec<SearchResult>> {
        for q in queries {
            assert_eq!(q.len(), self.dim(), "query dimension mismatch");
        }
        if k == 0 || self.is_empty() {
            return vec![Vec::new(); queries.len()];
        }
        let query_block = if query_block == 0 {
            // One query block per worker, not `auto_batch_size`'s 8 tasks
            // per worker: search tasks are uniform, so nothing is gained
            // from finer load balancing, while every extra query in a
            // block is one less full-matrix panel decode — on few workers
            // (or a micro-batch from the serving dispatcher) the widest
            // block is the whole speedup.
            queries.len().div_ceil(exec.workers().max(1)).max(1)
        } else {
            query_block
        };
        // One pool task per *query block*: inside a task every panel is
        // decoded once and scored against the whole block of queries, so
        // the number of full-matrix decodes is `ceil(queries / block)`
        // rather than `queries`.
        let ranges: Vec<std::ops::Range<usize>> = (0..queries.len())
            .step_by(query_block)
            .map(|s| s..(s + query_block).min(queries.len()))
            .collect();
        let (blocks, _metrics) = run_stage(exec, "search-batch", ranges, |range| {
            let block_queries = &queries[range.start..range.end];
            let q_sqs: Vec<f32> = block_queries.iter().map(|q| kernel::sq_norm(q)).collect();
            let mut topks: Vec<TopK> = (0..block_queries.len()).map(|_| TopK::new(k)).collect();
            let mut scores = vec![0.0f32; block_rows];
            let norms = self.matrix.row_sq_norms();
            self.matrix.for_each_panel(&self.cache, 0, block_rows, |start, panel| {
                let rows = panel.len() / self.dim();
                let row_norms = &norms[start..start + rows];
                for ((q, &q_sq), topk) in block_queries.iter().zip(&q_sqs).zip(topks.iter_mut()) {
                    let out = &mut scores[..rows];
                    self.metric.score_block(q, q_sq, panel, row_norms, out);
                    for (j, &score) in out.iter().enumerate() {
                        if !self.dead[start + j] {
                            topk.push(SearchResult { id: self.ids[start + j], score });
                        }
                    }
                }
            });
            Ok::<_, String>(topks.into_iter().map(TopK::into_sorted).collect::<Vec<_>>())
        });
        blocks.into_iter().flat_map(|b| b.expect("search cannot fail")).collect()
    }
}

impl VectorStore for FlatIndex {
    fn add(&mut self, id: u64, vector: &[f32]) {
        self.matrix.push(vector);
        self.ids.push(id);
        self.dead.push(false);
        // The tail panel's row count changed; resident copies are stale.
        self.cache.invalidate();
    }

    fn add_batch(&mut self, exec: &Executor, items: &[(u64, Vec<f32>)]) {
        // Row quantisation is the per-item cost; fan it out while keeping
        // insertion order (and therefore bytes) identical to serial adds.
        let rows: Vec<&[f32]> = items.iter().map(|(_, v)| v.as_slice()).collect();
        self.matrix.extend_parallel(exec, &rows);
        self.ids.extend(items.iter().map(|(id, _)| *id));
        self.dead.resize(self.ids.len(), false);
        self.cache.invalidate();
    }

    fn remove(&mut self, ids: &[u64]) -> usize {
        let targets: std::collections::HashSet<u64> = ids.iter().copied().collect();
        let mut newly = 0;
        for (i, id) in self.ids.iter().enumerate() {
            if !self.dead[i] && targets.contains(id) {
                self.dead[i] = true;
                newly += 1;
            }
        }
        self.dead_count += newly;
        newly
    }

    fn tombstones(&self) -> usize {
        self.dead_count
    }

    fn compact(&mut self, _exec: &Executor) {
        if self.dead_count > 0 {
            *self = self.live_clone();
        }
    }

    fn search(&self, query: &[f32], k: usize) -> Vec<SearchResult> {
        self.search_blocked(query, k, self.default_block_rows())
    }

    fn search_batch(
        &self,
        exec: &Executor,
        queries: &[Vec<f32>],
        k: usize,
    ) -> Vec<Vec<SearchResult>> {
        self.search_batch_blocked(exec, queries, k, self.default_block_rows(), 0)
    }

    fn len(&self) -> usize {
        self.ids.len() - self.dead_count
    }

    fn metric(&self) -> Metric {
        self.metric
    }

    fn dim(&self) -> usize {
        self.matrix.dim()
    }

    fn payload_bytes(&self) -> usize {
        self.matrix.payload_bytes() + self.ids.len() * 8
    }

    fn set_panel_cache_budget(&mut self, budget: PanelBudget) {
        self.cache.set_budget(budget);
    }

    fn panel_cache_resident_bytes(&self) -> usize {
        self.cache.resident_bytes()
    }

    fn to_bytes(&self) -> Vec<u8> {
        if self.dead_count > 0 {
            // The wire format is tombstone-free: serialise the live view.
            return self.live_clone().to_bytes();
        }
        let m = self.matrix.to_bytes();
        let mut out = Vec::with_capacity(m.len() + self.ids.len() * 8 + 16);
        out.extend_from_slice(Self::MAGIC);
        out.push(encode_metric(self.metric));
        put_u64(&mut out, m.len() as u64);
        out.extend_from_slice(&m);
        for id in &self.ids {
            put_u64(&mut out, *id);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(dim: usize, hot: usize) -> Vec<f32> {
        let mut v = vec![0.0; dim];
        v[hot] = 1.0;
        v
    }

    #[test]
    fn exact_nearest_neighbour() {
        let mut idx = FlatIndex::new(4, Metric::Cosine, Precision::F32);
        for i in 0..4 {
            idx.add(100 + i as u64, &unit(4, i));
        }
        let hits = idx.search(&unit(4, 2), 2);
        assert_eq!(hits[0].id, 102);
        assert!((hits[0].score - 1.0).abs() < 1e-6);
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn ties_break_by_id() {
        let mut idx = FlatIndex::new(2, Metric::Dot, Precision::F32);
        idx.add(7, &[1.0, 0.0]);
        idx.add(3, &[1.0, 0.0]);
        idx.add(5, &[1.0, 0.0]);
        let hits = idx.search(&[1.0, 0.0], 3);
        assert_eq!(hits.iter().map(|h| h.id).collect::<Vec<_>>(), vec![3, 5, 7]);
    }

    #[test]
    fn k_larger_than_len() {
        let mut idx = FlatIndex::new(2, Metric::Cosine, Precision::F32);
        idx.add(1, &[1.0, 0.0]);
        assert_eq!(idx.search(&[1.0, 0.0], 10).len(), 1);
        assert!(idx.search(&[1.0, 0.0], 0).is_empty());
    }

    #[test]
    fn empty_index_returns_nothing() {
        let idx = FlatIndex::new(2, Metric::Cosine, Precision::F32);
        assert!(idx.search(&[1.0, 0.0], 5).is_empty());
        assert!(idx.is_empty());
    }

    #[test]
    #[should_panic(expected = "query dimension mismatch")]
    fn dim_mismatch_panics() {
        let mut idx = FlatIndex::new(3, Metric::Cosine, Precision::F32);
        idx.add(1, &[1.0, 0.0, 0.0]);
        idx.search(&[1.0, 0.0], 1);
    }

    #[test]
    fn f16_backing_preserves_ranking() {
        let dim = 64;
        let mk = |seed: u64| -> Vec<f32> {
            let mut v: Vec<f32> = (0..dim)
                .map(|j| {
                    (mcqa_util::splitmix64(seed * 1000 + j as u64) as f32 / u64::MAX as f32) - 0.5
                })
                .collect();
            let n: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
            v.iter_mut().for_each(|x| *x /= n);
            v
        };
        let mut f32_idx = FlatIndex::new(dim, Metric::Cosine, Precision::F32);
        let mut f16_idx = FlatIndex::new(dim, Metric::Cosine, Precision::F16);
        for i in 0..200u64 {
            let v = mk(i);
            f32_idx.add(i, &v);
            f16_idx.add(i, &v);
        }
        // Top-1 must agree on (almost) every query; check exactly.
        let mut agree = 0;
        for q in 0..50u64 {
            let query = mk(10_000 + q);
            let a = f32_idx.search(&query, 1)[0].id;
            let b = f16_idx.search(&query, 1)[0].id;
            if a == b {
                agree += 1;
            }
        }
        assert!(agree >= 48, "f16 quantisation changed too many top-1s: {agree}/50");
    }

    #[test]
    fn batch_matches_serial() {
        let mut idx = FlatIndex::new(8, Metric::Cosine, Precision::F32);
        for i in 0..20 {
            idx.add(i as u64, &unit(8, i % 8));
        }
        let queries: Vec<Vec<f32>> = (0..8).map(|i| unit(8, i)).collect();
        let batch = idx.search_batch(Executor::global(), &queries, 3);
        for (q, hits) in queries.iter().zip(&batch) {
            assert_eq!(hits, &idx.search(q, 3));
        }
    }

    #[test]
    fn add_batch_is_bit_identical_to_serial_adds() {
        let items: Vec<(u64, Vec<f32>)> =
            (0..100).map(|i| (i as u64 * 7, unit(8, i % 8))).collect();
        for precision in [Precision::F32, Precision::F16] {
            let mut serial = FlatIndex::new(8, Metric::Cosine, precision);
            for (id, v) in &items {
                serial.add(*id, v);
            }
            let mut batched = FlatIndex::new(8, Metric::Cosine, precision);
            batched.add_batch(Executor::global(), &items);
            assert_eq!(batched.to_bytes(), serial.to_bytes(), "{precision:?}");
        }
    }

    #[test]
    fn remove_hides_rows_and_compact_rewrites() {
        for precision in [Precision::F32, Precision::F16] {
            let mut idx = FlatIndex::new(4, Metric::Cosine, precision);
            for i in 0..4 {
                idx.add(100 + i as u64, &unit(4, i));
            }
            assert_eq!(idx.remove(&[102, 999]), 1, "unknown ids are ignored");
            assert_eq!(idx.remove(&[102]), 0, "already tombstoned");
            assert_eq!(idx.len(), 3);
            assert_eq!(idx.tombstones(), 1);
            let hits = idx.search(&unit(4, 2), 4);
            assert!(hits.iter().all(|h| h.id != 102), "tombstoned row surfaced: {hits:?}");

            // Serialisation is tombstone-free and equals a cold build of
            // the live rows; compaction produces the same store.
            let mut cold = FlatIndex::new(4, Metric::Cosine, precision);
            for i in [0usize, 1, 3] {
                cold.add(100 + i as u64, &unit(4, i));
            }
            assert_eq!(idx.to_bytes(), cold.to_bytes(), "{precision:?}");
            idx.compact(Executor::global());
            assert_eq!(idx.tombstones(), 0);
            assert_eq!(idx.to_bytes(), cold.to_bytes(), "{precision:?}");
        }
    }

    #[test]
    fn upsert_replaces_in_place() {
        let mut idx = FlatIndex::new(4, Metric::Cosine, Precision::F32);
        for i in 0..4 {
            idx.add(i as u64, &unit(4, i as usize));
        }
        idx.upsert(Executor::global(), &[(1, unit(4, 3)), (9, unit(4, 0))]);
        assert_eq!(idx.len(), 5, "one replacement + one insert");
        let hits = idx.search(&unit(4, 3), 2);
        assert_eq!(hits.iter().map(|h| h.id).collect::<Vec<_>>(), vec![1, 3], "id 1 re-vectored");
    }

    #[test]
    fn serialisation_roundtrip() {
        let mut idx = FlatIndex::new(8, Metric::L2, Precision::F16);
        for i in 0..10 {
            idx.add(i as u64 * 3, &unit(8, i % 8));
        }
        let bytes = idx.to_bytes();
        let back = FlatIndex::from_bytes(&bytes).unwrap();
        assert_eq!(back.len(), idx.len());
        assert_eq!(back.metric(), Metric::L2);
        let q = unit(8, 3);
        assert_eq!(back.search(&q, 5), idx.search(&q, 5));
        // Corruption rejected.
        assert!(FlatIndex::from_bytes(&bytes[..bytes.len() - 5]).is_none());
        assert!(FlatIndex::from_bytes(b"nope").is_none());
    }
}
