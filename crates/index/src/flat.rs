//! Exact brute-force index over an [`EmbeddingMatrix`].

use mcqa_embed::{EmbeddingMatrix, Precision};
use mcqa_runtime::{run_stage_batched, Executor};

use crate::metric::Metric;
use crate::{sort_hits, SearchResult, VectorStore};

/// An exact (non-approximate) vector index. Ground truth for recall tests
/// and the right default below ~10⁵ vectors.
#[derive(Debug, Clone)]
pub struct FlatIndex {
    matrix: EmbeddingMatrix,
    ids: Vec<u64>,
    metric: Metric,
}

impl FlatIndex {
    /// Create an empty index.
    pub fn new(dim: usize, metric: Metric, precision: Precision) -> Self {
        Self { matrix: EmbeddingMatrix::new(dim, precision), ids: Vec::new(), metric }
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.matrix.dim()
    }

    /// Payload bytes of the backing storage.
    pub fn payload_bytes(&self) -> usize {
        self.matrix.payload_bytes()
    }

    /// Batch search fanned out on `exec`'s pool; results are index-aligned
    /// with `queries`.
    pub fn search_batch(
        &self,
        exec: &Executor,
        queries: &[Vec<f32>],
        k: usize,
    ) -> Vec<Vec<SearchResult>> {
        let (results, _) =
            run_stage_batched(exec, "search-batch", (0..queries.len()).collect(), 0, |i| {
                Ok::<_, String>(self.search(&queries[i], k))
            });
        results.into_iter().map(|r| r.expect("search cannot fail")).collect()
    }

    /// Serialise (matrix bytes + ids).
    pub fn to_bytes(&self) -> Vec<u8> {
        let m = self.matrix.to_bytes();
        let mut out = Vec::with_capacity(m.len() + self.ids.len() * 8 + 16);
        out.extend_from_slice(b"FLAT");
        out.push(match self.metric {
            Metric::Cosine => 0,
            Metric::Dot => 1,
            Metric::L2 => 2,
        });
        out.extend_from_slice(&(m.len() as u64).to_le_bytes());
        out.extend_from_slice(&m);
        for id in &self.ids {
            out.extend_from_slice(&id.to_le_bytes());
        }
        out
    }

    /// Deserialise from [`FlatIndex::to_bytes`] output.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < 13 || &bytes[..4] != b"FLAT" {
            return None;
        }
        let metric = match bytes[4] {
            0 => Metric::Cosine,
            1 => Metric::Dot,
            2 => Metric::L2,
            _ => return None,
        };
        let mlen = u64::from_le_bytes(bytes[5..13].try_into().ok()?) as usize;
        if bytes.len() < 13 + mlen {
            return None;
        }
        let matrix = EmbeddingMatrix::from_bytes(&bytes[13..13 + mlen])?;
        let id_bytes = &bytes[13 + mlen..];
        if id_bytes.len() != matrix.len() * 8 {
            return None;
        }
        let ids = id_bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
            .collect();
        Some(Self { matrix, ids, metric })
    }
}

impl VectorStore for FlatIndex {
    fn add(&mut self, id: u64, vector: &[f32]) {
        self.matrix.push(vector);
        self.ids.push(id);
    }

    fn search(&self, query: &[f32], k: usize) -> Vec<SearchResult> {
        assert_eq!(query.len(), self.dim(), "query dimension mismatch");
        if k == 0 || self.is_empty() {
            return Vec::new();
        }
        let mut hits: Vec<SearchResult> = Vec::with_capacity(self.len());
        self.matrix.for_each_row(|i, row| {
            hits.push(SearchResult { id: self.ids[i], score: self.metric.score(query, row) });
        });
        sort_hits(&mut hits);
        hits.truncate(k);
        hits
    }

    fn len(&self) -> usize {
        self.ids.len()
    }

    fn metric(&self) -> Metric {
        self.metric
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(dim: usize, hot: usize) -> Vec<f32> {
        let mut v = vec![0.0; dim];
        v[hot] = 1.0;
        v
    }

    #[test]
    fn exact_nearest_neighbour() {
        let mut idx = FlatIndex::new(4, Metric::Cosine, Precision::F32);
        for i in 0..4 {
            idx.add(100 + i as u64, &unit(4, i));
        }
        let hits = idx.search(&unit(4, 2), 2);
        assert_eq!(hits[0].id, 102);
        assert!((hits[0].score - 1.0).abs() < 1e-6);
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn ties_break_by_id() {
        let mut idx = FlatIndex::new(2, Metric::Dot, Precision::F32);
        idx.add(7, &[1.0, 0.0]);
        idx.add(3, &[1.0, 0.0]);
        idx.add(5, &[1.0, 0.0]);
        let hits = idx.search(&[1.0, 0.0], 3);
        assert_eq!(hits.iter().map(|h| h.id).collect::<Vec<_>>(), vec![3, 5, 7]);
    }

    #[test]
    fn k_larger_than_len() {
        let mut idx = FlatIndex::new(2, Metric::Cosine, Precision::F32);
        idx.add(1, &[1.0, 0.0]);
        assert_eq!(idx.search(&[1.0, 0.0], 10).len(), 1);
        assert!(idx.search(&[1.0, 0.0], 0).is_empty());
    }

    #[test]
    fn empty_index_returns_nothing() {
        let idx = FlatIndex::new(2, Metric::Cosine, Precision::F32);
        assert!(idx.search(&[1.0, 0.0], 5).is_empty());
        assert!(idx.is_empty());
    }

    #[test]
    #[should_panic(expected = "query dimension mismatch")]
    fn dim_mismatch_panics() {
        let mut idx = FlatIndex::new(3, Metric::Cosine, Precision::F32);
        idx.add(1, &[1.0, 0.0, 0.0]);
        idx.search(&[1.0, 0.0], 1);
    }

    #[test]
    fn f16_backing_preserves_ranking() {
        let dim = 64;
        let mk = |seed: u64| -> Vec<f32> {
            let mut v: Vec<f32> = (0..dim)
                .map(|j| {
                    (mcqa_util::splitmix64(seed * 1000 + j as u64) as f32 / u64::MAX as f32) - 0.5
                })
                .collect();
            let n: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
            v.iter_mut().for_each(|x| *x /= n);
            v
        };
        let mut f32_idx = FlatIndex::new(dim, Metric::Cosine, Precision::F32);
        let mut f16_idx = FlatIndex::new(dim, Metric::Cosine, Precision::F16);
        for i in 0..200u64 {
            let v = mk(i);
            f32_idx.add(i, &v);
            f16_idx.add(i, &v);
        }
        // Top-1 must agree on (almost) every query; check exactly.
        let mut agree = 0;
        for q in 0..50u64 {
            let query = mk(10_000 + q);
            let a = f32_idx.search(&query, 1)[0].id;
            let b = f16_idx.search(&query, 1)[0].id;
            if a == b {
                agree += 1;
            }
        }
        assert!(agree >= 48, "f16 quantisation changed too many top-1s: {agree}/50");
    }

    #[test]
    fn batch_matches_serial() {
        let mut idx = FlatIndex::new(8, Metric::Cosine, Precision::F32);
        for i in 0..20 {
            idx.add(i as u64, &unit(8, i % 8));
        }
        let queries: Vec<Vec<f32>> = (0..8).map(|i| unit(8, i)).collect();
        let batch = idx.search_batch(Executor::global(), &queries, 3);
        for (q, hits) in queries.iter().zip(&batch) {
            assert_eq!(hits, &idx.search(q, 3));
        }
    }

    #[test]
    fn serialisation_roundtrip() {
        let mut idx = FlatIndex::new(8, Metric::L2, Precision::F16);
        for i in 0..10 {
            idx.add(i as u64 * 3, &unit(8, i % 8));
        }
        let bytes = idx.to_bytes();
        let back = FlatIndex::from_bytes(&bytes).unwrap();
        assert_eq!(back.len(), idx.len());
        assert_eq!(back.metric(), Metric::L2);
        let q = unit(8, 3);
        assert_eq!(back.search(&q, 5), idx.search(&q, 5));
        // Corruption rejected.
        assert!(FlatIndex::from_bytes(&bytes[..bytes.len() - 5]).is_none());
        assert!(FlatIndex::from_bytes(b"nope").is_none());
    }
}
