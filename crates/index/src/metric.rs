//! Similarity metrics shared by all index families.
//!
//! Scoring is built on the fixed-order multi-accumulator kernels in
//! [`mcqa_util::kernel`]: [`Metric::score`] composes them per pair, and
//! [`Metric::score_block`] sweeps one query across a decoded row panel
//! using build-time-cached row norms. Both paths call the identical
//! per-row math, so blocked search is bit-identical to a per-row scalar
//! oracle (property-tested in `tests/kernel.rs`).

use mcqa_util::kernel;
use serde::{Deserialize, Serialize};

/// A vector similarity metric. Scores are oriented so that **higher is
/// more similar** for every variant (L2 is negated).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Metric {
    /// Cosine similarity (vectors are normalised on the fly).
    Cosine,
    /// Raw inner product (use with pre-normalised vectors).
    Dot,
    /// Negative squared Euclidean distance.
    L2,
}

impl Metric {
    /// Score `a` against `b` (higher = more similar).
    #[inline]
    pub fn score(self, a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        match self {
            Metric::Cosine => {
                let dot = kernel::dot(a, b);
                let na = kernel::sq_norm(a);
                let nb = kernel::sq_norm(b);
                if na == 0.0 || nb == 0.0 {
                    0.0
                } else {
                    dot / (na.sqrt() * nb.sqrt())
                }
            }
            Metric::Dot => kernel::dot(a, b),
            Metric::L2 => -kernel::l2_sq(a, b),
        }
    }

    /// Score `query` against every row of a dense row-major `panel`,
    /// writing one score per row into `out` (`panel.len() == out.len() *
    /// query.len()`).
    ///
    /// `query_sq_norm` must be `kernel::sq_norm(query)` and `row_sq_norms`
    /// the rows' cached squared norms (both consulted for Cosine only, so
    /// Dot/L2 callers may pass `0.0` / `&[]`). Hoisting the query norm and
    /// caching the row norms turns Cosine into a dot product per row
    /// without changing a single bit: the expression evaluated here is the
    /// one [`Metric::score`] evaluates, with the same kernel accumulation
    /// order.
    pub fn score_block(
        self,
        query: &[f32],
        query_sq_norm: f32,
        panel: &[f32],
        row_sq_norms: &[f32],
        out: &mut [f32],
    ) {
        let dim = query.len();
        debug_assert_eq!(panel.len(), out.len() * dim);
        let rows = panel.chunks_exact(dim);
        match self {
            Metric::Cosine => {
                debug_assert_eq!(row_sq_norms.len(), out.len());
                let qn = query_sq_norm.sqrt();
                for ((row, s), &nb) in rows.zip(out.iter_mut()).zip(row_sq_norms) {
                    *s = if query_sq_norm == 0.0 || nb == 0.0 {
                        0.0
                    } else {
                        kernel::dot(query, row) / (qn * nb.sqrt())
                    };
                }
            }
            Metric::Dot => {
                for (row, s) in rows.zip(out.iter_mut()) {
                    *s = kernel::dot(query, row);
                }
            }
            Metric::L2 => {
                for (row, s) in rows.zip(out.iter_mut()) {
                    *s = -kernel::l2_sq(query, row);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cosine_range() {
        let a = [1.0, 0.0];
        let b = [0.0, 2.0];
        assert_eq!(Metric::Cosine.score(&a, &a), 1.0);
        assert_eq!(Metric::Cosine.score(&a, &b), 0.0);
        assert_eq!(Metric::Cosine.score(&[0.0, 0.0], &a), 0.0);
    }

    #[test]
    fn dot_is_unnormalised() {
        assert_eq!(Metric::Dot.score(&[2.0, 0.0], &[3.0, 1.0]), 6.0);
    }

    #[test]
    fn l2_higher_is_closer() {
        let q = [0.0, 0.0];
        let near = [0.1, 0.0];
        let far = [3.0, 4.0];
        assert!(Metric::L2.score(&q, &near) > Metric::L2.score(&q, &far));
        assert_eq!(Metric::L2.score(&q, &far), -25.0);
        assert_eq!(Metric::L2.score(&q, &q), 0.0);
    }

    #[test]
    fn self_similarity_is_maximal_for_cosine_and_l2() {
        // Cosine is bounded by 1 (attained at v) and L2 by 0 (attained at
        // v), so self-similarity dominates any cross-similarity. Dot has no
        // such bound — score(v, w) > score(v, v) whenever w is a longer
        // vector in v's direction — so it is excluded.
        let v = [0.3f32, -0.4, 0.5];
        let others = [[0.9f32, 0.2, -0.7], [0.3, -0.4, 0.6], [-0.3, 0.4, -0.5]];
        for m in [Metric::Cosine, Metric::L2] {
            let self_score = m.score(&v, &v);
            for other in &others {
                assert!(self_score >= m.score(&v, other), "{m:?} vs {other:?}");
            }
        }
        let longer = [0.6f32, -0.8, 1.0]; // 2·v
        assert!(Metric::Dot.score(&v, &longer) > Metric::Dot.score(&v, &v));
    }

    #[test]
    fn score_block_matches_per_row_score_bitwise() {
        let dim = 19; // ragged vs the kernel lane width
        let mk = |seed: u64| -> Vec<f32> {
            (0..dim)
                .map(|j| {
                    (mcqa_util::splitmix64(seed * 97 + j as u64) as f32 / u64::MAX as f32) - 0.5
                })
                .collect()
        };
        let query = mk(1000);
        let rows: Vec<Vec<f32>> = (0..7).map(&mk).collect();
        let mut panel = Vec::new();
        for r in &rows {
            panel.extend_from_slice(r);
        }
        let norms: Vec<f32> = rows.iter().map(|r| mcqa_util::kernel::sq_norm(r)).collect();
        let qsq = mcqa_util::kernel::sq_norm(&query);
        for m in [Metric::Cosine, Metric::Dot, Metric::L2] {
            let mut out = vec![0.0f32; rows.len()];
            m.score_block(&query, qsq, &panel, &norms, &mut out);
            for (row, got) in rows.iter().zip(&out) {
                assert_eq!(got.to_bits(), m.score(&query, row).to_bits(), "{m:?}");
            }
        }
    }

    #[test]
    fn score_block_zero_vectors_are_defined() {
        let query = vec![0.0f32; 8];
        let panel = vec![0.0f32; 16];
        let mut out = vec![1.0f32; 2];
        Metric::Cosine.score_block(&query, 0.0, &panel, &[0.0, 0.0], &mut out);
        assert_eq!(out, vec![0.0, 0.0]);
    }
}
