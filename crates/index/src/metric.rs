//! Similarity metrics shared by all index families.

use serde::{Deserialize, Serialize};

/// A vector similarity metric. Scores are oriented so that **higher is
/// more similar** for every variant (L2 is negated).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Metric {
    /// Cosine similarity (vectors are normalised on the fly).
    Cosine,
    /// Raw inner product (use with pre-normalised vectors).
    Dot,
    /// Negative squared Euclidean distance.
    L2,
}

impl Metric {
    /// Score `a` against `b` (higher = more similar).
    #[inline]
    pub fn score(self, a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        match self {
            Metric::Cosine => {
                let mut dot = 0.0f32;
                let mut na = 0.0f32;
                let mut nb = 0.0f32;
                for (x, y) in a.iter().zip(b) {
                    dot += x * y;
                    na += x * x;
                    nb += y * y;
                }
                if na == 0.0 || nb == 0.0 {
                    0.0
                } else {
                    dot / (na.sqrt() * nb.sqrt())
                }
            }
            Metric::Dot => a.iter().zip(b).map(|(x, y)| x * y).sum(),
            Metric::L2 => -a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f32>(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cosine_range() {
        let a = [1.0, 0.0];
        let b = [0.0, 2.0];
        assert_eq!(Metric::Cosine.score(&a, &a), 1.0);
        assert_eq!(Metric::Cosine.score(&a, &b), 0.0);
        assert_eq!(Metric::Cosine.score(&[0.0, 0.0], &a), 0.0);
    }

    #[test]
    fn dot_is_unnormalised() {
        assert_eq!(Metric::Dot.score(&[2.0, 0.0], &[3.0, 1.0]), 6.0);
    }

    #[test]
    fn l2_higher_is_closer() {
        let q = [0.0, 0.0];
        let near = [0.1, 0.0];
        let far = [3.0, 4.0];
        assert!(Metric::L2.score(&q, &near) > Metric::L2.score(&q, &far));
        assert_eq!(Metric::L2.score(&q, &far), -25.0);
        assert_eq!(Metric::L2.score(&q, &q), 0.0);
    }

    #[test]
    fn identical_vectors_maximal_for_all_metrics() {
        let v = [0.3, -0.4, 0.5];
        for m in [Metric::Cosine, Metric::Dot, Metric::L2] {
            let self_score = m.score(&v, &v);
            let other = [0.9f32, 0.2, -0.7];
            // Self-similarity should be at least the cross-similarity for
            // cosine and L2 (dot has no such guarantee in general but does
            // here since |other| > |v| is not the case... check explicitly
            // only for cosine/L2).
            if m != Metric::Dot {
                assert!(self_score >= m.score(&v, &other), "{m:?}");
            }
        }
    }
}
