//! Backend selection by value: [`IndexSpec`] + the [`build_store`] factory
//! and the [`decode_store`] codec.
//!
//! Consumers (the pipeline config, the `repro` binary's `--index` flag)
//! carry an `IndexSpec` instead of a concrete index type; the factory
//! turns it into a `Box<dyn VectorStore>` and the codec turns persisted
//! bytes back into one by dispatching on each format's magic tag.

use mcqa_embed::Precision;
use mcqa_runtime::Executor;
use serde::{Deserialize, Serialize};

use crate::{
    FlatIndex, HnswConfig, HnswIndex, IvfConfig, IvfIndex, Metric, PqConfig, PqIndex, VectorStore,
};

/// Which index family to build, with its parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum IndexSpec {
    /// Exact brute-force scan (the ground-truth baseline).
    Flat,
    /// Hierarchical navigable-small-world graph.
    Hnsw(HnswConfig),
    /// Inverted-file index with a k-means coarse quantiser.
    Ivf(IvfConfig),
    /// Quantized IVF: coarse centroids + 4–8-bit residual codes.
    Pq(PqConfig),
}

// Not `#[derive(Default)]`: the offline serde derive shim parses the enum
// body itself and does not understand the `#[default]` variant attribute.
#[allow(clippy::derivable_impls)]
impl Default for IndexSpec {
    fn default() -> Self {
        IndexSpec::Flat
    }
}

impl IndexSpec {
    /// The lowercase backend label (`flat` / `hnsw` / `ivf` / `pq`), as
    /// accepted by [`IndexSpec::parse`] and the `repro --index` flag.
    pub fn label(&self) -> &'static str {
        match self {
            IndexSpec::Flat => "flat",
            IndexSpec::Hnsw(_) => "hnsw",
            IndexSpec::Ivf(_) => "ivf",
            IndexSpec::Pq(_) => "pq",
        }
    }

    /// Parse a backend label into a spec with that backend's default
    /// parameters. `None` for unknown labels.
    pub fn parse(label: &str) -> Option<Self> {
        match label {
            "flat" => Some(IndexSpec::Flat),
            "hnsw" => Some(IndexSpec::Hnsw(HnswConfig::default())),
            "ivf" => Some(IndexSpec::Ivf(IvfConfig::default())),
            "pq" => Some(IndexSpec::Pq(PqConfig::default())),
            _ => None,
        }
    }

    /// All four backends with default parameters, in canonical order
    /// (flat first — it is the recall baseline).
    pub fn all_defaults() -> [IndexSpec; 4] {
        [
            IndexSpec::Flat,
            IndexSpec::Hnsw(HnswConfig::default()),
            IndexSpec::Ivf(IvfConfig::default()),
            IndexSpec::Pq(PqConfig::default()),
        ]
    }
}

/// Build an empty store for `spec`. `precision` applies to the flat
/// backend's storage matrix; the graph/list backends keep working vectors
/// at full precision (as FAISS's IVF/HNSW "flat" variants do).
pub fn build_store(
    spec: &IndexSpec,
    dim: usize,
    metric: Metric,
    precision: Precision,
) -> Box<dyn VectorStore> {
    match spec {
        IndexSpec::Flat => Box::new(FlatIndex::new(dim, metric, precision)),
        IndexSpec::Hnsw(cfg) => Box::new(HnswIndex::new(dim, metric, cfg.clone())),
        IndexSpec::Ivf(cfg) => Box::new(IvfIndex::new(dim, metric, cfg.clone())),
        IndexSpec::Pq(cfg) => Box::new(PqIndex::new(dim, metric, cfg.clone())),
    }
}

/// Build a store for `spec` and load `items` into it: trains trainable
/// backends on a deterministic sample of the vectors, then bulk-inserts
/// through [`VectorStore::add_batch`] on `exec`'s pool.
pub fn build_store_from_vectors(
    spec: &IndexSpec,
    dim: usize,
    metric: Metric,
    precision: Precision,
    exec: &Executor,
    items: &[(u64, Vec<f32>)],
) -> Box<dyn VectorStore> {
    let mut store = build_store(spec, dim, metric, precision);
    if items.is_empty() {
        return store; // nothing to train on or insert
    }
    if store.needs_training() {
        // A deterministic prefix sample caps k-means cost on large loads
        // while keeping builds reproducible (items arrive in a canonical
        // order everywhere in the pipeline).
        let cap = training_sample_cap(spec).min(items.len());
        let sample: Vec<Vec<f32>> = items[..cap].iter().map(|(_, v)| v.clone()).collect();
        store.train(exec, &sample);
    }
    store.add_batch(exec, items);
    store
}

/// Training-sample ceiling per spec (k-means is O(sample × nlist)).
fn training_sample_cap(spec: &IndexSpec) -> usize {
    match spec {
        IndexSpec::Ivf(cfg) => (cfg.nlist * 256).max(2_048),
        IndexSpec::Pq(cfg) => (cfg.nlist * 256).max(2_048),
        _ => usize::MAX,
    }
}

/// Decode a store serialised by [`VectorStore::to_bytes`], dispatching on
/// the 4-byte magic tag. `None` on unknown tags or corrupted payloads.
pub fn decode_store(bytes: &[u8]) -> Option<Box<dyn VectorStore>> {
    match bytes.get(..4)? {
        m if m == FlatIndex::MAGIC => Some(Box::new(FlatIndex::from_bytes(bytes)?)),
        m if m == HnswIndex::MAGIC => Some(Box::new(HnswIndex::from_bytes(bytes)?)),
        m if m == IvfIndex::MAGIC => Some(Box::new(IvfIndex::from_bytes(bytes)?)),
        m if m == PqIndex::MAGIC => Some(Box::new(PqIndex::from_bytes(bytes)?)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(dim: usize, hot: usize) -> Vec<f32> {
        let mut v = vec![0.0; dim];
        v[hot % dim] = 1.0;
        v
    }

    #[test]
    fn labels_roundtrip() {
        for spec in IndexSpec::all_defaults() {
            assert_eq!(IndexSpec::parse(spec.label()).unwrap().label(), spec.label());
        }
        assert!(IndexSpec::parse("faiss").is_none());
    }

    #[test]
    fn serde_roundtrip() {
        for spec in IndexSpec::all_defaults() {
            let s = serde_json::to_string(&spec).unwrap();
            let back: IndexSpec = serde_json::from_str(&s).unwrap();
            assert_eq!(back, spec);
        }
    }

    #[test]
    fn factory_builds_each_backend() {
        for spec in IndexSpec::all_defaults() {
            let store = build_store(&spec, 8, Metric::Cosine, Precision::F32);
            assert_eq!(store.dim(), 8);
            assert_eq!(store.metric(), Metric::Cosine);
            assert!(store.is_empty());
            assert_eq!(
                store.needs_training(),
                matches!(spec, IndexSpec::Ivf(_) | IndexSpec::Pq(_))
            );
        }
    }

    #[test]
    fn build_from_vectors_searches_across_backends() {
        let items: Vec<(u64, Vec<f32>)> = (0..64).map(|i| (i as u64, unit(8, i))).collect();
        let exec = Executor::global();
        for spec in IndexSpec::all_defaults() {
            let store =
                build_store_from_vectors(&spec, 8, Metric::Cosine, Precision::F32, exec, &items);
            assert_eq!(store.len(), 64, "{}", spec.label());
            let hits = store.search(&unit(8, 3), 1);
            assert_eq!(hits[0].id % 8, 3, "{}: nearest shares the hot dim", spec.label());
        }
    }

    #[test]
    fn codec_roundtrips_every_backend() {
        let items: Vec<(u64, Vec<f32>)> = (0..40).map(|i| (i as u64, unit(6, i))).collect();
        let exec = Executor::global();
        for spec in IndexSpec::all_defaults() {
            let store =
                build_store_from_vectors(&spec, 6, Metric::Cosine, Precision::F16, exec, &items);
            let bytes = store.to_bytes();
            let back = decode_store(&bytes).unwrap_or_else(|| panic!("{} decodes", spec.label()));
            assert_eq!(back.len(), store.len());
            assert_eq!(back.dim(), store.dim());
            let q = unit(6, 2);
            assert_eq!(back.search(&q, 5), store.search(&q, 5), "{}", spec.label());
        }
        assert!(decode_store(b"????rest").is_none());
        assert!(decode_store(b"").is_none());
    }

    #[test]
    fn empty_build_from_vectors_skips_training() {
        let exec = Executor::global();
        let spec = IndexSpec::Ivf(IvfConfig::default());
        let store = build_store_from_vectors(&spec, 4, Metric::Cosine, Precision::F32, exec, &[]);
        assert!(store.is_empty());
        assert!(store.search(&[1.0, 0.0, 0.0, 0.0], 3).is_empty());
    }
}
