//! A named multi-database registry.
//!
//! The paper's evaluation keeps four FAISS stores side by side: the chunk
//! database plus one per reasoning-trace mode (detailed / focused /
//! efficient). [`IndexRegistry`] holds that family behind names — the
//! pipeline registers `chunks` and `traces-<mode>`, the evaluator looks
//! them up — and round-trips the whole family to bytes via each store's
//! self-describing [`VectorStore::to_bytes`] format.
//!
//! Each dense store may carry a **lexical sibling** — a BM25
//! [`LexicalIndex`] over the same documents, registered under its own
//! name (the pipeline uses `lex-chunks` / `lex-traces-<mode>`). Siblings
//! ride the same serialised registry (a trailing lexical section) and the
//! same lazy-open discipline: [`IndexRegistry::open_bytes`] keeps their
//! payload as raw bytes until the first lexical search touches them.

use std::collections::BTreeMap;
use std::sync::OnceLock;

use mcqa_lexical::LexicalIndex;

use crate::codec::{put_u32, Reader};
use crate::{decode_store, SearchResult, VectorStore};

/// A lexical sibling slot: either an already-decoded index or its raw
/// `LEXI` bytes, decoded once on first touch (the lexical mirror of
/// [`crate::lazy::LazyStore`]).
struct LexicalSlot {
    /// Raw serialised bytes when opened lazily; empty for eager slots.
    bytes: Vec<u8>,
    inner: OnceLock<LexicalIndex>,
}

impl LexicalSlot {
    fn eager(index: LexicalIndex) -> Self {
        let inner = OnceLock::new();
        let _ = inner.set(index);
        Self { bytes: Vec::new(), inner }
    }

    fn lazy(bytes: Vec<u8>) -> Self {
        Self { bytes, inner: OnceLock::new() }
    }

    /// The decoded index, decoding on first touch. Panics on corrupted
    /// body bytes — the same contract as [`crate::lazy::LazyStore`]:
    /// framing is validated at open, body corruption surfaces at first
    /// use.
    fn get(&self) -> &LexicalIndex {
        self.inner.get_or_init(|| {
            LexicalIndex::from_bytes(&self.bytes).expect("lexical index bytes corrupted")
        })
    }

    /// Serialised bytes: raw pass-through for undecoded lazy slots (no
    /// decode forced just to re-encode), fresh encode otherwise.
    fn to_bytes(&self) -> Vec<u8> {
        match self.inner.get() {
            Some(idx) => idx.to_bytes(),
            None => self.bytes.clone(),
        }
    }

    /// Mutable access, decoding a lazy slot first (mutation must see the
    /// decoded structure).
    fn get_mut(&mut self) -> &mut LexicalIndex {
        if self.inner.get().is_none() {
            self.get();
        }
        self.inner.get_mut().expect("decoded above")
    }
}

/// A registry of named vector stores plus their lexical siblings.
#[derive(Default)]
pub struct IndexRegistry {
    stores: BTreeMap<String, Box<dyn VectorStore>>,
    lexical: BTreeMap<String, LexicalSlot>,
}

impl IndexRegistry {
    /// Magic tag opening the serialised registry format.
    const MAGIC: &'static [u8; 4] = b"REGY";

    /// Create an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a store under `name`, replacing any existing one.
    pub fn insert(&mut self, name: &str, store: Box<dyn VectorStore>) {
        self.stores.insert(name.to_string(), store);
    }

    /// Borrow a store by name. Prefer [`IndexRegistry::expect_store`] on
    /// paths where the store's absence is a bug.
    pub fn get(&self, name: &str) -> Option<&dyn VectorStore> {
        self.stores.get(name).map(|b| b.as_ref())
    }

    /// Borrow a store that must exist. Panics with the registered names
    /// when it doesn't — a missing store on the evaluation path is a
    /// wiring bug, never a condition to skip silently.
    pub fn expect_store(&self, name: &str) -> &dyn VectorStore {
        self.get(name)
            .unwrap_or_else(|| panic!("store '{name}' not registered (have: {:?})", self.names()))
    }

    /// Mutably borrow a store by name — the incremental-ingest path, which
    /// applies `remove`/`upsert`/`compact` in place.
    pub fn get_mut(&mut self, name: &str) -> Option<&mut Box<dyn VectorStore>> {
        self.stores.get_mut(name)
    }

    /// Mutably borrow a store that must exist; panics with the registered
    /// names when it doesn't.
    pub fn expect_store_mut(&mut self, name: &str) -> &mut Box<dyn VectorStore> {
        let names = format!("{:?}", self.names());
        self.stores
            .get_mut(name)
            .unwrap_or_else(|| panic!("store '{name}' not registered (have: {names})"))
    }

    /// Search a named store. `None` when the store does not exist.
    pub fn search(&self, name: &str, query: &[f32], k: usize) -> Option<Vec<SearchResult>> {
        self.get(name).map(|s| s.search(query, k))
    }

    /// Registered names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.stores.keys().map(String::as_str).collect()
    }

    /// Iterate `(name, store)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &dyn VectorStore)> {
        self.stores.iter().map(|(n, s)| (n.as_str(), s.as_ref()))
    }

    /// Number of stores.
    pub fn len(&self) -> usize {
        self.stores.len()
    }

    /// True when no stores are registered.
    pub fn is_empty(&self) -> bool {
        self.stores.is_empty()
    }

    /// Total payload bytes across every registered dense store (lexical
    /// siblings report their own [`LexicalIndex::payload_bytes`]).
    pub fn payload_bytes(&self) -> usize {
        self.stores.values().map(|s| s.payload_bytes()).sum()
    }

    /// Apply one panel-cache budget to every registered store (see
    /// [`VectorStore::set_panel_cache_budget`]). Lazily-opened stores
    /// stash the budget and apply it when their body decodes, so this is
    /// safe (and cheap) to call right after
    /// [`IndexRegistry::open_bytes`].
    pub fn set_panel_cache_budget(&mut self, budget: mcqa_embed::PanelBudget) {
        for store in self.stores.values_mut() {
            store.set_panel_cache_budget(budget);
        }
    }

    /// Total bytes of decoded panels resident across every store's panel
    /// cache, for capacity reporting.
    pub fn panel_cache_resident_bytes(&self) -> usize {
        self.stores.values().map(|s| s.panel_cache_resident_bytes()).sum()
    }

    /// The registry name of a dense source's lexical sibling: the one
    /// naming convention every layer (pipeline build, serving, eval,
    /// benches) shares, so there is exactly one place to spell it.
    pub fn lexical_sibling(source: &str) -> String {
        format!("lex-{source}")
    }

    /// Register a lexical sibling under `name` (the pipeline pairs each
    /// dense source with [`IndexRegistry::lexical_sibling`]), replacing
    /// any existing one.
    pub fn insert_lexical(&mut self, name: &str, index: LexicalIndex) {
        self.lexical.insert(name.to_string(), LexicalSlot::eager(index));
    }

    /// Borrow a lexical sibling by name, decoding a lazily-opened slot on
    /// first touch. `None` when no sibling is registered under `name`.
    pub fn lexical(&self, name: &str) -> Option<&LexicalIndex> {
        self.lexical.get(name).map(LexicalSlot::get)
    }

    /// Mutably borrow a lexical sibling by name, decoding a lazily-opened
    /// slot first — the incremental-ingest path.
    pub fn lexical_mut(&mut self, name: &str) -> Option<&mut LexicalIndex> {
        self.lexical.get_mut(name).map(LexicalSlot::get_mut)
    }

    /// Mutably borrow a lexical sibling that must exist; panics with the
    /// registered names when it doesn't.
    pub fn expect_lexical_mut(&mut self, name: &str) -> &mut LexicalIndex {
        let names = format!("{:?}", self.lexical_names());
        self.lexical
            .get_mut(name)
            .map(LexicalSlot::get_mut)
            .unwrap_or_else(|| panic!("lexical index '{name}' not registered (have: {names})"))
    }

    /// Borrow a lexical sibling that must exist; panics with the
    /// registered names when it doesn't.
    pub fn expect_lexical(&self, name: &str) -> &LexicalIndex {
        self.lexical(name).unwrap_or_else(|| {
            panic!("lexical index '{name}' not registered (have: {:?})", self.lexical_names())
        })
    }

    /// Registered lexical sibling names, sorted.
    pub fn lexical_names(&self) -> Vec<&str> {
        self.lexical.keys().map(String::as_str).collect()
    }

    /// Iterate `(name, index)` over lexical siblings in name order
    /// (forces decode of lazy slots).
    pub fn lexical_iter(&self) -> impl Iterator<Item = (&str, &LexicalIndex)> {
        self.lexical.iter().map(|(n, s)| (n.as_str(), s.get()))
    }

    /// Serialise every store (name-tagged, in name order), then the
    /// lexical siblings as a trailing section in the same framing.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(Self::MAGIC);
        put_u32(&mut out, self.stores.len());
        for (name, store) in &self.stores {
            let b = store.to_bytes();
            put_u32(&mut out, name.len());
            out.extend_from_slice(name.as_bytes());
            put_u32(&mut out, b.len());
            out.extend_from_slice(&b);
        }
        put_u32(&mut out, self.lexical.len());
        for (name, slot) in &self.lexical {
            let b = slot.to_bytes();
            put_u32(&mut out, name.len());
            out.extend_from_slice(name.as_bytes());
            put_u32(&mut out, b.len());
            out.extend_from_slice(&b);
        }
        out
    }

    /// Decode the trailing lexical section. An exhausted cursor means a
    /// pre-section artifact (zero siblings) — accepted for back-compat.
    /// `validate_eagerly` decides whether each sibling's payload is
    /// decoded now (`from_bytes`) or kept as raw bytes until first touch
    /// (`open_bytes` — only the `LEXI` magic is checked upfront).
    fn decode_lexical_section(&mut self, r: &mut Reader<'_>, validate_eagerly: bool) -> Option<()> {
        if r.exhausted() {
            return Some(());
        }
        let n = r.count(8)?;
        for _ in 0..n {
            let name_len = r.count(1)?;
            let name = std::str::from_utf8(r.take(name_len)?).ok()?.to_string();
            let blob_len = r.count(1)?;
            let blob = r.take(blob_len)?;
            let slot = if validate_eagerly {
                LexicalSlot::eager(LexicalIndex::from_bytes(blob)?)
            } else {
                if !blob.starts_with(LexicalIndex::MAGIC) {
                    return None;
                }
                LexicalSlot::lazy(blob.to_vec())
            };
            self.lexical.insert(name, slot);
        }
        Some(())
    }

    /// Deserialise a registry written by [`IndexRegistry::to_bytes`].
    /// `None` on any corruption (unknown store tag, truncation, garbage).
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let mut r = Reader::new(bytes);
        r.expect_magic(Self::MAGIC)?;
        let n = r.count(8)?;
        let mut reg = Self::new();
        for _ in 0..n {
            let name_len = r.count(1)?;
            let name = std::str::from_utf8(r.take(name_len)?).ok()?.to_string();
            let store_len = r.count(1)?;
            let store = decode_store(r.take(store_len)?)?;
            reg.stores.insert(name, store);
        }
        reg.decode_lexical_section(&mut r, true)?;
        r.exhausted().then_some(reg)
    }

    /// Open a registry written by [`IndexRegistry::to_bytes`] **lazily**:
    /// the registry framing and every store header are validated now, but
    /// each store's row data stays raw bytes until its first search (see
    /// [`crate::lazy::LazyStore`]). This bounds serving startup to a
    /// header walk — O(stores), not O(vectors) — while `names`/`len`/
    /// `dim`/`metric` queries answer immediately from the headers.
    ///
    /// `None` on framing corruption or a malformed store header. Body
    /// corruption beyond the headers is only discovered (as a panic) at
    /// the first use of the affected store.
    pub fn open_bytes(bytes: &[u8]) -> Option<Self> {
        let mut r = Reader::new(bytes);
        r.expect_magic(Self::MAGIC)?;
        let n = r.count(8)?;
        let mut reg = Self::new();
        for _ in 0..n {
            let name_len = r.count(1)?;
            let name = std::str::from_utf8(r.take(name_len)?).ok()?.to_string();
            let store_len = r.count(1)?;
            let store = crate::lazy::LazyStore::open(r.take(store_len)?.to_vec())?;
            reg.stores.insert(name, Box::new(store));
        }
        reg.decode_lexical_section(&mut r, false)?;
        r.exhausted().then_some(reg)
    }
}

impl std::fmt::Debug for IndexRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut d = f.debug_map();
        for (name, store) in &self.stores {
            d.entry(&name, &format_args!("{} vectors (dim {})", store.len(), store.dim()));
        }
        for name in self.lexical.keys() {
            d.entry(&name, &format_args!("lexical (bm25)"));
        }
        d.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::FlatIndex;
    use crate::metric::Metric;
    use crate::spec::{build_store_from_vectors, IndexSpec};
    use mcqa_embed::Precision;
    use mcqa_runtime::Executor;

    #[test]
    fn insert_search_names() {
        let mut reg = IndexRegistry::new();
        let mut chunks = FlatIndex::new(4, Metric::Cosine, Precision::F32);
        chunks.add(1, &[1.0, 0.0, 0.0, 0.0]);
        let mut traces = FlatIndex::new(4, Metric::Cosine, Precision::F16);
        traces.add(2, &[0.0, 1.0, 0.0, 0.0]);
        reg.insert("chunks", Box::new(chunks));
        reg.insert("traces-detailed", Box::new(traces));

        assert_eq!(reg.names(), vec!["chunks", "traces-detailed"]);
        let hits = reg.search("chunks", &[1.0, 0.0, 0.0, 0.0], 1).unwrap();
        assert_eq!(hits[0].id, 1);
        assert!(reg.search("missing", &[0.0; 4], 1).is_none());
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn expect_store_returns_registered() {
        let mut reg = IndexRegistry::new();
        let mut a = FlatIndex::new(2, Metric::Cosine, Precision::F32);
        a.add(10, &[1.0, 0.0]);
        reg.insert("chunks", Box::new(a));
        assert_eq!(reg.expect_store("chunks").len(), 1);
    }

    #[test]
    #[should_panic(expected = "store 'traces-detailed' not registered")]
    fn expect_store_panics_loudly_on_missing() {
        let mut reg = IndexRegistry::new();
        reg.insert("chunks", Box::new(FlatIndex::new(2, Metric::Cosine, Precision::F32)));
        reg.expect_store("traces-detailed");
    }

    #[test]
    fn replacement_overwrites() {
        let mut reg = IndexRegistry::new();
        let mut a = FlatIndex::new(2, Metric::Cosine, Precision::F32);
        a.add(10, &[1.0, 0.0]);
        reg.insert("x", Box::new(a));
        let mut b = FlatIndex::new(2, Metric::Cosine, Precision::F32);
        b.add(20, &[1.0, 0.0]);
        reg.insert("x", Box::new(b));
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.search("x", &[1.0, 0.0], 1).unwrap()[0].id, 20);
    }

    #[test]
    fn bytes_roundtrip_mixed_backends() {
        let items: Vec<(u64, Vec<f32>)> = (0..30)
            .map(|i| {
                let mut v = vec![0.0f32; 6];
                v[i % 6] = 1.0;
                (i as u64, v)
            })
            .collect();
        let exec = Executor::global();
        let mut reg = IndexRegistry::new();
        for spec in IndexSpec::all_defaults() {
            reg.insert(
                spec.label(),
                build_store_from_vectors(&spec, 6, Metric::Cosine, Precision::F16, exec, &items),
            );
        }
        let bytes = reg.to_bytes();
        let back = IndexRegistry::from_bytes(&bytes).unwrap();
        assert_eq!(back.names(), reg.names());
        let q = {
            let mut v = vec![0.0f32; 6];
            v[2] = 1.0;
            v
        };
        for (name, store) in back.iter() {
            let orig = reg.expect_store(name);
            assert_eq!(store.len(), orig.len(), "{name}");
            assert_eq!(store.search(&q, 4), orig.search(&q, 4), "{name}");
        }
        // Corruption rejected.
        assert!(IndexRegistry::from_bytes(&bytes[..bytes.len() - 1]).is_none());
        assert!(IndexRegistry::from_bytes(b"REGY").is_none());
        assert!(IndexRegistry::from_bytes(b"nope").is_none());
        // Empty registry round-trips.
        let empty = IndexRegistry::new();
        assert!(IndexRegistry::from_bytes(&empty.to_bytes()).unwrap().is_empty());
    }

    fn sample_lexical() -> LexicalIndex {
        let mut lex = LexicalIndex::default();
        lex.add(1, "radiation induces apoptosis in tumour cells");
        lex.add(2, "hypoxia causes radioresistance");
        lex.add(3, "hospital billing budget codes");
        lex
    }

    #[test]
    fn lexical_siblings_roundtrip_alongside_stores() {
        let mut reg = IndexRegistry::new();
        let mut chunks = FlatIndex::new(4, Metric::Cosine, Precision::F32);
        chunks.add(1, &[1.0, 0.0, 0.0, 0.0]);
        reg.insert("chunks", Box::new(chunks));
        reg.insert_lexical("lex-chunks", sample_lexical());

        // Dense surface unchanged: names() stays dense-only.
        assert_eq!(reg.names(), vec!["chunks"]);
        assert_eq!(reg.lexical_names(), vec!["lex-chunks"]);
        let hits = reg.expect_lexical("lex-chunks").search("radiation tumour", 2);
        assert_eq!(hits[0].id, 1);
        assert!(reg.lexical("missing").is_none());

        let bytes = reg.to_bytes();
        // Eager decode validates and reproduces the sibling.
        let back = IndexRegistry::from_bytes(&bytes).unwrap();
        assert_eq!(back.lexical_names(), vec!["lex-chunks"]);
        assert_eq!(back.expect_lexical("lex-chunks"), reg.expect_lexical("lex-chunks"));
        assert_eq!(back.to_bytes(), bytes, "re-encode is byte-identical");

        // Lazy open defers the sibling decode but searches identically
        // and passes raw bytes through on re-encode.
        let lazy = IndexRegistry::open_bytes(&bytes).unwrap();
        assert_eq!(lazy.lexical_names(), vec!["lex-chunks"]);
        assert_eq!(lazy.to_bytes(), bytes, "undecoded slot round-trips raw");
        assert_eq!(
            lazy.expect_lexical("lex-chunks").search("radiation tumour", 2),
            reg.expect_lexical("lex-chunks").search("radiation tumour", 2),
        );

        // Corrupting the lexical section is caught: eagerly by
        // from_bytes, at the magic check by open_bytes.
        let mut corrupt = bytes.clone();
        let tail = corrupt.len() - 1;
        corrupt[tail] ^= 0xff;
        assert!(IndexRegistry::from_bytes(&corrupt).is_none());
        assert!(IndexRegistry::from_bytes(&bytes[..bytes.len() - 1]).is_none());
    }

    #[test]
    #[should_panic(expected = "lexical index 'lex-chunks' not registered")]
    fn expect_lexical_panics_loudly_on_missing() {
        IndexRegistry::new().expect_lexical("lex-chunks");
    }

    #[test]
    fn open_bytes_lazily_matches_eager_decode() {
        let items: Vec<(u64, Vec<f32>)> = (0..30)
            .map(|i| {
                let mut v = vec![0.0f32; 6];
                v[i % 6] = 1.0;
                (i as u64, v)
            })
            .collect();
        let exec = Executor::global();
        let mut reg = IndexRegistry::new();
        for spec in IndexSpec::all_defaults() {
            reg.insert(
                spec.label(),
                build_store_from_vectors(&spec, 6, Metric::Cosine, Precision::F16, exec, &items),
            );
        }
        let bytes = reg.to_bytes();
        let lazy = IndexRegistry::open_bytes(&bytes).unwrap();
        assert_eq!(lazy.names(), reg.names());
        // Header facts answer before any row decode.
        for (name, store) in lazy.iter() {
            let orig = reg.expect_store(name);
            assert_eq!(store.len(), orig.len(), "{name}");
            assert_eq!(store.dim(), orig.dim(), "{name}");
            assert_eq!(store.metric(), orig.metric(), "{name}");
        }
        // Searches force the decode and stay bit-identical, and the
        // registry re-serialises byte-identically.
        let q = {
            let mut v = vec![0.0f32; 6];
            v[3] = 1.0;
            v
        };
        for (name, store) in lazy.iter() {
            assert_eq!(store.search(&q, 4), reg.expect_store(name).search(&q, 4), "{name}");
        }
        assert_eq!(lazy.to_bytes(), bytes);
        // Corruption in framing or headers is rejected at open.
        assert!(IndexRegistry::open_bytes(&bytes[..10]).is_none());
        assert!(IndexRegistry::open_bytes(b"nope").is_none());
        assert!(IndexRegistry::open_bytes(&IndexRegistry::new().to_bytes()).unwrap().is_empty());
    }
}
