//! A named multi-database registry.
//!
//! The paper's evaluation keeps four FAISS stores side by side: the chunk
//! database plus one per reasoning-trace mode (detailed / focused /
//! efficient). [`IndexRegistry`] holds that family behind names.

use std::collections::BTreeMap;

use crate::{SearchResult, VectorStore};

/// A registry of named vector stores.
#[derive(Default)]
pub struct IndexRegistry {
    stores: BTreeMap<String, Box<dyn VectorStore + Send + Sync>>,
}

impl IndexRegistry {
    /// Create an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a store under `name`, replacing any existing one.
    pub fn insert(&mut self, name: &str, store: Box<dyn VectorStore + Send + Sync>) {
        self.stores.insert(name.to_string(), store);
    }

    /// Borrow a store by name.
    pub fn get(&self, name: &str) -> Option<&(dyn VectorStore + Send + Sync)> {
        self.stores.get(name).map(|b| b.as_ref())
    }

    /// Search a named store. `None` when the store does not exist.
    pub fn search(&self, name: &str, query: &[f32], k: usize) -> Option<Vec<SearchResult>> {
        self.get(name).map(|s| s.search(query, k))
    }

    /// Registered names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.stores.keys().map(String::as_str).collect()
    }

    /// Number of stores.
    pub fn len(&self) -> usize {
        self.stores.len()
    }

    /// True when no stores are registered.
    pub fn is_empty(&self) -> bool {
        self.stores.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::FlatIndex;
    use crate::metric::Metric;
    use mcqa_embed::Precision;

    #[test]
    fn insert_search_names() {
        let mut reg = IndexRegistry::new();
        let mut chunks = FlatIndex::new(4, Metric::Cosine, Precision::F32);
        chunks.add(1, &[1.0, 0.0, 0.0, 0.0]);
        let mut traces = FlatIndex::new(4, Metric::Cosine, Precision::F16);
        traces.add(2, &[0.0, 1.0, 0.0, 0.0]);
        reg.insert("chunks", Box::new(chunks));
        reg.insert("traces-detailed", Box::new(traces));

        assert_eq!(reg.names(), vec!["chunks", "traces-detailed"]);
        let hits = reg.search("chunks", &[1.0, 0.0, 0.0, 0.0], 1).unwrap();
        assert_eq!(hits[0].id, 1);
        assert!(reg.search("missing", &[0.0; 4], 1).is_none());
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn replacement_overwrites() {
        let mut reg = IndexRegistry::new();
        let mut a = FlatIndex::new(2, Metric::Cosine, Precision::F32);
        a.add(10, &[1.0, 0.0]);
        reg.insert("x", Box::new(a));
        let mut b = FlatIndex::new(2, Metric::Cosine, Precision::F32);
        b.add(20, &[1.0, 0.0]);
        reg.insert("x", Box::new(b));
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.search("x", &[1.0, 0.0], 1).unwrap()[0].id, 20);
    }
}
