//! A named multi-database registry.
//!
//! The paper's evaluation keeps four FAISS stores side by side: the chunk
//! database plus one per reasoning-trace mode (detailed / focused /
//! efficient). [`IndexRegistry`] holds that family behind names — the
//! pipeline registers `chunks` and `traces-<mode>`, the evaluator looks
//! them up — and round-trips the whole family to bytes via each store's
//! self-describing [`VectorStore::to_bytes`] format.

use std::collections::BTreeMap;

use crate::codec::{put_u32, Reader};
use crate::{decode_store, SearchResult, VectorStore};

/// A registry of named vector stores.
#[derive(Default)]
pub struct IndexRegistry {
    stores: BTreeMap<String, Box<dyn VectorStore>>,
}

impl IndexRegistry {
    /// Magic tag opening the serialised registry format.
    const MAGIC: &'static [u8; 4] = b"REGY";

    /// Create an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a store under `name`, replacing any existing one.
    pub fn insert(&mut self, name: &str, store: Box<dyn VectorStore>) {
        self.stores.insert(name.to_string(), store);
    }

    /// Borrow a store by name. Prefer [`IndexRegistry::expect_store`] on
    /// paths where the store's absence is a bug.
    pub fn get(&self, name: &str) -> Option<&dyn VectorStore> {
        self.stores.get(name).map(|b| b.as_ref())
    }

    /// Borrow a store that must exist. Panics with the registered names
    /// when it doesn't — a missing store on the evaluation path is a
    /// wiring bug, never a condition to skip silently.
    pub fn expect_store(&self, name: &str) -> &dyn VectorStore {
        self.get(name)
            .unwrap_or_else(|| panic!("store '{name}' not registered (have: {:?})", self.names()))
    }

    /// Search a named store. `None` when the store does not exist.
    pub fn search(&self, name: &str, query: &[f32], k: usize) -> Option<Vec<SearchResult>> {
        self.get(name).map(|s| s.search(query, k))
    }

    /// Registered names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.stores.keys().map(String::as_str).collect()
    }

    /// Iterate `(name, store)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &dyn VectorStore)> {
        self.stores.iter().map(|(n, s)| (n.as_str(), s.as_ref()))
    }

    /// Number of stores.
    pub fn len(&self) -> usize {
        self.stores.len()
    }

    /// True when no stores are registered.
    pub fn is_empty(&self) -> bool {
        self.stores.is_empty()
    }

    /// Total payload bytes across every registered store.
    pub fn payload_bytes(&self) -> usize {
        self.stores.values().map(|s| s.payload_bytes()).sum()
    }

    /// Serialise every store (name-tagged, in name order).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(Self::MAGIC);
        put_u32(&mut out, self.stores.len());
        for (name, store) in &self.stores {
            let b = store.to_bytes();
            put_u32(&mut out, name.len());
            out.extend_from_slice(name.as_bytes());
            put_u32(&mut out, b.len());
            out.extend_from_slice(&b);
        }
        out
    }

    /// Deserialise a registry written by [`IndexRegistry::to_bytes`].
    /// `None` on any corruption (unknown store tag, truncation, garbage).
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let mut r = Reader::new(bytes);
        r.expect_magic(Self::MAGIC)?;
        let n = r.count(8)?;
        let mut reg = Self::new();
        for _ in 0..n {
            let name_len = r.count(1)?;
            let name = std::str::from_utf8(r.take(name_len)?).ok()?.to_string();
            let store_len = r.count(1)?;
            let store = decode_store(r.take(store_len)?)?;
            reg.stores.insert(name, store);
        }
        r.exhausted().then_some(reg)
    }

    /// Open a registry written by [`IndexRegistry::to_bytes`] **lazily**:
    /// the registry framing and every store header are validated now, but
    /// each store's row data stays raw bytes until its first search (see
    /// [`crate::lazy::LazyStore`]). This bounds serving startup to a
    /// header walk — O(stores), not O(vectors) — while `names`/`len`/
    /// `dim`/`metric` queries answer immediately from the headers.
    ///
    /// `None` on framing corruption or a malformed store header. Body
    /// corruption beyond the headers is only discovered (as a panic) at
    /// the first use of the affected store.
    pub fn open_bytes(bytes: &[u8]) -> Option<Self> {
        let mut r = Reader::new(bytes);
        r.expect_magic(Self::MAGIC)?;
        let n = r.count(8)?;
        let mut reg = Self::new();
        for _ in 0..n {
            let name_len = r.count(1)?;
            let name = std::str::from_utf8(r.take(name_len)?).ok()?.to_string();
            let store_len = r.count(1)?;
            let store = crate::lazy::LazyStore::open(r.take(store_len)?.to_vec())?;
            reg.stores.insert(name, Box::new(store));
        }
        r.exhausted().then_some(reg)
    }
}

impl std::fmt::Debug for IndexRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut d = f.debug_map();
        for (name, store) in &self.stores {
            d.entry(&name, &format_args!("{} vectors (dim {})", store.len(), store.dim()));
        }
        d.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::FlatIndex;
    use crate::metric::Metric;
    use crate::spec::{build_store_from_vectors, IndexSpec};
    use mcqa_embed::Precision;
    use mcqa_runtime::Executor;

    #[test]
    fn insert_search_names() {
        let mut reg = IndexRegistry::new();
        let mut chunks = FlatIndex::new(4, Metric::Cosine, Precision::F32);
        chunks.add(1, &[1.0, 0.0, 0.0, 0.0]);
        let mut traces = FlatIndex::new(4, Metric::Cosine, Precision::F16);
        traces.add(2, &[0.0, 1.0, 0.0, 0.0]);
        reg.insert("chunks", Box::new(chunks));
        reg.insert("traces-detailed", Box::new(traces));

        assert_eq!(reg.names(), vec!["chunks", "traces-detailed"]);
        let hits = reg.search("chunks", &[1.0, 0.0, 0.0, 0.0], 1).unwrap();
        assert_eq!(hits[0].id, 1);
        assert!(reg.search("missing", &[0.0; 4], 1).is_none());
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn expect_store_returns_registered() {
        let mut reg = IndexRegistry::new();
        let mut a = FlatIndex::new(2, Metric::Cosine, Precision::F32);
        a.add(10, &[1.0, 0.0]);
        reg.insert("chunks", Box::new(a));
        assert_eq!(reg.expect_store("chunks").len(), 1);
    }

    #[test]
    #[should_panic(expected = "store 'traces-detailed' not registered")]
    fn expect_store_panics_loudly_on_missing() {
        let mut reg = IndexRegistry::new();
        reg.insert("chunks", Box::new(FlatIndex::new(2, Metric::Cosine, Precision::F32)));
        reg.expect_store("traces-detailed");
    }

    #[test]
    fn replacement_overwrites() {
        let mut reg = IndexRegistry::new();
        let mut a = FlatIndex::new(2, Metric::Cosine, Precision::F32);
        a.add(10, &[1.0, 0.0]);
        reg.insert("x", Box::new(a));
        let mut b = FlatIndex::new(2, Metric::Cosine, Precision::F32);
        b.add(20, &[1.0, 0.0]);
        reg.insert("x", Box::new(b));
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.search("x", &[1.0, 0.0], 1).unwrap()[0].id, 20);
    }

    #[test]
    fn bytes_roundtrip_mixed_backends() {
        let items: Vec<(u64, Vec<f32>)> = (0..30)
            .map(|i| {
                let mut v = vec![0.0f32; 6];
                v[i % 6] = 1.0;
                (i as u64, v)
            })
            .collect();
        let exec = Executor::global();
        let mut reg = IndexRegistry::new();
        for spec in IndexSpec::all_defaults() {
            reg.insert(
                spec.label(),
                build_store_from_vectors(&spec, 6, Metric::Cosine, Precision::F16, exec, &items),
            );
        }
        let bytes = reg.to_bytes();
        let back = IndexRegistry::from_bytes(&bytes).unwrap();
        assert_eq!(back.names(), reg.names());
        let q = {
            let mut v = vec![0.0f32; 6];
            v[2] = 1.0;
            v
        };
        for (name, store) in back.iter() {
            let orig = reg.expect_store(name);
            assert_eq!(store.len(), orig.len(), "{name}");
            assert_eq!(store.search(&q, 4), orig.search(&q, 4), "{name}");
        }
        // Corruption rejected.
        assert!(IndexRegistry::from_bytes(&bytes[..bytes.len() - 1]).is_none());
        assert!(IndexRegistry::from_bytes(b"REGY").is_none());
        assert!(IndexRegistry::from_bytes(b"nope").is_none());
        // Empty registry round-trips.
        let empty = IndexRegistry::new();
        assert!(IndexRegistry::from_bytes(&empty.to_bytes()).unwrap().is_empty());
    }

    #[test]
    fn open_bytes_lazily_matches_eager_decode() {
        let items: Vec<(u64, Vec<f32>)> = (0..30)
            .map(|i| {
                let mut v = vec![0.0f32; 6];
                v[i % 6] = 1.0;
                (i as u64, v)
            })
            .collect();
        let exec = Executor::global();
        let mut reg = IndexRegistry::new();
        for spec in IndexSpec::all_defaults() {
            reg.insert(
                spec.label(),
                build_store_from_vectors(&spec, 6, Metric::Cosine, Precision::F16, exec, &items),
            );
        }
        let bytes = reg.to_bytes();
        let lazy = IndexRegistry::open_bytes(&bytes).unwrap();
        assert_eq!(lazy.names(), reg.names());
        // Header facts answer before any row decode.
        for (name, store) in lazy.iter() {
            let orig = reg.expect_store(name);
            assert_eq!(store.len(), orig.len(), "{name}");
            assert_eq!(store.dim(), orig.dim(), "{name}");
            assert_eq!(store.metric(), orig.metric(), "{name}");
        }
        // Searches force the decode and stay bit-identical, and the
        // registry re-serialises byte-identically.
        let q = {
            let mut v = vec![0.0f32; 6];
            v[3] = 1.0;
            v
        };
        for (name, store) in lazy.iter() {
            assert_eq!(store.search(&q, 4), reg.expect_store(name).search(&q, 4), "{name}");
        }
        assert_eq!(lazy.to_bytes(), bytes);
        // Corruption in framing or headers is rejected at open.
        assert!(IndexRegistry::open_bytes(&bytes[..10]).is_none());
        assert!(IndexRegistry::open_bytes(b"nope").is_none());
        assert!(IndexRegistry::open_bytes(&IndexRegistry::new().to_bytes()).unwrap().is_empty());
    }
}
