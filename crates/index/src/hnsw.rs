//! HNSW: hierarchical navigable small-world graph.
//!
//! The standard high-recall ANN index (Malkov & Yashunin 2016): vectors are
//! inserted into a layered proximity graph; search descends greedily
//! through the sparse upper layers and runs a beam search (`ef`) on the
//! bottom layer. Deterministic: level draws are keyed on the external id.
//!
//! # Mutation semantics
//!
//! [`VectorStore::remove`] tombstones nodes: they stay in the graph as
//! routing waypoints (removing them would tear the small-world structure)
//! but are filtered from results, with the beam width bumped by the
//! tombstone count so up to `k` live hits still surface.
//! [`VectorStore::compact`] — and serialisation, whose wire format is
//! always tombstone-free — **rebuilds the graph** from the live rows in
//! insertion order. Unlike flat/IVF/PQ, the rebuilt graph is *not*
//! bit-identical to one built without the removed rows ever present:
//! HNSW edges depend on insertion history. This is the documented
//! exception to the mutation surface's rebuild-equivalence contract
//! (see [`VectorStore::upsert`]); recall properties are unaffected.

use mcqa_runtime::Executor;
use mcqa_util::KeyedStochastic;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::codec::{encode_metric, put_f32s, put_u32, put_u64, ReadMetricExt, Reader};
use crate::metric::Metric;
use crate::{sort_hits, SearchResult, VectorStore};

/// HNSW parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HnswConfig {
    /// Max neighbours per node per layer (bottom layer gets `2 * m`).
    pub m: usize,
    /// Beam width during construction.
    pub ef_construction: usize,
    /// Beam width during search.
    pub ef_search: usize,
    /// Seed for level assignment.
    pub seed: u64,
}

impl Default for HnswConfig {
    /// Denser than the textbook m=16/ef=64: the pipeline's hash-encoded
    /// embeddings have flat similarity profiles, so holding recall@5 ≥ 0.9
    /// against the flat baseline at the 18.9k-vector scale-0.1 corpus
    /// takes a denser graph and wider beam (measured by `repro recall`:
    /// 0.936 recall at ~8× the exact scan's query throughput). Sharply
    /// clustered data can drop these substantially.
    fn default() -> Self {
        Self { m: 24, ef_construction: 150, ef_search: 256, seed: 42 }
    }
}

struct Node {
    id: u64,
    vector: Vec<f32>,
    /// Neighbour lists per layer (index 0 = bottom).
    neighbours: Vec<Vec<usize>>,
}

/// The HNSW index.
pub struct HnswIndex {
    config: HnswConfig,
    dim: usize,
    metric: Metric,
    nodes: Vec<Node>,
    /// Per-node tombstones, parallel to `nodes`. Per node rather than per
    /// id so an upsert (tombstone + re-insert the same id) never masks
    /// the newly inserted node.
    dead: Vec<bool>,
    dead_count: usize,
    entry: Option<usize>,
    max_layer: usize,
}

/// Max-heap entry ordered by score.
#[derive(PartialEq)]
struct Scored {
    score: f32,
    node: usize,
}

impl Eq for Scored {}

impl PartialOrd for Scored {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Scored {
    fn cmp(&self, other: &Self) -> Ordering {
        self.score
            .partial_cmp(&other.score)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl HnswIndex {
    /// Magic tag opening the serialised format.
    pub(crate) const MAGIC: &'static [u8; 4] = b"HNSW";

    /// Create an empty index.
    pub fn new(dim: usize, metric: Metric, config: HnswConfig) -> Self {
        assert!(config.m >= 2);
        assert!(config.ef_construction >= config.m);
        assert!(config.ef_search >= 1);
        Self {
            config,
            dim,
            metric,
            nodes: Vec::new(),
            dead: Vec::new(),
            dead_count: 0,
            entry: None,
            max_layer: 0,
        }
    }

    /// Build a fresh graph from the live nodes in insertion order — the
    /// compaction (and serialisation) path; see the module docs for why
    /// HNSW rebuilds rather than rewriting in place.
    fn rebuild_live(&self) -> Self {
        let mut out = Self::new(self.dim, self.metric, self.config.clone());
        for (node, &dead) in self.nodes.iter().zip(&self.dead) {
            if !dead {
                out.add(node.id, &node.vector);
            }
        }
        out
    }

    /// Deserialise from [`VectorStore::to_bytes`] output.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let mut r = Reader::new(bytes);
        r.expect_magic(Self::MAGIC)?;
        let metric = r.metric()?;
        let dim = r.u32()? as usize;
        let config = HnswConfig {
            m: r.u32()? as usize,
            ef_construction: r.u32()? as usize,
            ef_search: r.u32()? as usize,
            seed: r.u64()?,
        };
        if config.m < 2 || config.ef_construction < config.m || config.ef_search == 0 {
            return None;
        }
        let n = r.count(8 + dim * 4)?;
        let entry_raw = r.u32()?;
        let entry = if entry_raw == u32::MAX {
            None
        } else {
            ((entry_raw as usize) < n).then_some(entry_raw as usize)?;
            Some(entry_raw as usize)
        };
        if entry.is_none() != (n == 0) {
            return None;
        }
        let max_layer = r.u32()? as usize;
        let mut nodes = Vec::with_capacity(n);
        for _ in 0..n {
            let id = r.u64()?;
            let vector = r.f32_vec(dim)?;
            let layers = r.count(4)?;
            let neighbours: Vec<Vec<usize>> = (0..layers)
                .map(|_| {
                    let len = r.count(4)?;
                    (0..len)
                        .map(|_| {
                            let idx = r.u32()? as usize;
                            (idx < n).then_some(idx)
                        })
                        .collect::<Option<Vec<usize>>>()
                })
                .collect::<Option<_>>()?;
            nodes.push(Node { id, vector, neighbours });
        }
        // Structural invariants the beam search relies on — a blob that
        // violates them must be rejected here, not panic mid-traversal:
        // every node participates in layer 0, an edge at layer `l` only
        // points at a node that has layer `l`, and `max_layer` matches the
        // tallest node.
        if nodes.iter().any(|node| node.neighbours.is_empty()) {
            return None;
        }
        for node in &nodes {
            for (l, edges) in node.neighbours.iter().enumerate() {
                if edges.iter().any(|&nb| nodes[nb].neighbours.len() <= l) {
                    return None;
                }
            }
        }
        let tallest = nodes.iter().map(|node| node.neighbours.len()).max().unwrap_or(0);
        if n > 0 && max_layer + 1 != tallest {
            return None;
        }
        let n_nodes = nodes.len();
        r.exhausted().then_some(Self {
            config,
            dim,
            metric,
            nodes,
            dead: vec![false; n_nodes],
            dead_count: 0,
            entry,
            max_layer,
        })
    }

    /// Geometric level draw, deterministic per id.
    fn draw_level(&self, id: u64) -> usize {
        let rng = KeyedStochastic::new(self.config.seed ^ 0x4E5_107);
        let u = rng.uniform(&["level", &id.to_string()]).max(1e-12);
        let ml = 1.0 / (self.config.m as f64).ln();
        (-(u.ln()) * ml).floor() as usize
    }

    /// Beam search on one layer starting from `entries`; returns up to `ef`
    /// best (score, node) pairs, best-first.
    fn search_layer(
        &self,
        query: &[f32],
        entries: &[usize],
        ef: usize,
        layer: usize,
    ) -> Vec<Scored> {
        let mut visited: std::collections::HashSet<usize> = entries.iter().copied().collect();
        let mut candidates: BinaryHeap<Scored> = BinaryHeap::new(); // max-heap by score
                                                                    // Result set as a min-heap via Reverse.
        let mut results: BinaryHeap<std::cmp::Reverse<Scored>> = BinaryHeap::new();

        for &e in entries {
            let s = self.metric.score(query, &self.nodes[e].vector);
            candidates.push(Scored { score: s, node: e });
            results.push(std::cmp::Reverse(Scored { score: s, node: e }));
        }
        while results.len() > ef {
            results.pop();
        }

        while let Some(best) = candidates.pop() {
            let worst_kept = results.peek().map(|r| r.0.score).unwrap_or(f32::NEG_INFINITY);
            if results.len() >= ef && best.score < worst_kept {
                break;
            }
            for &n in &self.nodes[best.node].neighbours[layer] {
                if !visited.insert(n) {
                    continue;
                }
                let s = self.metric.score(query, &self.nodes[n].vector);
                let worst = results.peek().map(|r| r.0.score).unwrap_or(f32::NEG_INFINITY);
                if results.len() < ef || s > worst {
                    candidates.push(Scored { score: s, node: n });
                    results.push(std::cmp::Reverse(Scored { score: s, node: n }));
                    while results.len() > ef {
                        results.pop();
                    }
                }
            }
        }
        let mut out: Vec<Scored> = results.into_iter().map(|r| r.0).collect();
        out.sort_by(|a, b| b.cmp(a));
        out
    }

    /// Select the best `m` neighbours from candidates (simple heuristic:
    /// highest scores win; deterministic tie-break on node index).
    fn select_neighbours(mut cands: Vec<Scored>, m: usize) -> Vec<usize> {
        cands.sort_by(|a, b| b.cmp(a));
        cands.truncate(m);
        cands.into_iter().map(|s| s.node).collect()
    }

    fn max_neighbours(&self, layer: usize) -> usize {
        if layer == 0 {
            self.config.m * 2
        } else {
            self.config.m
        }
    }

    /// Prune a node's neighbour list down to capacity, keeping the closest.
    fn prune(&mut self, node: usize, layer: usize) {
        let cap = self.max_neighbours(layer);
        if self.nodes[node].neighbours[layer].len() <= cap {
            return;
        }
        let v = self.nodes[node].vector.clone();
        let mut scored: Vec<Scored> = self.nodes[node].neighbours[layer]
            .iter()
            .map(|&n| Scored { score: self.metric.score(&v, &self.nodes[n].vector), node: n })
            .collect();
        scored.sort_by(|a, b| b.cmp(a));
        scored.truncate(cap);
        self.nodes[node].neighbours[layer] = scored.into_iter().map(|s| s.node).collect();
    }
}

impl VectorStore for HnswIndex {
    fn add(&mut self, id: u64, vector: &[f32]) {
        assert_eq!(vector.len(), self.dim, "vector dimension mismatch");
        let level = self.draw_level(id);
        let new_idx = self.nodes.len();
        self.nodes.push(Node {
            id,
            vector: vector.to_vec(),
            neighbours: vec![Vec::new(); level + 1],
        });
        self.dead.push(false);

        let Some(mut entry) = self.entry else {
            self.entry = Some(new_idx);
            self.max_layer = level;
            return;
        };

        // Greedy descent through layers above `level`.
        let mut layer = self.max_layer;
        while layer > level {
            let found = self.search_layer(
                vector,
                &[entry],
                1,
                layer.min(self.nodes[entry].neighbours.len() - 1),
            );
            if let Some(best) = found.first() {
                entry = best.node;
            }
            if layer == 0 {
                break;
            }
            layer -= 1;
        }

        // Insert from min(level, max_layer) down to 0.
        let mut entries = vec![entry];
        let top = level.min(self.max_layer);
        for l in (0..=top).rev() {
            // Restrict entries to nodes that exist on layer l.
            let eff_entries: Vec<usize> =
                entries.iter().copied().filter(|&n| self.nodes[n].neighbours.len() > l).collect();
            let eff_entries = if eff_entries.is_empty() { vec![entry] } else { eff_entries };
            let found = self.search_layer(vector, &eff_entries, self.config.ef_construction, l);
            let neighbours = Self::select_neighbours(
                found.iter().map(|s| Scored { score: s.score, node: s.node }).collect(),
                self.max_neighbours(l),
            );
            for &n in &neighbours {
                if n == new_idx {
                    continue;
                }
                self.nodes[new_idx].neighbours[l].push(n);
                if self.nodes[n].neighbours.len() > l {
                    self.nodes[n].neighbours[l].push(new_idx);
                    self.prune(n, l);
                }
            }
            entries = neighbours;
            if entries.is_empty() {
                entries = vec![entry];
            }
        }

        if level > self.max_layer {
            self.max_layer = level;
            self.entry = Some(new_idx);
        }
    }

    fn search(&self, query: &[f32], k: usize) -> Vec<SearchResult> {
        assert_eq!(query.len(), self.dim, "query dimension mismatch");
        if k == 0 || self.len() == 0 {
            return Vec::new();
        }
        let mut entry = self.entry.expect("non-empty index has an entry");
        // Greedy descent to layer 1.
        for layer in (1..=self.max_layer).rev() {
            if self.nodes[entry].neighbours.len() <= layer {
                continue;
            }
            loop {
                let cur_score = self.metric.score(query, &self.nodes[entry].vector);
                let mut improved = false;
                for &n in &self.nodes[entry].neighbours[layer] {
                    if self.metric.score(query, &self.nodes[n].vector) > cur_score {
                        entry = n;
                        improved = true;
                        break;
                    }
                }
                if !improved {
                    break;
                }
            }
        }
        // Beam search at the bottom. Tombstoned nodes still route (they
        // stay in the beam) but are filtered from the results; widening
        // the beam by the tombstone count keeps up to `k` live hits
        // reachable.
        let ef = self.config.ef_search.max(k).saturating_add(self.dead_count);
        let found = self.search_layer(query, &[entry], ef, 0);
        let mut hits: Vec<SearchResult> = found
            .into_iter()
            .filter(|s| !self.dead[s.node])
            .map(|s| SearchResult { id: self.nodes[s.node].id, score: s.score })
            .collect();
        sort_hits(&mut hits);
        hits.truncate(k);
        hits
    }

    fn remove(&mut self, ids: &[u64]) -> usize {
        let targets: std::collections::HashSet<u64> = ids.iter().copied().collect();
        let mut removed = 0usize;
        for (node, dead) in self.nodes.iter().zip(self.dead.iter_mut()) {
            if !*dead && targets.contains(&node.id) {
                *dead = true;
                removed += 1;
            }
        }
        self.dead_count += removed;
        removed
    }

    fn tombstones(&self) -> usize {
        self.dead_count
    }

    fn compact(&mut self, _exec: &Executor) {
        if self.dead_count > 0 {
            *self = self.rebuild_live();
        }
    }

    fn len(&self) -> usize {
        self.nodes.len() - self.dead_count
    }

    fn metric(&self) -> Metric {
        self.metric
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn payload_bytes(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| {
                8 + n.vector.len() * 4 + n.neighbours.iter().map(|l| 4 + l.len() * 4).sum::<usize>()
            })
            .sum()
    }

    fn to_bytes(&self) -> Vec<u8> {
        if self.dead_count > 0 {
            return self.rebuild_live().to_bytes();
        }
        let mut out = Vec::with_capacity(self.payload_bytes() + 64);
        out.extend_from_slice(Self::MAGIC);
        out.push(encode_metric(self.metric));
        put_u32(&mut out, self.dim);
        put_u32(&mut out, self.config.m);
        put_u32(&mut out, self.config.ef_construction);
        put_u32(&mut out, self.config.ef_search);
        put_u64(&mut out, self.config.seed);
        put_u32(&mut out, self.nodes.len());
        put_u32(&mut out, self.entry.map_or(u32::MAX as usize, |e| e));
        put_u32(&mut out, self.max_layer);
        for node in &self.nodes {
            put_u64(&mut out, node.id);
            put_f32s(&mut out, &node.vector);
            put_u32(&mut out, node.neighbours.len());
            for layer in &node.neighbours {
                put_u32(&mut out, layer.len());
                for &nb in layer {
                    put_u32(&mut out, nb);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::FlatIndex;
    use mcqa_embed::Precision;

    fn random_unit(dim: usize, seed: u64) -> Vec<f32> {
        let rng = KeyedStochastic::new(seed);
        let mut v: Vec<f32> =
            (0..dim).map(|j| rng.gaussian(&["v", &j.to_string()]) as f32).collect();
        let n: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        v.iter_mut().for_each(|x| *x /= n);
        v
    }

    #[test]
    fn single_and_empty() {
        let mut idx = HnswIndex::new(8, Metric::Cosine, HnswConfig::default());
        assert!(idx.search(&[0.0; 8], 3).is_empty());
        idx.add(42, &random_unit(8, 1));
        let hits = idx.search(&random_unit(8, 1), 3);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, 42);
    }

    #[test]
    fn exact_on_small_sets() {
        // With ef_search >= n the beam is exhaustive ⇒ matches flat.
        let dim = 16;
        let n = 60;
        let mut hnsw = HnswIndex::new(
            dim,
            Metric::Cosine,
            HnswConfig { m: 8, ef_construction: 64, ef_search: 64, seed: 2 },
        );
        let mut flat = FlatIndex::new(dim, Metric::Cosine, Precision::F32);
        for i in 0..n {
            let v = random_unit(dim, 1000 + i);
            hnsw.add(i, &v);
            flat.add(i, &v);
        }
        for q in 0..10u64 {
            let query = random_unit(dim, 5000 + q);
            let a: Vec<u64> = hnsw.search(&query, 5).into_iter().map(|h| h.id).collect();
            let b: Vec<u64> = flat.search(&query, 5).into_iter().map(|h| h.id).collect();
            assert_eq!(a, b, "query {q}");
        }
    }

    #[test]
    fn recall_on_larger_set() {
        let dim = 24;
        let n = 800u64;
        let mut hnsw = HnswIndex::new(dim, Metric::Cosine, HnswConfig::default());
        let mut flat = FlatIndex::new(dim, Metric::Cosine, Precision::F32);
        for i in 0..n {
            let v = random_unit(dim, 77_000 + i);
            hnsw.add(i, &v);
            flat.add(i, &v);
        }
        let mut hit = 0usize;
        let mut total = 0usize;
        for q in 0..30u64 {
            let query = random_unit(dim, 99_000 + q);
            let truth: std::collections::HashSet<u64> =
                flat.search(&query, 10).into_iter().map(|h| h.id).collect();
            let approx = hnsw.search(&query, 10);
            hit += approx.iter().filter(|h| truth.contains(&h.id)).count();
            total += truth.len();
        }
        let recall = hit as f64 / total as f64;
        assert!(recall >= 0.85, "HNSW recall@10 = {recall}");
    }

    #[test]
    fn deterministic() {
        let dim = 12;
        let mk = || {
            let mut idx = HnswIndex::new(dim, Metric::Cosine, HnswConfig::default());
            for i in 0..100u64 {
                idx.add(i, &random_unit(dim, 31 + i));
            }
            idx
        };
        let a = mk();
        let b = mk();
        let q = random_unit(dim, 9);
        assert_eq!(a.search(&q, 7), b.search(&q, 7));
    }

    #[test]
    fn duplicate_vectors_handled() {
        let mut idx = HnswIndex::new(
            4,
            Metric::Cosine,
            HnswConfig { m: 4, ef_construction: 8, ef_search: 8, seed: 0 },
        );
        let v = [0.5f32, 0.5, 0.5, 0.5];
        for i in 0..20u64 {
            idx.add(i, &v);
        }
        let hits = idx.search(&v, 5);
        assert_eq!(hits.len(), 5);
        // Ties break by ascending id.
        assert_eq!(hits.iter().map(|h| h.id).collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dim_mismatch() {
        let mut idx = HnswIndex::new(4, Metric::Cosine, HnswConfig::default());
        idx.add(0, &[0.0; 5]);
    }

    #[test]
    fn zero_vector_inputs_are_defined() {
        // All-zero vectors score 0 under cosine (no NaNs): inserting and
        // querying them must neither panic nor poison the ranking.
        let mut idx = HnswIndex::new(4, Metric::Cosine, HnswConfig::default());
        idx.add(0, &[0.0; 4]);
        idx.add(1, &[1.0, 0.0, 0.0, 0.0]);
        idx.add(2, &[0.0, 1.0, 0.0, 0.0]);
        let hits = idx.search(&[0.0; 4], 3);
        assert_eq!(hits.len(), 3, "zero query returns all candidates");
        assert!(hits.iter().all(|h| h.score == 0.0));
        assert_eq!(idx.search(&[1.0, 0.0, 0.0, 0.0], 1)[0].id, 1);
    }

    #[test]
    fn k_exceeding_len_returns_len() {
        let mut idx = HnswIndex::new(4, Metric::Cosine, HnswConfig::default());
        for i in 0..3u64 {
            idx.add(i, &random_unit(4, i));
        }
        assert_eq!(idx.search(&random_unit(4, 9), 50).len(), 3);
        assert!(idx.search(&random_unit(4, 9), 0).is_empty());
    }

    #[test]
    fn remove_filters_results_and_compact_rebuilds() {
        let dim = 12;
        let exec = mcqa_runtime::Executor::global();
        let config = HnswConfig { m: 6, ef_construction: 24, ef_search: 32, seed: 4 };
        let mut idx = HnswIndex::new(dim, Metric::Cosine, config.clone());
        let data: Vec<Vec<f32>> = (0..80u64).map(|i| random_unit(dim, 300 + i)).collect();
        for (i, v) in data.iter().enumerate() {
            idx.add(i as u64, v);
        }

        assert_eq!(idx.remove(&[3, 4, 5, 999]), 3);
        assert_eq!(idx.remove(&[3]), 0, "re-removal is a no-op");
        assert_eq!(idx.len(), 77);
        assert_eq!(idx.tombstones(), 3);
        for q in 0..6u64 {
            let hits = idx.search(&random_unit(dim, 900 + q), 10);
            assert!(hits.iter().all(|h| !(3..=5).contains(&h.id)), "tombstoned ids filtered");
            assert_eq!(hits.len(), 10, "beam widening keeps k live hits");
        }

        // Upsert re-inserts a removed id with a new vector; the new node
        // must be searchable (per-node tombstones, not per-id).
        idx.upsert(exec, &[(4, data[70].clone())]);
        assert_eq!(idx.len(), 78);
        assert!(idx.search(&data[70], 2).iter().any(|h| h.id == 4));

        // Wire format and compaction are the same live rebuild.
        let mut rebuilt = HnswIndex::new(dim, Metric::Cosine, config);
        for (i, v) in data.iter().enumerate() {
            if !(3..=5).contains(&i) {
                rebuilt.add(i as u64, v);
            }
        }
        rebuilt.add(4, &data[70]);
        assert_eq!(idx.to_bytes(), rebuilt.to_bytes(), "wire = live rebuild");
        idx.compact(exec);
        assert_eq!(idx.tombstones(), 0);
        assert_eq!(idx.to_bytes(), rebuilt.to_bytes(), "compaction = live rebuild");
    }

    #[test]
    fn serialisation_roundtrip() {
        let dim = 12;
        let mut idx = HnswIndex::new(
            dim,
            Metric::Cosine,
            HnswConfig { m: 6, ef_construction: 24, ef_search: 16, seed: 4 },
        );
        for i in 0..120u64 {
            idx.add(i * 2, &random_unit(dim, 600 + i));
        }
        let bytes = idx.to_bytes();
        let back = HnswIndex::from_bytes(&bytes).unwrap();
        assert_eq!(back.len(), idx.len());
        assert_eq!(back.metric(), idx.metric());
        assert_eq!(back.dim(), dim);
        for q in 0..8u64 {
            let query = random_unit(dim, 71 + q);
            assert_eq!(back.search(&query, 6), idx.search(&query, 6));
        }
        assert_eq!(back.to_bytes(), bytes, "re-serialisation is stable");
        // Corruption rejected.
        assert!(HnswIndex::from_bytes(&bytes[..bytes.len() - 2]).is_none());
        assert!(HnswIndex::from_bytes(b"HNSW").is_none());
        assert!(HnswIndex::from_bytes(b"garbage-bytes").is_none());
        // Empty round-trip.
        let empty = HnswIndex::new(4, Metric::L2, HnswConfig::default());
        let back = HnswIndex::from_bytes(&empty.to_bytes()).unwrap();
        assert!(back.is_empty());
        assert_eq!(back.metric(), Metric::L2);
    }

    /// A length-consistent blob can still describe a graph the beam search
    /// would panic on; such blobs must decode to `None`, not `Some`.
    #[test]
    fn structurally_invalid_blobs_rejected() {
        use crate::codec::{encode_metric, put_f32s, put_u32, put_u64};

        // (node layer counts, per-layer edges, max_layer) → blob with one
        // 2-dim vector per node and the minimal legal config.
        let blob = |layers: &[Vec<Vec<usize>>], max_layer: usize| {
            let mut out = Vec::new();
            out.extend_from_slice(HnswIndex::MAGIC);
            out.push(encode_metric(Metric::Cosine));
            put_u32(&mut out, 2); // dim
            put_u32(&mut out, 2); // m
            put_u32(&mut out, 2); // ef_construction
            put_u32(&mut out, 1); // ef_search
            put_u64(&mut out, 0); // seed
            put_u32(&mut out, layers.len());
            put_u32(&mut out, if layers.is_empty() { u32::MAX as usize } else { 0 });
            put_u32(&mut out, max_layer);
            for (i, node_layers) in layers.iter().enumerate() {
                put_u64(&mut out, i as u64);
                put_f32s(&mut out, &[1.0, 0.0]);
                put_u32(&mut out, node_layers.len());
                for edges in node_layers {
                    put_u32(&mut out, edges.len());
                    for &nb in edges {
                        put_u32(&mut out, nb);
                    }
                }
            }
            out
        };

        // Baseline sanity: a well-formed blob decodes and searches.
        let ok = blob(&[vec![vec![1]], vec![vec![0]]], 0);
        let store = HnswIndex::from_bytes(&ok).expect("well-formed blob decodes");
        assert_eq!(store.search(&[1.0, 0.0], 2).len(), 2);

        // A node with zero layers would panic the layer-0 beam.
        assert!(HnswIndex::from_bytes(&blob(&[vec![], vec![vec![0]]], 0)).is_none());
        // A layer-1 edge into a node without layer 1 would panic descent.
        assert!(HnswIndex::from_bytes(&blob(&[vec![vec![1], vec![1]], vec![vec![0]]], 1)).is_none());
        // max_layer disagreeing with the tallest node is corruption.
        assert!(HnswIndex::from_bytes(&blob(&[vec![vec![1]], vec![vec![0]]], 3)).is_none());
    }
}
