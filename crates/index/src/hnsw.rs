//! HNSW: hierarchical navigable small-world graph.
//!
//! The standard high-recall ANN index (Malkov & Yashunin 2016): vectors are
//! inserted into a layered proximity graph; search descends greedily
//! through the sparse upper layers and runs a beam search (`ef`) on the
//! bottom layer. Deterministic: level draws are keyed on the external id.

use mcqa_util::KeyedStochastic;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::metric::Metric;
use crate::{sort_hits, SearchResult, VectorStore};

/// HNSW parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HnswConfig {
    /// Max neighbours per node per layer (bottom layer gets `2 * m`).
    pub m: usize,
    /// Beam width during construction.
    pub ef_construction: usize,
    /// Beam width during search.
    pub ef_search: usize,
    /// Seed for level assignment.
    pub seed: u64,
}

impl Default for HnswConfig {
    fn default() -> Self {
        Self { m: 16, ef_construction: 100, ef_search: 64, seed: 42 }
    }
}

struct Node {
    id: u64,
    vector: Vec<f32>,
    /// Neighbour lists per layer (index 0 = bottom).
    neighbours: Vec<Vec<usize>>,
}

/// The HNSW index.
pub struct HnswIndex {
    config: HnswConfig,
    dim: usize,
    metric: Metric,
    nodes: Vec<Node>,
    entry: Option<usize>,
    max_layer: usize,
}

/// Max-heap entry ordered by score.
#[derive(PartialEq)]
struct Scored {
    score: f32,
    node: usize,
}

impl Eq for Scored {}

impl PartialOrd for Scored {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Scored {
    fn cmp(&self, other: &Self) -> Ordering {
        self.score
            .partial_cmp(&other.score)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl HnswIndex {
    /// Create an empty index.
    pub fn new(dim: usize, metric: Metric, config: HnswConfig) -> Self {
        assert!(config.m >= 2);
        assert!(config.ef_construction >= config.m);
        assert!(config.ef_search >= 1);
        Self { config, dim, metric, nodes: Vec::new(), entry: None, max_layer: 0 }
    }

    /// Geometric level draw, deterministic per id.
    fn draw_level(&self, id: u64) -> usize {
        let rng = KeyedStochastic::new(self.config.seed ^ 0x4E5_107);
        let u = rng.uniform(&["level", &id.to_string()]).max(1e-12);
        let ml = 1.0 / (self.config.m as f64).ln();
        (-(u.ln()) * ml).floor() as usize
    }

    /// Beam search on one layer starting from `entries`; returns up to `ef`
    /// best (score, node) pairs, best-first.
    fn search_layer(
        &self,
        query: &[f32],
        entries: &[usize],
        ef: usize,
        layer: usize,
    ) -> Vec<Scored> {
        let mut visited: std::collections::HashSet<usize> = entries.iter().copied().collect();
        let mut candidates: BinaryHeap<Scored> = BinaryHeap::new(); // max-heap by score
                                                                    // Result set as a min-heap via Reverse.
        let mut results: BinaryHeap<std::cmp::Reverse<Scored>> = BinaryHeap::new();

        for &e in entries {
            let s = self.metric.score(query, &self.nodes[e].vector);
            candidates.push(Scored { score: s, node: e });
            results.push(std::cmp::Reverse(Scored { score: s, node: e }));
        }
        while results.len() > ef {
            results.pop();
        }

        while let Some(best) = candidates.pop() {
            let worst_kept = results.peek().map(|r| r.0.score).unwrap_or(f32::NEG_INFINITY);
            if results.len() >= ef && best.score < worst_kept {
                break;
            }
            for &n in &self.nodes[best.node].neighbours[layer] {
                if !visited.insert(n) {
                    continue;
                }
                let s = self.metric.score(query, &self.nodes[n].vector);
                let worst = results.peek().map(|r| r.0.score).unwrap_or(f32::NEG_INFINITY);
                if results.len() < ef || s > worst {
                    candidates.push(Scored { score: s, node: n });
                    results.push(std::cmp::Reverse(Scored { score: s, node: n }));
                    while results.len() > ef {
                        results.pop();
                    }
                }
            }
        }
        let mut out: Vec<Scored> = results.into_iter().map(|r| r.0).collect();
        out.sort_by(|a, b| b.cmp(a));
        out
    }

    /// Select the best `m` neighbours from candidates (simple heuristic:
    /// highest scores win; deterministic tie-break on node index).
    fn select_neighbours(mut cands: Vec<Scored>, m: usize) -> Vec<usize> {
        cands.sort_by(|a, b| b.cmp(a));
        cands.truncate(m);
        cands.into_iter().map(|s| s.node).collect()
    }

    fn max_neighbours(&self, layer: usize) -> usize {
        if layer == 0 {
            self.config.m * 2
        } else {
            self.config.m
        }
    }

    /// Prune a node's neighbour list down to capacity, keeping the closest.
    fn prune(&mut self, node: usize, layer: usize) {
        let cap = self.max_neighbours(layer);
        if self.nodes[node].neighbours[layer].len() <= cap {
            return;
        }
        let v = self.nodes[node].vector.clone();
        let mut scored: Vec<Scored> = self.nodes[node].neighbours[layer]
            .iter()
            .map(|&n| Scored { score: self.metric.score(&v, &self.nodes[n].vector), node: n })
            .collect();
        scored.sort_by(|a, b| b.cmp(a));
        scored.truncate(cap);
        self.nodes[node].neighbours[layer] = scored.into_iter().map(|s| s.node).collect();
    }
}

impl VectorStore for HnswIndex {
    fn add(&mut self, id: u64, vector: &[f32]) {
        assert_eq!(vector.len(), self.dim, "vector dimension mismatch");
        let level = self.draw_level(id);
        let new_idx = self.nodes.len();
        self.nodes.push(Node {
            id,
            vector: vector.to_vec(),
            neighbours: vec![Vec::new(); level + 1],
        });

        let Some(mut entry) = self.entry else {
            self.entry = Some(new_idx);
            self.max_layer = level;
            return;
        };

        // Greedy descent through layers above `level`.
        let mut layer = self.max_layer;
        while layer > level {
            let found = self.search_layer(
                vector,
                &[entry],
                1,
                layer.min(self.nodes[entry].neighbours.len() - 1),
            );
            if let Some(best) = found.first() {
                entry = best.node;
            }
            if layer == 0 {
                break;
            }
            layer -= 1;
        }

        // Insert from min(level, max_layer) down to 0.
        let mut entries = vec![entry];
        let top = level.min(self.max_layer);
        for l in (0..=top).rev() {
            // Restrict entries to nodes that exist on layer l.
            let eff_entries: Vec<usize> =
                entries.iter().copied().filter(|&n| self.nodes[n].neighbours.len() > l).collect();
            let eff_entries = if eff_entries.is_empty() { vec![entry] } else { eff_entries };
            let found = self.search_layer(vector, &eff_entries, self.config.ef_construction, l);
            let neighbours = Self::select_neighbours(
                found.iter().map(|s| Scored { score: s.score, node: s.node }).collect(),
                self.max_neighbours(l),
            );
            for &n in &neighbours {
                if n == new_idx {
                    continue;
                }
                self.nodes[new_idx].neighbours[l].push(n);
                if self.nodes[n].neighbours.len() > l {
                    self.nodes[n].neighbours[l].push(new_idx);
                    self.prune(n, l);
                }
            }
            entries = neighbours;
            if entries.is_empty() {
                entries = vec![entry];
            }
        }

        if level > self.max_layer {
            self.max_layer = level;
            self.entry = Some(new_idx);
        }
    }

    fn search(&self, query: &[f32], k: usize) -> Vec<SearchResult> {
        assert_eq!(query.len(), self.dim, "query dimension mismatch");
        if k == 0 || self.nodes.is_empty() {
            return Vec::new();
        }
        let mut entry = self.entry.expect("non-empty index has an entry");
        // Greedy descent to layer 1.
        for layer in (1..=self.max_layer).rev() {
            if self.nodes[entry].neighbours.len() <= layer {
                continue;
            }
            loop {
                let cur_score = self.metric.score(query, &self.nodes[entry].vector);
                let mut improved = false;
                for &n in &self.nodes[entry].neighbours[layer] {
                    if self.metric.score(query, &self.nodes[n].vector) > cur_score {
                        entry = n;
                        improved = true;
                        break;
                    }
                }
                if !improved {
                    break;
                }
            }
        }
        // Beam search at the bottom.
        let ef = self.config.ef_search.max(k);
        let found = self.search_layer(query, &[entry], ef, 0);
        let mut hits: Vec<SearchResult> = found
            .into_iter()
            .map(|s| SearchResult { id: self.nodes[s.node].id, score: s.score })
            .collect();
        sort_hits(&mut hits);
        hits.truncate(k);
        hits
    }

    fn len(&self) -> usize {
        self.nodes.len()
    }

    fn metric(&self) -> Metric {
        self.metric
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::FlatIndex;
    use mcqa_embed::Precision;

    fn random_unit(dim: usize, seed: u64) -> Vec<f32> {
        let rng = KeyedStochastic::new(seed);
        let mut v: Vec<f32> =
            (0..dim).map(|j| rng.gaussian(&["v", &j.to_string()]) as f32).collect();
        let n: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        v.iter_mut().for_each(|x| *x /= n);
        v
    }

    #[test]
    fn single_and_empty() {
        let mut idx = HnswIndex::new(8, Metric::Cosine, HnswConfig::default());
        assert!(idx.search(&[0.0; 8], 3).is_empty());
        idx.add(42, &random_unit(8, 1));
        let hits = idx.search(&random_unit(8, 1), 3);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, 42);
    }

    #[test]
    fn exact_on_small_sets() {
        // With ef_search >= n the beam is exhaustive ⇒ matches flat.
        let dim = 16;
        let n = 60;
        let mut hnsw = HnswIndex::new(
            dim,
            Metric::Cosine,
            HnswConfig { m: 8, ef_construction: 64, ef_search: 64, seed: 2 },
        );
        let mut flat = FlatIndex::new(dim, Metric::Cosine, Precision::F32);
        for i in 0..n {
            let v = random_unit(dim, 1000 + i);
            hnsw.add(i, &v);
            flat.add(i, &v);
        }
        for q in 0..10u64 {
            let query = random_unit(dim, 5000 + q);
            let a: Vec<u64> = hnsw.search(&query, 5).into_iter().map(|h| h.id).collect();
            let b: Vec<u64> = flat.search(&query, 5).into_iter().map(|h| h.id).collect();
            assert_eq!(a, b, "query {q}");
        }
    }

    #[test]
    fn recall_on_larger_set() {
        let dim = 24;
        let n = 800u64;
        let mut hnsw = HnswIndex::new(dim, Metric::Cosine, HnswConfig::default());
        let mut flat = FlatIndex::new(dim, Metric::Cosine, Precision::F32);
        for i in 0..n {
            let v = random_unit(dim, 77_000 + i);
            hnsw.add(i, &v);
            flat.add(i, &v);
        }
        let mut hit = 0usize;
        let mut total = 0usize;
        for q in 0..30u64 {
            let query = random_unit(dim, 99_000 + q);
            let truth: std::collections::HashSet<u64> =
                flat.search(&query, 10).into_iter().map(|h| h.id).collect();
            let approx = hnsw.search(&query, 10);
            hit += approx.iter().filter(|h| truth.contains(&h.id)).count();
            total += truth.len();
        }
        let recall = hit as f64 / total as f64;
        assert!(recall >= 0.85, "HNSW recall@10 = {recall}");
    }

    #[test]
    fn deterministic() {
        let dim = 12;
        let mk = || {
            let mut idx = HnswIndex::new(dim, Metric::Cosine, HnswConfig::default());
            for i in 0..100u64 {
                idx.add(i, &random_unit(dim, 31 + i));
            }
            idx
        };
        let a = mk();
        let b = mk();
        let q = random_unit(dim, 9);
        assert_eq!(a.search(&q, 7), b.search(&q, 7));
    }

    #[test]
    fn duplicate_vectors_handled() {
        let mut idx = HnswIndex::new(
            4,
            Metric::Cosine,
            HnswConfig { m: 4, ef_construction: 8, ef_search: 8, seed: 0 },
        );
        let v = [0.5f32, 0.5, 0.5, 0.5];
        for i in 0..20u64 {
            idx.add(i, &v);
        }
        let hits = idx.search(&v, 5);
        assert_eq!(hits.len(), 5);
        // Ties break by ascending id.
        assert_eq!(hits.iter().map(|h| h.id).collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dim_mismatch() {
        let mut idx = HnswIndex::new(4, Metric::Cosine, HnswConfig::default());
        idx.add(0, &[0.0; 5]);
    }
}
