//! IVF: inverted-file index with a k-means coarse quantiser.
//!
//! Build: k-means over a training sample assigns every vector to its
//! nearest centroid's inverted list. Search: score the query against all
//! centroids, visit the best `nprobe` lists exhaustively. The classic
//! FAISS `IndexIVFFlat` trade-off: `nprobe ≪ nlist` gives large speedups
//! at a small recall cost (measured against [`crate::FlatIndex`] in the
//! benches and by `repro recall`).
//!
//! Each inverted list stores its rows as one packed row-major F32 panel
//! with insert-time-cached squared norms — permanently resident in the
//! shape search wants, so the in-list scan is a direct
//! [`Metric::score_block`] sweep (the same kernel as flat search) with no
//! per-entry pointer chase and nothing to decode or cache. The wire
//! format is unchanged from the per-entry layout: packing is an in-memory
//! choice only.

use mcqa_runtime::{run_stage_batched, Executor};
use mcqa_util::kernel;
use serde::{Deserialize, Serialize};

use crate::codec::{encode_metric, put_f32s, put_u32, put_u64, ReadMetricExt, Reader};
use crate::kmeans;
use crate::metric::Metric;
use crate::{SearchResult, TopK, VectorStore};

/// IVF configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IvfConfig {
    /// Number of coarse centroids (inverted lists).
    pub nlist: usize,
    /// Lists visited per query.
    pub nprobe: usize,
    /// k-means iterations.
    pub train_iters: usize,
    /// Seed for centroid initialisation.
    pub seed: u64,
}

impl Default for IvfConfig {
    /// Defaults tuned on the pipeline's own chunk embeddings (see `repro
    /// recall`): the hash-encoded text vectors cluster weakly, so a high
    /// `nprobe`/`nlist` ratio is needed to hold recall@5 ≥ 0.9 against
    /// the flat baseline. Lower `nprobe` for sharply clustered data.
    fn default() -> Self {
        Self { nlist: 64, nprobe: 48, train_iters: 8, seed: 42 }
    }
}

/// One inverted list as a resident row panel: parallel arrays of ids,
/// packed row-major F32 rows, insert-time-cached squared norms, and
/// per-entry tombstones. Tombstoned entries stay resident (and are
/// skipped at the top-k push) until [`VectorStore::compact`]; per-entry
/// rather than per-id so an upsert's re-added id is live while its
/// superseded entry stays dead. Norms are derived data — recomputed on
/// deserialisation, never serialised.
#[derive(Debug, Clone, Default)]
struct IvfList {
    ids: Vec<u64>,
    /// `ids.len() × dim` packed rows — already the panel shape
    /// [`Metric::score_block`] scans, with no gather step.
    rows: Vec<f32>,
    norms: Vec<f32>,
    dead: Vec<bool>,
}

/// The IVF index.
#[derive(Debug, Clone)]
pub struct IvfIndex {
    config: IvfConfig,
    dim: usize,
    metric: Metric,
    centroids: Vec<Vec<f32>>,
    /// Inverted lists, one packed panel per centroid.
    lists: Vec<IvfList>,
    dead_count: usize,
    len: usize,
    trained: bool,
}

impl IvfIndex {
    /// Magic tag opening the serialised format.
    pub(crate) const MAGIC: &'static [u8; 4] = b"IVF0";

    /// Create an untrained index.
    pub fn new(dim: usize, metric: Metric, config: IvfConfig) -> Self {
        assert!(config.nlist >= 1);
        assert!(config.nprobe >= 1);
        Self {
            config,
            dim,
            metric,
            centroids: Vec::new(),
            lists: Vec::new(),
            dead_count: 0,
            len: 0,
            trained: false,
        }
    }

    /// True when the coarse quantiser has been trained.
    pub fn is_trained(&self) -> bool {
        self.trained
    }

    /// Number of inverted lists actually in use.
    pub fn nlist(&self) -> usize {
        self.centroids.len()
    }

    /// Occupancy histogram (list lengths), useful for balance diagnostics.
    pub fn list_sizes(&self) -> Vec<usize> {
        self.lists.iter().map(|l| l.ids.len()).collect()
    }

    /// Rows per scored block within a list panel: sized like flat
    /// search's so the scores buffer stays L2-resident at any
    /// dimensionality (the panel itself is always resident).
    fn block_rows(&self) -> usize {
        (16_384 / self.dim.max(1)).clamp(8, 4096)
    }

    /// Deserialise from [`VectorStore::to_bytes`] output.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let mut r = Reader::new(bytes);
        r.expect_magic(Self::MAGIC)?;
        let metric = r.metric()?;
        let dim = r.u32()? as usize;
        let config = IvfConfig {
            nlist: r.u32()? as usize,
            nprobe: r.u32()? as usize,
            train_iters: r.u32()? as usize,
            seed: r.u64()?,
        };
        if config.nlist == 0 || config.nprobe == 0 {
            return None;
        }
        let trained = match r.u8()? {
            0 => false,
            1 => true,
            _ => return None,
        };
        let n_centroids = r.count(dim * 4)?;
        let centroids: Vec<Vec<f32>> =
            (0..n_centroids).map(|_| r.f32_vec(dim)).collect::<Option<_>>()?;
        let n_lists = r.count(4)?;
        if trained && n_lists != n_centroids {
            return None;
        }
        let mut len = 0usize;
        let mut lists = Vec::with_capacity(n_lists);
        for _ in 0..n_lists {
            let entries = r.count(8 + dim * 4)?;
            let mut list = IvfList::default();
            for _ in 0..entries {
                list.ids.push(r.u64()?);
                let v = r.f32_vec(dim)?;
                // Norms are derived data, recomputed through the same
                // kernel insert-time caching uses — bit-identical scores.
                list.norms.push(kernel::sq_norm(&v));
                list.rows.extend_from_slice(&v);
            }
            list.dead.resize(entries, false);
            len += entries;
            lists.push(list);
        }
        r.exhausted().then_some(Self {
            config,
            dim,
            metric,
            centroids,
            lists,
            dead_count: 0,
            len,
            trained,
        })
    }

    /// Drop tombstoned entries from every inverted list, preserving each
    /// list's insertion order. The trained coarse structure is untouched,
    /// so assignment — and therefore search — is bit-identical to a store
    /// rebuilt from the live rows with the same centroids.
    fn drop_dead_entries(&mut self) {
        if self.dead_count == 0 {
            return;
        }
        let dim = self.dim;
        for list in &mut self.lists {
            if !list.dead.iter().any(|&d| d) {
                continue;
            }
            let live = list.dead.iter().filter(|&&d| !d).count();
            let mut ids = Vec::with_capacity(live);
            let mut rows = Vec::with_capacity(live * dim);
            let mut norms = Vec::with_capacity(live);
            for (r, &dead) in list.dead.iter().enumerate() {
                if dead {
                    continue;
                }
                ids.push(list.ids[r]);
                rows.extend_from_slice(&list.rows[r * dim..(r + 1) * dim]);
                norms.push(list.norms[r]);
            }
            list.ids = ids;
            list.rows = rows;
            list.norms = norms;
            list.dead.clear();
            list.dead.resize(list.ids.len(), false);
        }
        self.len -= self.dead_count;
        self.dead_count = 0;
    }
}

impl VectorStore for IvfIndex {
    fn add(&mut self, id: u64, vector: &[f32]) {
        assert!(self.trained, "IvfIndex::add before train()");
        assert_eq!(vector.len(), self.dim, "vector dimension mismatch");
        let c = kmeans::nearest(self.metric, &self.centroids, vector);
        let list = &mut self.lists[c];
        list.ids.push(id);
        list.rows.extend_from_slice(vector);
        list.norms.push(kernel::sq_norm(vector));
        list.dead.push(false);
        self.len += 1;
    }

    fn remove(&mut self, ids: &[u64]) -> usize {
        let targets: std::collections::HashSet<u64> = ids.iter().copied().collect();
        let mut newly = 0;
        for list in &mut self.lists {
            for (id, d) in list.ids.iter().zip(list.dead.iter_mut()) {
                if !*d && targets.contains(id) {
                    *d = true;
                    newly += 1;
                }
            }
        }
        self.dead_count += newly;
        newly
    }

    fn tombstones(&self) -> usize {
        self.dead_count
    }

    fn compact(&mut self, _exec: &Executor) {
        self.drop_dead_entries();
    }

    fn add_batch(&mut self, exec: &Executor, items: &[(u64, Vec<f32>)]) {
        assert!(self.trained, "IvfIndex::add_batch before train()");
        for (_, v) in items {
            assert_eq!(v.len(), self.dim, "vector dimension mismatch");
        }
        // Centroid assignment is the per-item cost and is independent per
        // vector; fan it out, then fill the lists in input order so each
        // list's contents match sequential `add` calls exactly.
        let (assigned, _) =
            run_stage_batched(exec, "ivf-assign", (0..items.len()).collect(), 0, |i| {
                Ok::<_, String>(kmeans::nearest(self.metric, &self.centroids, &items[i].1))
            });
        for (c, (id, v)) in assigned.into_iter().zip(items) {
            let c = c.expect("assignment cannot fail");
            let list = &mut self.lists[c];
            list.ids.push(*id);
            list.rows.extend_from_slice(v);
            list.norms.push(kernel::sq_norm(v));
            list.dead.push(false);
        }
        self.len += items.len();
    }

    /// Train the coarse quantiser with the shared k-means++ trainer
    /// ([`crate::kmeans::train_centroids`], Lloyd fanned out on `exec`),
    /// after which the index accepts [`VectorStore::add`].
    ///
    /// When fewer training vectors than `nlist` are supplied, the number of
    /// lists shrinks to the training size. Panics on an empty sample.
    fn train(&mut self, exec: &Executor, training: &[Vec<f32>]) {
        assert!(!training.is_empty(), "cannot train on an empty sample");
        for t in training {
            assert_eq!(t.len(), self.dim, "training vector dimension mismatch");
        }
        let k = self.config.nlist.min(training.len());
        let centroids = kmeans::train_centroids(
            exec,
            self.metric,
            training,
            k,
            self.config.train_iters,
            self.config.seed,
        );
        self.lists = vec![IvfList::default(); centroids.len()];
        self.dead_count = 0;
        self.centroids = centroids;
        self.trained = true;
    }

    fn needs_training(&self) -> bool {
        true
    }

    fn search(&self, query: &[f32], k: usize) -> Vec<SearchResult> {
        assert_eq!(query.len(), self.dim, "query dimension mismatch");
        if k == 0 || self.len == 0 {
            return Vec::new();
        }
        // Rank centroids, visit nprobe lists.
        let mut ranked: Vec<(usize, f32)> = self
            .centroids
            .iter()
            .enumerate()
            .map(|(i, c)| (i, self.metric.score(query, c)))
            .collect();
        ranked.sort_by(|a, b| {
            b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0))
        });
        // The in-list exact scan shares flat search's machinery: each
        // probed list is a resident packed panel, swept block-by-block by
        // the fixed-order `Metric::score_block` kernel against the
        // insert-time-cached norms (bit-identical to per-row
        // `Metric::score` — the kernel property suite holds that oracle)
        // and kept in a bounded heap instead of a materialise-then-sort
        // pass.
        let q_sq = kernel::sq_norm(query);
        let block_rows = self.block_rows();
        let mut scores = vec![0.0f32; block_rows];
        let mut topk = TopK::new(k);
        for &(list_idx, _) in ranked.iter().take(self.config.nprobe) {
            let list = &self.lists[list_idx];
            let n = list.ids.len();
            let mut start = 0usize;
            while start < n {
                let rows = block_rows.min(n - start);
                let panel = &list.rows[start * self.dim..(start + rows) * self.dim];
                let out = &mut scores[..rows];
                self.metric.score_block(query, q_sq, panel, &list.norms[start..start + rows], out);
                for (j, &score) in out.iter().enumerate() {
                    if !list.dead[start + j] {
                        topk.push(SearchResult { id: list.ids[start + j], score });
                    }
                }
                start += rows;
            }
        }
        topk.into_sorted()
    }

    fn len(&self) -> usize {
        self.len - self.dead_count
    }

    fn metric(&self) -> Metric {
        self.metric
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn payload_bytes(&self) -> usize {
        let vectors = self.len * (self.dim * 4 + 8);
        let centroids = self.centroids.len() * self.dim * 4;
        vectors + centroids
    }

    fn to_bytes(&self) -> Vec<u8> {
        if self.dead_count > 0 {
            // The wire format is tombstone-free: serialise the live view.
            let mut live = self.clone();
            live.drop_dead_entries();
            return live.to_bytes();
        }
        let mut out = Vec::with_capacity(self.payload_bytes() + 64);
        out.extend_from_slice(Self::MAGIC);
        out.push(encode_metric(self.metric));
        put_u32(&mut out, self.dim);
        put_u32(&mut out, self.config.nlist);
        put_u32(&mut out, self.config.nprobe);
        put_u32(&mut out, self.config.train_iters);
        put_u64(&mut out, self.config.seed);
        out.push(u8::from(self.trained));
        put_u32(&mut out, self.centroids.len());
        for c in &self.centroids {
            put_f32s(&mut out, c);
        }
        put_u32(&mut out, self.lists.len());
        for list in &self.lists {
            put_u32(&mut out, list.ids.len());
            for (r, id) in list.ids.iter().enumerate() {
                put_u64(&mut out, *id);
                put_f32s(&mut out, &list.rows[r * self.dim..(r + 1) * self.dim]);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::FlatIndex;
    use mcqa_embed::Precision;
    use mcqa_util::KeyedStochastic;

    /// Clustered synthetic vectors: `n` points around `c` centres.
    fn clustered(n: usize, centres: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
        let rng = KeyedStochastic::new(seed);
        (0..n)
            .map(|i| {
                let c = i % centres;
                let mut v: Vec<f32> = (0..dim)
                    .map(|j| {
                        let base = if j % centres == c { 1.0 } else { 0.0 };
                        base + 0.15 * rng.gaussian(&["g", &i.to_string(), &j.to_string()]) as f32
                    })
                    .collect();
                let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
                v.iter_mut().for_each(|x| *x /= norm);
                v
            })
            .collect()
    }

    #[test]
    fn recall_against_flat() {
        let dim = 32;
        let data = clustered(600, 8, dim, 7);
        let mut flat = FlatIndex::new(dim, Metric::Cosine, Precision::F32);
        let mut ivf = IvfIndex::new(
            dim,
            Metric::Cosine,
            IvfConfig { nlist: 16, nprobe: 4, train_iters: 6, seed: 3 },
        );
        ivf.train(Executor::global(), &data);
        for (i, v) in data.iter().enumerate() {
            flat.add(i as u64, v);
            ivf.add(i as u64, v);
        }
        let queries = clustered(50, 8, dim, 99);
        let mut recall_hits = 0usize;
        let mut total = 0usize;
        for q in &queries {
            let truth: std::collections::HashSet<u64> =
                flat.search(q, 10).into_iter().map(|h| h.id).collect();
            let approx = ivf.search(q, 10);
            recall_hits += approx.iter().filter(|h| truth.contains(&h.id)).count();
            total += truth.len();
        }
        let recall = recall_hits as f64 / total as f64;
        assert!(recall >= 0.8, "IVF recall@10 = {recall}");
    }

    #[test]
    fn full_probe_equals_flat() {
        // nprobe == nlist ⇒ exhaustive ⇒ identical to flat search.
        let dim = 16;
        let data = clustered(200, 4, dim, 5);
        let mut flat = FlatIndex::new(dim, Metric::Cosine, Precision::F32);
        let mut ivf = IvfIndex::new(
            dim,
            Metric::Cosine,
            IvfConfig { nlist: 8, nprobe: 8, train_iters: 5, seed: 1 },
        );
        ivf.train(Executor::global(), &data);
        for (i, v) in data.iter().enumerate() {
            flat.add(i as u64, v);
            ivf.add(i as u64, v);
        }
        for q in clustered(10, 4, dim, 31) {
            let a: Vec<u64> = flat.search(&q, 5).into_iter().map(|h| h.id).collect();
            let b: Vec<u64> = ivf.search(&q, 5).into_iter().map(|h| h.id).collect();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn deterministic_build() {
        let dim = 16;
        let data = clustered(100, 4, dim, 5);
        let mk = || {
            let mut ivf = IvfIndex::new(dim, Metric::Cosine, IvfConfig::default());
            ivf.train(Executor::global(), &data);
            for (i, v) in data.iter().enumerate() {
                ivf.add(i as u64, v);
            }
            ivf
        };
        let a = mk();
        let b = mk();
        let q = &data[3];
        assert_eq!(a.search(q, 5), b.search(q, 5));
        assert_eq!(a.list_sizes(), b.list_sizes());
    }

    #[test]
    fn add_batch_is_bit_identical_to_serial_adds() {
        let dim = 16;
        let data = clustered(150, 4, dim, 21);
        let items: Vec<(u64, Vec<f32>)> =
            data.iter().enumerate().map(|(i, v)| (i as u64 * 3, v.clone())).collect();
        let mut serial = IvfIndex::new(dim, Metric::Cosine, IvfConfig::default());
        serial.train(Executor::global(), &data);
        for (id, v) in &items {
            serial.add(*id, v);
        }
        let mut batched = IvfIndex::new(dim, Metric::Cosine, IvfConfig::default());
        batched.train(Executor::global(), &data);
        batched.add_batch(Executor::global(), &items);
        assert_eq!(batched.to_bytes(), serial.to_bytes());
    }

    #[test]
    fn small_training_shrinks_nlist() {
        let mut ivf =
            IvfIndex::new(4, Metric::Cosine, IvfConfig { nlist: 64, ..Default::default() });
        ivf.train(Executor::global(), &[vec![1.0, 0.0, 0.0, 0.0], vec![0.0, 1.0, 0.0, 0.0]]);
        assert_eq!(ivf.nlist(), 2);
        ivf.add(1, &[1.0, 0.0, 0.0, 0.0]);
        assert_eq!(ivf.search(&[1.0, 0.0, 0.0, 0.0], 1)[0].id, 1);
    }

    #[test]
    #[should_panic(expected = "before train")]
    fn add_before_train_panics() {
        let mut ivf = IvfIndex::new(4, Metric::Cosine, IvfConfig::default());
        ivf.add(0, &[0.0; 4]);
    }

    #[test]
    #[should_panic(expected = "before train")]
    fn add_batch_before_train_panics() {
        let mut ivf = IvfIndex::new(4, Metric::Cosine, IvfConfig::default());
        ivf.add_batch(Executor::global(), &[(0, vec![0.0; 4])]);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn train_empty_panics() {
        let mut ivf = IvfIndex::new(4, Metric::Cosine, IvfConfig::default());
        ivf.train(Executor::global(), &[]);
    }

    #[test]
    fn untrained_search_is_empty_not_a_panic() {
        // An untrained index holds no vectors; searching it is a defined
        // no-op (the registry path may probe stores before they're built).
        let ivf = IvfIndex::new(4, Metric::Cosine, IvfConfig::default());
        assert!(!ivf.is_trained());
        assert!(ivf.search(&[1.0, 0.0, 0.0, 0.0], 5).is_empty());
        assert!(ivf.search(&[0.0; 4], 5).is_empty(), "zero query on untrained index");
    }

    #[test]
    fn trained_empty_search_is_empty() {
        let mut ivf = IvfIndex::new(4, Metric::Cosine, IvfConfig::default());
        ivf.train(Executor::global(), &[vec![1.0, 0.0, 0.0, 0.0]]);
        assert!(ivf.search(&[1.0, 0.0, 0.0, 0.0], 5).is_empty());
    }

    #[test]
    fn all_vectors_land_in_some_list() {
        let dim = 8;
        let data = clustered(120, 3, dim, 9);
        let mut ivf =
            IvfIndex::new(dim, Metric::Cosine, IvfConfig { nlist: 6, ..Default::default() });
        ivf.train(Executor::global(), &data);
        for (i, v) in data.iter().enumerate() {
            ivf.add(i as u64, v);
        }
        assert_eq!(ivf.list_sizes().iter().sum::<usize>(), 120);
        assert_eq!(ivf.len(), 120);
    }

    #[test]
    fn remove_upsert_compact_match_rebuild_with_same_centroids() {
        let dim = 16;
        let data = clustered(120, 4, dim, 17);
        let mut ivf = IvfIndex::new(dim, Metric::Cosine, IvfConfig::default());
        ivf.train(Executor::global(), &data);
        for (i, v) in data.iter().enumerate() {
            ivf.add(i as u64, v);
        }
        // Remove a third, re-vector a few ids.
        let gone: Vec<u64> = (0..40u64).collect();
        assert_eq!(ivf.remove(&gone), 40);
        assert_eq!(ivf.len(), 80);
        assert_eq!(ivf.tombstones(), 40);
        let upserts: Vec<(u64, Vec<f32>)> =
            (50..55u64).map(|i| (i, data[(i as usize + 7) % data.len()].clone())).collect();
        ivf.upsert(Executor::global(), &upserts);
        assert_eq!(ivf.len(), 80, "upsert replaces without growing");

        // Rebuild from scratch over the live rows, reusing the same
        // trained structure (same config/seed trains the same centroids
        // on the same sample).
        let mut rebuilt = IvfIndex::new(dim, Metric::Cosine, IvfConfig::default());
        rebuilt.train(Executor::global(), &data);
        for (i, v) in data.iter().enumerate().skip(40) {
            let id = i as u64;
            match upserts.iter().find(|(uid, _)| *uid == id) {
                Some(_) => continue, // re-added below in upsert order
                None => rebuilt.add(id, v),
            }
        }
        rebuilt.add_batch(Executor::global(), &upserts);
        for q in data.iter().take(8) {
            assert_eq!(ivf.search(q, 10), rebuilt.search(q, 10));
        }
        // Compaction drops the tombstones without changing results, and
        // the wire format was already tombstone-free.
        let before = ivf.search(&data[0], 10);
        let wire = ivf.to_bytes();
        ivf.compact(Executor::global());
        assert_eq!(ivf.tombstones(), 0);
        assert_eq!(ivf.search(&data[0], 10), before);
        assert_eq!(ivf.to_bytes(), wire, "compaction equals the serialised live view");
    }

    #[test]
    fn serialisation_roundtrip() {
        let dim = 12;
        let data = clustered(80, 4, dim, 13);
        let mut ivf = IvfIndex::new(
            dim,
            Metric::Dot,
            IvfConfig { nlist: 8, nprobe: 3, train_iters: 4, seed: 9 },
        );
        ivf.train(Executor::global(), &data);
        for (i, v) in data.iter().enumerate() {
            ivf.add(i as u64 + 5, v);
        }
        let bytes = ivf.to_bytes();
        let back = IvfIndex::from_bytes(&bytes).unwrap();
        assert_eq!(back.len(), ivf.len());
        assert_eq!(back.metric(), Metric::Dot);
        assert_eq!(back.nlist(), ivf.nlist());
        assert_eq!(back.list_sizes(), ivf.list_sizes());
        assert!(back.is_trained());
        for q in data.iter().take(5) {
            assert_eq!(back.search(q, 7), ivf.search(q, 7));
        }
        assert_eq!(back.to_bytes(), bytes, "re-serialisation is stable");
        // Corruption rejected.
        assert!(IvfIndex::from_bytes(&bytes[..bytes.len() - 3]).is_none());
        assert!(IvfIndex::from_bytes(b"IVF0").is_none());
        assert!(IvfIndex::from_bytes(b"FLATxxxx").is_none());
        // Untrained round-trip.
        let empty = IvfIndex::new(4, Metric::Cosine, IvfConfig::default());
        let back = IvfIndex::from_bytes(&empty.to_bytes()).unwrap();
        assert!(!back.is_trained());
        assert_eq!(back.len(), 0);
    }
}
