//! Shared k-means trainer: k-means++ seeding plus Lloyd iterations fanned
//! out over the runtime pool.
//!
//! Both coarse quantisers ([`crate::IvfIndex`] and [`crate::PqIndex`])
//! train through this module, so seeding improvements land in every
//! trainable backend at once. Seeding is k-means++ (D² sampling): each new
//! centre is drawn with probability proportional to its squared L2
//! distance to the nearest centre chosen so far, which bounds the expected
//! quantisation error within O(log k) of optimal (Arthur & Vassilvitskii
//! 2007). The naive uniform sampling it replaces has no such bound and
//! routinely seeds two centres inside one cluster, leaving another cluster
//! split across lists — directly visible as lost recall at fixed `nprobe`.
//!
//! Determinism: every random draw is keyed through [`KeyedStochastic`] (a
//! pure function of seed and key path), the parallel distance updates and
//! Lloyd assignments return input-ordered results from
//! [`run_stage_batched`], and accumulation happens serially in index
//! order — so the trained centroids are bit-identical at any worker count.

use mcqa_runtime::{run_stage_batched, Executor};
use mcqa_util::{kernel, KeyedStochastic};

use crate::metric::Metric;

/// Index of the centroid most similar to `v` under `metric` (argmax of
/// [`Metric::score`], ties to the lowest index). Panics on an empty
/// centroid set.
#[inline]
pub(crate) fn nearest(metric: Metric, centroids: &[Vec<f32>], v: &[f32]) -> usize {
    assert!(!centroids.is_empty(), "nearest() over no centroids");
    let mut best = 0usize;
    let mut best_score = f32::NEG_INFINITY;
    for (i, c) in centroids.iter().enumerate() {
        let s = metric.score(v, c);
        if s > best_score {
            best_score = s;
            best = i;
        }
    }
    best
}

/// Train `k` centroids over `training` with k-means++ seeding and `iters`
/// Lloyd iterations, deterministically under `seed`.
///
/// `k` is clamped to `[1, training.len()]` (fewer training vectors than
/// requested centres shrinks the codebook, matching the IVF contract).
/// Seeding distances are squared L2 regardless of `metric` — for the
/// (near-)unit vectors every caller trains on, L2 and cosine order
/// neighbours identically — while Lloyd assignment uses `metric` itself,
/// so centroids settle under the same similarity that search will use.
/// Empty clusters keep their previous position. Panics on an empty sample
/// or mismatched vector dimensions.
pub fn train_centroids(
    exec: &Executor,
    metric: Metric,
    training: &[Vec<f32>],
    k: usize,
    iters: usize,
    seed: u64,
) -> Vec<Vec<f32>> {
    assert!(!training.is_empty(), "cannot train on an empty sample");
    let dim = training[0].len();
    for t in training {
        assert_eq!(t.len(), dim, "training vector dimension mismatch");
    }
    let k = k.clamp(1, training.len());
    let rng = KeyedStochastic::new(seed);

    // k-means++ seeding: the first centre uniformly, each subsequent one
    // D²-weighted. `d2` holds every point's squared distance to its
    // nearest chosen centre and is min-updated against only the newest
    // centre per round (the classic O(n·k) incremental form).
    let first = rng.below(training.len(), &["kpp", "0"]);
    let mut centroids: Vec<Vec<f32>> = vec![training[first].clone()];
    let mut d2: Vec<f64> = vec![f64::INFINITY; training.len()];
    for pick in 1..k {
        let newest = centroids.last().expect("seeded above").clone();
        let (updates, _) =
            run_stage_batched(exec, "kmeans-seed", (0..training.len()).collect(), 0, |i| {
                Ok::<_, String>(d2[i].min(f64::from(kernel::l2_sq(&training[i], &newest))))
            });
        for (slot, u) in d2.iter_mut().zip(updates) {
            *slot = u.expect("distance cannot fail");
        }
        let total: f64 = d2.iter().sum();
        let idx = if total > 0.0 {
            // Prefix walk over the weights; the rposition fallback covers
            // the floating-point edge where rounding leaves the target
            // just past the final prefix sum.
            let target = rng.uniform(&["kpp", &pick.to_string()]) * total;
            let mut acc = 0.0f64;
            d2.iter()
                .position(|&w| {
                    acc += w;
                    acc > target
                })
                .or_else(|| d2.iter().rposition(|&w| w > 0.0))
                .expect("total > 0 implies a positive weight")
        } else {
            // Every point coincides with a chosen centre; any pick is a
            // duplicate, so a keyed draw keeps the codebook size stable
            // and the build deterministic.
            rng.below(training.len(), &["kpp-dup", &pick.to_string()])
        };
        centroids.push(training[idx].clone());
    }

    // Lloyd: parallel assignment, then a serial accumulation pass in
    // input order (f64 sums, so the mean is order-robust *and* the order
    // is fixed anyway — bit-identical at any worker count).
    for _iter in 0..iters {
        let (assigned, _) =
            run_stage_batched(exec, "kmeans-assign", (0..training.len()).collect(), 0, |i| {
                Ok::<_, String>(nearest(metric, &centroids, &training[i]))
            });
        let mut sums: Vec<f64> = vec![0.0; k * dim];
        let mut counts = vec![0usize; k];
        for (v, c) in training.iter().zip(assigned) {
            let c = c.expect("assignment cannot fail");
            counts[c] += 1;
            for (s, x) in sums[c * dim..(c + 1) * dim].iter_mut().zip(v) {
                *s += f64::from(*x);
            }
        }
        for (c, centroid) in centroids.iter_mut().enumerate() {
            if counts[c] == 0 {
                continue; // keep the old position for empty clusters
            }
            for (ci, s) in centroid.iter_mut().zip(&sums[c * dim..]) {
                *ci = (*s / counts[c] as f64) as f32;
            }
        }
    }
    centroids
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `n` points around `centres` well-separated one-hot directions.
    fn clustered(n: usize, centres: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
        let rng = KeyedStochastic::new(seed);
        (0..n)
            .map(|i| {
                let c = i % centres;
                let mut v: Vec<f32> = (0..dim)
                    .map(|j| {
                        let base = if j == c { 1.0 } else { 0.0 };
                        base + 0.05 * rng.gaussian(&["g", &i.to_string(), &j.to_string()]) as f32
                    })
                    .collect();
                let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
                v.iter_mut().for_each(|x| *x /= norm);
                v
            })
            .collect()
    }

    #[test]
    fn deterministic_across_worker_counts() {
        let data = clustered(300, 6, 16, 11);
        let base = train_centroids(&Executor::new(1), Metric::Cosine, &data, 6, 4, 7);
        for workers in [2, 4] {
            let got = train_centroids(&Executor::new(workers), Metric::Cosine, &data, 6, 4, 7);
            assert_eq!(got, base, "workers={workers}");
        }
    }

    /// Sum of squared distances to the nearest centroid — the k-means
    /// objective the seeding bounds.
    fn quantisation_error(data: &[Vec<f32>], cents: &[Vec<f32>]) -> f64 {
        data.iter()
            .map(|v| f64::from(kernel::l2_sq(v, &cents[nearest(Metric::L2, cents, v)])))
            .sum()
    }

    #[test]
    fn seeding_nearly_covers_clusters_and_beats_uniform() {
        // With k == the number of true clusters, D² seeding lands at most
        // one duplicate centre (cluster id = argmax coordinate) and a
        // lower quantisation error than the uniform permutation seeding it
        // replaced, on every tested seed. (Full coverage per run is not a
        // D²-sampling guarantee — within-cluster mass keeps a small
        // duplicate probability — but near-coverage and the error ordering
        // are stable.)
        let centres = 8;
        let data = clustered(400, centres, 16, 3);
        let exec = Executor::global();
        for seed in 0..5u64 {
            let cents = train_centroids(exec, Metric::Cosine, &data, centres, 0, seed);
            let mut hit = vec![false; centres];
            for c in &cents {
                let arg = c
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                    .map(|(i, _)| i)
                    .unwrap();
                hit[arg] = true;
            }
            let covered = hit.iter().filter(|&&h| h).count();
            assert!(covered >= centres - 1, "seed {seed}: covered {covered}/{centres} clusters");
            // The replaced seeding: uniform distinct picks via a keyed
            // permutation (what IvfIndex::train used to do).
            let perm = KeyedStochastic::new(seed).permutation(data.len(), &["init"]);
            let uniform: Vec<Vec<f32>> = perm[..centres].iter().map(|&i| data[i].clone()).collect();
            let (kpp_err, uni_err) =
                (quantisation_error(&data, &cents), quantisation_error(&data, &uniform));
            assert!(kpp_err <= uni_err, "seed {seed}: k-means++ {kpp_err} vs uniform {uni_err}");
        }
    }

    #[test]
    fn lloyd_reduces_quantisation_error() {
        let data = clustered(240, 4, 12, 5);
        let exec = Executor::global();
        let err = |cents: &[Vec<f32>]| -> f64 {
            data.iter()
                .map(|v| f64::from(kernel::l2_sq(v, &cents[nearest(Metric::L2, cents, v)])))
                .sum()
        };
        let seeded = train_centroids(exec, Metric::L2, &data, 4, 0, 9);
        let iterated = train_centroids(exec, Metric::L2, &data, 4, 6, 9);
        assert!(err(&iterated) <= err(&seeded), "Lloyd must not worsen the seeding");
    }

    #[test]
    fn k_clamps_to_sample_size() {
        let data = clustered(3, 3, 8, 1);
        let cents = train_centroids(Executor::global(), Metric::Cosine, &data, 64, 2, 1);
        assert_eq!(cents.len(), 3);
        let one = train_centroids(Executor::global(), Metric::Cosine, &data, 0, 2, 1);
        assert_eq!(one.len(), 1, "k=0 clamps up to a single centroid");
    }

    #[test]
    fn duplicate_points_keep_codebook_size() {
        let data = vec![vec![1.0f32, 0.0, 0.0, 0.0]; 5];
        let cents = train_centroids(Executor::global(), Metric::Cosine, &data, 3, 2, 2);
        assert_eq!(cents.len(), 3, "duplicates must not shrink the codebook");
        for c in &cents {
            assert_eq!(c, &data[0]);
        }
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_sample_panics() {
        train_centroids(Executor::global(), Metric::Cosine, &[], 4, 2, 0);
    }
}
