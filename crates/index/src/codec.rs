//! Byte-cursor helpers shared by the store serialisation formats.
//!
//! The generic primitives (bounds-checked [`Reader`], varint/zigzag,
//! little-endian put helpers) live in [`mcqa_util::codec`] so the lexical
//! index can share them; this module re-exports them and adds the
//! metric byte codec, which only the vector stores need.

pub(crate) use mcqa_util::codec::{
    put_f32s, put_u32, put_u64, put_varint, unzigzag, zigzag, Reader,
};

use crate::metric::Metric;

/// Read a metric byte off a [`Reader`]: keeps decode call sites on the
/// `r.metric()` idiom now that the cursor itself is metric-agnostic.
pub(crate) trait ReadMetricExt {
    fn metric(&mut self) -> Option<Metric>;
}

impl ReadMetricExt for Reader<'_> {
    fn metric(&mut self) -> Option<Metric> {
        decode_metric(self.u8()?)
    }
}

pub(crate) fn encode_metric(m: Metric) -> u8 {
    match m {
        Metric::Cosine => 0,
        Metric::Dot => 1,
        Metric::L2 => 2,
    }
}

pub(crate) fn decode_metric(b: u8) -> Option<Metric> {
    match b {
        0 => Some(Metric::Cosine),
        1 => Some(Metric::Dot),
        2 => Some(Metric::L2),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_codes_roundtrip() {
        for m in [Metric::Cosine, Metric::Dot, Metric::L2] {
            assert_eq!(decode_metric(encode_metric(m)), Some(m));
        }
        assert_eq!(decode_metric(9), None);
    }

    #[test]
    fn reader_metric_extension() {
        let bytes = [encode_metric(Metric::L2), 9];
        let mut r = Reader::new(&bytes);
        assert_eq!(r.metric(), Some(Metric::L2));
        assert_eq!(r.metric(), None, "unknown metric byte rejected");
    }
}
