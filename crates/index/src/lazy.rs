//! Lazy store opening: decode headers now, row data on first use.
//!
//! [`IndexRegistry::from_bytes`](crate::IndexRegistry::from_bytes) decodes
//! every row of every store eagerly — fine for a batch pipeline, wrong for
//! a serving process whose startup cost must be bounded and measured. The
//! lazy path ([`IndexRegistry::open_bytes`](crate::IndexRegistry::open_bytes))
//! wraps each store in a [`LazyStore`]: the self-describing header (magic
//! tag, metric, dimensionality, row count) is validated up front, while
//! the row payload stays raw bytes until the first search forces a full
//! decode. Header-only facts (`len`/`dim`/`metric`) answer without any
//! decode, so a service can report capacity and route requests before it
//! has paid for a single row.

use std::sync::OnceLock;

use mcqa_embed::PanelBudget;
use mcqa_runtime::Executor;

use crate::codec::{ReadMetricExt, Reader};
use crate::metric::Metric;
use crate::{decode_store, FlatIndex, HnswIndex, IvfIndex, PqIndex, SearchResult, VectorStore};

/// The header-only facts of a serialised store, readable without touching
/// row data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreHeader {
    /// Backend label (`flat` / `hnsw` / `ivf` / `pq`), from the magic tag.
    pub backend: &'static str,
    /// Scoring metric.
    pub metric: Metric,
    /// Vector dimensionality.
    pub dim: usize,
    /// Stored vector count.
    pub len: usize,
}

/// Decode the header of a store serialised by
/// [`VectorStore::to_bytes`], walking length framing but never row
/// payloads. `None` on unknown magic or a malformed header.
pub fn peek_store_header(bytes: &[u8]) -> Option<StoreHeader> {
    let mut r = Reader::new(bytes);
    match bytes.get(..4)? {
        m if m == FlatIndex::MAGIC => {
            r.expect_magic(FlatIndex::MAGIC)?;
            let metric = r.metric()?;
            let mlen = r.u64()? as usize;
            // The matrix's own EMBX header: magic, u32 dim, u32 rows.
            let matrix = r.take(mlen)?;
            let mut m = Reader::new(matrix);
            m.expect_magic(b"EMBX")?;
            let dim = m.u32()? as usize;
            let len = m.u32()? as usize;
            Some(StoreHeader { backend: "flat", metric, dim, len })
        }
        m if m == HnswIndex::MAGIC => {
            r.expect_magic(HnswIndex::MAGIC)?;
            let metric = r.metric()?;
            let dim = r.u32()? as usize;
            let _m = r.u32()?;
            let _ef_construction = r.u32()?;
            let _ef_search = r.u32()?;
            let _seed = r.u64()?;
            let len = r.count(8 + dim * 4)?;
            Some(StoreHeader { backend: "hnsw", metric, dim, len })
        }
        m if m == IvfIndex::MAGIC => {
            r.expect_magic(IvfIndex::MAGIC)?;
            let metric = r.metric()?;
            let dim = r.u32()? as usize;
            let _nlist = r.u32()?;
            let _nprobe = r.u32()?;
            let _train_iters = r.u32()?;
            let _seed = r.u64()?;
            let _trained = r.u8()?;
            let n_centroids = r.count(dim * 4)?;
            r.take(n_centroids.checked_mul(dim.checked_mul(4)?)?)?;
            // Total length lives in the per-list entry counts; walk the
            // framing (4 bytes per list) and skip the entry payloads.
            let n_lists = r.count(4)?;
            let entry_size = 8usize.checked_add(dim.checked_mul(4)?)?;
            let mut len = 0usize;
            for _ in 0..n_lists {
                let entries = r.count(entry_size)?;
                r.take(entries.checked_mul(entry_size)?)?;
                len = len.checked_add(entries)?;
            }
            Some(StoreHeader { backend: "ivf", metric, dim, len })
        }
        m if m == PqIndex::MAGIC => {
            r.expect_magic(PqIndex::MAGIC)?;
            let metric = r.metric()?;
            let dim = r.u32()? as usize;
            let _nlist = r.u32()?;
            let _nprobe = r.u32()?;
            let _train_iters = r.u32()?;
            let bits = r.u8()? as usize;
            let _sub_dim = r.u32()?;
            let _seed = r.u64()?;
            let _trained = r.u8()?;
            let n_sub = r.count(8)?;
            r.take(n_sub.checked_mul(8)?)?; // scale + bias
            let n_centroids = r.count(dim * 4)?;
            r.take(n_centroids.checked_mul(dim.checked_mul(4)?)?)?;
            // Total length lives in the per-list entry counts; each list
            // frames its delta-varint ids + packed codes behind an
            // explicit payload length, so the walk skips blobs whole.
            let n_lists = r.count(4)?;
            let code_bytes = dim.checked_mul(bits)?.checked_add(7)? / 8;
            let mut len = 0usize;
            for _ in 0..n_lists {
                let entries = r.count(code_bytes.max(1))?;
                let payload_len = r.count(1)?;
                r.take(payload_len)?;
                len = len.checked_add(entries)?;
            }
            Some(StoreHeader { backend: "pq", metric, dim, len })
        }
        _ => None,
    }
}

/// A store whose bytes are held raw until first use.
///
/// Header facts ([`VectorStore::len`], [`VectorStore::dim`],
/// [`VectorStore::metric`]) answer from the validated [`StoreHeader`];
/// the first search (or mutation) forces a full [`decode_store`] of the
/// retained bytes. A corrupt body — possible because opening validated
/// only the header — panics at that first use rather than being skipped.
pub struct LazyStore {
    header: StoreHeader,
    bytes: Vec<u8>,
    /// A panel-cache budget configured before the body decode; applied to
    /// the inner store the moment it materialises (budgets are a
    /// registry-open-time configuration, decoding is first-search-time).
    budget: Option<PanelBudget>,
    inner: OnceLock<Box<dyn VectorStore>>,
}

impl LazyStore {
    /// Validate the header of `bytes` and wrap them for deferred decoding.
    /// `None` when the header is malformed or the magic tag unknown.
    pub fn open(bytes: Vec<u8>) -> Option<Self> {
        let header = peek_store_header(&bytes)?;
        Some(Self { header, bytes, budget: None, inner: OnceLock::new() })
    }

    /// The header decoded at open time. Reflects the serialised store;
    /// post-open mutations (`add`/`train`) are visible through the trait
    /// accessors, not here.
    pub fn header(&self) -> &StoreHeader {
        &self.header
    }

    /// True once row data has been decoded (by a search or a mutation).
    pub fn is_decoded(&self) -> bool {
        self.inner.get().is_some()
    }

    fn force(&self) -> &dyn VectorStore {
        self.inner
            .get_or_init(|| {
                let mut store = decode_store(&self.bytes).unwrap_or_else(|| {
                    panic!("lazy {} store body is corrupt (header was valid)", self.header.backend)
                });
                if let Some(budget) = self.budget {
                    store.set_panel_cache_budget(budget);
                }
                store
            })
            .as_ref()
    }

    fn force_mut(&mut self) -> &mut Box<dyn VectorStore> {
        if self.inner.get().is_none() {
            self.force();
        }
        self.inner.get_mut().expect("store decoded above")
    }
}

impl VectorStore for LazyStore {
    fn add(&mut self, id: u64, vector: &[f32]) {
        self.force_mut().add(id, vector);
    }

    fn add_batch(&mut self, exec: &Executor, items: &[(u64, Vec<f32>)]) {
        self.force_mut().add_batch(exec, items);
    }

    fn search(&self, query: &[f32], k: usize) -> Vec<SearchResult> {
        self.force().search(query, k)
    }

    fn search_batch(
        &self,
        exec: &Executor,
        queries: &[Vec<f32>],
        k: usize,
    ) -> Vec<Vec<SearchResult>> {
        // Delegate so the backend's own batched kernel (the flat panel
        // amortisation) is preserved, not the trait's per-query default.
        self.force().search_batch(exec, queries, k)
    }

    fn len(&self) -> usize {
        match self.inner.get() {
            Some(inner) => inner.len(),
            None => self.header.len,
        }
    }

    fn metric(&self) -> Metric {
        self.header.metric
    }

    fn dim(&self) -> usize {
        self.header.dim
    }

    fn needs_training(&self) -> bool {
        match self.inner.get() {
            Some(inner) => inner.needs_training(),
            None => matches!(self.header.backend, "ivf" | "pq"),
        }
    }

    fn train(&mut self, exec: &Executor, sample: &[Vec<f32>]) {
        self.force_mut().train(exec, sample);
    }

    fn remove(&mut self, ids: &[u64]) -> usize {
        self.force_mut().remove(ids)
    }

    fn upsert(&mut self, exec: &Executor, items: &[(u64, Vec<f32>)]) {
        self.force_mut().upsert(exec, items);
    }

    fn tombstones(&self) -> usize {
        self.inner.get().map_or(0, |inner| inner.tombstones())
    }

    fn compact(&mut self, exec: &Executor) {
        // An undecoded blob has no tombstones (serialisation writes the
        // live view), so compaction only has work once decoded.
        if self.inner.get().is_some() {
            self.force_mut().compact(exec);
        }
    }

    fn payload_bytes(&self) -> usize {
        // Backend-specific accounting (matrix payload + graph/list
        // structure) needs the decoded store; capacity reporting is not a
        // startup-path call.
        self.force().payload_bytes()
    }

    fn set_panel_cache_budget(&mut self, budget: PanelBudget) {
        match self.inner.get() {
            // Already decoded: apply directly.
            Some(_) => self.force_mut().set_panel_cache_budget(budget),
            // Still raw bytes: stash it; `force` applies it after decode.
            None => self.budget = Some(budget),
        }
    }

    fn panel_cache_resident_bytes(&self) -> usize {
        // An undecoded store has no cache; never force a decode for a
        // capacity probe.
        self.inner.get().map_or(0, |inner| inner.panel_cache_resident_bytes())
    }

    fn to_bytes(&self) -> Vec<u8> {
        match self.inner.get() {
            Some(inner) => inner.to_bytes(),
            None => self.bytes.clone(),
        }
    }
}

impl std::fmt::Debug for LazyStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LazyStore")
            .field("header", &self.header)
            .field("decoded", &self.is_decoded())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{build_store_from_vectors, IndexSpec};
    use mcqa_embed::Precision;

    fn items(n: usize, dim: usize) -> Vec<(u64, Vec<f32>)> {
        (0..n)
            .map(|i| {
                let mut v = vec![0.0f32; dim];
                v[i % dim] = 1.0;
                v[(i * 7) % dim] += 0.25;
                (i as u64 * 3, v)
            })
            .collect()
    }

    #[test]
    fn header_peek_matches_store_facts_across_backends() {
        let exec = Executor::global();
        for spec in IndexSpec::all_defaults() {
            let store = build_store_from_vectors(
                &spec,
                6,
                Metric::Cosine,
                Precision::F16,
                exec,
                &items(37, 6),
            );
            let header = peek_store_header(&store.to_bytes()).expect("header decodes");
            assert_eq!(header.backend, spec.label());
            assert_eq!(header.metric, store.metric(), "{}", spec.label());
            assert_eq!(header.dim, store.dim(), "{}", spec.label());
            assert_eq!(header.len, store.len(), "{}", spec.label());
        }
        assert!(peek_store_header(b"????rest").is_none());
        assert!(peek_store_header(b"FLAT").is_none(), "truncated header rejected");
        assert!(peek_store_header(b"").is_none());
    }

    #[test]
    fn lazy_store_defers_decoding_until_first_search() {
        let exec = Executor::global();
        for spec in IndexSpec::all_defaults() {
            let eager = build_store_from_vectors(
                &spec,
                8,
                Metric::Cosine,
                Precision::F16,
                exec,
                &items(50, 8),
            );
            let lazy = LazyStore::open(eager.to_bytes()).expect("opens");
            // Header facts answer without decoding row data.
            assert!(!lazy.is_decoded(), "{}: open must not decode rows", spec.label());
            assert_eq!(lazy.len(), eager.len());
            assert_eq!(lazy.dim(), eager.dim());
            assert_eq!(lazy.metric(), eager.metric());
            assert_eq!(lazy.to_bytes(), eager.to_bytes(), "undecoded bytes pass through");
            assert!(!lazy.is_decoded(), "header reads must not force a decode");
            // First search forces the decode and matches the eager store.
            let q = &items(1, 8)[0].1;
            assert_eq!(lazy.search(q, 5), eager.search(q, 5), "{}", spec.label());
            assert!(lazy.is_decoded());
            assert_eq!(lazy.payload_bytes(), eager.payload_bytes());
        }
    }

    #[test]
    fn lazy_batch_search_is_bit_identical() {
        let exec = Executor::global();
        let eager = build_store_from_vectors(
            &IndexSpec::Flat,
            8,
            Metric::Cosine,
            Precision::F16,
            exec,
            &items(64, 8),
        );
        let lazy = LazyStore::open(eager.to_bytes()).expect("opens");
        let queries: Vec<Vec<f32>> = items(9, 8).into_iter().map(|(_, v)| v).collect();
        assert_eq!(lazy.search_batch(exec, &queries, 4), eager.search_batch(exec, &queries, 4));
    }

    #[test]
    fn lazy_store_mutation_decodes_then_delegates() {
        let exec = Executor::global();
        let eager = build_store_from_vectors(
            &IndexSpec::Flat,
            4,
            Metric::Cosine,
            Precision::F32,
            exec,
            &items(10, 4),
        );
        let mut lazy = LazyStore::open(eager.to_bytes()).expect("opens");
        lazy.add(999, &[0.0, 0.0, 0.0, 1.0]);
        assert!(lazy.is_decoded());
        assert_eq!(lazy.len(), 11);
        let hits = lazy.search(&[0.0, 0.0, 0.0, 1.0], 1);
        assert_eq!(hits[0].id, 999);

        // Tombstone surface forwards to the decoded backend.
        assert_eq!(lazy.remove(&[999]), 1);
        assert_eq!(lazy.tombstones(), 1);
        assert_eq!(lazy.len(), 10);
        assert_ne!(lazy.search(&[0.0, 0.0, 0.0, 1.0], 1)[0].id, 999);
        lazy.compact(exec);
        assert_eq!(lazy.tombstones(), 0);

        // An undecoded store reports no tombstones and compacts for free.
        let mut cold = LazyStore::open(eager.to_bytes()).expect("opens");
        assert_eq!(cold.tombstones(), 0);
        cold.compact(exec);
        assert!(!cold.is_decoded(), "compacting an undecoded blob is a no-op");
    }

    #[test]
    #[should_panic(expected = "body is corrupt")]
    fn corrupt_body_panics_at_first_use_not_open() {
        let exec = Executor::global();
        let eager = build_store_from_vectors(
            &IndexSpec::Flat,
            4,
            Metric::Cosine,
            Precision::F32,
            exec,
            &items(10, 4),
        );
        let mut bytes = eager.to_bytes();
        let n = bytes.len();
        bytes.truncate(n - 2); // ids truncated: header intact, body corrupt
        let lazy = LazyStore::open(bytes).expect("header still validates");
        assert!(!lazy.is_decoded());
        lazy.search(&[1.0, 0.0, 0.0, 0.0], 1); // panics here
    }
}
