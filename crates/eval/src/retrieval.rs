//! Per-question retrieval with oracle relevance labels.

use std::collections::HashMap;

use mcqa_core::PipelineOutput;
use mcqa_embed::EmbeddingCache;
use mcqa_llm::{McqItem, Passage, PassageSource, TraceMode};
use mcqa_runtime::{run_stage_batched, StageMetrics};
use mcqa_serve::{PassageStore, QueryMode, QueryRequest, QueryService, ServeConfig};

/// A retrieval source key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Source {
    /// The chunk database.
    Chunks,
    /// A trace database.
    Traces(TraceMode),
}

impl Source {
    /// All four sources in canonical order.
    pub const ALL: [Source; 4] = [
        Source::Chunks,
        Source::Traces(TraceMode::Detailed),
        Source::Traces(TraceMode::Focused),
        Source::Traces(TraceMode::Efficient),
    ];

    /// Position in [`Source::ALL`] — the per-question array slot this
    /// source's passages live in. Constant-time (no linear scan).
    pub fn index(self) -> usize {
        match self {
            Source::Chunks => 0,
            Source::Traces(TraceMode::Detailed) => 1,
            Source::Traces(TraceMode::Focused) => 2,
            Source::Traces(TraceMode::Efficient) => 3,
        }
    }

    /// The pipeline registry name of this source's vector database.
    pub fn store_name(self) -> &'static str {
        match self {
            Source::Chunks => mcqa_core::CHUNKS_STORE,
            Source::Traces(mode) => mode.db_name(),
        }
    }

    /// The source's vector store out of a pipeline registry. Panics when
    /// the store is missing — on the evaluation path that is a wiring
    /// bug, never a condition to skip silently.
    pub fn store(self, indexes: &mcqa_index::IndexRegistry) -> &dyn mcqa_index::VectorStore {
        indexes.expect_store(self.store_name())
    }
}

/// The passage texts behind every source's doc ids — what the serving
/// layer's reranker reads when hybrid requests ask for rescoring. Chunk
/// passages key by chunk id; trace passages key by question id, matching
/// each store's id space.
pub fn passage_store(output: &PipelineOutput) -> PassageStore {
    let mut ps = PassageStore::new();
    for c in &output.chunks {
        ps.insert(mcqa_core::CHUNKS_STORE, c.chunk_id, &c.text);
    }
    for t in &output.traces {
        ps.insert(t.mode.db_name(), t.question_id, &t.trace);
    }
    ps
}

/// Precomputed retrieval results for a set of questions: for every
/// (question, source) the top-k passages with oracle relevance labels and
/// precomputed token counts (so window assembly is cheap per model).
pub struct RetrievalBundle {
    /// `passages[q][source-index]` = retrieved passages for question `q`.
    passages: Vec<[Vec<Passage>; 4]>,
}

impl RetrievalBundle {
    /// Run retrieval for `items` over the pipeline's stores, fanned out on
    /// the pipeline's own executor.
    ///
    /// Relevance labelling (ground truth, used by the simulator only):
    /// * a chunk passage supports the question's fact iff the chunk's
    ///   provenance fact list contains it;
    /// * a trace passage supports it iff the trace's source fact matches.
    pub fn build(output: &PipelineOutput, items: &[McqItem], k: usize) -> Self {
        Self::build_mode(output, items, k, QueryMode::Dense)
    }

    /// [`RetrievalBundle::build`] under an explicit retrieval mode
    /// (dense, lexical, or hybrid — every mode rides the same
    /// [`QueryService`] envelope).
    pub fn build_mode(
        output: &PipelineOutput,
        items: &[McqItem],
        k: usize,
        mode: QueryMode,
    ) -> Self {
        let cache = EmbeddingCache::new(&output.encoder);
        let rerank = matches!(mode, QueryMode::Hybrid { rerank: true, .. });
        let service = QueryService::start_full(
            output.indexes.clone(),
            None,
            rerank.then(|| passage_store(output)),
            rerank.then(|| {
                let endpoint: std::sync::Arc<dyn mcqa_llm::ModelEndpoint> = output.models.clone();
                mcqa_llm::Reranker::new(endpoint, output.config.seed)
            }),
            output.executor.clone(),
            ServeConfig::default(),
        );
        Self::build_metered(output, items, k, mode, &cache, &service).0
    }

    /// [`RetrievalBundle::build`], also returning the fan-out's runtime
    /// [`StageMetrics`] so the evaluator can fold retrieval into its stage
    /// report instead of re-timing the same work. Query encoding goes
    /// through `cache`, so a caller holding one cache across bundles (the
    /// evaluator does) never re-encodes a stem it has seen — and the
    /// cache's hit/miss counters become a report row. Searches go through
    /// `service` — the same admission-controlled, micro-batching front
    /// door online traffic uses — so there is exactly one code path into
    /// the vector stores.
    pub fn build_metered(
        output: &PipelineOutput,
        items: &[McqItem],
        k: usize,
        mode: QueryMode,
        cache: &EmbeddingCache<'_>,
        service: &QueryService,
    ) -> (Self, StageMetrics) {
        // chunk_id → position in output.chunks
        let chunk_pos: HashMap<u64, usize> =
            output.chunks.iter().enumerate().map(|(i, c)| (c.chunk_id, i)).collect();
        // question_id → fact, per-mode trace text
        let mut trace_text: HashMap<(u64, TraceMode), &str> = HashMap::new();
        let mut trace_fact: HashMap<u64, u64> = HashMap::new();
        for t in &output.traces {
            trace_text.insert((t.question_id, t.mode), t.trace.as_str());
            trace_fact.insert(t.question_id, t.fact_id);
        }
        // Fact → subject entity (traces about the same subject transfer:
        // a distilled rationale about TRK2's signalling helps answer other
        // TRK2 questions, which is the knowledge-transfer channel the
        // paper attributes reasoning-trace retrieval's exam gains to).
        let subject_of = |fact_id: u64| -> Option<u32> {
            output.ontology.fact(mcqa_ontology::FactId(fact_id)).map(|f| f.subject.0)
        };

        let retrieve_timer = mcqa_util::ScopeTimer::start("eval-retrieve");

        // Queries = the stems. Including the options would inject six
        // same-kind distractor names that pull retrieval toward unrelated
        // chunks (measured: −20 points of hit rate). Encoding goes through
        // the shared cache on the pool.
        let (encoded, _) = run_stage_batched(
            &output.executor,
            "eval-retrieve-encode",
            (0..items.len()).collect(),
            0,
            |qi| Ok::<_, String>(cache.encode(&items[qi].stem)),
        );
        let queries: Vec<Vec<f32>> =
            encoded.into_iter().map(|r| r.expect("encoding cannot fail")).collect();

        // One flow-controlled replay per source database through the query
        // service: requests ride the same bounded queue and micro-batching
        // dispatcher as online traffic, and the dispatcher's grouped
        // `search_batch` amortises decoded row panels across each batch.
        // Stems are submitted pre-encoded so the shared eval cache keeps
        // its hit accounting. A service-side failure here (an unregistered
        // store) is a wiring bug, not a skippable condition.
        let hits_per_source: [Vec<Vec<mcqa_index::SearchResult>>; 4] = Source::ALL.map(|source| {
            let reqs: Vec<QueryRequest> = queries
                .iter()
                .zip(items)
                .map(|(q, item)| match mode {
                    // The pre-PR-8 envelope, byte for byte.
                    QueryMode::Dense => QueryRequest::vector(source.store_name(), q.clone(), k),
                    // Lexical/hybrid requests also carry the stem text —
                    // the lexical channel scores words, not vectors.
                    _ => {
                        QueryRequest::text_and_vector(source.store_name(), &item.stem, q.clone(), k)
                            .with_mode(mode)
                    }
                })
                .collect();
            service
                .query_batch(reqs)
                .into_iter()
                .map(|r| match r {
                    Ok(resp) => resp.hits,
                    Err(e) => panic!("retrieval from '{}' failed: {e}", source.store_name()),
                })
                .collect()
        });

        // Attach texts and oracle relevance labels per question. A trace
        // supports the question when it reasons about the same fact, or
        // about another fact with the same subject entity (knowledge
        // transfer: a distilled rationale about TRK2's signalling helps
        // answer other TRK2 questions — the channel the paper attributes
        // reasoning-trace retrieval's exam gains to).
        let (labelled, _) = run_stage_batched(
            &output.executor,
            "eval-retrieve-label",
            (0..items.len()).collect(),
            0,
            |qi| {
                let item = &items[qi];
                let mut per_source: [Vec<Passage>; 4] =
                    [Vec::new(), Vec::new(), Vec::new(), Vec::new()];

                for hit in &hits_per_source[Source::Chunks.index()][qi] {
                    let Some(&pos) = chunk_pos.get(&hit.id) else { continue };
                    let chunk = &output.chunks[pos];
                    per_source[Source::Chunks.index()].push(Passage {
                        text: chunk.text.clone(),
                        source: PassageSource::Chunk,
                        supports: chunk.facts.contains(&item.fact).then_some(item.fact),
                        score: hit.score,
                    });
                }

                let item_subject = subject_of(item.fact.0);
                for mode in TraceMode::ALL {
                    let source = Source::Traces(mode);
                    for hit in &hits_per_source[source.index()][qi] {
                        let Some(text) = trace_text.get(&(hit.id, mode)) else { continue };
                        let supports = trace_fact
                            .get(&hit.id)
                            .filter(|f| {
                                **f == item.fact.0
                                    || (item_subject.is_some() && subject_of(**f) == item_subject)
                            })
                            .map(|_| item.fact);
                        per_source[source.index()].push(Passage {
                            text: (*text).to_string(),
                            source: PassageSource::Trace(mode),
                            supports,
                            score: hit.score,
                        });
                    }
                }
                Ok::<_, String>(per_source)
            },
        );
        let passages: Vec<[Vec<Passage>; 4]> =
            labelled.into_iter().map(|r| r.expect("labelling cannot fail")).collect();

        // One stage row spanning encode + search + label, so the report's
        // `eval-retrieve` line reports end-to-end questions/s (`items/s`)
        // and passages/s (`out/s`).
        let produced: usize = passages.iter().map(|p| p.iter().map(Vec::len).sum::<usize>()).sum();
        let metrics = StageMetrics::single(
            "eval-retrieve",
            items.len(),
            produced,
            retrieve_timer.elapsed_secs(),
        );

        (Self { passages }, metrics)
    }

    /// Retrieved passages for question index `q` from `source`.
    pub fn passages(&self, q: usize, source: Source) -> &[Passage] {
        &self.passages[q][source.index()]
    }

    /// Number of questions covered.
    pub fn len(&self) -> usize {
        self.passages.len()
    }

    /// True when no questions are covered.
    pub fn is_empty(&self) -> bool {
        self.passages.is_empty()
    }

    /// Raw retrieval hit rate (before truncation) for a source: the
    /// fraction of questions whose top-k contains a supporting passage.
    pub fn raw_hit_rate(&self, source: Source) -> f64 {
        if self.passages.is_empty() {
            return 0.0;
        }
        let si = source.index();
        let hits =
            self.passages.iter().filter(|p| p[si].iter().any(|x| x.supports.is_some())).count();
        hits as f64 / self.passages.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcqa_core::{Pipeline, PipelineConfig, PipelineOutput};

    fn output() -> &'static PipelineOutput {
        static OUT: std::sync::OnceLock<PipelineOutput> = std::sync::OnceLock::new();
        OUT.get_or_init(|| Pipeline::run(&PipelineConfig::tiny(42)))
    }

    #[test]
    fn bundle_covers_all_items_with_k_passages() {
        let out = output();
        let bundle = RetrievalBundle::build(out, &out.items, 5);
        assert_eq!(bundle.len(), out.items.len());
        for q in 0..bundle.len().min(50) {
            for s in Source::ALL {
                let ps = bundle.passages(q, s);
                assert!(ps.len() <= 5);
                assert!(!ps.is_empty(), "q{q} {s:?} returned nothing");
            }
        }
    }

    #[test]
    fn trace_retrieval_hits_own_question() {
        // A synthetic question's own trace is in the DB and shares its
        // vocabulary: hit rates must be near-perfect.
        let out = output();
        let bundle = RetrievalBundle::build(out, &out.items, 5);
        for mode in TraceMode::ALL {
            let r = bundle.raw_hit_rate(Source::Traces(mode));
            assert!(r > 0.9, "{mode:?} raw hit rate {r:.3}");
        }
    }

    #[test]
    fn chunk_retrieval_hits_most_questions() {
        let out = output();
        let bundle = RetrievalBundle::build(out, &out.items, 5);
        let r = bundle.raw_hit_rate(Source::Chunks);
        assert!(r > 0.5, "chunk raw hit rate {r:.3}");
        assert!(r < 1.0, "chunk retrieval should not be perfect");
    }

    #[test]
    fn relevance_labels_match_oracle() {
        let out = output();
        let bundle = RetrievalBundle::build(out, &out.items, 5);
        let chunk_by_id: HashMap<u64, &mcqa_core::ChunkRecord> =
            out.chunks.iter().map(|c| (c.chunk_id, c)).collect();
        for (q, item) in out.items.iter().enumerate().take(40) {
            for p in bundle.passages(q, Source::Chunks) {
                if let Some(f) = p.supports {
                    assert_eq!(f, item.fact);
                    // Find the chunk by text and confirm the oracle.
                    let supporting = chunk_by_id
                        .values()
                        .any(|c| c.text == p.text && c.facts.contains(&item.fact));
                    assert!(supporting, "labelled passage lacks oracle support");
                }
            }
        }
    }

    #[test]
    fn shared_cache_skips_reencoding_across_bundles() {
        let out = output();
        let cache = EmbeddingCache::new(&out.encoder);
        let service = QueryService::start(
            out.indexes.clone(),
            None,
            out.executor.clone(),
            ServeConfig::default(),
        );
        let (b1, _) =
            RetrievalBundle::build_metered(out, &out.items, 5, QueryMode::Dense, &cache, &service);
        let (_, misses_after_first) = cache.stats();
        let (b2, _) =
            RetrievalBundle::build_metered(out, &out.items, 5, QueryMode::Dense, &cache, &service);
        let (hits, misses) = cache.stats();
        assert_eq!(misses, misses_after_first, "second identical bundle encodes nothing new");
        assert!(hits >= out.items.len() as u64, "every repeat query is a hit");
        assert_eq!(b1.len(), b2.len());
        // Both bundles' searches rode the service: everything submitted was
        // admitted (flow control) and answered.
        let snap = service.shutdown();
        let expected = 2 * 4 * out.items.len() as u64;
        assert_eq!(snap.admitted, expected);
        assert_eq!(snap.served_ok, expected);
    }

    #[test]
    fn service_retrieval_is_bit_identical_to_direct_search() {
        // The reroute through the serving layer must not change a single
        // hit: compare served results against direct store searches for
        // every (question, source) pair.
        let out = output();
        let cache = EmbeddingCache::new(&out.encoder);
        let service = QueryService::start(
            out.indexes.clone(),
            None,
            out.executor.clone(),
            ServeConfig::default(),
        );
        let k = 5;
        for source in Source::ALL {
            let reqs: Vec<mcqa_serve::QueryRequest> = out
                .items
                .iter()
                .map(|i| {
                    mcqa_serve::QueryRequest::vector(source.store_name(), cache.encode(&i.stem), k)
                })
                .collect();
            let served = service.query_batch(reqs);
            let store = source.store(&out.indexes);
            for (item, res) in out.items.iter().zip(served) {
                let direct = store.search(&cache.encode(&item.stem), k);
                assert_eq!(res.expect("served").hits, direct, "{source:?}");
            }
        }
    }

    #[test]
    fn lexical_and_hybrid_bundles_cover_all_items() {
        let out = output();
        let k = 5;
        let dense = RetrievalBundle::build(out, &out.items, k);
        let lexical = RetrievalBundle::build_mode(out, &out.items, k, QueryMode::Lexical);
        let hybrid = RetrievalBundle::build_mode(
            out,
            &out.items,
            k,
            QueryMode::Hybrid { fusion: Default::default(), rerank: false, depth: 0 },
        );
        assert_eq!(lexical.len(), out.items.len());
        assert_eq!(hybrid.len(), out.items.len());
        // A question's own trace shares its vocabulary: the lexical
        // channel must find it nearly always, and fusing both channels
        // must not give up what either finds alone.
        for mode in TraceMode::ALL {
            let s = Source::Traces(mode);
            assert!(lexical.raw_hit_rate(s) > 0.8, "{mode:?} lexical {}", lexical.raw_hit_rate(s));
            assert!(
                hybrid.raw_hit_rate(s) + 0.05 >= dense.raw_hit_rate(s),
                "{mode:?} hybrid {} vs dense {}",
                hybrid.raw_hit_rate(s),
                dense.raw_hit_rate(s)
            );
        }
    }

    #[test]
    fn rerank_bundles_bill_the_reranker_role() {
        let out = output();
        let before = out.models.ledger().role(mcqa_llm::Role::Reranker).calls;
        let bundle = RetrievalBundle::build_mode(
            out,
            &out.items[..20.min(out.items.len())],
            5,
            QueryMode::Hybrid { fusion: Default::default(), rerank: true, depth: 0 },
        );
        assert_eq!(bundle.len(), 20.min(out.items.len()));
        let after = out.models.ledger().role(mcqa_llm::Role::Reranker).calls;
        assert!(after > before, "rerank retrieval must land on the shared ledger");
    }

    #[test]
    fn empty_items() {
        let out = output();
        let bundle = RetrievalBundle::build(out, &[], 5);
        assert!(bundle.is_empty());
        assert_eq!(bundle.raw_hit_rate(Source::Chunks), 0.0);
    }

    #[test]
    fn source_index_matches_canonical_order() {
        for (i, s) in Source::ALL.iter().enumerate() {
            assert_eq!(s.index(), i, "{s:?}");
        }
        assert_eq!(Source::Chunks.store_name(), "chunks");
        assert_eq!(Source::Traces(TraceMode::Focused).store_name(), "traces-focused");
    }

    #[test]
    #[should_panic(expected = "not registered")]
    fn missing_store_is_a_loud_error() {
        // `Source::store` must never silently skip an absent database.
        let empty = mcqa_index::IndexRegistry::new();
        Source::Chunks.store(&empty);
    }
}
