//! `mcqa-eval` — the paper's evaluation protocol (§2.2, §3).
//!
//! Eight SLMs are tested under three conditions — baseline, RAG from paper
//! chunks, RAG from reasoning traces (three modes) — on two benchmarks:
//! the pipeline's synthetic MCQs and a synthetic stand-in for the 2023
//! ASTRO Radiation and Cancer Biology exam.
//!
//! * [`retrieval`] — per-question retrieval over the pipeline's vector
//!   stores, with ground-truth relevance labels from the provenance
//!   oracle.
//! * [`astro`] — the exam generator: 337 questions (2 multimodal excluded,
//!   146 mathematical), written in exam register from the same ontology.
//! * [`protocol`] — the evaluator: measures usable-hit rates per model
//!   (including real context-window truncation), calibrates the model
//!   cards against them, runs all model × condition × question answers in
//!   parallel, and grades them with the LLM judge.
//! * [`results`] — Tables 2/3/4 and Figures 4/5/6, rendered in the
//!   paper's layout with paper-vs-measured deltas.

pub mod astro;
pub mod protocol;
pub mod results;
pub mod retrieval;

pub use astro::{AstroConfig, AstroExam};
pub use protocol::{EvalConfig, EvalRun, Evaluator, ModelEval};
pub use results::{render_fig, render_table2, render_table3, render_table4, FigureSeries};
pub use retrieval::{passage_store, RetrievalBundle, Source};
