//! Rendering the paper's tables and figures from an [`EvalRun`].
//!
//! Every renderer prints the *measured* values in the paper's layout plus
//! a paper-target column block and the per-cell delta, so EXPERIMENTS.md
//! can quote the output directly.

use mcqa_llm::answer::Condition;
use mcqa_llm::{TraceMode, GPT4_ASTRO_REFERENCE, MODEL_CARDS};
use mcqa_util::stats::relative_improvement_pct;
use serde::Serialize;

use crate::protocol::{EvalRun, ModelEval};

fn paper_card(name: &str) -> &'static mcqa_llm::ModelCard {
    MODEL_CARDS.iter().find(|c| c.name == name).expect("card exists")
}

/// Table 2: synthetic benchmark, five conditions per model.
pub fn render_table2(run: &EvalRun) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Table 2 — synthetic benchmark ({} questions), measured | paper | Δ\n",
        run.synth_questions
    ));
    out.push_str(&format!(
        "{:<26} {:>21} {:>21} {:>21} {:>21} {:>21}\n",
        "Model", "Baseline", "RAG-Chunks", "RAG-RT-Detail", "RAG-RT-Focused", "RAG-RT-Efficient"
    ));
    out.push_str(&"-".repeat(136));
    out.push('\n');
    let mut max_delta = 0.0f64;
    for m in &run.models {
        let t = &paper_card(&m.name).targets;
        let cells = [
            (m.synth_accuracy(Condition::Baseline), t.synth_baseline),
            (m.synth_accuracy(Condition::RagChunks), t.synth_chunks),
            (m.synth_accuracy(Condition::RagTraces(TraceMode::Detailed)), t.synth_rt[0]),
            (m.synth_accuracy(Condition::RagTraces(TraceMode::Focused)), t.synth_rt[1]),
            (m.synth_accuracy(Condition::RagTraces(TraceMode::Efficient)), t.synth_rt[2]),
        ];
        out.push_str(&format!("{:<26}", m.name));
        for (measured, paper) in cells {
            let delta = measured - paper;
            max_delta = max_delta.max(delta.abs());
            out.push_str(&format!(" {:>6.3}|{:>5.3}|{:>+6.3}", measured, paper, delta));
        }
        out.push('\n');
    }
    out.push_str(&format!("max |Δ| = {max_delta:.3}\n"));
    out
}

/// Tables 3/4 share a layout: baseline / chunks / best-RT.
fn render_astro_table(
    run: &EvalRun,
    title: &str,
    n: usize,
    get: impl Fn(&ModelEval) -> (f64, f64, f64),
    paper: impl Fn(&mcqa_llm::BenchTargets) -> (f64, f64, f64),
) -> String {
    let mut out = String::new();
    out.push_str(&format!("{title} ({n} questions), measured | paper | Δ\n"));
    out.push_str(&format!(
        "{:<26} {:>21} {:>21} {:>21}\n",
        "Model", "Baseline", "RAG-Chunks", "RAG-RTs (best)"
    ));
    out.push_str(&"-".repeat(94));
    out.push('\n');
    let mut max_delta = 0.0f64;
    for m in &run.models {
        let t = &paper_card(&m.name).targets;
        let (mb, mc, mr) = get(m);
        let (pb, pc, pr) = paper(t);
        out.push_str(&format!("{:<26}", m.name));
        for (measured, paper) in [(mb, pb), (mc, pc), (mr, pr)] {
            let delta = measured - paper;
            max_delta = max_delta.max(delta.abs());
            out.push_str(&format!(" {:>6.3}|{:>5.3}|{:>+6.3}", measured, paper, delta));
        }
        out.push('\n');
    }
    out.push_str(&format!(
        "GPT-4 reference (Astro, Beattie et al. [5]): {GPT4_ASTRO_REFERENCE:.3}; \
         models above it with best-RT: {}\n",
        run.models
            .iter()
            .filter(|m| get(m).2 > GPT4_ASTRO_REFERENCE)
            .map(|m| m.name.as_str())
            .collect::<Vec<_>>()
            .join(", ")
    ));
    out.push_str(&format!("max |Δ| = {max_delta:.3}\n"));
    out
}

/// Table 3: Astro exam, all questions.
pub fn render_table3(run: &EvalRun) -> String {
    render_astro_table(
        run,
        "Table 3 — Astro exam (all questions)",
        run.astro_questions,
        |m| {
            (
                m.astro_all_accuracy(Condition::Baseline),
                m.astro_all_accuracy(Condition::RagChunks),
                m.astro_best_rt().0,
            )
        },
        |t| (t.astro_all_baseline, t.astro_all_chunks, t.astro_all_rt_best),
    )
}

/// Table 4: Astro exam, no-math subset.
pub fn render_table4(run: &EvalRun) -> String {
    render_astro_table(
        run,
        "Table 4 — Astro exam (no-math subset)",
        run.astro_nomath_questions,
        |m| {
            (
                m.astro_nomath_accuracy(Condition::Baseline),
                m.astro_nomath_accuracy(Condition::RagChunks),
                m.astro_best_rt().1,
            )
        },
        |t| (t.astro_nomath_baseline, t.astro_nomath_chunks, t.astro_nomath_rt_best),
    )
}

/// Which figure to render (the paper's improvement bar charts).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FigureSeries {
    /// Figure 4: synthetic benchmark.
    Fig4Synthetic,
    /// Figure 5: Astro, all questions.
    Fig5AstroAll,
    /// Figure 6: Astro, no-math subset.
    Fig6AstroNoMath,
}

/// One model's bar pair in an improvement figure.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ImprovementPoint {
    /// Model name.
    pub model: String,
    /// % improvement of best-RT over baseline.
    pub rt_vs_baseline_pct: f64,
    /// % improvement of best-RT over RAG-chunks.
    pub rt_vs_chunks_pct: f64,
}

/// Compute the improvement series for one figure.
pub fn figure_series(run: &EvalRun, fig: FigureSeries) -> Vec<ImprovementPoint> {
    run.models
        .iter()
        .map(|m| {
            let (base, chunks, rt) = match fig {
                FigureSeries::Fig4Synthetic => (
                    m.synth_accuracy(Condition::Baseline),
                    m.synth_accuracy(Condition::RagChunks),
                    m.synth_best_rt(),
                ),
                FigureSeries::Fig5AstroAll => (
                    m.astro_all_accuracy(Condition::Baseline),
                    m.astro_all_accuracy(Condition::RagChunks),
                    m.astro_best_rt().0,
                ),
                FigureSeries::Fig6AstroNoMath => (
                    m.astro_nomath_accuracy(Condition::Baseline),
                    m.astro_nomath_accuracy(Condition::RagChunks),
                    m.astro_best_rt().1,
                ),
            };
            ImprovementPoint {
                model: m.name.clone(),
                rt_vs_baseline_pct: relative_improvement_pct(base, rt).unwrap_or(0.0),
                rt_vs_chunks_pct: relative_improvement_pct(chunks, rt).unwrap_or(0.0),
            }
        })
        .collect()
}

/// Render an improvement figure as a text bar chart.
pub fn render_fig(run: &EvalRun, fig: FigureSeries) -> String {
    let title = match fig {
        FigureSeries::Fig4Synthetic => "Figure 4 — % accuracy improvement (synthetic benchmark)",
        FigureSeries::Fig5AstroAll => "Figure 5 — % accuracy improvement (Astro, all questions)",
        FigureSeries::Fig6AstroNoMath => "Figure 6 — % accuracy improvement (Astro, no-math)",
    };
    let series = figure_series(run, fig);
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    out.push_str(&format!(
        "{:<26} {:>14} {:>14}  (bars: ▇ = 10%)\n",
        "Model", "RT vs base", "RT vs chunks"
    ));
    out.push_str(&"-".repeat(90));
    out.push('\n');
    for p in &series {
        let bar = |pct: f64| -> String {
            let blocks = (pct.abs() / 10.0).round() as usize;
            let glyph = if pct >= 0.0 { "▇" } else { "▼" };
            glyph.repeat(blocks.min(40))
        };
        out.push_str(&format!(
            "{:<26} {:>+13.1}% {:>+13.1}%  {} | {}\n",
            p.model,
            p.rt_vs_baseline_pct,
            p.rt_vs_chunks_pct,
            bar(p.rt_vs_baseline_pct),
            bar(p.rt_vs_chunks_pct),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcqa_util::Accuracy;

    /// A hand-built run (no pipeline) for fast renderer tests.
    fn fake_run() -> EvalRun {
        let mk_acc = |p: f64, n: u64| Accuracy { correct: (p * n as f64).round() as u64, total: n };
        let conds = Condition::all();
        let models = MODEL_CARDS
            .iter()
            .map(|c| {
                let t = &c.targets;
                let synth_vals =
                    [t.synth_baseline, t.synth_chunks, t.synth_rt[0], t.synth_rt[1], t.synth_rt[2]];
                let astro_vals = [
                    t.astro_all_baseline,
                    t.astro_all_chunks,
                    t.astro_all_rt_best,
                    t.astro_all_rt_best,
                    t.astro_all_rt_best,
                ];
                let nomath_vals = [
                    t.astro_nomath_baseline,
                    t.astro_nomath_chunks,
                    t.astro_nomath_rt_best,
                    t.astro_nomath_rt_best,
                    t.astro_nomath_rt_best,
                ];
                ModelEval {
                    name: c.name.to_string(),
                    rates: mcqa_llm::PipelineRates::nominal(),
                    calibration: mcqa_llm::resolve(c, &mcqa_llm::PipelineRates::nominal()),
                    synth: conds
                        .iter()
                        .zip(synth_vals)
                        .map(|(c, v)| (*c, mk_acc(v, 1000)))
                        .collect(),
                    astro_all: conds
                        .iter()
                        .zip(astro_vals)
                        .map(|(c, v)| (*c, mk_acc(v, 335)))
                        .collect(),
                    astro_nomath: conds
                        .iter()
                        .zip(nomath_vals)
                        .map(|(c, v)| (*c, mk_acc(v, 189)))
                        .collect(),
                }
            })
            .collect();
        EvalRun {
            models,
            synth_questions: 1000,
            astro_questions: 335,
            astro_nomath_questions: 189,
            report: mcqa_runtime::RunReport::new(),
        }
    }

    #[test]
    fn table2_lists_models_and_small_deltas() {
        let run = fake_run();
        let t = render_table2(&run);
        for c in &MODEL_CARDS {
            assert!(t.contains(c.name), "{t}");
        }
        // The fake run IS the paper: deltas must be rounding-only.
        assert!(t.contains("max |Δ| = 0.00"), "{t}");
    }

    #[test]
    fn table3_reports_gpt4_reference() {
        let run = fake_run();
        let t = render_table3(&run);
        assert!(t.contains("GPT-4 reference"));
        // Paper: SmolLM3 (0.772) and Llama-3.1 (0.686) clear the 0.60 line.
        assert!(t.contains("SmolLM3-3B"));
    }

    #[test]
    fn table4_uses_nomath_counts() {
        let run = fake_run();
        let t = render_table4(&run);
        assert!(t.contains("(189 questions)"), "{t}");
    }

    #[test]
    fn figure_series_match_paper_directions() {
        let run = fake_run();
        let fig4 = figure_series(&run, FigureSeries::Fig4Synthetic);
        for p in &fig4 {
            assert!(p.rt_vs_baseline_pct > 0.0, "{p:?}");
            assert!(p.rt_vs_chunks_pct > 0.0, "{p:?}");
        }
        // TinyLlama's relative gain dwarfs Llama-3.1's (paper: ~4× vs ~12%).
        let tiny = fig4.iter().find(|p| p.model.contains("TinyLlama")).unwrap();
        let llama = fig4.iter().find(|p| p.model.contains("3.1")).unwrap();
        assert!(tiny.rt_vs_baseline_pct > 200.0, "{tiny:?}");
        assert!(llama.rt_vs_baseline_pct < 20.0, "{llama:?}");

        // Figure 5: chunk-RAG beats RT for Llama-3 on Astro-all (negative bar).
        let fig5 = figure_series(&run, FigureSeries::Fig5AstroAll);
        let llama3 = fig5.iter().find(|p| p.model == "Llama-3-8B-Instruct").unwrap();
        assert!(llama3.rt_vs_baseline_pct < 0.0, "{llama3:?}");

        // Figure 6: all positive vs baseline.
        let fig6 = figure_series(&run, FigureSeries::Fig6AstroNoMath);
        for p in &fig6 {
            assert!(p.rt_vs_baseline_pct > 0.0, "{p:?}");
        }
    }

    #[test]
    fn figures_render_with_bars() {
        let run = fake_run();
        for fig in
            [FigureSeries::Fig4Synthetic, FigureSeries::Fig5AstroAll, FigureSeries::Fig6AstroNoMath]
        {
            let text = render_fig(&run, fig);
            assert!(text.contains("Figure"));
            assert!(text.contains('%'));
            assert!(text.lines().count() >= 11, "{text}");
        }
    }
}
