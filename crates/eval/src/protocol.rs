//! The evaluator: rate measurement → card calibration → parallel
//! answering → judge grading.

use mcqa_core::PipelineOutput;
use mcqa_llm::answer::Condition;
use mcqa_llm::{
    resolve, AssembledContext, JudgeModel, McqItem, ModelCard, PipelineRates, ResolvedModel,
    TraceMode, MODEL_CARDS,
};
use mcqa_util::Accuracy;
use rayon::prelude::*;
use serde::Serialize;

use crate::astro::{AstroConfig, AstroExam};
use crate::retrieval::{RetrievalBundle, Source};

/// Evaluation configuration.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct EvalConfig {
    /// Seed for the answer cascade.
    pub seed: u64,
    /// Retrieval depth (passages per query; the pipeline's `retrieval_k`).
    pub retrieval_k: usize,
    /// Astro exam settings.
    pub astro: AstroConfig,
}

impl Default for EvalConfig {
    fn default() -> Self {
        Self { seed: 42, retrieval_k: 8, astro: AstroConfig::default() }
    }
}

/// Results for one model.
#[derive(Debug, Clone, Serialize)]
pub struct ModelEval {
    /// Model name (Table 1).
    pub name: String,
    /// Measured usable-hit rates for this model's context window.
    pub rates: PipelineRates,
    /// The calibration the solver produced.
    pub calibration: mcqa_llm::solver::Calibration,
    /// Synthetic benchmark accuracy per condition (paper Table 2).
    pub synth: Vec<(Condition, Accuracy)>,
    /// Astro (all questions) accuracy per condition (Table 3).
    pub astro_all: Vec<(Condition, Accuracy)>,
    /// Astro no-math accuracy per condition (Table 4).
    pub astro_nomath: Vec<(Condition, Accuracy)>,
}

impl ModelEval {
    fn lookup(rows: &[(Condition, Accuracy)], cond: Condition) -> f64 {
        rows.iter().find(|(c, _)| *c == cond).map(|(_, a)| a.value()).unwrap_or(0.0)
    }

    /// Accuracy on the synthetic benchmark under `cond`.
    pub fn synth_accuracy(&self, cond: Condition) -> f64 {
        Self::lookup(&self.synth, cond)
    }

    /// Accuracy on the full Astro set under `cond`.
    pub fn astro_all_accuracy(&self, cond: Condition) -> f64 {
        Self::lookup(&self.astro_all, cond)
    }

    /// Accuracy on the Astro no-math subset under `cond`.
    pub fn astro_nomath_accuracy(&self, cond: Condition) -> f64 {
        Self::lookup(&self.astro_nomath, cond)
    }

    /// Best reasoning-trace accuracy on (all, no-math) Astro sets.
    pub fn astro_best_rt(&self) -> (f64, f64) {
        let best = |rows: &[(Condition, Accuracy)]| {
            rows.iter()
                .filter(|(c, _)| matches!(c, Condition::RagTraces(_)))
                .map(|(_, a)| a.value())
                .fold(0.0, f64::max)
        };
        (best(&self.astro_all), best(&self.astro_nomath))
    }

    /// Best reasoning-trace accuracy on the synthetic benchmark.
    pub fn synth_best_rt(&self) -> f64 {
        self.synth
            .iter()
            .filter(|(c, _)| matches!(c, Condition::RagTraces(_)))
            .map(|(_, a)| a.value())
            .fold(0.0, f64::max)
    }
}

/// A complete evaluation run.
#[derive(Debug, Clone, Serialize)]
pub struct EvalRun {
    /// Per-model results, in card order.
    pub models: Vec<ModelEval>,
    /// Synthetic benchmark size.
    pub synth_questions: usize,
    /// Astro evaluated size (paper: 335).
    pub astro_questions: usize,
    /// Astro no-math subset size (paper: 189).
    pub astro_nomath_questions: usize,
}

/// The evaluator.
pub struct Evaluator<'a> {
    output: &'a PipelineOutput,
    config: EvalConfig,
    exam: AstroExam,
    synth_bundle: RetrievalBundle,
    astro_bundle: RetrievalBundle,
    judge: JudgeModel,
}

impl<'a> Evaluator<'a> {
    /// Prepare retrieval for both benchmarks.
    pub fn new(output: &'a PipelineOutput, config: EvalConfig) -> Self {
        let exam = AstroExam::generate(&output.ontology, &config.astro);
        let synth_bundle = RetrievalBundle::build(output, &output.items, config.retrieval_k);
        let astro_bundle = RetrievalBundle::build(output, &exam.items, config.retrieval_k);
        let judge = JudgeModel::new(config.seed);
        Self { output, config, exam, synth_bundle, astro_bundle, judge }
    }

    /// The generated exam.
    pub fn exam(&self) -> &AstroExam {
        &self.exam
    }

    /// The synthetic-benchmark retrieval bundle.
    pub fn synth_bundle(&self) -> &RetrievalBundle {
        &self.synth_bundle
    }

    /// Assemble contexts for every (item, source) under one window size.
    fn assemble_all(
        items: &[McqItem],
        bundle: &RetrievalBundle,
        window: usize,
    ) -> Vec<[AssembledContext; 4]> {
        items
            .par_iter()
            .enumerate()
            .map(|(qi, item)| {
                let mk =
                    |s: Source| mcqa_llm::context::assemble(item, bundle.passages(qi, s), window);
                [
                    mk(Source::Chunks),
                    mk(Source::Traces(TraceMode::Detailed)),
                    mk(Source::Traces(TraceMode::Focused)),
                    mk(Source::Traces(TraceMode::Efficient)),
                ]
            })
            .collect()
    }

    /// Usable-hit rates over a set of assembled contexts (optionally
    /// restricted by a mask).
    fn hit_rates(contexts: &[[AssembledContext; 4]], mask: Option<&[bool]>) -> [f64; 4] {
        let mut counts = [0usize; 4];
        let mut total = 0usize;
        for (i, cs) in contexts.iter().enumerate() {
            if let Some(m) = mask {
                if !m[i] {
                    continue;
                }
            }
            total += 1;
            for (s, c) in cs.iter().enumerate() {
                if c.relevant_in_window {
                    counts[s] += 1;
                }
            }
        }
        if total == 0 {
            return [0.0; 4];
        }
        [
            counts[0] as f64 / total as f64,
            counts[1] as f64 / total as f64,
            counts[2] as f64 / total as f64,
            counts[3] as f64 / total as f64,
        ]
    }

    /// Evaluate one model card.
    pub fn evaluate_card(&self, card: &ModelCard) -> ModelEval {
        let window = card.context_window;
        let synth_ctx = Self::assemble_all(&self.output.items, &self.synth_bundle, window);
        let astro_ctx = Self::assemble_all(&self.exam.items, &self.astro_bundle, window);

        // Measured usable-hit rates (the solver's h values).
        let synth_rates = Self::hit_rates(&synth_ctx, None);
        let nomath_mask: Vec<bool> = self.exam.items.iter().map(|i| !i.is_math).collect();
        let astro_rates = Self::hit_rates(&astro_ctx, Some(&nomath_mask));
        let rates = PipelineRates {
            synth_chunk: synth_rates[0],
            synth_trace: [synth_rates[1], synth_rates[2], synth_rates[3]],
            astro_chunk: astro_rates[0],
            astro_trace: [astro_rates[1], astro_rates[2], astro_rates[3]],
        };

        let calibration = resolve(card, &rates);
        let model = ResolvedModel { card: card.clone(), cal: calibration.clone() };

        let conditions = Condition::all();
        let seed = self.config.seed;

        let run_bench = |items: &[McqItem],
                         contexts: &[[AssembledContext; 4]],
                         mask: Option<&[bool]>|
         -> Vec<(Condition, Accuracy)> {
            conditions
                .iter()
                .map(|cond| {
                    let acc = items
                        .par_iter()
                        .enumerate()
                        .filter(|(i, _)| mask.map(|m| m[*i]).unwrap_or(true))
                        .map(|(i, item)| {
                            let ctx = match cond {
                                Condition::Baseline => None,
                                Condition::RagChunks => Some(&contexts[i][0]),
                                Condition::RagTraces(m) => {
                                    let mi =
                                        TraceMode::ALL.iter().position(|x| x == m).expect("mode");
                                    Some(&contexts[i][1 + mi])
                                }
                            };
                            let out = model.answer(item, *cond, ctx, seed);
                            let grade =
                                self.judge.grade(&out.text, item.correct, item.options.len());
                            let mut a = Accuracy::new();
                            a.record(grade.correct);
                            a
                        })
                        .reduce(Accuracy::new, |mut a, b| {
                            a.merge(&b);
                            a
                        });
                    (*cond, acc)
                })
                .collect()
        };

        let synth = run_bench(&self.output.items, &synth_ctx, None);
        let astro_all = run_bench(&self.exam.items, &astro_ctx, None);
        let astro_nomath = run_bench(&self.exam.items, &astro_ctx, Some(&nomath_mask));

        ModelEval {
            name: card.name.to_string(),
            rates,
            calibration,
            synth,
            astro_all,
            astro_nomath,
        }
    }

    /// Evaluate the paper's full model roster.
    pub fn run(&self) -> EvalRun {
        self.run_cards(&MODEL_CARDS)
    }

    /// Evaluate a custom card list.
    pub fn run_cards(&self, cards: &[ModelCard]) -> EvalRun {
        let models = cards.iter().map(|c| self.evaluate_card(c)).collect();
        EvalRun {
            models,
            synth_questions: self.output.items.len(),
            astro_questions: self.exam.items.len(),
            astro_nomath_questions: self.exam.no_math_items().len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcqa_core::{Pipeline, PipelineConfig};

    fn eval_run() -> &'static (EvalRun, usize) {
        static OUT: std::sync::OnceLock<(EvalRun, usize)> = std::sync::OnceLock::new();
        OUT.get_or_init(|| {
            let output = Pipeline::run(&PipelineConfig::tiny(42));
            let evaluator = Evaluator::new(&output, EvalConfig::default());
            let run = evaluator.run_cards(&MODEL_CARDS);
            (run, output.items.len())
        })
    }

    #[test]
    fn run_covers_all_models_and_conditions() {
        let (run, n_items) = eval_run();
        assert_eq!(run.models.len(), 8);
        assert_eq!(run.synth_questions, *n_items);
        assert_eq!(run.astro_questions, 335);
        for m in &run.models {
            assert_eq!(m.synth.len(), 5);
            assert_eq!(m.astro_all.len(), 5);
            for (_, acc) in &m.synth {
                assert_eq!(acc.total as usize, run.synth_questions);
            }
            for (_, acc) in &m.astro_all {
                assert_eq!(acc.total as usize, 335);
            }
            for (_, acc) in &m.astro_nomath {
                assert_eq!(acc.total as usize, run.astro_nomath_questions);
            }
        }
    }

    #[test]
    fn synthetic_shape_rt_over_chunks_over_baseline() {
        // The paper's headline result must *emerge* from the run.
        let (run, _) = eval_run();
        for m in &run.models {
            let base = m.synth_accuracy(Condition::Baseline);
            let chunks = m.synth_accuracy(Condition::RagChunks);
            let rt = m.synth_best_rt();
            assert!(chunks > base - 0.03, "{}: chunks {chunks:.3} vs baseline {base:.3}", m.name);
            assert!(rt > chunks - 0.03, "{}: rt {rt:.3} vs chunks {chunks:.3}", m.name);
            assert!(rt > base, "{}: rt {rt:.3} vs baseline {base:.3}", m.name);
        }
    }

    #[test]
    fn synthetic_accuracies_near_paper_targets() {
        let (run, _) = eval_run();
        for m in &run.models {
            let card = MODEL_CARDS.iter().find(|c| c.name == m.name).unwrap();
            let base = m.synth_accuracy(Condition::Baseline);
            assert!(
                (base - card.targets.synth_baseline).abs() < 0.05,
                "{}: baseline {base:.3} vs paper {:.3}",
                m.name,
                card.targets.synth_baseline
            );
            let chunks = m.synth_accuracy(Condition::RagChunks);
            // The tiny fixture's chunk-hit rate sits below the solvable
            // range for the strongest chunk targets, so residuals up to
            // ~0.08 are expected here (the scale-0.1 repro run lands within
            // 0.022 — see EXPERIMENTS.md).
            assert!(
                (chunks - card.targets.synth_chunks).abs() < 0.09,
                "{}: chunks {chunks:.3} vs paper {:.3}",
                m.name,
                card.targets.synth_chunks
            );
        }
    }

    #[test]
    fn small_models_gain_most_from_traces() {
        let (run, _) = eval_run();
        let gain = |name: &str| {
            let m = run.models.iter().find(|m| m.name == name).unwrap();
            let b = m.synth_accuracy(Condition::Baseline);
            (m.synth_best_rt() - b) / b.max(1e-9)
        };
        let tiny = gain("TinyLlama-1.1B-Chat");
        let llama31 = gain("Llama-3.1-8B-Instruct");
        assert!(
            tiny > llama31 * 2.0,
            "relative gains must anticorrelate with size: tiny {tiny:.2} vs llama3.1 {llama31:.2}"
        );
    }

    #[test]
    fn rates_truncation_effect_visible() {
        // A 2k-window model must lose more chunk hits to truncation than a
        // 128k-window model on the same retrievals.
        let (run, _) = eval_run();
        let olmo = run.models.iter().find(|m| m.name == "OLMo-7B").unwrap();
        let gemma = run.models.iter().find(|m| m.name == "Gemma 3 4B-IT").unwrap();
        assert!(
            olmo.rates.synth_chunk <= gemma.rates.synth_chunk + 1e-9,
            "olmo chunk hit {} vs gemma {}",
            olmo.rates.synth_chunk,
            gemma.rates.synth_chunk
        );
    }
}
