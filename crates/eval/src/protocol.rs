//! The evaluator: rate measurement → card calibration → parallel
//! answering → judge grading.

use std::sync::{Arc, Mutex};

use mcqa_core::PipelineOutput;
use mcqa_embed::EmbeddingCache;
use mcqa_llm::answer::Condition;
use mcqa_llm::{
    resolve, Answerer, AssembledContext, Classifier, Judge, McqItem, ModelCard, ModelEndpoint,
    PipelineRates, TraceMode, MODEL_CARDS,
};
use mcqa_runtime::{run_stage_batched, Executor, RunReport, StageMetrics};
use mcqa_serve::{QueryMode, QueryService, ServeConfig};
use mcqa_util::Accuracy;
use serde::Serialize;

use crate::astro::{AstroConfig, AstroExam};
use crate::retrieval::{RetrievalBundle, Source};

/// Evaluation configuration.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct EvalConfig {
    /// Seed for the answer cascade.
    pub seed: u64,
    /// Retrieval depth (passages per query; the pipeline's `retrieval_k`).
    pub retrieval_k: usize,
    /// Which retrieval channel(s) every bundle queries through — dense
    /// (the default, the pre-PR-8 behaviour), lexical, or hybrid.
    pub retrieval: QueryMode,
    /// Astro exam settings.
    pub astro: AstroConfig,
}

impl Default for EvalConfig {
    fn default() -> Self {
        Self {
            seed: 42,
            retrieval_k: 8,
            retrieval: QueryMode::Dense,
            astro: AstroConfig::default(),
        }
    }
}

/// Results for one model.
#[derive(Debug, Clone, Serialize)]
pub struct ModelEval {
    /// Model name (Table 1).
    pub name: String,
    /// Measured usable-hit rates for this model's context window.
    pub rates: PipelineRates,
    /// The calibration the solver produced.
    pub calibration: mcqa_llm::solver::Calibration,
    /// Synthetic benchmark accuracy per condition (paper Table 2).
    pub synth: Vec<(Condition, Accuracy)>,
    /// Astro (all questions) accuracy per condition (Table 3).
    pub astro_all: Vec<(Condition, Accuracy)>,
    /// Astro no-math accuracy per condition (Table 4).
    pub astro_nomath: Vec<(Condition, Accuracy)>,
}

impl ModelEval {
    fn lookup(rows: &[(Condition, Accuracy)], cond: Condition) -> f64 {
        rows.iter().find(|(c, _)| *c == cond).map(|(_, a)| a.value()).unwrap_or(0.0)
    }

    /// Accuracy on the synthetic benchmark under `cond`.
    pub fn synth_accuracy(&self, cond: Condition) -> f64 {
        Self::lookup(&self.synth, cond)
    }

    /// Accuracy on the full Astro set under `cond`.
    pub fn astro_all_accuracy(&self, cond: Condition) -> f64 {
        Self::lookup(&self.astro_all, cond)
    }

    /// Accuracy on the Astro no-math subset under `cond`.
    pub fn astro_nomath_accuracy(&self, cond: Condition) -> f64 {
        Self::lookup(&self.astro_nomath, cond)
    }

    /// Best reasoning-trace accuracy on (all, no-math) Astro sets.
    pub fn astro_best_rt(&self) -> (f64, f64) {
        let best = |rows: &[(Condition, Accuracy)]| {
            rows.iter()
                .filter(|(c, _)| matches!(c, Condition::RagTraces(_)))
                .map(|(_, a)| a.value())
                .fold(0.0, f64::max)
        };
        (best(&self.astro_all), best(&self.astro_nomath))
    }

    /// Best reasoning-trace accuracy on the synthetic benchmark.
    pub fn synth_best_rt(&self) -> f64 {
        self.synth
            .iter()
            .filter(|(c, _)| matches!(c, Condition::RagTraces(_)))
            .map(|(_, a)| a.value())
            .fold(0.0, f64::max)
    }
}

/// A complete evaluation run.
#[derive(Debug, Clone, Serialize)]
pub struct EvalRun {
    /// Per-model results, in card order.
    pub models: Vec<ModelEval>,
    /// Synthetic benchmark size.
    pub synth_questions: usize,
    /// Astro evaluated size (paper: 335).
    pub astro_questions: usize,
    /// Astro no-math subset size (paper: 189).
    pub astro_nomath_questions: usize,
    /// Runtime stage metrics for the evaluation itself (retrieve, assemble,
    /// answer+grade), aggregated across model cards.
    pub report: RunReport,
}

/// The evaluator. Runs every fan-out — retrieval, context assembly, the
/// answer+grade loop — on the pipeline's own [`Executor`], and every model
/// call (classifier, answerers, grading judge) through the pipeline's own
/// model hub, so evaluation lands on the same scheduler, metrics surface,
/// response cache, and call ledger as the pipeline.
pub struct Evaluator<'a> {
    output: &'a PipelineOutput,
    config: EvalConfig,
    exam: AstroExam,
    synth_bundle: RetrievalBundle,
    astro_bundle: RetrievalBundle,
    endpoint: Arc<dyn ModelEndpoint>,
    judge: Judge,
    exec: Executor,
    /// Query-embedding cache shared by every retrieval bundle this
    /// evaluator builds; its hit/miss counters surface as the
    /// `eval-embed-cache` report row.
    embed_cache: EmbeddingCache<'a>,
    /// The serving front door every retrieval bundle replays through: the
    /// same admission queue and micro-batching dispatcher online traffic
    /// uses, over the pipeline's own registry and executor.
    service: QueryService,
    report: Mutex<RunReport>,
    /// Snapshot of the report right after construction: the one-time
    /// retrieval prep, attributed in full to every run's report.
    prep_report: RunReport,
}

impl<'a> Evaluator<'a> {
    /// Prepare retrieval for both benchmarks.
    pub fn new(output: &'a PipelineOutput, config: EvalConfig) -> Self {
        let exec = output.executor.clone();
        let endpoint: Arc<dyn ModelEndpoint> = output.models.clone();
        let classifier = Classifier::new(endpoint.clone(), config.seed);
        let exam = AstroExam::generate(&output.ontology, &config.astro, &classifier, &exec);
        let embed_cache = EmbeddingCache::new(&output.encoder);
        // Rerank-mode retrieval needs the passage texts and the
        // cross-encoder adapter; wiring the reranker to the pipeline's own
        // hub puts its calls on the same ledger and response cache as
        // every other role.
        let rerank = matches!(config.retrieval, QueryMode::Hybrid { rerank: true, .. });
        let service = QueryService::start_full(
            output.indexes.clone(),
            Some(output.encoder.clone()),
            rerank.then(|| crate::retrieval::passage_store(output)),
            rerank.then(|| mcqa_llm::Reranker::new(endpoint.clone(), config.seed)),
            exec.clone(),
            ServeConfig::default(),
        );
        let (synth_bundle, synth_m) = RetrievalBundle::build_metered(
            output,
            &output.items,
            config.retrieval_k,
            config.retrieval,
            &embed_cache,
            &service,
        );
        let (astro_bundle, astro_m) = RetrievalBundle::build_metered(
            output,
            &exam.items,
            config.retrieval_k,
            config.retrieval,
            &embed_cache,
            &service,
        );
        let mut report = RunReport::new();
        report.absorb(synth_m);
        report.absorb(astro_m);
        // Embedding-cache effectiveness, visible next to stage throughput:
        // `items` = lookups, `out` = hits served without re-encoding.
        let (hits, misses) = embed_cache.stats();
        report.absorb(StageMetrics {
            name: "eval-embed-cache".into(),
            items: (hits + misses) as usize,
            ok: (hits + misses) as usize,
            errors: 0,
            panics: 0,
            produced: hits as usize,
            elapsed_secs: 0.0,
        });
        let judge = Judge::new(endpoint.clone(), config.seed);
        Self {
            output,
            config,
            exam,
            synth_bundle,
            astro_bundle,
            endpoint,
            judge,
            exec,
            embed_cache,
            service,
            prep_report: report.clone(),
            report: Mutex::new(report),
        }
    }

    /// Fold one stage execution into the evaluation report.
    fn absorb(&self, m: StageMetrics) {
        self.report.lock().expect("report lock").absorb(m);
    }

    /// The evaluation stage report accumulated so far (retrieve, assemble,
    /// answer+grade rows) — **cumulative** across every card this evaluator
    /// has evaluated. [`Evaluator::run_cards`] attaches a per-run view to
    /// its `EvalRun` instead.
    pub fn report(&self) -> RunReport {
        self.report.lock().expect("report lock").clone()
    }

    /// One run's stage report: the one-time prep rows (`prep`, retrieval)
    /// in full, plus — for every other stage — the strict `after − before`
    /// delta. Stages the run never touched contribute nothing, so repeated
    /// runs on one evaluator cannot inherit each other's work.
    fn report_delta(prep: &RunReport, after: &RunReport, before: &RunReport) -> RunReport {
        let mut out = prep.clone();
        for s in after.stages() {
            let zero = StageMetrics::single(&s.name, 0, 0, 0.0);
            let p = before.stages().iter().find(|p| p.name == s.name).unwrap_or(&zero);
            let d = StageMetrics {
                name: s.name.clone(),
                items: s.items - p.items,
                ok: s.ok - p.ok,
                errors: s.errors - p.errors,
                panics: s.panics - p.panics,
                produced: s.produced - p.produced,
                elapsed_secs: s.elapsed_secs - p.elapsed_secs,
            };
            if d.items > 0 || d.produced > 0 || d.elapsed_secs > 0.0 {
                out.absorb(d);
            }
        }
        out
    }

    /// The generated exam.
    pub fn exam(&self) -> &AstroExam {
        &self.exam
    }

    /// The synthetic-benchmark retrieval bundle.
    pub fn synth_bundle(&self) -> &RetrievalBundle {
        &self.synth_bundle
    }

    /// (hits, misses) of the shared query-embedding cache (also surfaced
    /// as the `eval-embed-cache` report row).
    pub fn embed_cache_stats(&self) -> (u64, u64) {
        self.embed_cache.stats()
    }

    /// Ledger snapshot of the retrieval service every bundle replayed
    /// through (admission, batch-size, and per-stage time accounting).
    pub fn serve_stats(&self) -> mcqa_serve::ServiceSnapshot {
        self.service.stats()
    }

    /// Assemble contexts for every (item, source) under one window size.
    fn assemble_all(
        &self,
        items: &[McqItem],
        bundle: &RetrievalBundle,
        window: usize,
    ) -> Vec<[AssembledContext; 4]> {
        let (results, metrics) =
            run_stage_batched(&self.exec, "eval-assemble", (0..items.len()).collect(), 0, |qi| {
                let item = &items[qi];
                let mk =
                    |s: Source| mcqa_llm::context::assemble(item, bundle.passages(qi, s), window);
                Ok::<_, String>([
                    mk(Source::Chunks),
                    mk(Source::Traces(TraceMode::Detailed)),
                    mk(Source::Traces(TraceMode::Focused)),
                    mk(Source::Traces(TraceMode::Efficient)),
                ])
            });
        self.absorb(metrics);
        results.into_iter().map(|r| r.expect("assembly cannot fail")).collect()
    }

    /// Usable-hit rates over a set of assembled contexts (optionally
    /// restricted by a mask).
    fn hit_rates(contexts: &[[AssembledContext; 4]], mask: Option<&[bool]>) -> [f64; 4] {
        let mut counts = [0usize; 4];
        let mut total = 0usize;
        for (i, cs) in contexts.iter().enumerate() {
            if let Some(m) = mask {
                if !m[i] {
                    continue;
                }
            }
            total += 1;
            for (s, c) in cs.iter().enumerate() {
                if c.relevant_in_window {
                    counts[s] += 1;
                }
            }
        }
        if total == 0 {
            return [0.0; 4];
        }
        [
            counts[0] as f64 / total as f64,
            counts[1] as f64 / total as f64,
            counts[2] as f64 / total as f64,
            counts[3] as f64 / total as f64,
        ]
    }

    /// Evaluate one model card.
    pub fn evaluate_card(&self, card: &ModelCard) -> ModelEval {
        let window = card.context_window;
        let synth_ctx = self.assemble_all(&self.output.items, &self.synth_bundle, window);
        let astro_ctx = self.assemble_all(&self.exam.items, &self.astro_bundle, window);

        // Measured usable-hit rates (the solver's h values).
        let synth_rates = Self::hit_rates(&synth_ctx, None);
        let nomath_mask: Vec<bool> = self.exam.items.iter().map(|i| !i.is_math).collect();
        let astro_rates = Self::hit_rates(&astro_ctx, Some(&nomath_mask));
        let rates = PipelineRates {
            synth_chunk: synth_rates[0],
            synth_trace: [synth_rates[1], synth_rates[2], synth_rates[3]],
            astro_chunk: astro_rates[0],
            astro_trace: [astro_rates[1], astro_rates[2], astro_rates[3]],
        };

        let calibration = resolve(card, &rates);
        let model = Answerer::new(
            self.endpoint.clone(),
            card.clone(),
            calibration.clone(),
            self.config.seed,
        );

        let conditions = Condition::all();

        let run_bench = |items: &[McqItem],
                         contexts: &[[AssembledContext; 4]],
                         mask: Option<&[bool]>|
         -> Vec<(Condition, Accuracy)> {
            conditions
                .iter()
                .map(|cond| {
                    let picked: Vec<usize> =
                        (0..items.len()).filter(|i| mask.map(|m| m[*i]).unwrap_or(true)).collect();
                    let (grades, metrics) =
                        run_stage_batched(&self.exec, "eval-answer", picked, 0, |i| {
                            let item = &items[i];
                            let ctx = match cond {
                                Condition::Baseline => None,
                                Condition::RagChunks => Some(&contexts[i][0]),
                                Condition::RagTraces(m) => {
                                    let mi =
                                        TraceMode::ALL.iter().position(|x| x == m).expect("mode");
                                    Some(&contexts[i][1 + mi])
                                }
                            };
                            let out = model.answer(item, *cond, ctx);
                            let grade =
                                self.judge.grade(&out.text, item.correct, item.options.len());
                            Ok::<_, String>(grade.correct)
                        });
                    self.absorb(metrics);
                    let mut acc = Accuracy::new();
                    for g in grades {
                        acc.record(g.expect("answering cannot fail"));
                    }
                    (*cond, acc)
                })
                .collect()
        };

        let synth = run_bench(&self.output.items, &synth_ctx, None);
        let astro_all = run_bench(&self.exam.items, &astro_ctx, None);
        let astro_nomath = run_bench(&self.exam.items, &astro_ctx, Some(&nomath_mask));

        ModelEval {
            name: card.name.to_string(),
            rates,
            calibration,
            synth,
            astro_all,
            astro_nomath,
        }
    }

    /// Evaluate the paper's full model roster.
    pub fn run(&self) -> EvalRun {
        self.run_cards(&MODEL_CARDS)
    }

    /// Evaluate a custom card list. The attached report covers *this*
    /// run's stage work (plus the shared retrieval prep), so repeated runs
    /// on one evaluator don't inflate each other's numbers.
    pub fn run_cards(&self, cards: &[ModelCard]) -> EvalRun {
        let before = self.report();
        let models = cards.iter().map(|c| self.evaluate_card(c)).collect();
        EvalRun {
            models,
            synth_questions: self.output.items.len(),
            astro_questions: self.exam.items.len(),
            astro_nomath_questions: self.exam.no_math_items().len(),
            report: Self::report_delta(&self.prep_report, &self.report(), &before),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcqa_core::{Pipeline, PipelineConfig};

    fn eval_run() -> &'static (mcqa_core::PipelineOutput, EvalRun) {
        static OUT: std::sync::OnceLock<(mcqa_core::PipelineOutput, EvalRun)> =
            std::sync::OnceLock::new();
        OUT.get_or_init(|| {
            let output = Pipeline::run(&PipelineConfig::tiny(42));
            let run = {
                let evaluator = Evaluator::new(&output, EvalConfig::default());
                evaluator.run_cards(&MODEL_CARDS)
            };
            (output, run)
        })
    }

    #[test]
    fn run_covers_all_models_and_conditions() {
        let (output, run) = eval_run();
        assert_eq!(run.models.len(), 8);
        assert_eq!(run.synth_questions, output.items.len());
        assert_eq!(run.astro_questions, 335);
        for m in &run.models {
            assert_eq!(m.synth.len(), 5);
            assert_eq!(m.astro_all.len(), 5);
            for (_, acc) in &m.synth {
                assert_eq!(acc.total as usize, run.synth_questions);
            }
            for (_, acc) in &m.astro_all {
                assert_eq!(acc.total as usize, 335);
            }
            for (_, acc) in &m.astro_nomath {
                assert_eq!(acc.total as usize, run.astro_nomath_questions);
            }
        }
    }

    #[test]
    fn report_delta_isolates_one_run() {
        let m =
            |name: &str, items: usize, secs: f64| StageMetrics::single(name, items, items, secs);
        let mut prep = RunReport::new();
        prep.absorb(m("eval-retrieve", 100, 1.0));
        // A first run already happened before this run's snapshot.
        let mut before = prep.clone();
        before.absorb(m("eval-assemble", 40, 0.1));
        before.absorb(m("eval-answer", 500, 2.0));
        // This run answers again but never assembles.
        let mut after = before.clone();
        after.absorb(m("eval-answer", 500, 2.5));
        let delta = Evaluator::report_delta(&prep, &after, &before);
        let get = |n: &str| delta.stages().iter().find(|s| s.name == n);
        assert_eq!(get("eval-retrieve").unwrap().items, 100, "prep carried over whole");
        let answer = get("eval-answer").unwrap();
        assert_eq!(answer.items, 500, "only this run's answering counted");
        assert!((answer.elapsed_secs - 2.5).abs() < 1e-12);
        assert!(get("eval-assemble").is_none(), "untouched stages contribute nothing");
        // A run that did no work reports prep only.
        let empty = Evaluator::report_delta(&prep, &after, &after);
        assert_eq!(empty.stages().len(), 1);
        assert_eq!(empty.stages()[0].name, "eval-retrieve");
    }

    #[test]
    fn eval_report_covers_runtime_stages() {
        // Evaluation runs on the pipeline's scheduler, so its stages must
        // appear on the same metrics surface as the pipeline's.
        let (output, run) = eval_run();
        let n_items = output.items.len();
        let names: Vec<&str> = run.report.stages().iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["eval-retrieve", "eval-embed-cache", "eval-assemble", "eval-answer"]
        );
        // The embedding-cache row records one lookup per retrieval query.
        let cache_row = run.report.stages().iter().find(|s| s.name == "eval-embed-cache").unwrap();
        assert_eq!(cache_row.items, run.synth_questions + run.astro_questions);
        assert!(cache_row.produced <= cache_row.items, "hits cannot exceed lookups");
        let answer = run.report.stages().iter().find(|s| s.name == "eval-answer").unwrap();
        // 8 cards × 5 conditions × (synth + astro-all + astro-nomath).
        let expected = 8 * 5 * (n_items + run.astro_questions + run.astro_nomath_questions);
        assert_eq!(answer.items, expected);
        assert_eq!(answer.errors, 0);
        assert!(answer.throughput() > 0.0, "elapsed must be recorded");
    }

    #[test]
    fn evaluation_routes_through_the_shared_model_hub() {
        // Every eval-time model call lands on the pipeline's hub: the
        // ledger accounts for answerer/classifier traffic, and the
        // response cache short-circuits the no-math re-answer pass (whose
        // requests are byte-identical to the full-exam pass's).
        let (output, run) = eval_run();
        let ledger = output.models.ledger();
        let ans = ledger.role(mcqa_llm::Role::Answerer);
        let expected_answers =
            8 * 5 * (run.synth_questions + run.astro_questions + run.astro_nomath_questions);
        assert!(
            ans.calls as usize >= expected_answers,
            "answerer calls {} < {expected_answers}",
            ans.calls
        );
        assert!(
            ans.cache_hits as usize >= 8 * 5 * run.astro_nomath_questions,
            "no-math pass must be served from the cache: {} hits",
            ans.cache_hits
        );
        let clf = ledger.role(mcqa_llm::Role::Classifier);
        assert_eq!(clf.calls as usize, run.astro_questions, "one classification per exam item");
        assert_eq!(clf.batches, 1, "classification is one batched endpoint call");
        let judge = ledger.role(mcqa_llm::Role::Judge);
        assert!(judge.calls >= ans.calls, "every answer is graded through the judge role");
        // The shared embedding cache's lookups are asserted via the
        // eval-embed-cache report row in eval_report_covers_runtime_stages
        // (a second Evaluator here would mutate the shared fixture's
        // ledger and make these assertions order-dependent).
    }

    #[test]
    fn synthetic_shape_rt_over_chunks_over_baseline() {
        // The paper's headline result must *emerge* from the run.
        let (_, run) = eval_run();
        for m in &run.models {
            let base = m.synth_accuracy(Condition::Baseline);
            let chunks = m.synth_accuracy(Condition::RagChunks);
            let rt = m.synth_best_rt();
            assert!(chunks > base - 0.03, "{}: chunks {chunks:.3} vs baseline {base:.3}", m.name);
            assert!(rt > chunks - 0.03, "{}: rt {rt:.3} vs chunks {chunks:.3}", m.name);
            assert!(rt > base, "{}: rt {rt:.3} vs baseline {base:.3}", m.name);
        }
    }

    #[test]
    fn synthetic_accuracies_near_paper_targets() {
        let (_, run) = eval_run();
        for m in &run.models {
            let card = MODEL_CARDS.iter().find(|c| c.name == m.name).unwrap();
            let base = m.synth_accuracy(Condition::Baseline);
            assert!(
                (base - card.targets.synth_baseline).abs() < 0.05,
                "{}: baseline {base:.3} vs paper {:.3}",
                m.name,
                card.targets.synth_baseline
            );
            let chunks = m.synth_accuracy(Condition::RagChunks);
            // The tiny fixture's chunk-hit rate sits below the solvable
            // range for the strongest chunk targets, so residuals up to
            // ~0.08 are expected here (the scale-0.1 repro run lands within
            // 0.022 — see EXPERIMENTS.md).
            assert!(
                (chunks - card.targets.synth_chunks).abs() < 0.09,
                "{}: chunks {chunks:.3} vs paper {:.3}",
                m.name,
                card.targets.synth_chunks
            );
        }
    }

    #[test]
    fn small_models_gain_most_from_traces() {
        let (_, run) = eval_run();
        let gain = |name: &str| {
            let m = run.models.iter().find(|m| m.name == name).unwrap();
            let b = m.synth_accuracy(Condition::Baseline);
            (m.synth_best_rt() - b) / b.max(1e-9)
        };
        let tiny = gain("TinyLlama-1.1B-Chat");
        let llama31 = gain("Llama-3.1-8B-Instruct");
        assert!(
            tiny > llama31 * 2.0,
            "relative gains must anticorrelate with size: tiny {tiny:.2} vs llama3.1 {llama31:.2}"
        );
    }

    #[test]
    fn rates_truncation_effect_visible() {
        // A 2k-window model must lose more chunk hits to truncation than a
        // 128k-window model on the same retrievals.
        let (_, run) = eval_run();
        let olmo = run.models.iter().find(|m| m.name == "OLMo-7B").unwrap();
        let gemma = run.models.iter().find(|m| m.name == "Gemma 3 4B-IT").unwrap();
        assert!(
            olmo.rates.synth_chunk <= gemma.rates.synth_chunk + 1e-9,
            "olmo chunk hit {} vs gemma {}",
            olmo.rates.synth_chunk,
            gemma.rates.synth_chunk
        );
    }
}
