//! The Astro-exam stand-in (paper §2.2, §3.2).
//!
//! The real 2023 ASTRO Radiation and Cancer Biology Study Guide is a
//! proprietary PDF. We reproduce its *structure* from the same ontology
//! the corpus was generated from — which is exactly the epistemic
//! situation of the paper: the exam tests the same field the literature
//! describes, but was written independently, in a different register:
//!
//! * 337 questions; 2 require reading a figure and are excluded (paper
//!   excludes 2 multimodal items) → 335 evaluated;
//! * 146 of the 335 require quantitative reasoning (BED/EQD2, LQ
//!   survival, decay, inverse square, OER) — built from quantitative
//!   facts with "typical student error" distractors;
//! * 189 are recall questions written in exam register
//!   ([`mcqa_ontology::realize::QuestionStyle::Exam`]), whose phrasing is
//!   deliberately distant from the corpus prose (that is why exam-time
//!   retrieval is harder, as in the paper);
//! * 5 options per question;
//! * facts are drawn salience-weighted: exams test the core curriculum.

use mcqa_llm::{BenchKind, Classifier, McqItem};
use mcqa_ontology::{realize, Ontology};
use mcqa_runtime::Executor;
use mcqa_util::KeyedStochastic;
use serde::{Deserialize, Serialize};

/// Exam generation settings (defaults = the paper's accounting).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AstroConfig {
    /// Seed (independent of the pipeline seed).
    pub seed: u64,
    /// Recall (non-math) questions.
    pub recall_questions: usize,
    /// Quantitative questions.
    pub math_questions: usize,
    /// Multimodal questions (generated, then excluded).
    pub multimodal_questions: usize,
}

impl Default for AstroConfig {
    fn default() -> Self {
        Self { seed: 2023, recall_questions: 189, math_questions: 146, multimodal_questions: 2 }
    }
}

/// The generated exam.
#[derive(Debug, Clone)]
pub struct AstroExam {
    /// Evaluated questions (multimodal items excluded), recall first.
    pub items: Vec<McqItem>,
    /// Stems of the excluded multimodal questions (for the accounting).
    pub excluded_multimodal: Vec<String>,
    /// Ground-truth math flags (index-aligned with `items`).
    pub truth_is_math: Vec<bool>,
}

impl AstroExam {
    /// Generate the exam from the ontology.
    ///
    /// The `is_math` flag on each item is assigned by the `classifier`
    /// adapter (playing GPT-5's role in the paper) via one batched
    /// endpoint call on `exec`'s pool; the generator's own ground truth is
    /// kept in `truth_is_math` so the classifier's agreement is
    /// measurable.
    pub fn generate(
        ontology: &Ontology,
        config: &AstroConfig,
        classifier: &Classifier,
        exec: &Executor,
    ) -> Self {
        let rng = KeyedStochastic::new(config.seed ^ 0xA57_20E8);
        let reg = ontology.registry();
        let mut items = Vec::new();
        let mut truth = Vec::new();

        // --- Recall questions: salience-weighted fact draw, exam register.
        let facts = ontology.facts();
        assert!(
            facts.len() >= config.recall_questions,
            "ontology too small for the exam: {} facts < {}",
            facts.len(),
            config.recall_questions
        );
        let weights: Vec<f64> = facts.iter().map(|f| (0.1 + f.salience).powi(3)).collect();
        let mut chosen = Vec::with_capacity(config.recall_questions);
        let mut used = std::collections::HashSet::new();
        let mut draw = 0u64;
        while chosen.len() < config.recall_questions {
            draw += 1;
            assert!(
                draw < (config.recall_questions as u64 + facts.len() as u64) * 64,
                "exam fact sampling failed to converge"
            );
            if let Some(i) = rng.weighted_choice(&weights, &["fact", &draw.to_string()]) {
                if used.insert(i) {
                    chosen.push(&facts[i]);
                }
            }
        }

        for (qi, fact) in chosen.iter().enumerate() {
            let (stem, answer) = realize::question(fact, reg, realize::QuestionStyle::Exam);
            let distractors = ontology.distractors(fact, 4, &format!("astro-{qi}"));
            let mut options: Vec<String> = vec![answer];
            options.extend(distractors.iter().map(|d| reg.get(*d).name.clone()));
            if options.len() != 5 {
                continue; // kind pool exhausted; skip (compensated below)
            }
            let perm = rng.permutation(5, &["shuffle", &qi.to_string()]);
            let shuffled: Vec<String> = perm.iter().map(|&i| options[i].clone()).collect();
            let correct = perm.iter().position(|&i| i == 0).expect("answer present");
            items.push(McqItem {
                qid: qi as u64,
                bench: BenchKind::AstroExam,
                fact: fact.id,
                stem,
                options: shuffled,
                correct,
                difficulty: fact.difficulty,
                is_math: false, // assigned by the classifier below
            });
            truth.push(false);
        }

        // --- Math questions from quantitative facts.
        let quant = ontology.quant_facts();
        assert!(
            quant.len() >= config.math_questions,
            "ontology has {} quantitative facts < {}",
            quant.len(),
            config.math_questions
        );
        let qperm = rng.permutation(quant.len(), &["quant"]);
        for (mi, &qi) in qperm.iter().take(config.math_questions).enumerate() {
            let qf = &quant[qi];
            let (stem, answer) = realize::math_stem(qf);
            let mut options: Vec<String> = vec![answer];
            options.extend(
                qf.distinct_distractors()
                    .into_iter()
                    .take(4)
                    .map(|d| realize::format_quantity(d, &qf.unit)),
            );
            let perm = rng.permutation(5, &["mshuffle", &mi.to_string()]);
            let shuffled: Vec<String> = perm.iter().map(|&i| options[i].clone()).collect();
            let correct = perm.iter().position(|&i| i == 0).expect("answer present");
            items.push(McqItem {
                qid: (1000 + mi) as u64,
                bench: BenchKind::AstroExam,
                fact: qf.id,
                stem,
                options: shuffled,
                correct,
                difficulty: qf.difficulty,
                is_math: false, // assigned by the classifier below
            });
            truth.push(true);
        }

        // --- Multimodal questions: generated, flagged, excluded.
        let excluded_multimodal: Vec<String> = (0..config.multimodal_questions)
            .map(|i| {
                format!(
                    "Refer to the survival-curve figure shown: which curve corresponds to the \
                     cell line irradiated under hypoxic conditions? (Figure {}.)",
                    i + 1
                )
            })
            .collect();

        // GPT-5's role: classify the evaluated questions in one batched
        // endpoint call.
        let flags = classifier.classify_batch(exec, &items);
        for (item, is_math) in items.iter_mut().zip(flags) {
            item.is_math = is_math;
        }

        Self { items, excluded_multimodal, truth_is_math: truth }
    }

    /// Number of evaluated questions (paper: 335).
    pub fn evaluated(&self) -> usize {
        self.items.len()
    }

    /// The no-math subset (by classifier, as in the paper).
    pub fn no_math_items(&self) -> Vec<&McqItem> {
        self.items.iter().filter(|i| !i.is_math).collect()
    }

    /// Classifier agreement with the generator's ground truth.
    pub fn classifier_agreement(&self) -> f64 {
        if self.items.is_empty() {
            return 1.0;
        }
        let agree =
            self.items.iter().zip(&self.truth_is_math).filter(|(i, t)| i.is_math == **t).count();
        agree as f64 / self.items.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcqa_ontology::OntologyConfig;
    use std::sync::Arc;

    fn ontology() -> Arc<Ontology> {
        Arc::new(Ontology::generate(&OntologyConfig {
            seed: 42,
            entities_per_kind: 60,
            qualitative_facts: 600,
            quantitative_facts: 150,
        }))
    }

    fn generate(ont: &Arc<Ontology>, config: &AstroConfig) -> AstroExam {
        let hub = Arc::new(mcqa_llm::build_hub(&mcqa_llm::ModelSpec::Sim, 42, Arc::clone(ont)));
        AstroExam::generate(ont, config, &Classifier::new(hub, 42), Executor::global())
    }

    #[test]
    fn paper_accounting() {
        let ont = ontology();
        let exam = generate(&ont, &AstroConfig::default());
        assert_eq!(exam.evaluated() + exam.excluded_multimodal.len(), 337);
        assert_eq!(exam.excluded_multimodal.len(), 2);
        // 189 + 146 = 335 (a few recall slots may be skipped if pools run
        // dry; must not happen at this ontology size).
        assert_eq!(exam.evaluated(), 335);
        let math = exam.items.iter().filter(|i| i.is_math).count();
        assert!(
            (140..=152).contains(&math),
            "classifier found {math} math questions; paper has 146"
        );
    }

    #[test]
    fn questions_structurally_valid() {
        let ont = ontology();
        let exam = generate(&ont, &AstroConfig::default());
        for item in &exam.items {
            item.validate().unwrap_or_else(|e| panic!("qid {}: {e}", item.qid));
            assert_eq!(item.options.len(), 5);
            assert_eq!(item.bench, BenchKind::AstroExam);
        }
    }

    #[test]
    fn classifier_agreement_high() {
        let ont = ontology();
        let exam = generate(&ont, &AstroConfig::default());
        let agreement = exam.classifier_agreement();
        assert!(agreement >= 0.97, "classifier agreement {agreement:.3}");
    }

    #[test]
    fn deterministic() {
        let ont = ontology();
        let a = generate(&ont, &AstroConfig::default());
        let b = generate(&ont, &AstroConfig::default());
        assert_eq!(a.items, b.items);
    }

    #[test]
    fn exam_register_differs_from_pipeline_register() {
        // Exam stems must not reuse the synthetic question templates
        // (lexical distance is what makes exam retrieval harder).
        let ont = ontology();
        let exam = generate(&ont, &AstroConfig::default());
        let synth_markers = ["Which of the following is", "By which mechanism"];
        let exam_style = exam
            .items
            .iter()
            .filter(|i| !i.is_math)
            .filter(|i| !synth_markers.iter().any(|m| i.stem.starts_with(m)))
            .count();
        let nomath = exam.items.iter().filter(|i| !i.is_math).count();
        assert!(exam_style * 10 >= nomath * 9, "{exam_style}/{nomath} stems in exam register");
    }

    #[test]
    fn salience_weighting_prefers_core_curriculum() {
        let ont = ontology();
        let exam = generate(&ont, &AstroConfig::default());
        let exam_salience: f64 = exam
            .items
            .iter()
            .filter(|i| !i.is_math)
            .filter_map(|i| ont.fact(i.fact))
            .map(|f| f.salience)
            .sum::<f64>()
            / exam.no_math_items().len().max(1) as f64;
        let corpus_salience: f64 =
            ont.facts().iter().map(|f| f.salience).sum::<f64>() / ont.facts().len() as f64;
        assert!(
            exam_salience > corpus_salience,
            "exam salience {exam_salience:.3} vs corpus mean {corpus_salience:.3}"
        );
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_ontology_rejected() {
        let ont = Arc::new(Ontology::generate(&OntologyConfig {
            seed: 1,
            entities_per_kind: 20,
            qualitative_facts: 50,
            quantitative_facts: 10,
        }));
        generate(&ont, &AstroConfig::default());
    }
}
