//! The assembled ontology: entities + qualitative facts + quantitative facts.

use std::collections::HashMap;

use mcqa_util::KeyedStochastic;
use serde::{Deserialize, Serialize};

use crate::entity::{EntityId, EntityRegistry};
use crate::fact::{Fact, FactId, Qualifier};
use crate::math::QuantFact;
use crate::relation::RelationKind;
use crate::topic::Topic;

/// Id namespace offset for quantitative facts (qualitative ids are dense
/// from 0; quantitative ids start here).
pub const QUANT_ID_BASE: u64 = 1 << 32;

/// Configuration for ontology generation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OntologyConfig {
    /// Master seed; everything downstream derives from it.
    pub seed: u64,
    /// Entities per open kind (genes, proteins, ...).
    pub entities_per_kind: usize,
    /// Number of qualitative facts to mint.
    pub qualitative_facts: usize,
    /// Number of quantitative facts to mint.
    pub quantitative_facts: usize,
}

impl Default for OntologyConfig {
    fn default() -> Self {
        Self { seed: 42, entities_per_kind: 480, qualitative_facts: 6_000, quantitative_facts: 600 }
    }
}

/// The complete synthetic domain.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ontology {
    config: OntologyConfig,
    registry: EntityRegistry,
    facts: Vec<Fact>,
    quant_facts: Vec<QuantFact>,
    facts_by_topic: HashMap<Topic, Vec<usize>>,
    fact_index: HashMap<FactId, usize>,
    quant_index: HashMap<FactId, usize>,
}

impl Ontology {
    /// Generate the full ontology deterministically from `config`.
    ///
    /// Functional-relation guarantee: for any `(subject, relation)` pair at
    /// most one fact exists, so every fact's object is the *unique* correct
    /// answer among same-kind distractors.
    pub fn generate(config: &OntologyConfig) -> Self {
        let registry = EntityRegistry::generate(config.seed, config.entities_per_kind);
        let rng = KeyedStochastic::new(config.seed ^ 0xFAC7_5EED);

        // Enumerate every admissible (relation, subject) pair: the
        // functional-relation constraint means each pair yields at most one
        // fact, so the pair count is the exact fact capacity.
        let mut pairs: Vec<(RelationKind, EntityId)> = Vec::new();
        for relation in RelationKind::ALL {
            for &subject_kind in relation.subject_kinds() {
                for &subject in registry.of_kind(subject_kind) {
                    pairs.push((relation, subject));
                }
            }
        }
        assert!(
            config.qualitative_facts <= pairs.len(),
            "requested {} qualitative facts but the ontology's pair capacity \
             is {}; increase entities_per_kind",
            config.qualitative_facts,
            pairs.len()
        );

        // Deterministic shuffle, then take the first N pairs.
        let perm = rng.permutation(pairs.len(), &["pair-shuffle"]);
        let mut facts = Vec::with_capacity(config.qualitative_facts);
        for &pi in perm.iter() {
            if facts.len() == config.qualitative_facts {
                break;
            }
            let (relation, subject) = pairs[pi];
            let a = format!("{}:{:?}", subject.0, relation);

            // Topic comes from the subject entity to keep prose coherent.
            let subj_topics = &registry.get(subject).topics;
            let topic = subj_topics[rng.below(subj_topics.len(), &["top", &a])];

            // Object: same-topic pool when rich enough, else the full kind.
            let ok = relation.object_kinds();
            let object_kind = ok[rng.below(ok.len(), &["ok", &a])];
            let obj_pool_topic = registry.of_topic_kind(topic, object_kind);
            let obj_pool = if obj_pool_topic.len() >= 7 {
                obj_pool_topic
            } else {
                registry.of_kind(object_kind)
            };
            // Skip the (rare) subject==object draw by walking a permutation.
            let operm = rng.permutation(obj_pool.len(), &["operm", &a]);
            let Some(object) = operm.iter().map(|&i| obj_pool[i]).find(|&o| o != subject) else {
                continue;
            };

            let qualifier = Qualifier::ALL[rng
                .weighted_choice(&[0.55, 0.09, 0.09, 0.09, 0.09, 0.09], &["q", &a])
                .unwrap_or(0)];
            let difficulty = rng.uniform(&["diff", &a]);
            let salience = rng.uniform(&["sal", &a]).powf(1.5); // skew toward low salience

            facts.push(Fact {
                id: FactId(facts.len() as u64),
                topic,
                subject,
                relation,
                object,
                qualifier,
                difficulty,
                salience,
            });
        }
        assert_eq!(
            facts.len(),
            config.qualitative_facts,
            "object pools too small to realise all requested facts"
        );

        let quant_facts: Vec<QuantFact> = (0..config.quantitative_facts as u64)
            .map(|i| QuantFact::generate(config.seed, i, QUANT_ID_BASE))
            .collect();

        let mut facts_by_topic: HashMap<Topic, Vec<usize>> = HashMap::new();
        let mut fact_index = HashMap::new();
        for (i, f) in facts.iter().enumerate() {
            facts_by_topic.entry(f.topic).or_default().push(i);
            fact_index.insert(f.id, i);
        }
        let mut quant_index = HashMap::new();
        for (i, q) in quant_facts.iter().enumerate() {
            quant_index.insert(q.id, i);
        }

        Self {
            config: config.clone(),
            registry,
            facts,
            quant_facts,
            facts_by_topic,
            fact_index,
            quant_index,
        }
    }

    /// The generating configuration.
    pub fn config(&self) -> &OntologyConfig {
        &self.config
    }

    /// The entity registry.
    pub fn registry(&self) -> &EntityRegistry {
        &self.registry
    }

    /// All qualitative facts, id-ordered.
    pub fn facts(&self) -> &[Fact] {
        &self.facts
    }

    /// All quantitative facts.
    pub fn quant_facts(&self) -> &[QuantFact] {
        &self.quant_facts
    }

    /// Look up a qualitative fact by id.
    pub fn fact(&self, id: FactId) -> Option<&Fact> {
        self.fact_index.get(&id).map(|&i| &self.facts[i])
    }

    /// Look up a quantitative fact by id.
    pub fn quant_fact(&self, id: FactId) -> Option<&QuantFact> {
        self.quant_index.get(&id).map(|&i| &self.quant_facts[i])
    }

    /// True when `id` belongs to the quantitative namespace.
    pub fn is_quant(id: FactId) -> bool {
        id.0 >= QUANT_ID_BASE
    }

    /// Indices of facts in `topic`.
    pub fn facts_in_topic(&self, topic: Topic) -> &[usize] {
        self.facts_by_topic.get(&topic).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Draw `n` distractor entities for `fact`: same kind as the object,
    /// topic-preferred, never the correct object, and never an object that
    /// would also be a true answer for the same subject under the same
    /// relation (guaranteed free by the functional constraint, but we also
    /// exclude the subject itself).
    ///
    /// `salt` diversifies the draw between call sites (e.g. different
    /// question ids over the same fact).
    pub fn distractors(&self, fact: &Fact, n: usize, salt: &str) -> Vec<EntityId> {
        let rng = KeyedStochastic::new(self.config.seed ^ 0xD157_AC70);
        let kind = self.registry.get(fact.object).kind;
        let pool_topic = self.registry.of_topic_kind(fact.topic, kind);
        // Topic-preferred pool, but the subject/object exclusions may eat
        // into it — fall through to the full kind pool to guarantee `n`
        // distractors whenever the kind has enough members at all.
        let pool: Vec<EntityId> =
            if pool_topic.len() > n { pool_topic.to_vec() } else { Vec::new() };
        let key = format!("{}:{}", fact.id.0, salt);
        let mut out = Vec::with_capacity(n);
        let mut taken: std::collections::HashSet<EntityId> = std::collections::HashSet::new();
        for (round, pool) in [pool.as_slice(), self.registry.of_kind(kind)].iter().enumerate() {
            let perm = rng.permutation(pool.len(), &["distract", &key, &round.to_string()]);
            for idx in perm {
                let cand = pool[idx];
                if cand == fact.object || cand == fact.subject || !taken.insert(cand) {
                    continue;
                }
                out.push(cand);
                if out.len() == n {
                    return out;
                }
            }
        }
        out
    }

    /// Total number of facts across both namespaces.
    pub fn total_facts(&self) -> usize {
        self.facts.len() + self.quant_facts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Ontology {
        Ontology::generate(&OntologyConfig {
            seed: 42,
            entities_per_kind: 24,
            qualitative_facts: 300,
            quantitative_facts: 60,
        })
    }

    #[test]
    fn generation_deterministic() {
        let cfg = OntologyConfig {
            seed: 7,
            entities_per_kind: 20,
            qualitative_facts: 150,
            quantitative_facts: 20,
        };
        let a = Ontology::generate(&cfg);
        let b = Ontology::generate(&cfg);
        assert_eq!(a.facts(), b.facts());
        assert_eq!(a.quant_facts(), b.quant_facts());
    }

    #[test]
    fn requested_counts_met() {
        let ont = small();
        assert_eq!(ont.facts().len(), 300);
        assert_eq!(ont.quant_facts().len(), 60);
        assert_eq!(ont.total_facts(), 360);
    }

    #[test]
    fn functional_relation_constraint() {
        let ont = small();
        let mut pairs = std::collections::HashSet::new();
        for f in ont.facts() {
            assert!(pairs.insert((f.subject, f.relation)), "duplicate (subject, relation): {f:?}");
        }
    }

    #[test]
    fn fact_kinds_satisfy_relation_schema() {
        let ont = small();
        for f in ont.facts() {
            let sk = ont.registry().get(f.subject).kind;
            let ok = ont.registry().get(f.object).kind;
            assert!(f.relation.subject_kinds().contains(&sk), "{f:?}");
            assert!(f.relation.object_kinds().contains(&ok), "{f:?}");
            assert_ne!(f.subject, f.object);
            assert!((0.0..=1.0).contains(&f.difficulty));
            assert!((0.0..=1.0).contains(&f.salience));
        }
    }

    #[test]
    fn lookup_by_id() {
        let ont = small();
        for f in ont.facts().iter().take(20) {
            assert_eq!(ont.fact(f.id).unwrap(), f);
        }
        for q in ont.quant_facts().iter().take(10) {
            assert_eq!(ont.quant_fact(q.id).unwrap(), q);
            assert!(Ontology::is_quant(q.id));
        }
        assert!(!Ontology::is_quant(FactId(0)));
        assert!(ont.fact(FactId(999_999)).is_none());
    }

    #[test]
    fn distractors_valid() {
        let ont = small();
        for f in ont.facts().iter().take(100) {
            let ds = ont.distractors(f, 6, "q0");
            assert_eq!(ds.len(), 6, "fact {:?}", f.id);
            let obj_kind = ont.registry().get(f.object).kind;
            let mut seen = std::collections::HashSet::new();
            for d in &ds {
                assert_ne!(*d, f.object, "distractor equals answer");
                assert_ne!(*d, f.subject, "distractor equals subject");
                assert_eq!(ont.registry().get(*d).kind, obj_kind, "kind mismatch");
                assert!(seen.insert(*d), "duplicate distractor");
            }
        }
    }

    #[test]
    fn distractors_vary_with_salt() {
        let ont = small();
        let f = &ont.facts()[0];
        let a = ont.distractors(f, 6, "salt-a");
        let b = ont.distractors(f, 6, "salt-b");
        assert_ne!(a, b, "salt should diversify distractor draws");
        assert_eq!(a, ont.distractors(f, 6, "salt-a"), "deterministic per salt");
    }

    #[test]
    fn topics_partition_facts() {
        let ont = small();
        let total: usize = Topic::ALL.iter().map(|t| ont.facts_in_topic(*t).len()).sum();
        assert_eq!(total, ont.facts().len());
        for t in Topic::ALL {
            for &i in ont.facts_in_topic(t) {
                assert_eq!(ont.facts()[i].topic, t);
            }
        }
    }

    #[test]
    #[should_panic(expected = "pair capacity")]
    fn impossible_config_panics() {
        // More facts demanded than distinct (subject, relation) pairs exist.
        Ontology::generate(&OntologyConfig {
            seed: 1,
            entities_per_kind: 2,
            qualitative_facts: 100_000,
            quantitative_facts: 0,
        });
    }
}
