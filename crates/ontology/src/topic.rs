//! Topical subfields of the synthetic radiation/cancer-biology domain.
//!
//! Topics partition the fact base the way sub-disciplines partition the real
//! literature. Each topic carries a keyword vocabulary used by the corpus
//! synthesiser for filler prose and by the acquisition simulator for
//! keyword search (the paper downloads papers by "cancer and radiation
//! biology keywords" from Semantic Scholar).

use serde::{Deserialize, Serialize};

/// A sub-discipline of the synthetic domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Topic {
    /// Sensing and signalling of radiation-induced DNA damage.
    DnaDamageResponse,
    /// Double-strand-break repair pathways and their regulation.
    DnaRepair,
    /// Cell-cycle checkpoints and radiosensitivity windows.
    CellCycle,
    /// Programmed cell-death modes after irradiation.
    CellDeath,
    /// Fractionation schedules and the linear-quadratic framework.
    Fractionation,
    /// Tumour hypoxia and oxygen-dependent radiosensitivity.
    Hypoxia,
    /// Radiosensitisers, radioprotectors and combination drugs.
    Radiosensitizers,
    /// Radiation-immune interactions and abscopal responses.
    Immunology,
    /// Normal-tissue injury, late effects and radiation syndromes.
    NormalTissue,
    /// Radionuclides, brachytherapy sources and dosimetry biology.
    Radionuclides,
    /// Particle therapy: protons, carbon ions, relative effectiveness.
    ParticleTherapy,
    /// Tumour microenvironment and stromal radiobiology.
    Microenvironment,
}

impl Topic {
    /// All topics, in canonical order.
    pub const ALL: [Topic; 12] = [
        Topic::DnaDamageResponse,
        Topic::DnaRepair,
        Topic::CellCycle,
        Topic::CellDeath,
        Topic::Fractionation,
        Topic::Hypoxia,
        Topic::Radiosensitizers,
        Topic::Immunology,
        Topic::NormalTissue,
        Topic::Radionuclides,
        Topic::ParticleTherapy,
        Topic::Microenvironment,
    ];

    /// Stable index in `[0, ALL.len())`.
    pub fn index(self) -> usize {
        Topic::ALL.iter().position(|t| *t == self).expect("topic in ALL")
    }

    /// Topic from its stable index (wraps around).
    pub fn from_index(i: usize) -> Topic {
        Topic::ALL[i % Topic::ALL.len()]
    }

    /// Human-readable name used in paper titles and section prose.
    pub fn name(self) -> &'static str {
        match self {
            Topic::DnaDamageResponse => "DNA damage response",
            Topic::DnaRepair => "DNA repair",
            Topic::CellCycle => "cell cycle regulation",
            Topic::CellDeath => "radiation-induced cell death",
            Topic::Fractionation => "dose fractionation",
            Topic::Hypoxia => "tumour hypoxia",
            Topic::Radiosensitizers => "radiosensitizers and protectors",
            Topic::Immunology => "radiation immunology",
            Topic::NormalTissue => "normal tissue effects",
            Topic::Radionuclides => "radionuclides and brachytherapy",
            Topic::ParticleTherapy => "particle therapy",
            Topic::Microenvironment => "tumour microenvironment",
        }
    }

    /// Keyword vocabulary for filler prose and keyword search.
    pub fn keywords(self) -> &'static [&'static str] {
        match self {
            Topic::DnaDamageResponse => &[
                "double-strand break",
                "damage sensing",
                "checkpoint kinase",
                "foci formation",
                "chromatin remodelling",
                "signal transduction",
                "phosphorylation cascade",
                "genomic instability",
            ],
            Topic::DnaRepair => &[
                "homologous recombination",
                "end joining",
                "repair fidelity",
                "resection",
                "strand invasion",
                "ligation",
                "repair kinetics",
                "residual damage",
            ],
            Topic::CellCycle => &[
                "checkpoint arrest",
                "mitotic entry",
                "radiosensitive phase",
                "synchronisation",
                "cyclin expression",
                "restriction point",
                "polyploidy",
                "mitotic index",
            ],
            Topic::CellDeath => &[
                "apoptosis",
                "mitotic catastrophe",
                "senescence",
                "clonogenic survival",
                "caspase activation",
                "membrane permeabilisation",
                "autophagy",
                "necroptosis",
            ],
            Topic::Fractionation => &[
                "fraction size",
                "alpha-beta ratio",
                "biologically effective dose",
                "hypofractionation",
                "repopulation",
                "sublethal damage repair",
                "dose rate",
                "isoeffect curve",
            ],
            Topic::Hypoxia => &[
                "oxygen enhancement",
                "reoxygenation",
                "hypoxic fraction",
                "radioresistance",
                "oxygen fixation",
                "perfusion",
                "necrotic core",
                "hypoxia-inducible factor",
            ],
            Topic::Radiosensitizers => &[
                "sensitiser enhancement ratio",
                "thiol depletion",
                "nitroimidazole",
                "free radical scavenging",
                "prodrug activation",
                "therapeutic index",
                "dose-modifying factor",
                "combination schedule",
            ],
            Topic::Immunology => &[
                "abscopal effect",
                "antigen presentation",
                "immunogenic cell death",
                "checkpoint blockade",
                "cytokine release",
                "lymphocyte infiltration",
                "tumour rejection",
                "innate sensing",
            ],
            Topic::NormalTissue => &[
                "late effects",
                "fibrosis",
                "mucositis",
                "tolerance dose",
                "organ at risk",
                "functional subunits",
                "stem cell depletion",
                "acute syndrome",
            ],
            Topic::Radionuclides => &[
                "half-life",
                "specific activity",
                "dose rate constant",
                "afterloading",
                "seed implantation",
                "decay chain",
                "emission spectrum",
                "shielding",
            ],
            Topic::ParticleTherapy => &[
                "Bragg peak",
                "linear energy transfer",
                "relative biological effectiveness",
                "spread-out peak",
                "track structure",
                "clustered damage",
                "range uncertainty",
                "ion species",
            ],
            Topic::Microenvironment => &[
                "stromal signalling",
                "vascular damage",
                "extracellular matrix",
                "fibroblast activation",
                "angiogenesis",
                "immune infiltrate",
                "interstitial pressure",
                "bystander effect",
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_roundtrip() {
        for (i, t) in Topic::ALL.iter().enumerate() {
            assert_eq!(t.index(), i);
            assert_eq!(Topic::from_index(i), *t);
        }
        assert_eq!(Topic::from_index(Topic::ALL.len()), Topic::ALL[0]);
    }

    #[test]
    fn names_and_keywords_nonempty_and_unique() {
        let mut names = std::collections::HashSet::new();
        for t in Topic::ALL {
            assert!(!t.name().is_empty());
            assert!(t.keywords().len() >= 8, "{:?} keywords", t);
            assert!(names.insert(t.name()));
        }
    }

    #[test]
    fn serde_roundtrip() {
        for t in Topic::ALL {
            let s = serde_json::to_string(&t).unwrap();
            let back: Topic = serde_json::from_str(&s).unwrap();
            assert_eq!(back, t);
        }
    }
}
