//! Quantitative radiobiology facts with exactly computable answers.
//!
//! The Astro exam's maths subset (146 of 335 questions in the paper) asks
//! for dose calculations rather than recall. These use the standard
//! radiobiology formulae, so a simulated model's "maths skill" gates a
//! genuinely different computation path than fact recall:
//!
//! * **Linear-quadratic survival**: `SF = exp(-(αD + βD²))`
//! * **Biologically effective dose**: `BED = n·d·(1 + d/(α/β))`
//! * **Equivalent dose in 2 Gy fractions**: `EQD2 = BED / (1 + 2/(α/β))`
//! * **Radioactive decay**: `A = A₀ · 2^(−t/T½)`
//! * **Inverse square law**: `I₂ = I₁ · (r₁/r₂)²`
//! * **Oxygen enhancement ratio**: `D_hypoxic = OER · D_oxic`

use mcqa_util::KeyedStochastic;
use serde::{Deserialize, Serialize};

use crate::fact::FactId;
use crate::topic::Topic;

/// The family of quantitative problem a [`QuantFact`] encodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MathKind {
    /// Surviving fraction from the linear-quadratic model.
    LqSurvival,
    /// Biologically effective dose of a fractionation schedule.
    Bed,
    /// EQD2 of a fractionation schedule.
    Eqd2,
    /// Source activity after a decay interval.
    Decay,
    /// Dose rate change with distance.
    InverseSquare,
    /// Dose required under hypoxia given an OER.
    Oer,
}

impl MathKind {
    /// All math kinds in canonical order.
    pub const ALL: [MathKind; 6] = [
        MathKind::LqSurvival,
        MathKind::Bed,
        MathKind::Eqd2,
        MathKind::Decay,
        MathKind::InverseSquare,
        MathKind::Oer,
    ];
}

/// A quantitative fact: parameters plus the exact answer and the distractor
/// values produced by *typical student errors* (dropping the quadratic term,
/// inverting a ratio, halving instead of squaring, ...).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantFact {
    /// Unique id in the same namespace as qualitative facts.
    pub id: FactId,
    /// The problem family.
    pub kind: MathKind,
    /// Topic bucket (fractionation / radionuclides / hypoxia ...).
    pub topic: Topic,
    /// Named parameters, rendered into the stem.
    pub params: Vec<(String, f64)>,
    /// The exact numeric answer.
    pub answer: f64,
    /// Unit suffix for rendering (e.g. `"Gy"`).
    pub unit: String,
    /// Plausible wrong values from common calculation errors.
    pub error_answers: Vec<f64>,
    /// Difficulty in `[0, 1]` (arithmetical complexity).
    pub difficulty: f64,
}

impl QuantFact {
    /// Generate the `i`-th quantitative fact deterministically.
    ///
    /// `id_base` offsets the fact-id namespace so quantitative ids never
    /// collide with qualitative ones.
    pub fn generate(seed: u64, i: u64, id_base: u64) -> QuantFact {
        let rng = KeyedStochastic::new(seed ^ 0x0AB5_010E);
        Self::generate_inner(&rng, i, id_base)
    }

    fn generate_inner(rng: &KeyedStochastic, i: u64, id_base: u64) -> QuantFact {
        let key = i.to_string();
        let kind = MathKind::ALL[rng.below(MathKind::ALL.len(), &["mk", &key])];
        let id = FactId(id_base + i);
        match kind {
            MathKind::LqSurvival => {
                let alpha = 0.1 + 0.05 * rng.below(7, &["a", &key]) as f64; // 0.10..0.40
                let beta = 0.01 + 0.005 * rng.below(7, &["b", &key]) as f64; // 0.01..0.04
                let d = (1 + rng.below(8, &["d", &key])) as f64; // 1..8 Gy
                let answer = (-(alpha * d + beta * d * d)).exp();
                QuantFact {
                    id,
                    kind,
                    topic: Topic::Fractionation,
                    params: vec![
                        ("alpha".into(), alpha),
                        ("beta".into(), beta),
                        ("dose_gy".into(), d),
                    ],
                    answer,
                    unit: "".to_string(),
                    error_answers: vec![
                        (-(alpha * d)).exp(),            // dropped quadratic term
                        (-(beta * d * d)).exp(),         // dropped linear term
                        (-(alpha * d + beta * d)).exp(), // forgot to square
                        (-(alpha + beta) * d * d).exp(), // squared everything
                    ],
                    difficulty: 0.55,
                }
            }
            MathKind::Bed => {
                let n = (2 + rng.below(29, &["n", &key])) as f64; // 2..30 fractions
                let d = (1 + rng.below(6, &["d", &key])) as f64; // 1..6 Gy/fx
                let ab = [2.0, 3.0, 10.0][rng.below(3, &["ab", &key])];
                let answer = n * d * (1.0 + d / ab);
                QuantFact {
                    id,
                    kind,
                    topic: Topic::Fractionation,
                    params: vec![
                        ("n_fractions".into(), n),
                        ("dose_per_fraction_gy".into(), d),
                        ("alpha_beta_gy".into(), ab),
                    ],
                    answer,
                    unit: "Gy".to_string(),
                    error_answers: vec![
                        n * d,                          // forgot the RE term
                        n * d * (1.0 + ab / d),         // inverted ratio
                        d * (1.0 + d / ab),             // forgot fraction count
                        n * d * (1.0 + d / (ab * 2.0)), // halved the ratio
                    ],
                    difficulty: 0.5,
                }
            }
            MathKind::Eqd2 => {
                let n = (3 + rng.below(25, &["n", &key])) as f64;
                let d = (2 + rng.below(5, &["d", &key])) as f64;
                let ab = [3.0, 10.0][rng.below(2, &["ab", &key])];
                let bed = n * d * (1.0 + d / ab);
                let answer = bed / (1.0 + 2.0 / ab);
                QuantFact {
                    id,
                    kind,
                    topic: Topic::Fractionation,
                    params: vec![
                        ("n_fractions".into(), n),
                        ("dose_per_fraction_gy".into(), d),
                        ("alpha_beta_gy".into(), ab),
                    ],
                    answer,
                    unit: "Gy".to_string(),
                    error_answers: vec![
                        bed,                    // reported BED instead
                        n * d,                  // total physical dose
                        bed / (1.0 + ab / 2.0), // inverted correction
                        bed * (1.0 + 2.0 / ab), // multiplied instead of divided
                    ],
                    difficulty: 0.65,
                }
            }
            MathKind::Decay => {
                let a0 = (10 + 10 * rng.below(20, &["a0", &key])) as f64; // 10..200
                let half_life = (2 + rng.below(59, &["hl", &key])) as f64; // 2..60 days
                let t = half_life * [0.5, 1.0, 2.0, 3.0][rng.below(4, &["t", &key])];
                let answer = a0 * (2f64).powf(-t / half_life);
                QuantFact {
                    id,
                    kind,
                    topic: Topic::Radionuclides,
                    params: vec![
                        ("initial_activity_mbq".into(), a0),
                        ("half_life_days".into(), half_life),
                        ("elapsed_days".into(), t),
                    ],
                    answer,
                    unit: "MBq".to_string(),
                    error_answers: vec![
                        a0 * (1.0 - t / half_life).max(0.05),      // linear decay error
                        a0 * (2f64).powf(-half_life / t.max(0.1)), // inverted exponent
                        a0 / (t / half_life).max(0.3),             // division error
                        a0 * (0.5f64).powf(t / half_life) * 0.5,   // extra halving
                    ],
                    difficulty: 0.6,
                }
            }
            MathKind::InverseSquare => {
                let i1 = (20 + 10 * rng.below(20, &["i1", &key])) as f64; // 20..210 cGy/h
                let r1 = (1 + rng.below(4, &["r1", &key])) as f64; // 1..4 m
                let r2 = r1 + (1 + rng.below(5, &["r2", &key])) as f64;
                let answer = i1 * (r1 / r2) * (r1 / r2);
                QuantFact {
                    id,
                    kind,
                    topic: Topic::Radionuclides,
                    params: vec![
                        ("dose_rate_at_r1".into(), i1),
                        ("r1_m".into(), r1),
                        ("r2_m".into(), r2),
                    ],
                    answer,
                    unit: "cGy/h".to_string(),
                    error_answers: vec![
                        i1 * r1 / r2,               // forgot to square
                        i1 * (r2 / r1) * (r2 / r1), // inverted ratio
                        i1 / (r2 - r1).max(0.5),    // linear falloff
                        i1 * (r1 / r2),             // same as forgot-square (kept distinct below)
                    ],
                    difficulty: 0.45,
                }
            }
            MathKind::Oer => {
                let d_oxic = (2 + rng.below(10, &["d", &key])) as f64;
                let oer = [2.5, 2.8, 3.0][rng.below(3, &["oer", &key])];
                let answer = d_oxic * oer;
                QuantFact {
                    id,
                    kind,
                    topic: Topic::Hypoxia,
                    params: vec![("oxic_dose_gy".into(), d_oxic), ("oer".into(), oer)],
                    answer,
                    unit: "Gy".to_string(),
                    error_answers: vec![
                        d_oxic / oer,       // divided instead
                        d_oxic + oer,       // added
                        d_oxic * oer * oer, // squared
                        d_oxic,             // ignored OER
                    ],
                    difficulty: 0.35,
                }
            }
        }
    }

    /// The four distractor values, deduplicated against the answer and each
    /// other at display precision (so no two options print identically).
    pub fn distinct_distractors(&self) -> Vec<f64> {
        let mut out: Vec<f64> = Vec::new();
        let shown = |v: f64| format!("{:.3}", v);
        let answer_s = shown(self.answer);
        for &e in &self.error_answers {
            let s = shown(e);
            if s != answer_s && !out.iter().any(|&o| shown(o) == s) {
                out.push(e);
            }
        }
        // Pad with scaled variants if the error table collided.
        let mut scale = 1.5;
        while out.len() < 4 {
            let candidate = self.answer * scale;
            let s = shown(candidate);
            if s != answer_s && !out.iter().any(|&o| shown(o) == s) {
                out.push(candidate);
            }
            scale += 0.7;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_kinds_sample() -> Vec<QuantFact> {
        (0..200).map(|i| QuantFact::generate(42, i, 1_000_000)).collect()
    }

    #[test]
    fn deterministic() {
        let a = QuantFact::generate(1, 7, 0);
        let b = QuantFact::generate(1, 7, 0);
        assert_eq!(a, b);
    }

    #[test]
    fn covers_every_kind() {
        let sample = all_kinds_sample();
        for kind in MathKind::ALL {
            assert!(sample.iter().any(|q| q.kind == kind), "{kind:?} missing");
        }
    }

    #[test]
    fn answers_are_finite_and_positive() {
        for q in all_kinds_sample() {
            assert!(q.answer.is_finite(), "{q:?}");
            assert!(q.answer > 0.0, "{q:?}");
            for &e in &q.error_answers {
                assert!(e.is_finite());
            }
        }
    }

    #[test]
    fn lq_survival_formula() {
        // Hand-check one LQ instance: α=0.2, β=0.02, D=4 → SF=exp(-1.12)
        let q = QuantFact {
            id: FactId(0),
            kind: MathKind::LqSurvival,
            topic: Topic::Fractionation,
            params: vec![],
            answer: (-(0.2f64 * 4.0 + 0.02 * 16.0)).exp(),
            unit: "".to_string(),
            error_answers: vec![],
            difficulty: 0.5,
        };
        assert!((q.answer - (-1.12f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn bed_hand_example() {
        // 30 × 2 Gy, α/β = 10 → BED = 60 × 1.2 = 72 Gy; EQD2 = 60 Gy.
        let bed: f64 = 30.0 * 2.0 * (1.0 + 2.0 / 10.0);
        assert!((bed - 72.0).abs() < 1e-12);
        let eqd2 = bed / (1.0 + 2.0 / 10.0);
        assert!((eqd2 - 60.0).abs() < 1e-12);
    }

    #[test]
    fn decay_hand_example() {
        // A0=100, T½=10 d, t=20 d → 25.
        let a = 100.0 * (2f64).powf(-20.0 / 10.0);
        assert!((a - 25.0).abs() < 1e-12);
    }

    #[test]
    fn distractors_distinct_from_answer_and_each_other() {
        for q in all_kinds_sample() {
            let ds = q.distinct_distractors();
            assert!(ds.len() >= 4, "{:?}", q.kind);
            let shown = |v: f64| format!("{:.3}", v);
            let mut seen = std::collections::HashSet::new();
            seen.insert(shown(q.answer));
            for d in ds {
                assert!(seen.insert(shown(d)), "duplicate option in {:?}", q.kind);
            }
        }
    }

    #[test]
    fn ids_offset_by_base() {
        let q = QuantFact::generate(5, 3, 7_000);
        assert_eq!(q.id, FactId(7_003));
    }
}
