//! Typed domain entities with deterministic synthesised names.

use mcqa_util::KeyedStochastic;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

use crate::topic::Topic;

/// Identifier of an entity within one [`EntityRegistry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EntityId(pub u32);

/// The type of a domain entity. Relations constrain the kinds of their
/// subject and object, and distractors are always drawn from the answer's
/// kind — matching how plausible MCQ distractors behave.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum EntityKind {
    /// A gene (synthetic symbol, e.g. `TRK2`).
    Gene,
    /// A protein or enzyme (e.g. `kinase VRN1`).
    Protein,
    /// A signalling or repair pathway.
    Pathway,
    /// An established tumour cell line (e.g. `HX-29`).
    CellLine,
    /// A radiation quality (photons, protons, carbon ions, ...).
    Modality,
    /// A therapeutic compound (synthetic names ending -ib/-mab/-platin...).
    Drug,
    /// A tissue or tumour site.
    Tissue,
    /// A biological process or cell-death mode.
    Process,
    /// A DNA lesion class.
    Lesion,
    /// A radioactive source used clinically.
    Isotope,
    /// A clinical radiation syndrome or late effect.
    Syndrome,
}

impl EntityKind {
    /// All kinds in canonical order.
    pub const ALL: [EntityKind; 11] = [
        EntityKind::Gene,
        EntityKind::Protein,
        EntityKind::Pathway,
        EntityKind::CellLine,
        EntityKind::Modality,
        EntityKind::Drug,
        EntityKind::Tissue,
        EntityKind::Process,
        EntityKind::Lesion,
        EntityKind::Isotope,
        EntityKind::Syndrome,
    ];

    /// Lowercase article-friendly description used in templates.
    pub fn phrase(self) -> &'static str {
        match self {
            EntityKind::Gene => "gene",
            EntityKind::Protein => "protein",
            EntityKind::Pathway => "pathway",
            EntityKind::CellLine => "cell line",
            EntityKind::Modality => "radiation modality",
            EntityKind::Drug => "agent",
            EntityKind::Tissue => "tissue",
            EntityKind::Process => "process",
            EntityKind::Lesion => "lesion",
            EntityKind::Isotope => "radionuclide",
            EntityKind::Syndrome => "syndrome",
        }
    }
}

/// A single domain entity.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Entity {
    /// Registry-local id.
    pub id: EntityId,
    /// The entity's kind.
    pub kind: EntityKind,
    /// Canonical display name (unique within the registry).
    pub name: String,
    /// Topics this entity participates in (1–2).
    pub topics: Vec<Topic>,
}

/// Deterministic generator + lookup table for entities.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EntityRegistry {
    entities: Vec<Entity>,
    by_kind: HashMap<EntityKind, Vec<EntityId>>,
    by_topic_kind: HashMap<(Topic, EntityKind), Vec<EntityId>>,
}

/// Fixed vocabulary for kinds that correspond to closed real-world classes.
/// (Using the real physical categories keeps prose plausible; all *facts*
/// about them remain synthetic.)
const MODALITIES: &[&str] = &[
    "X-rays",
    "gamma rays",
    "protons",
    "carbon ions",
    "alpha particles",
    "fast neutrons",
    "electrons",
    "helium ions",
    "pi-mesons",
    "ultrasoft X-rays",
];

const LESIONS: &[&str] = &[
    "double-strand breaks",
    "single-strand breaks",
    "base oxidation lesions",
    "interstrand crosslinks",
    "DNA-protein crosslinks",
    "clustered lesions",
    "abasic sites",
    "replication-blocking adducts",
    "telomeric breaks",
    "heterochromatic breaks",
];

const PROCESSES: &[&str] = &[
    "apoptosis",
    "mitotic catastrophe",
    "replicative senescence",
    "autophagy",
    "necroptosis",
    "immunogenic cell death",
    "homologous recombination",
    "non-homologous end joining",
    "base excision repair",
    "nucleotide excision repair",
    "checkpoint adaptation",
    "reoxygenation",
    "repopulation",
    "sublethal damage repair",
    "bystander signalling",
    "ferroptosis",
];

const TISSUES: &[&str] = &[
    "lung epithelium",
    "breast carcinoma",
    "prostate carcinoma",
    "glioblastoma",
    "colorectal mucosa",
    "bone marrow",
    "hepatic parenchyma",
    "pancreatic carcinoma",
    "laryngeal mucosa",
    "spinal cord",
    "renal cortex",
    "oesophageal epithelium",
    "skin basal layer",
    "small intestine crypts",
];

impl EntityRegistry {
    /// Generate a registry with roughly `per_kind` entities for each open
    /// kind. Closed kinds (modalities, lesions, processes, tissues) use
    /// their fixed lists. Deterministic in `seed`.
    pub fn generate(seed: u64, per_kind: usize) -> Self {
        let rng = KeyedStochastic::new(seed ^ 0xE17A_57B1);
        let mut entities = Vec::new();
        let mut used_names = std::collections::HashSet::new();

        let push = |entities: &mut Vec<Entity>,
                    used: &mut std::collections::HashSet<String>,
                    kind: EntityKind,
                    name: String| {
            if !used.insert(name.clone()) {
                return false;
            }
            let id = EntityId(entities.len() as u32);
            // Assign 1–2 topics deterministically from the name.
            let t1 = Topic::from_index(rng.below(Topic::ALL.len(), &["t1", &name]));
            let mut topics = vec![t1];
            if rng.bernoulli(0.4, &["t2?", &name]) {
                let t2 = Topic::from_index(rng.below(Topic::ALL.len(), &["t2", &name]));
                if t2 != t1 {
                    topics.push(t2);
                }
            }
            entities.push(Entity { id, kind, name, topics });
            true
        };

        for kind in EntityKind::ALL {
            match kind {
                EntityKind::Modality => {
                    for m in MODALITIES {
                        push(&mut entities, &mut used_names, kind, m.to_string());
                    }
                }
                EntityKind::Lesion => {
                    for l in LESIONS {
                        push(&mut entities, &mut used_names, kind, l.to_string());
                    }
                }
                EntityKind::Process => {
                    for p in PROCESSES {
                        push(&mut entities, &mut used_names, kind, p.to_string());
                    }
                }
                EntityKind::Tissue => {
                    for t in TISSUES {
                        push(&mut entities, &mut used_names, kind, t.to_string());
                    }
                }
                _ => {
                    let mut made = 0usize;
                    let mut attempt = 0u64;
                    while made < per_kind {
                        let name = synth_name(&rng, kind, attempt);
                        if push(&mut entities, &mut used_names, kind, name) {
                            made += 1;
                        }
                        attempt += 1;
                        assert!(
                            attempt < (per_kind as u64 + 16) * 64,
                            "name synthesis exhausted for {kind:?}"
                        );
                    }
                }
            }
        }

        let mut by_kind: HashMap<EntityKind, Vec<EntityId>> = HashMap::new();
        let mut by_topic_kind: HashMap<(Topic, EntityKind), Vec<EntityId>> = HashMap::new();
        for e in &entities {
            by_kind.entry(e.kind).or_default().push(e.id);
            for &t in &e.topics {
                by_topic_kind.entry((t, e.kind)).or_default().push(e.id);
            }
        }

        Self { entities, by_kind, by_topic_kind }
    }

    /// Look up an entity by id. Panics on a foreign id — ids are only
    /// meaningful within the registry that minted them.
    pub fn get(&self, id: EntityId) -> &Entity {
        &self.entities[id.0 as usize]
    }

    /// All entities.
    pub fn all(&self) -> &[Entity] {
        &self.entities
    }

    /// Number of entities.
    pub fn len(&self) -> usize {
        self.entities.len()
    }

    /// True when the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entities.is_empty()
    }

    /// Ids of all entities of `kind`.
    pub fn of_kind(&self, kind: EntityKind) -> &[EntityId] {
        self.by_kind.get(&kind).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Ids of entities of `kind` participating in `topic`.
    pub fn of_topic_kind(&self, topic: Topic, kind: EntityKind) -> &[EntityId] {
        self.by_topic_kind.get(&(topic, kind)).map(Vec::as_slice).unwrap_or(&[])
    }
}

/// Synthesise a plausible-looking name for an open entity kind.
fn synth_name(rng: &KeyedStochastic, kind: EntityKind, attempt: u64) -> String {
    let a = attempt.to_string();
    match kind {
        EntityKind::Gene => {
            // 3–4 uppercase letters + optional digit: "TRKB2", "MDX4".
            const C: &[u8] = b"BCDFGHKLMNPRSTVWXZ";
            const V: &[u8] = b"AEIOU";
            let l1 = C[rng.below(C.len(), &["g1", &a])] as char;
            let l2 = V[rng.below(V.len(), &["g2", &a])] as char;
            let l3 = C[rng.below(C.len(), &["g3", &a])] as char;
            let digit = 1 + rng.below(9, &["gd", &a]);
            if rng.bernoulli(0.5, &["g4?", &a]) {
                let l4 = C[rng.below(C.len(), &["g4", &a])] as char;
                format!("{l1}{l2}{l3}{l4}{digit}")
            } else {
                format!("{l1}{l2}{l3}{digit}")
            }
        }
        EntityKind::Protein => {
            const STEMS: &[&str] = &[
                "kin",
                "pol",
                "lig",
                "nucle",
                "top",
                "hel",
                "phosphat",
                "transferas",
                "sensor",
                "clamp",
                "mediator",
                "effector",
            ];
            let stem = STEMS[rng.below(STEMS.len(), &["p1", &a])];
            let num = 1 + rng.below(12, &["p2", &a]);
            match rng.below(3, &["p3", &a]) {
                0 => format!("{stem}ase-{num}"),
                1 => format!("p{}{stem}", 20 + rng.below(70, &["p4", &a])),
                _ => format!(
                    "{}{stem}in-{num}",
                    ["alpha-", "beta-", "gamma-", ""][rng.below(4, &["p5", &a])]
                ),
            }
        }
        EntityKind::Pathway => {
            // Synthesised head (consonant-vowel-consonant pairs) gives a
            // name space of ~10^5 so large registries never exhaust it.
            const C: &[u8] = b"BDKLMNPRSTVX";
            const V: &[u8] = b"AEIOU";
            const TAILS: &[&str] = &[
                "signalling pathway",
                "repair axis",
                "checkpoint cascade",
                "stress-response pathway",
                "survival axis",
            ];
            let head: String = [
                C[rng.below(C.len(), &["pwc1", &a])] as char,
                V[rng.below(V.len(), &["pwv1", &a])] as char,
                C[rng.below(C.len(), &["pwc2", &a])] as char,
                V[rng.below(V.len(), &["pwv2", &a])] as char,
                C[rng.below(C.len(), &["pwc3", &a])] as char,
            ]
            .iter()
            .collect();
            format!("{head} {}", TAILS[rng.below(TAILS.len(), &["pw2", &a])])
        }
        EntityKind::CellLine => {
            const P: &[u8] = b"HUKMRTGLSV";
            let p1 = P[rng.below(P.len(), &["c1", &a])] as char;
            let p2 = P[rng.below(P.len(), &["c2", &a])] as char;
            let num = 10 + rng.below(890, &["c3", &a]);
            if rng.bernoulli(0.5, &["c4", &a]) {
                format!("{p1}{p2}-{num}")
            } else {
                format!("{p1}{num}")
            }
        }
        EntityKind::Drug => {
            const PRE: &[&str] = &[
                "vel", "tor", "nima", "cor", "ebra", "fulo", "gati", "lepa", "mira", "sova",
                "delu", "kana", "peri", "zelo",
            ];
            const MID: &[&str] = &["ni", "ra", "lo", "ta", "se", "du", "vi", "mo"];
            const SUF: &[&str] =
                &["parib", "tinib", "mumab", "platin", "rubicin", "taxane", "zolamide", "fosine"];
            format!(
                "{}{}{}",
                PRE[rng.below(PRE.len(), &["d1", &a])],
                MID[rng.below(MID.len(), &["d2", &a])],
                SUF[rng.below(SUF.len(), &["d3", &a])]
            )
        }
        EntityKind::Isotope => {
            const EL: &[&str] = &["Nq", "Vx", "Tb", "Rh", "Os", "Pd", "Sm", "Yb", "Ir", "Au"];
            let el = EL[rng.below(EL.len(), &["i1", &a])];
            let mass = 60 + rng.below(180, &["i2", &a]);
            format!("{el}-{mass}")
        }
        EntityKind::Syndrome => {
            const HEADS: &[&str] = &[
                "Verlan", "Ostheim", "Calder", "Rosmarin", "Tieva", "Quillan", "Marest", "Helvin",
                "Ardane", "Skellig", "Noviny", "Fairwell", "Grenholm", "Ilsted", "Morvane",
                "Pelagie",
            ];
            const TAILS: &[&str] = &[
                "syndrome",
                "radiosensitivity disorder",
                "fragility syndrome",
                "repair deficiency",
            ];
            const ROMAN: &[&str] = &["", " type I", " type II", " type III", " type IV", " type V"];
            format!(
                "{} {}{}",
                HEADS[rng.below(HEADS.len(), &["s1", &a])],
                TAILS[rng.below(TAILS.len(), &["s2", &a])],
                ROMAN[rng.below(ROMAN.len(), &["s3", &a])]
            )
        }
        // Closed kinds never reach here.
        EntityKind::Modality | EntityKind::Lesion | EntityKind::Process | EntityKind::Tissue => {
            unreachable!("closed kinds use fixed lists")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = EntityRegistry::generate(42, 30);
        let b = EntityRegistry::generate(42, 30);
        assert_eq!(a.all(), b.all());
    }

    #[test]
    fn different_seeds_differ() {
        let a = EntityRegistry::generate(1, 30);
        let b = EntityRegistry::generate(2, 30);
        let same = a.all().iter().zip(b.all()).filter(|(x, y)| x.name == y.name).count();
        assert!(same < a.len() / 2, "seeds should change most names ({same})");
    }

    #[test]
    fn names_unique_and_nonempty() {
        let reg = EntityRegistry::generate(7, 60);
        let mut names = std::collections::HashSet::new();
        for e in reg.all() {
            assert!(!e.name.is_empty());
            assert!(e.name.is_ascii(), "non-ascii name {:?}", e.name);
            assert!(names.insert(&e.name), "duplicate {:?}", e.name);
            assert!(!e.topics.is_empty() && e.topics.len() <= 2);
        }
    }

    #[test]
    fn open_kinds_hit_requested_count() {
        let reg = EntityRegistry::generate(3, 25);
        for kind in [
            EntityKind::Gene,
            EntityKind::Protein,
            EntityKind::Pathway,
            EntityKind::CellLine,
            EntityKind::Drug,
            EntityKind::Isotope,
            EntityKind::Syndrome,
        ] {
            assert_eq!(reg.of_kind(kind).len(), 25, "{kind:?}");
        }
        assert_eq!(reg.of_kind(EntityKind::Modality).len(), MODALITIES.len());
        assert_eq!(reg.of_kind(EntityKind::Process).len(), PROCESSES.len());
    }

    #[test]
    fn topic_kind_buckets_consistent() {
        let reg = EntityRegistry::generate(11, 40);
        for t in Topic::ALL {
            for k in EntityKind::ALL {
                for &id in reg.of_topic_kind(t, k) {
                    let e = reg.get(id);
                    assert_eq!(e.kind, k);
                    assert!(e.topics.contains(&t));
                }
            }
        }
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let reg = EntityRegistry::generate(5, 10);
        for (i, e) in reg.all().iter().enumerate() {
            assert_eq!(e.id.0 as usize, i);
        }
    }

    #[test]
    fn every_kind_has_enough_distractor_material() {
        // MCQs need 6 distractors of the answer's kind (7 options total).
        let reg = EntityRegistry::generate(13, 30);
        for kind in EntityKind::ALL {
            assert!(reg.of_kind(kind).len() >= 7, "{kind:?} has too few members for 7-option MCQs");
        }
    }
}
