//! A synthetic radiation- and cancer-biology domain ontology.
//!
//! The paper builds its benchmark from 22,548 real open-access documents.
//! Those are not available offline — and, more importantly, real documents
//! give you no *ground truth*: you cannot check whether a generated question
//! is really supported by its source chunk, or whether a retrieval hit is
//! really relevant. This crate replaces the literature with a generative
//! ontology:
//!
//! * a registry of typed [`entity::Entity`]s (genes, proteins, pathways,
//!   cell lines, drugs, radiation modalities, …) with deterministic
//!   synthesised names,
//! * a set of qualitative [`fact::Fact`]s — subject/relation/object triples
//!   with difficulty and salience — partitioned over [`topic::Topic`]s,
//! * quantitative [`math::QuantFact`]s implementing real radiobiology
//!   formulae (linear-quadratic survival, BED/EQD2, radioactive decay,
//!   inverse-square law) so that the Astro exam's maths subset exercises a
//!   genuinely different capability,
//! * natural-language [`realize`] templates that render facts as
//!   declarative statements (for papers), exam stems (for questions), and
//!   distilled rationales (for reasoning traces).
//!
//! Every downstream stage — corpus synthesis, question generation, trace
//! distillation, evaluation — consumes the same ontology, which is what
//! makes end-to-end provenance checkable in integration tests.
//!
//! Generation is fully deterministic given a seed: two processes
//! constructing `Ontology::generate(&config)` with equal configs get
//! bit-identical ontologies.

pub mod entity;
pub mod fact;
pub mod math;
pub mod ontology;
pub mod realize;
pub mod relation;
pub mod topic;

pub use entity::{Entity, EntityId, EntityKind, EntityRegistry};
pub use fact::{Fact, FactId};
pub use math::{MathKind, QuantFact};
pub use ontology::{Ontology, OntologyConfig};
pub use relation::RelationKind;
pub use topic::Topic;
