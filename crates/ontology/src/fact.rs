//! Qualitative domain facts: typed subject–relation–object triples.

use serde::{Deserialize, Serialize};

use crate::entity::EntityId;
use crate::relation::RelationKind;
use crate::topic::Topic;

/// Globally unique fact identifier (stable across runs for a given config).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FactId(pub u64);

/// An optional qualifying context attached to a fact.
///
/// Qualifiers add realistic hedging/variety to realised statements and make
/// paraphrases of the same fact lexically diverse.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Qualifier {
    /// No qualifier.
    None,
    /// Effect observed under hypoxic conditions.
    UnderHypoxia,
    /// Effect specific to high-LET radiation.
    HighLet,
    /// Effect observed at clinically relevant fraction sizes.
    ClinicalFractions,
    /// Effect observed in vitro only.
    InVitro,
    /// Effect strongest in S-phase cells.
    SPhase,
}

impl Qualifier {
    /// All qualifiers in canonical order.
    pub const ALL: [Qualifier; 6] = [
        Qualifier::None,
        Qualifier::UnderHypoxia,
        Qualifier::HighLet,
        Qualifier::ClinicalFractions,
        Qualifier::InVitro,
        Qualifier::SPhase,
    ];

    /// Rendered phrase (empty for `None`).
    pub fn phrase(self) -> &'static str {
        match self {
            Qualifier::None => "",
            Qualifier::UnderHypoxia => "under hypoxic conditions",
            Qualifier::HighLet => "after high-LET exposure",
            Qualifier::ClinicalFractions => "at clinically relevant fraction sizes",
            Qualifier::InVitro => "in vitro",
            Qualifier::SPhase => "predominantly in S-phase cells",
        }
    }
}

/// A qualitative fact: `subject —relation→ object`, with presentation
/// metadata used throughout the pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fact {
    /// Unique id; question provenance ultimately resolves to this.
    pub id: FactId,
    /// The topical subfield the fact belongs to.
    pub topic: Topic,
    /// Subject entity.
    pub subject: EntityId,
    /// Relation kind.
    pub relation: RelationKind,
    /// Object entity — the correct answer of MCQs built from this fact.
    pub object: EntityId,
    /// Optional qualifying context.
    pub qualifier: Qualifier,
    /// Intrinsic difficulty in `[0, 1]`: how obscure the fact is. Harder
    /// facts are less likely to be "known" by a simulated model and less
    /// salient in corpus prose.
    pub difficulty: f64,
    /// Salience in `[0, 1]`: how often the literature restates the fact.
    /// High-salience facts appear in more documents (and thus more chunks).
    pub salience: f64,
}

impl Fact {
    /// How many documents should restate this fact, given a base rate.
    /// Salience maps to 1..=(2*base+1) mentions.
    pub fn mention_count(&self, base: usize) -> usize {
        1 + (self.salience * (2 * base) as f64).round() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qualifier_phrases() {
        assert_eq!(Qualifier::None.phrase(), "");
        for q in Qualifier::ALL {
            if q != Qualifier::None {
                assert!(!q.phrase().is_empty());
            }
        }
    }

    #[test]
    fn mention_count_scales_with_salience() {
        let mk = |sal: f64| Fact {
            id: FactId(1),
            topic: Topic::DnaRepair,
            subject: EntityId(0),
            relation: RelationKind::RepairedBy,
            object: EntityId(1),
            qualifier: Qualifier::None,
            difficulty: 0.5,
            salience: sal,
        };
        assert_eq!(mk(0.0).mention_count(3), 1);
        assert_eq!(mk(1.0).mention_count(3), 7);
        assert!(mk(0.5).mention_count(3) >= 3);
    }

    #[test]
    fn fact_serde_roundtrip() {
        let f = Fact {
            id: FactId(99),
            topic: Topic::Hypoxia,
            subject: EntityId(4),
            relation: RelationKind::Sensitizes,
            object: EntityId(9),
            qualifier: Qualifier::UnderHypoxia,
            difficulty: 0.25,
            salience: 0.75,
        };
        let s = serde_json::to_string(&f).unwrap();
        let back: Fact = serde_json::from_str(&s).unwrap();
        assert_eq!(back, f);
    }
}
