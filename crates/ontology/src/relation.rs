//! Relation vocabulary connecting typed entities.
//!
//! Each relation constrains the [`EntityKind`]s of its subject and object.
//! Facts are *functional*: the ontology guarantees at most one true object
//! per `(subject, relation)` pair, so an MCQ built from a fact has exactly
//! one correct option among same-kind distractors.

use serde::{Deserialize, Serialize};

use crate::entity::EntityKind;

/// The kind of a qualitative fact's relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RelationKind {
    /// Protein/gene activates a pathway or process.
    Activates,
    /// Drug or protein inhibits a protein or pathway.
    Inhibits,
    /// Protein phosphorylates another protein after irradiation.
    Phosphorylates,
    /// Drug sensitises a cell line or tissue to radiation.
    Sensitizes,
    /// Drug protects a tissue from radiation injury.
    Protects,
    /// Gene is upregulated in response to a process/stimulus.
    UpregulatedBy,
    /// Lesion class is repaired predominantly by a pathway/process.
    RepairedBy,
    /// Loss of a gene causes a syndrome.
    LossCauses,
    /// Protein is a biomarker for a process in a tissue.
    BiomarkerFor,
    /// Modality produces predominantly a lesion class.
    ProducesLesion,
    /// Isotope is used to treat a tissue.
    UsedToTreat,
    /// Process is suppressed by a pathway.
    SuppressedBy,
    /// Gene is mutated in / characteristic of a cell line.
    MutatedIn,
    /// Pathway requires a protein as an essential component.
    Requires,
}

impl RelationKind {
    /// All relation kinds in canonical order.
    pub const ALL: [RelationKind; 14] = [
        RelationKind::Activates,
        RelationKind::Inhibits,
        RelationKind::Phosphorylates,
        RelationKind::Sensitizes,
        RelationKind::Protects,
        RelationKind::UpregulatedBy,
        RelationKind::RepairedBy,
        RelationKind::LossCauses,
        RelationKind::BiomarkerFor,
        RelationKind::ProducesLesion,
        RelationKind::UsedToTreat,
        RelationKind::SuppressedBy,
        RelationKind::MutatedIn,
        RelationKind::Requires,
    ];

    /// Allowed subject kinds.
    pub fn subject_kinds(self) -> &'static [EntityKind] {
        use EntityKind::*;
        match self {
            RelationKind::Activates => &[Protein, Gene],
            RelationKind::Inhibits => &[Drug, Protein],
            RelationKind::Phosphorylates => &[Protein],
            RelationKind::Sensitizes => &[Drug],
            RelationKind::Protects => &[Drug],
            RelationKind::UpregulatedBy => &[Gene],
            RelationKind::RepairedBy => &[Lesion],
            RelationKind::LossCauses => &[Gene],
            RelationKind::BiomarkerFor => &[Protein],
            RelationKind::ProducesLesion => &[Modality],
            RelationKind::UsedToTreat => &[Isotope],
            RelationKind::SuppressedBy => &[Process],
            RelationKind::MutatedIn => &[Gene],
            RelationKind::Requires => &[Pathway],
        }
    }

    /// Allowed object kinds (this is the kind the MCQ's options share).
    pub fn object_kinds(self) -> &'static [EntityKind] {
        use EntityKind::*;
        match self {
            RelationKind::Activates => &[Pathway, Process],
            RelationKind::Inhibits => &[Protein, Pathway],
            RelationKind::Phosphorylates => &[Protein],
            RelationKind::Sensitizes => &[CellLine, Tissue],
            RelationKind::Protects => &[Tissue],
            RelationKind::UpregulatedBy => &[Process],
            RelationKind::RepairedBy => &[Process, Pathway],
            RelationKind::LossCauses => &[Syndrome],
            RelationKind::BiomarkerFor => &[Process],
            RelationKind::ProducesLesion => &[Lesion],
            RelationKind::UsedToTreat => &[Tissue],
            RelationKind::SuppressedBy => &[Pathway],
            RelationKind::MutatedIn => &[CellLine],
            RelationKind::Requires => &[Protein],
        }
    }

    /// Verb phrase used in declarative statements ("X `<verb>` Y").
    pub fn verb(self) -> &'static str {
        match self {
            RelationKind::Activates => "activates",
            RelationKind::Inhibits => "inhibits",
            RelationKind::Phosphorylates => "phosphorylates",
            RelationKind::Sensitizes => "radiosensitises",
            RelationKind::Protects => "protects",
            RelationKind::UpregulatedBy => "is upregulated during",
            RelationKind::RepairedBy => "are repaired predominantly by",
            RelationKind::LossCauses => "loss causes",
            RelationKind::BiomarkerFor => "serves as a biomarker for",
            RelationKind::ProducesLesion => "predominantly induce",
            RelationKind::UsedToTreat => "is used clinically to treat",
            RelationKind::SuppressedBy => "is suppressed by",
            RelationKind::MutatedIn => "is characteristically mutated in",
            RelationKind::Requires => "requires",
        }
    }

    /// Interrogative stem for MCQ realisation. `{S}` is replaced by the
    /// subject name.
    pub fn question_stem(self) -> &'static str {
        match self {
            RelationKind::Activates => {
                "Which of the following is activated by {S} following irradiation?"
            }
            RelationKind::Inhibits => {
                "Which of the following is the principal target inhibited by {S}?"
            }
            RelationKind::Phosphorylates => {
                "Which substrate is phosphorylated by {S} after radiation exposure?"
            }
            RelationKind::Sensitizes => "Which of the following is radiosensitised by {S}?",
            RelationKind::Protects => "Which tissue is protected from radiation injury by {S}?",
            RelationKind::UpregulatedBy => "During which process is {S} upregulated?",
            RelationKind::RepairedBy => "By which mechanism are {S} predominantly repaired?",
            RelationKind::LossCauses => "Loss of {S} causes which of the following conditions?",
            RelationKind::BiomarkerFor => "{S} serves as a biomarker for which process?",
            RelationKind::ProducesLesion => "Which lesion class is predominantly induced by {S}?",
            RelationKind::UsedToTreat => "Which site is treated clinically with {S}?",
            RelationKind::SuppressedBy => "Which pathway suppresses {S}?",
            RelationKind::MutatedIn => "In which cell line is {S} characteristically mutated?",
            RelationKind::Requires => "Which protein is an essential component of the {S}?",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_nonempty_for_all_relations() {
        for r in RelationKind::ALL {
            assert!(!r.subject_kinds().is_empty(), "{r:?} subjects");
            assert!(!r.object_kinds().is_empty(), "{r:?} objects");
            assert!(!r.verb().is_empty());
            assert!(r.question_stem().contains("{S}"), "{r:?} stem must reference subject");
        }
    }

    #[test]
    fn canonical_order_is_stable() {
        assert_eq!(RelationKind::ALL.len(), 14);
        assert_eq!(RelationKind::ALL[0], RelationKind::Activates);
        assert_eq!(RelationKind::ALL[13], RelationKind::Requires);
    }

    #[test]
    fn object_kinds_have_mcq_distractor_support() {
        // Every object kind must be an open-enough class to supply 6
        // distractors; entity registry tests enforce >= 7 per kind, here we
        // just make sure no relation has an exotic kind outside ALL.
        for r in RelationKind::ALL {
            for k in r.object_kinds() {
                assert!(EntityKind::ALL.contains(k));
            }
        }
    }
}
