//! Bounded-attempt retry with injectable backoff.
//!
//! Parsl retries failed apps a configurable number of times; transient
//! failures (a flaky parser worker, an overloaded embedding service)
//! should not fail a whole stage. Backoff is injected as a closure so
//! tests never sleep.

use serde::{Deserialize, Serialize};

/// Retry configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Maximum attempts (>= 1; 1 means no retry).
    pub max_attempts: u32,
    /// Base backoff in milliseconds, doubled per attempt.
    pub base_backoff_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self { max_attempts: 3, base_backoff_ms: 10 }
    }
}

/// The outcome of a retried operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RetryOutcome<T, E> {
    /// Succeeded on attempt `attempts` (1-based).
    Success {
        /// The value produced.
        value: T,
        /// How many attempts were used.
        attempts: u32,
    },
    /// All attempts failed; the last error is kept.
    Exhausted {
        /// The final error.
        error: E,
        /// How many attempts were made.
        attempts: u32,
    },
}

impl<T, E> RetryOutcome<T, E> {
    /// The value, if the operation eventually succeeded.
    pub fn into_result(self) -> Result<T, E> {
        match self {
            RetryOutcome::Success { value, .. } => Ok(value),
            RetryOutcome::Exhausted { error, .. } => Err(error),
        }
    }

    /// Attempts consumed.
    pub fn attempts(&self) -> u32 {
        match self {
            RetryOutcome::Success { attempts, .. } | RetryOutcome::Exhausted { attempts, .. } => {
                *attempts
            }
        }
    }
}

impl RetryPolicy {
    /// The backoff before attempt `attempt` (1-based; attempt 1 has none).
    pub fn backoff_ms(&self, attempt: u32) -> u64 {
        if attempt <= 1 {
            0
        } else {
            self.base_backoff_ms.saturating_mul(1u64 << (attempt - 2).min(16))
        }
    }

    /// Run `op` with retries, calling `sleep(ms)` between attempts.
    pub fn run_with_sleeper<T, E, Op, Sleep>(
        &self,
        mut op: Op,
        mut sleep: Sleep,
    ) -> RetryOutcome<T, E>
    where
        Op: FnMut(u32) -> Result<T, E>,
        Sleep: FnMut(u64),
    {
        let max = self.max_attempts.max(1);
        let mut last_err: Option<E> = None;
        for attempt in 1..=max {
            let pause = self.backoff_ms(attempt);
            if pause > 0 {
                sleep(pause);
            }
            match op(attempt) {
                Ok(v) => return RetryOutcome::Success { value: v, attempts: attempt },
                Err(e) => last_err = Some(e),
            }
        }
        RetryOutcome::Exhausted { error: last_err.expect("at least one attempt"), attempts: max }
    }

    /// Run `op` with real thread sleeps between attempts.
    pub fn run<T, E, Op>(&self, op: Op) -> RetryOutcome<T, E>
    where
        Op: FnMut(u32) -> Result<T, E>,
    {
        self.run_with_sleeper(op, |ms| std::thread::sleep(std::time::Duration::from_millis(ms)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn succeeds_first_try() {
        let p = RetryPolicy::default();
        let mut sleeps = Vec::new();
        let out = p.run_with_sleeper(|_| Ok::<_, String>(42), |ms| sleeps.push(ms));
        assert_eq!(out, RetryOutcome::Success { value: 42, attempts: 1 });
        assert!(sleeps.is_empty(), "no backoff before the first attempt");
    }

    #[test]
    fn retries_until_success() {
        let p = RetryPolicy { max_attempts: 5, base_backoff_ms: 10 };
        let mut sleeps = Vec::new();
        let out = p.run_with_sleeper(
            |attempt| if attempt < 3 { Err("flaky") } else { Ok(attempt) },
            |ms| sleeps.push(ms),
        );
        assert_eq!(out, RetryOutcome::Success { value: 3, attempts: 3 });
        assert_eq!(sleeps, vec![10, 20], "exponential backoff between attempts");
    }

    #[test]
    fn exhaustion_keeps_last_error() {
        let p = RetryPolicy { max_attempts: 3, base_backoff_ms: 1 };
        let out: RetryOutcome<(), String> = p.run_with_sleeper(|a| Err(format!("err {a}")), |_| {});
        assert_eq!(out, RetryOutcome::Exhausted { error: "err 3".into(), attempts: 3 });
        assert!(out.into_result().is_err());
    }

    #[test]
    fn backoff_schedule() {
        let p = RetryPolicy { max_attempts: 6, base_backoff_ms: 100 };
        assert_eq!(p.backoff_ms(1), 0);
        assert_eq!(p.backoff_ms(2), 100);
        assert_eq!(p.backoff_ms(3), 200);
        assert_eq!(p.backoff_ms(4), 400);
        assert_eq!(p.backoff_ms(5), 800);
    }

    #[test]
    fn zero_attempts_clamped() {
        let p = RetryPolicy { max_attempts: 0, base_backoff_ms: 1 };
        let out = p.run_with_sleeper(Ok::<_, String>, |_| {});
        assert_eq!(out.attempts(), 1);
    }

    #[test]
    fn backoff_saturates() {
        let p = RetryPolicy { max_attempts: 64, base_backoff_ms: u64::MAX / 2 };
        // Must not overflow.
        let _ = p.backoff_ms(40);
    }
}
