//! `run_stage` — an ordered, fault-isolated parallel map with metrics.
//!
//! This is the unit `mcqa-core` composes its workflow from: every pipeline
//! stage (parse, chunk, embed, generate, judge, trace) is one `run_stage`
//! call, which mirrors how the paper expresses stages as Parsl app fleets.

use std::sync::Arc;

use crate::executor::WorkStealingPool;
use crate::metrics::StageMetrics;

/// A task-level failure inside a stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskError {
    /// The task function returned an error.
    Failed(String),
    /// The task function panicked.
    Panicked,
}

impl std::fmt::Display for TaskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TaskError::Failed(msg) => write!(f, "task failed: {msg}"),
            TaskError::Panicked => write!(f, "task panicked"),
        }
    }
}

impl std::error::Error for TaskError {}

/// Run `f` over `items` on `pool`, returning per-item results **in input
/// order** plus stage metrics. Individual failures and panics are isolated
/// into `Err` slots; the stage always completes.
pub fn run_stage<T, U, F>(
    pool: &WorkStealingPool,
    name: &str,
    items: Vec<T>,
    f: F,
) -> (Vec<Result<U, TaskError>>, StageMetrics)
where
    T: Send + 'static,
    U: Send + 'static,
    F: Fn(T) -> Result<U, String> + Send + Sync + 'static,
{
    let timer = mcqa_util::ScopeTimer::start("stage");
    let n = items.len();
    let f = Arc::new(f);
    let (tx, rx) = crossbeam_channel::bounded::<(usize, Result<U, TaskError>)>(n.max(1));

    for (i, item) in items.into_iter().enumerate() {
        let f = Arc::clone(&f);
        let tx = tx.clone();
        pool.submit(move || {
            let result = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(item))) {
                Ok(Ok(u)) => Ok(u),
                Ok(Err(msg)) => Err(TaskError::Failed(msg)),
                Err(_) => Err(TaskError::Panicked),
            };
            // Release this task's handle on `f` *before* signalling
            // completion: once the caller has received every result it may
            // assume no worker still borrows the closure's captures (e.g.
            // `Arc`s the caller wants to unwrap).
            drop(f);
            // The receiver outlives all submissions; a send can only fail
            // if the caller dropped the rx, in which case the result is
            // moot anyway.
            let _ = tx.send((i, result));
        });
    }
    drop(tx);

    let mut slots: Vec<Option<Result<U, TaskError>>> = (0..n).map(|_| None).collect();
    for _ in 0..n {
        let (i, r) = rx.recv().expect("all tasks send exactly once");
        slots[i] = Some(r);
    }
    let results: Vec<Result<U, TaskError>> =
        slots.into_iter().map(|s| s.expect("slot filled")).collect();

    let ok = results.iter().filter(|r| r.is_ok()).count();
    let panics = results.iter().filter(|r| matches!(r, Err(TaskError::Panicked))).count();
    let metrics = StageMetrics {
        name: name.to_string(),
        items: n,
        ok,
        errors: n - ok,
        panics,
        produced: ok,
        elapsed_secs: timer.elapsed_secs(),
    };
    (results, metrics)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_results() {
        let pool = WorkStealingPool::new(4);
        let items: Vec<u64> = (0..500).collect();
        let (results, metrics) = run_stage(&pool, "square", items, |x| Ok::<u64, String>(x * x));
        assert_eq!(results.len(), 500);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(*r.as_ref().unwrap(), (i * i) as u64, "order preserved");
        }
        assert_eq!(metrics.ok, 500);
        assert_eq!(metrics.errors, 0);
        assert_eq!(metrics.name, "square");
    }

    #[test]
    fn errors_isolated_in_slots() {
        let pool = WorkStealingPool::new(2);
        let items: Vec<u32> = (0..20).collect();
        let (results, metrics) = run_stage(&pool, "flaky", items, |x| {
            if x % 5 == 0 {
                Err(format!("bad {x}"))
            } else {
                Ok(x)
            }
        });
        assert_eq!(metrics.errors, 4);
        assert_eq!(metrics.ok, 16);
        assert_eq!(results[5], Err(TaskError::Failed("bad 5".into())));
        assert_eq!(results[6], Ok(6));
    }

    #[test]
    fn panics_isolated_in_slots() {
        let pool = WorkStealingPool::new(3);
        let items: Vec<u32> = (0..10).collect();
        let (results, metrics) = run_stage(&pool, "panicky", items, |x| {
            if x == 3 {
                panic!("kaboom");
            }
            Ok(x)
        });
        assert_eq!(results[3], Err(TaskError::Panicked));
        assert_eq!(metrics.panics, 1);
        assert_eq!(metrics.ok, 9);
        // Subsequent stages still run on the same pool.
        let (r2, _) = run_stage(&pool, "after", vec![1u32, 2], Ok::<u32, String>);
        assert!(r2.iter().all(Result::is_ok));
    }

    #[test]
    fn empty_stage() {
        let pool = WorkStealingPool::new(2);
        let (results, metrics) = run_stage(&pool, "empty", Vec::<u32>::new(), Ok::<u32, String>);
        assert!(results.is_empty());
        assert_eq!(metrics.items, 0);
        assert_eq!(metrics.throughput(), 0.0);
    }

    #[test]
    fn results_independent_of_worker_count() {
        let items: Vec<u64> = (0..200).collect();
        let run = |workers| {
            let pool = WorkStealingPool::new(workers);
            let (r, _) =
                run_stage(&pool, "x", items.clone(), |x| Ok::<u64, String>(x.wrapping_mul(31)));
            r.into_iter().map(Result::unwrap).collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(8), "determinism across parallelism");
    }
}
