//! `run_stage` / `run_stage_batched` — ordered, fault-isolated parallel
//! maps with metrics.
//!
//! These are the units `mcqa-core` and `mcqa-eval` compose their workflows
//! from: every pipeline stage (parse, chunk, embed, generate, judge, trace,
//! retrieve, answer) is one stage call, which mirrors how the paper
//! expresses stages as Parsl app fleets.
//!
//! Both entry points drive the same scoped core, so closures may borrow
//! from the caller's stack (no `'static` bound): the core guarantees —
//! including on unwind — that every submitted task has finished before it
//! returns. `run_stage` submits one pool task per item (lowest latency to
//! first result); `run_stage_batched` submits chunks of items per task,
//! amortising the boxing + channel cost that dominates high-item-count
//! stages of trivial per-item work.

use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::executor::{Job, WorkStealingPool};
use crate::metrics::StageMetrics;
use crate::scaling::auto_batch_size;

/// A task-level failure inside a stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskError {
    /// The task function returned an error.
    Failed(String),
    /// The task function panicked.
    Panicked,
}

impl std::fmt::Display for TaskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TaskError::Failed(msg) => write!(f, "task failed: {msg}"),
            TaskError::Panicked => write!(f, "task panicked"),
        }
    }
}

impl std::error::Error for TaskError {}

/// A `*const F` that may cross threads. Safe to send precisely because the
/// stage core never lets the pointee die before every user of the pointer
/// has finished (see the completion guard in [`stage_core`]).
struct SharedFn<F>(*const F);

impl<F> SharedFn<F> {
    /// Accessor (rather than direct field use) so closures capture the
    /// whole `SharedFn` — edition-2021 disjoint capture would otherwise
    /// grab the bare `*const F` field, which is not `Send`.
    fn ptr(&self) -> *const F {
        self.0
    }
}

impl<F> Clone for SharedFn<F> {
    fn clone(&self) -> Self {
        Self(self.0)
    }
}

// SAFETY: the pointee is only shared (`&F` use), so `F: Sync` is the real
// requirement; the pointer's validity across the send is guaranteed by the
// completion guard blocking until all tasks are done.
unsafe impl<F: Sync> Send for SharedFn<F> {}

/// Blocks — on the normal path *and* on unwind — until every submitted
/// batch has signalled completion. This is what makes lifetime erasure in
/// [`stage_core`] sound: no task can outlive the stack frame whose data it
/// borrows, because that frame cannot be left while a task is outstanding.
///
/// While waiting, the guard *assists* the pool (executes queued jobs on the
/// calling thread), so a stage nested inside another stage's closure on the
/// same pool always makes progress — even with a single worker.
struct Completion<'a, R> {
    rx: &'a crossbeam_channel::Receiver<R>,
    pool: &'a WorkStealingPool,
    outstanding: usize,
}

impl<R> Completion<'_, R> {
    fn recv_assisting(&mut self) -> R {
        loop {
            match self.rx.try_recv() {
                Ok(r) => {
                    self.outstanding -= 1;
                    return r;
                }
                Err(crossbeam_channel::TryRecvError::Empty) => {
                    if !self.pool.try_execute_one() {
                        // Nothing to assist with: all remaining work is
                        // in flight on worker threads. Block briefly.
                        if let Ok(r) = self.rx.recv_timeout(std::time::Duration::from_millis(1)) {
                            self.outstanding -= 1;
                            return r;
                        }
                    }
                }
                Err(crossbeam_channel::TryRecvError::Disconnected) => {
                    unreachable!("every submitted batch sends exactly once")
                }
            }
        }
    }
}

impl<R> Drop for Completion<'_, R> {
    fn drop(&mut self) {
        while self.outstanding > 0 {
            match self.rx.try_recv() {
                Ok(_) => self.outstanding -= 1,
                Err(crossbeam_channel::TryRecvError::Empty) => {
                    if !self.pool.try_execute_one()
                        && self.rx.recv_timeout(std::time::Duration::from_millis(1)).is_ok()
                    {
                        self.outstanding -= 1;
                    }
                }
                // A disconnect means every sender is gone: all tasks have
                // finished (a task holds its sender until its closure
                // returns, panicking or not), so nothing still borrows the
                // caller.
                Err(crossbeam_channel::TryRecvError::Disconnected) => break,
            }
        }
    }
}

/// One batch's results. Single-item batches (per-item submission) skip the
/// `Vec` so `run_stage` costs no more per task than a bare result send.
enum BatchOut<U> {
    One(Result<U, TaskError>),
    Many(Vec<Result<U, TaskError>>),
}

/// The shared driver behind [`run_stage`] and [`run_stage_batched`]:
/// submits `items` in chunks of `batch_size` to the pool, isolates each
/// item's panic/error into its own result slot, and blocks until every
/// chunk has completed.
fn stage_core<'env, T, U, F>(
    pool: &WorkStealingPool,
    name: &str,
    items: Vec<T>,
    batch_size: usize,
    f: &F,
) -> (Vec<Result<U, TaskError>>, StageMetrics)
where
    T: Send + 'env,
    U: Send + 'env,
    F: Fn(T) -> Result<U, String> + Sync + 'env,
{
    let timer = mcqa_util::ScopeTimer::start("stage");
    let n = items.len();
    let batch_size = batch_size.max(1);
    let n_batches = n.div_ceil(batch_size);
    let (tx, rx) = crossbeam_channel::bounded::<(usize, BatchOut<U>)>(n_batches.max(1));

    // The guard exists before the first submission so that any unwind past
    // this frame first drains every outstanding task.
    let mut completion = Completion { rx: &rx, pool, outstanding: 0 };
    let shared_f = SharedFn(f as *const F);

    let mut iter = items.into_iter();
    let mut start = 0usize;
    while start < n {
        let batch: Vec<T> = iter.by_ref().take(batch_size).collect();
        let len = batch.len();
        let tx = tx.clone();
        let shared_f = shared_f.clone();
        let job: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
            // SAFETY: `f` outlives this task — the caller cannot leave
            // `stage_core`'s frame (even by panic) until this task's send
            // has been received or its sender dropped, and the call to `f`
            // happens before either.
            let f = unsafe { &*shared_f.ptr() };
            let run_one = |item: T| match catch_unwind(AssertUnwindSafe(|| f(item))) {
                Ok(Ok(u)) => Ok(u),
                Ok(Err(msg)) => Err(TaskError::Failed(msg)),
                Err(_) => Err(TaskError::Panicked),
            };
            let mut batch = batch;
            let out = if batch.len() == 1 {
                BatchOut::One(run_one(batch.pop().expect("len checked")))
            } else {
                BatchOut::Many(batch.into_iter().map(run_one).collect())
            };
            // The receiver normally outlives all senders; a failed send can
            // only mean the caller is unwinding, and then the guard's drain
            // counts the disconnect instead of the message.
            let _ = tx.send((start, out));
        });
        // SAFETY: erasing `'env` to `'static` is sound because the
        // completion guard above pins this frame until the job has run to
        // completion; the job therefore never observes `'env` data after
        // its end of life. (The classic scoped-task argument.)
        let job: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Box<dyn FnOnce() + Send>>(job)
        };
        completion.outstanding += 1;
        pool.submit_boxed(job);
        start += len;
    }
    drop(tx);

    let mut slots: Vec<Option<Result<U, TaskError>>> = (0..n).map(|_| None).collect();
    while completion.outstanding > 0 {
        match completion.recv_assisting() {
            (base, BatchOut::One(r)) => slots[base] = Some(r),
            (base, BatchOut::Many(results)) => {
                for (off, r) in results.into_iter().enumerate() {
                    slots[base + off] = Some(r);
                }
            }
        }
    }
    let results: Vec<Result<U, TaskError>> =
        slots.into_iter().map(|s| s.expect("slot filled")).collect();

    let ok = results.iter().filter(|r| r.is_ok()).count();
    let panics = results.iter().filter(|r| matches!(r, Err(TaskError::Panicked))).count();
    let metrics = StageMetrics {
        name: name.to_string(),
        items: n,
        ok,
        errors: n - ok,
        panics,
        produced: ok,
        elapsed_secs: timer.elapsed_secs(),
    };
    (results, metrics)
}

/// Run `f` over `items` on `pool`, one pool task per item, returning
/// per-item results **in input order** plus stage metrics. Individual
/// failures and panics are isolated into `Err` slots; the stage always
/// completes. `f` may borrow from the caller's stack; it is dropped before
/// the call returns, so captured `Arc`s can be unwrapped afterwards.
pub fn run_stage<T, U, F>(
    pool: &WorkStealingPool,
    name: &str,
    items: Vec<T>,
    f: F,
) -> (Vec<Result<U, TaskError>>, StageMetrics)
where
    T: Send,
    U: Send,
    F: Fn(T) -> Result<U, String> + Sync,
{
    stage_core(pool, name, items, 1, &f)
}

/// [`run_stage`] with chunked submission: items are submitted to the pool
/// in batches of `batch_size` (0 picks a size automatically via
/// [`auto_batch_size`]), cutting per-task boxing and channel traffic by
/// `batch_size`×. Results, ordering, and error/panic isolation are
/// **identical** to `run_stage` — a panic inside a mid-batch item poisons
/// only that item's slot, never its batch.
pub fn run_stage_batched<T, U, F>(
    pool: &WorkStealingPool,
    name: &str,
    items: Vec<T>,
    batch_size: usize,
    f: F,
) -> (Vec<Result<U, TaskError>>, StageMetrics)
where
    T: Send,
    U: Send,
    F: Fn(T) -> Result<U, String> + Sync,
{
    let batch_size =
        if batch_size == 0 { auto_batch_size(items.len(), pool.workers()) } else { batch_size };
    stage_core(pool, name, items, batch_size, &f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_results() {
        let pool = WorkStealingPool::new(4);
        let items: Vec<u64> = (0..500).collect();
        let (results, metrics) = run_stage(&pool, "square", items, |x| Ok::<u64, String>(x * x));
        assert_eq!(results.len(), 500);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(*r.as_ref().unwrap(), (i * i) as u64, "order preserved");
        }
        assert_eq!(metrics.ok, 500);
        assert_eq!(metrics.errors, 0);
        assert_eq!(metrics.name, "square");
    }

    #[test]
    fn errors_isolated_in_slots() {
        let pool = WorkStealingPool::new(2);
        let items: Vec<u32> = (0..20).collect();
        let (results, metrics) = run_stage(&pool, "flaky", items, |x| {
            if x % 5 == 0 {
                Err(format!("bad {x}"))
            } else {
                Ok(x)
            }
        });
        assert_eq!(metrics.errors, 4);
        assert_eq!(metrics.ok, 16);
        assert_eq!(results[5], Err(TaskError::Failed("bad 5".into())));
        assert_eq!(results[6], Ok(6));
    }

    #[test]
    fn panics_isolated_in_slots() {
        let pool = WorkStealingPool::new(3);
        let items: Vec<u32> = (0..10).collect();
        let (results, metrics) = run_stage(&pool, "panicky", items, |x| {
            if x == 3 {
                panic!("kaboom");
            }
            Ok(x)
        });
        assert_eq!(results[3], Err(TaskError::Panicked));
        assert_eq!(metrics.panics, 1);
        assert_eq!(metrics.ok, 9);
        // Subsequent stages still run on the same pool.
        let (r2, _) = run_stage(&pool, "after", vec![1u32, 2], Ok::<u32, String>);
        assert!(r2.iter().all(Result::is_ok));
    }

    #[test]
    fn empty_stage() {
        let pool = WorkStealingPool::new(2);
        let (results, metrics) = run_stage(&pool, "empty", Vec::<u32>::new(), Ok::<u32, String>);
        assert!(results.is_empty());
        assert_eq!(metrics.items, 0);
        assert_eq!(metrics.throughput(), 0.0);
    }

    #[test]
    fn results_independent_of_worker_count() {
        let items: Vec<u64> = (0..200).collect();
        let run = |workers| {
            let pool = WorkStealingPool::new(workers);
            let (r, _) =
                run_stage(&pool, "x", items.clone(), |x| Ok::<u64, String>(x.wrapping_mul(31)));
            r.into_iter().map(Result::unwrap).collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(8), "determinism across parallelism");
    }

    #[test]
    fn closures_may_borrow_the_callers_stack() {
        // The scoped core removes the old `'static` bound: stages can read
        // caller-owned data without Arc plumbing.
        let pool = WorkStealingPool::new(4);
        let corpus: Vec<String> = (0..64).map(|i| format!("doc-{i}")).collect();
        let (results, _) = run_stage(&pool, "borrow", (0..corpus.len()).collect(), |i| {
            Ok::<usize, String>(corpus[i].len())
        });
        for (i, r) in results.iter().enumerate() {
            assert_eq!(*r.as_ref().unwrap(), corpus[i].len());
        }
        // `corpus` is still usable: every task finished before return.
        assert_eq!(corpus.len(), 64);
    }

    #[test]
    fn batched_matches_per_item_results() {
        let pool = WorkStealingPool::new(4);
        let items: Vec<u64> = (0..1000).collect();
        let (per_item, m1) =
            run_stage(&pool, "s", items.clone(), |x| Ok::<u64, String>(x.wrapping_mul(7)));
        for bs in [1usize, 3, 64, 1000, 5000] {
            let (batched, m2) = run_stage_batched(&pool, "s", items.clone(), bs, |x| {
                Ok::<u64, String>(x.wrapping_mul(7))
            });
            assert_eq!(per_item, batched, "batch_size {bs}");
            assert_eq!(m1.ok, m2.ok);
        }
    }

    #[test]
    fn batched_auto_size_runs_all_items() {
        let pool = WorkStealingPool::new(3);
        let (results, metrics) =
            run_stage_batched(&pool, "auto", (0..10_000u64).collect(), 0, |x| {
                Ok::<u64, String>(x + 1)
            });
        assert_eq!(metrics.items, 10_000);
        assert_eq!(metrics.ok, 10_000);
        assert_eq!(results[9_999], Ok(10_000));
    }

    #[test]
    fn batched_panic_isolates_to_one_item() {
        let pool = WorkStealingPool::new(2);
        let items: Vec<u32> = (0..30).collect();
        let (results, metrics) = run_stage_batched(&pool, "mid-batch", items, 10, |x| {
            if x == 15 {
                panic!("poison mid-batch");
            }
            Ok::<u32, String>(x)
        });
        assert_eq!(metrics.panics, 1);
        assert_eq!(metrics.ok, 29);
        for (i, r) in results.iter().enumerate() {
            if i == 15 {
                assert_eq!(*r, Err(TaskError::Panicked));
            } else {
                assert_eq!(*r, Ok(i as u32), "batch-mates of the panicking item survive");
            }
        }
    }

    #[test]
    fn nested_stage_on_same_pool_does_not_deadlock() {
        // A stage closure may itself fan out on the same executor (the
        // Executor-threaded batch APIs invite exactly this); even with one
        // worker, blocked callers assist the queue instead of parking.
        let exec = crate::executor::Executor::new(1);
        let inner_exec = exec.clone();
        let (results, metrics) = run_stage(&exec, "outer", vec![10u32, 20], move |x| {
            let (inner, _) =
                run_stage(&inner_exec, "inner", (0..5u32).collect(), Ok::<u32, String>);
            let sum: u32 = inner.into_iter().map(Result::unwrap).sum();
            Ok::<u32, String>(x + sum)
        });
        assert_eq!(metrics.ok, 2);
        assert_eq!(results[0], Ok(20), "10 + (0+1+2+3+4)");
        assert_eq!(results[1], Ok(30));
    }

    #[test]
    fn batched_empty_stage() {
        let pool = WorkStealingPool::new(2);
        let (results, metrics) =
            run_stage_batched(&pool, "empty", Vec::<u32>::new(), 0, Ok::<u32, String>);
        assert!(results.is_empty());
        assert_eq!(metrics.items, 0);
    }
}
