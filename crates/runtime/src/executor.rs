//! A persistent work-stealing thread pool.
//!
//! Architecture (the classic crossbeam-deque pattern):
//!
//! * one global [`Injector`] receives submitted jobs;
//! * each worker owns a LIFO deque and exposes a [`Stealer`];
//! * a worker looks for work in order: own deque → injector (batch steal)
//!   → other workers' stealers; when idle it backs off and eventually
//!   parks briefly.
//!
//! Task panics are caught per task so one poisoned job cannot take down a
//! worker (Parsl's task-level fault isolation).

use crossbeam_deque::{Injector, Stealer, Worker};
use crossbeam_utils::Backoff;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Counters describing pool activity since construction.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Jobs executed per worker.
    pub executed_per_worker: Vec<u64>,
    /// Steal operations per worker (tasks taken from a peer).
    pub steals_per_worker: Vec<u64>,
}

impl PoolStats {
    /// Total executed jobs.
    pub fn total_executed(&self) -> u64 {
        self.executed_per_worker.iter().sum()
    }

    /// Total steals.
    pub fn total_steals(&self) -> u64 {
        self.steals_per_worker.iter().sum()
    }
}

struct Shared {
    injector: Injector<Job>,
    stealers: Vec<Stealer<Job>>,
    shutdown: AtomicBool,
    executed: Vec<AtomicU64>,
    steals: Vec<AtomicU64>,
}

/// The pool.
pub struct WorkStealingPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    workers: usize,
}

impl WorkStealingPool {
    /// Spawn a pool with `workers` threads (at least 1).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let worker_deques: Vec<Worker<Job>> = (0..workers).map(|_| Worker::new_lifo()).collect();
        let stealers: Vec<Stealer<Job>> = worker_deques.iter().map(Worker::stealer).collect();
        let shared = Arc::new(Shared {
            injector: Injector::new(),
            stealers,
            shutdown: AtomicBool::new(false),
            executed: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            steals: (0..workers).map(|_| AtomicU64::new(0)).collect(),
        });

        let handles = worker_deques
            .into_iter()
            .enumerate()
            .map(|(wid, local)| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("mcqa-worker-{wid}"))
                    .spawn(move || worker_loop(wid, local, shared))
                    .expect("spawn worker")
            })
            .collect();

        Self { shared, handles, workers }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Submit one fire-and-forget job.
    pub fn submit<F: FnOnce() + Send + 'static>(&self, job: F) {
        self.shared.injector.push(Box::new(job));
    }

    /// Snapshot activity counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            executed_per_worker: self
                .shared
                .executed
                .iter()
                .map(|a| a.load(Ordering::Relaxed))
                .collect(),
            steals_per_worker: self
                .shared
                .steals
                .iter()
                .map(|a| a.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

impl Drop for WorkStealingPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(wid: usize, local: Worker<Job>, shared: Arc<Shared>) {
    let backoff = Backoff::new();
    loop {
        // 1. Own deque.
        let job = local.pop().or_else(|| {
            // 2. Global injector (batch-steal into the local deque).
            std::iter::repeat_with(|| shared.injector.steal_batch_and_pop(&local))
                .find(|s| !s.is_retry())
                .and_then(|s| s.success())
                .or_else(|| {
                    // 3. Peers.
                    for (i, stealer) in shared.stealers.iter().enumerate() {
                        if i == wid {
                            continue;
                        }
                        loop {
                            match stealer.steal() {
                                crossbeam_deque::Steal::Success(job) => {
                                    shared.steals[wid].fetch_add(1, Ordering::Relaxed);
                                    return Some(job);
                                }
                                crossbeam_deque::Steal::Retry => continue,
                                crossbeam_deque::Steal::Empty => break,
                            }
                        }
                    }
                    None
                })
        });

        match job {
            Some(job) => {
                backoff.reset();
                shared.executed[wid].fetch_add(1, Ordering::Relaxed);
                // Panic isolation: a panicking task must not kill the worker.
                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
            }
            None => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if backoff.is_completed() {
                    std::thread::park_timeout(std::time::Duration::from_millis(1));
                } else {
                    backoff.snooze();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn executes_all_jobs() {
        let pool = WorkStealingPool::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = crossbeam_channel::bounded(1000);
        for _ in 0..1000 {
            let counter = Arc::clone(&counter);
            let tx = tx.clone();
            pool.submit(move || {
                counter.fetch_add(1, Ordering::Relaxed);
                tx.send(()).unwrap();
            });
        }
        for _ in 0..1000 {
            rx.recv_timeout(std::time::Duration::from_secs(10)).expect("job completed");
        }
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
        assert_eq!(pool.stats().total_executed(), 1000);
    }

    #[test]
    fn panicking_job_does_not_kill_workers() {
        let pool = WorkStealingPool::new(2);
        let (tx, rx) = crossbeam_channel::bounded(10);
        pool.submit(|| panic!("boom"));
        // Pool must still process subsequent jobs.
        for i in 0..10 {
            let tx = tx.clone();
            pool.submit(move || tx.send(i).unwrap());
        }
        let mut got: Vec<i32> =
            (0..10).map(|_| rx.recv_timeout(std::time::Duration::from_secs(10)).unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn work_distributes_across_workers() {
        let pool = WorkStealingPool::new(4);
        let (tx, rx) = crossbeam_channel::bounded(4000);
        for _ in 0..4000 {
            let tx = tx.clone();
            pool.submit(move || {
                // Small but non-zero work so no single worker can drain all.
                let mut x = 0u64;
                for i in 0..500 {
                    x = x.wrapping_add(mcqa_util::splitmix64(i));
                }
                std::hint::black_box(x);
                tx.send(()).unwrap();
            });
        }
        for _ in 0..4000 {
            rx.recv_timeout(std::time::Duration::from_secs(30)).unwrap();
        }
        let stats = pool.stats();
        let busy_workers = stats.executed_per_worker.iter().filter(|&&c| c > 0).count();
        assert!(busy_workers >= 2, "expected multiple busy workers: {stats:?}");
    }

    #[test]
    fn zero_workers_clamped_to_one() {
        let pool = WorkStealingPool::new(0);
        assert_eq!(pool.workers(), 1);
        let (tx, rx) = crossbeam_channel::bounded(1);
        pool.submit(move || tx.send(42).unwrap());
        assert_eq!(rx.recv_timeout(std::time::Duration::from_secs(10)).unwrap(), 42);
    }

    #[test]
    fn drop_joins_cleanly_with_pending_shutdown() {
        let pool = WorkStealingPool::new(3);
        for i in 0..50 {
            pool.submit(move || {
                std::hint::black_box(i);
            });
        }
        drop(pool); // must not hang or panic
    }
}
