//! A persistent work-stealing thread pool.
//!
//! Architecture (the classic crossbeam-deque pattern):
//!
//! * one global [`Injector`] receives submitted jobs;
//! * each worker owns a LIFO deque and exposes a [`Stealer`];
//! * a worker looks for work in order: own deque → injector (batch steal)
//!   → other workers' stealers; when idle it backs off and eventually
//!   parks briefly.
//!
//! Task panics are caught per task so one poisoned job cannot take down a
//! worker (Parsl's task-level fault isolation).

use crossbeam_deque::{Injector, Stealer, Worker};
use crossbeam_utils::Backoff;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;

pub(crate) type Job = Box<dyn FnOnce() + Send + 'static>;

/// Counters describing pool activity since construction.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Jobs executed per worker.
    pub executed_per_worker: Vec<u64>,
    /// Steal operations per worker (tasks taken from a peer).
    pub steals_per_worker: Vec<u64>,
    /// Jobs executed inline by blocked stage callers assisting the pool
    /// while they wait for their own stage's results.
    pub assisted: u64,
}

impl PoolStats {
    /// Total executed jobs (worker-run plus caller-assisted).
    pub fn total_executed(&self) -> u64 {
        self.executed_per_worker.iter().sum::<u64>() + self.assisted
    }

    /// Total steals.
    pub fn total_steals(&self) -> u64 {
        self.steals_per_worker.iter().sum()
    }
}

struct Shared {
    injector: Injector<Job>,
    stealers: Vec<Stealer<Job>>,
    shutdown: AtomicBool,
    executed: Vec<AtomicU64>,
    steals: Vec<AtomicU64>,
    assisted: AtomicU64,
}

/// The pool.
pub struct WorkStealingPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    workers: usize,
}

impl WorkStealingPool {
    /// Spawn a pool with `workers` threads (at least 1).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let worker_deques: Vec<Worker<Job>> = (0..workers).map(|_| Worker::new_lifo()).collect();
        let stealers: Vec<Stealer<Job>> = worker_deques.iter().map(Worker::stealer).collect();
        let shared = Arc::new(Shared {
            injector: Injector::new(),
            stealers,
            shutdown: AtomicBool::new(false),
            executed: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            steals: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            assisted: AtomicU64::new(0),
        });

        let handles = worker_deques
            .into_iter()
            .enumerate()
            .map(|(wid, local)| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("mcqa-worker-{wid}"))
                    .spawn(move || worker_loop(wid, local, shared))
                    .expect("spawn worker")
            })
            .collect();

        Self { shared, handles, workers }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Submit one fire-and-forget job.
    pub fn submit<F: FnOnce() + Send + 'static>(&self, job: F) {
        self.shared.injector.push(Box::new(job));
    }

    /// Submit an already-boxed job without re-boxing it.
    pub(crate) fn submit_boxed(&self, job: Job) {
        self.shared.injector.push(job);
    }

    /// Execute one queued job on the *calling* thread, if any is available.
    ///
    /// This is the work-assist hook the stage driver uses while it waits
    /// for results: a caller blocked on a stage drains the queue instead of
    /// parking, which (a) adds the calling thread as an extra execution
    /// context and (b) makes *nested* stages on one pool deadlock-free —
    /// a stage closure may itself fan out on the same executor (e.g. a
    /// future pipeline stage calling `CorpusLibrary::search` or a batch
    /// API) even on a 1-worker pool.
    pub(crate) fn try_execute_one(&self) -> bool {
        // Fresh submissions land in the global injector…
        loop {
            match self.shared.injector.steal() {
                crossbeam_deque::Steal::Success(job) => {
                    self.shared.assisted.fetch_add(1, Ordering::Relaxed);
                    let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                    return true;
                }
                crossbeam_deque::Steal::Retry => continue,
                crossbeam_deque::Steal::Empty => break,
            }
        }
        // …but a job may sit in a worker's local deque (batch-stolen there)
        // while that worker is itself blocked in a nested stage.
        for stealer in &self.shared.stealers {
            loop {
                match stealer.steal() {
                    crossbeam_deque::Steal::Success(job) => {
                        self.shared.assisted.fetch_add(1, Ordering::Relaxed);
                        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                        return true;
                    }
                    crossbeam_deque::Steal::Retry => continue,
                    crossbeam_deque::Steal::Empty => break,
                }
            }
        }
        false
    }

    /// Snapshot activity counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            executed_per_worker: self
                .shared
                .executed
                .iter()
                .map(|a| a.load(Ordering::Relaxed))
                .collect(),
            steals_per_worker: self
                .shared
                .steals
                .iter()
                .map(|a| a.load(Ordering::Relaxed))
                .collect(),
            assisted: self.shared.assisted.load(Ordering::Relaxed),
        }
    }
}

impl Drop for WorkStealingPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// A cheaply-clonable, `Arc`-backed view of a [`WorkStealingPool`].
///
/// This is the handle library crates accept: the owner of the pool (the
/// pipeline, a test, a bench) creates one `Executor` and passes `&Executor`
/// down, so every batch API — encoding, index search, parsing, corpus
/// synthesis — fans out on the *caller's* scheduler instead of spawning its
/// own threads. Cloning is an `Arc` bump; the pool shuts down when the last
/// clone (and the global handle, if taken) is gone.
///
/// `Executor` derefs to [`WorkStealingPool`], so it can be passed anywhere a
/// `&WorkStealingPool` is expected (e.g. [`crate::run_stage`]).
#[derive(Clone)]
pub struct Executor {
    pool: Arc<WorkStealingPool>,
}

impl Executor {
    /// Spawn a fresh pool with `workers` threads (0 is clamped to 1) and
    /// wrap it in a shareable handle.
    pub fn new(workers: usize) -> Self {
        Self::from_pool(WorkStealingPool::new(workers))
    }

    /// Wrap an existing pool.
    pub fn from_pool(pool: WorkStealingPool) -> Self {
        Self { pool: Arc::new(pool) }
    }

    /// The process-wide default executor (one worker per core), spawned on
    /// first use. This is the ambient scheduler for call sites that have no
    /// pipeline pool in scope — standalone library use, tests, benches.
    pub fn global() -> &'static Executor {
        static GLOBAL: OnceLock<Executor> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
            Executor::new(workers)
        })
    }
}

impl std::ops::Deref for Executor {
    type Target = WorkStealingPool;

    fn deref(&self) -> &WorkStealingPool {
        &self.pool
    }
}

impl std::fmt::Debug for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor").field("workers", &self.pool.workers()).finish()
    }
}

fn worker_loop(wid: usize, local: Worker<Job>, shared: Arc<Shared>) {
    let backoff = Backoff::new();
    loop {
        // 1. Own deque.
        let job = local.pop().or_else(|| {
            // 2. Global injector (batch-steal into the local deque).
            std::iter::repeat_with(|| shared.injector.steal_batch_and_pop(&local))
                .find(|s| !s.is_retry())
                .and_then(|s| s.success())
                .or_else(|| {
                    // 3. Peers.
                    for (i, stealer) in shared.stealers.iter().enumerate() {
                        if i == wid {
                            continue;
                        }
                        loop {
                            match stealer.steal() {
                                crossbeam_deque::Steal::Success(job) => {
                                    shared.steals[wid].fetch_add(1, Ordering::Relaxed);
                                    return Some(job);
                                }
                                crossbeam_deque::Steal::Retry => continue,
                                crossbeam_deque::Steal::Empty => break,
                            }
                        }
                    }
                    None
                })
        });

        match job {
            Some(job) => {
                backoff.reset();
                shared.executed[wid].fetch_add(1, Ordering::Relaxed);
                // Panic isolation: a panicking task must not kill the worker.
                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
            }
            None => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if backoff.is_completed() {
                    std::thread::park_timeout(std::time::Duration::from_millis(1));
                } else {
                    backoff.snooze();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn executes_all_jobs() {
        let pool = WorkStealingPool::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = crossbeam_channel::bounded(1000);
        for _ in 0..1000 {
            let counter = Arc::clone(&counter);
            let tx = tx.clone();
            pool.submit(move || {
                counter.fetch_add(1, Ordering::Relaxed);
                tx.send(()).unwrap();
            });
        }
        for _ in 0..1000 {
            rx.recv_timeout(std::time::Duration::from_secs(10)).expect("job completed");
        }
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
        assert_eq!(pool.stats().total_executed(), 1000);
    }

    #[test]
    fn panicking_job_does_not_kill_workers() {
        let pool = WorkStealingPool::new(2);
        let (tx, rx) = crossbeam_channel::bounded(10);
        pool.submit(|| panic!("boom"));
        // Pool must still process subsequent jobs.
        for i in 0..10 {
            let tx = tx.clone();
            pool.submit(move || tx.send(i).unwrap());
        }
        let mut got: Vec<i32> =
            (0..10).map(|_| rx.recv_timeout(std::time::Duration::from_secs(10)).unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn work_distributes_across_workers() {
        let pool = WorkStealingPool::new(4);
        let (tx, rx) = crossbeam_channel::bounded(4000);
        for _ in 0..4000 {
            let tx = tx.clone();
            pool.submit(move || {
                // Small but non-zero work so no single worker can drain all.
                let mut x = 0u64;
                for i in 0..500 {
                    x = x.wrapping_add(mcqa_util::splitmix64(i));
                }
                std::hint::black_box(x);
                tx.send(()).unwrap();
            });
        }
        for _ in 0..4000 {
            rx.recv_timeout(std::time::Duration::from_secs(30)).unwrap();
        }
        let stats = pool.stats();
        let busy_workers = stats.executed_per_worker.iter().filter(|&&c| c > 0).count();
        assert!(busy_workers >= 2, "expected multiple busy workers: {stats:?}");
    }

    #[test]
    fn zero_workers_clamped_to_one() {
        let pool = WorkStealingPool::new(0);
        assert_eq!(pool.workers(), 1);
        let (tx, rx) = crossbeam_channel::bounded(1);
        pool.submit(move || tx.send(42).unwrap());
        assert_eq!(rx.recv_timeout(std::time::Duration::from_secs(10)).unwrap(), 42);
    }

    #[test]
    fn executor_clones_share_one_pool() {
        let exec = Executor::new(2);
        let clone = exec.clone();
        let (tx, rx) = crossbeam_channel::bounded(2);
        let tx2 = tx.clone();
        exec.submit(move || tx.send(1u32).unwrap());
        clone.submit(move || tx2.send(2u32).unwrap());
        let mut got: Vec<u32> =
            (0..2).map(|_| rx.recv_timeout(std::time::Duration::from_secs(10)).unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
        // Both handles observe the same counters (same underlying pool).
        assert_eq!(exec.stats(), clone.stats());
        assert_eq!(exec.stats().total_executed(), 2);
    }

    #[test]
    fn global_executor_is_a_singleton() {
        let a = Executor::global();
        let b = Executor::global();
        assert!(std::ptr::eq(a, b));
        assert!(a.workers() >= 1);
        let (tx, rx) = crossbeam_channel::bounded(1);
        a.submit(move || tx.send(7u32).unwrap());
        assert_eq!(rx.recv_timeout(std::time::Duration::from_secs(10)).unwrap(), 7);
    }

    #[test]
    fn drop_joins_cleanly_with_pending_shutdown() {
        let pool = WorkStealingPool::new(3);
        for i in 0..50 {
            pool.submit(move || {
                std::hint::black_box(i);
            });
        }
        drop(pool); // must not hang or panic
    }
}
